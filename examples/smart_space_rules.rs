//! The smart-spaces domain end-to-end (§IV-C): the split 2SVM deployment.
//! The central node synthesizes models into scripts; *immediate* scripts
//! configure the smart objects over the network, while rule-derived
//! scripts are *installed* and fire on asynchronous environment events.
//!
//! ```text
//! cargo run --example smart_space_rules
//! ```

use mddsm::ssvm::SmartSpaceDeployment;

fn main() {
    let mut space = SmartSpaceDeployment::new("lab", &["hall", "office"], 3);
    println!("smart space with {} object nodes\n", space.node_count());

    let mut session = space.open_session().expect("central node has the UI layer");

    println!("1) enrolling smart objects (immediate scripts, routed per node):");
    let lamp = session.create("SmartObject").unwrap();
    session.set(lamp, "name", "hall:lamp").unwrap();
    session.set(lamp, "kind", "Lamp").unwrap();
    let door = session.create("SmartObject").unwrap();
    session.set(door, "name", "office:door").unwrap();
    session.set(door, "kind", "Door").unwrap();
    let report = space.submit_model(session.submit().unwrap()).unwrap();
    println!(
        "   {} commands executed across nodes; {} script(s) dispatched",
        report.commands,
        space.dispatched_scripts()
    );

    println!("\n2) an automation rule: when someone enters, the hall lamp goes on");
    let rule = session.create("AutomationRule").unwrap();
    session.set(rule, "name", "welcome").unwrap();
    session.set(rule, "onEvent", "objectEntered").unwrap();
    session.set(rule, "object", "hall:lamp").unwrap();
    session.set(rule, "action", "on").unwrap();
    space.submit_model(session.submit().unwrap()).unwrap();
    println!("   rule installed (not executed yet)");
    println!(
        "   hall lamp state: {:?}",
        space.devices().lock().unwrap()["hall:lamp"].state
    );

    println!("\n3) the event arrives — the installed script fires on the object node:");
    space.notify_event("objectEntered", &[]).unwrap();
    println!(
        "   hall lamp state: {:?}",
        space.devices().lock().unwrap()["hall:lamp"].state
    );

    println!("\nper-node command traces:");
    for node in ["hall", "office"] {
        println!("   [{node}]");
        for line in space.node(node).unwrap().command_trace() {
            println!("      {line}");
        }
    }
    println!(
        "\nvirtual network cost of dispatches: {:.1} ms",
        space.virtual_network_us() as f64 / 1000.0
    );
}
