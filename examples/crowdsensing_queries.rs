//! The crowdsensing domain end-to-end (§IV-D): queries are models; the
//! fleet answers them; and — the CSVM speciality — long-running queries
//! are retargeted *on the fly* by editing the model, with immediate effect
//! on the running acquisition.
//!
//! ```text
//! cargo run --example crowdsensing_queries
//! ```

use mddsm::csvm::build_csvm;
use mddsm::csvm::fleet::shared_fleet;

fn main() {
    let fleet = shared_fleet(40, &["downtown", "harbor", "park"], 2024);
    let mut platform = build_csvm(5, fleet.clone());
    println!("platform `{}` over a 40-phone fleet\n", platform.name());

    let mut session = platform.open_session().expect("CSVM has a UI layer");

    println!("1) a noise query over downtown at 2 Hz:");
    let q = session.create("SensingQuery").unwrap();
    session.set(q, "name", "noise-downtown").unwrap();
    session.set(q, "sensor", "Noise").unwrap();
    session.set(q, "region", "downtown").unwrap();
    session.set(q, "sampleRateHz", "2").unwrap();
    session.set(q, "aggregation", "Mean").unwrap();
    let report = platform.submit_model(session.submit().unwrap()).unwrap();
    println!(
        "   started (events: {:?}); fleet runs {:?}",
        report.execution.events,
        fleet.lock().unwrap().running()
    );

    println!("\n2) on-the-fly change: rate 2 -> 10 Hz (model edit, live query):");
    session.set(q, "sampleRateHz", "10").unwrap();
    platform.submit_model(session.submit().unwrap()).unwrap();

    println!("\n3) participants move between regions; collection follows:");
    {
        let mut fleet = fleet.lock().unwrap();
        fleet.move_device("phone1", "downtown");
        fleet.move_device("phone2", "downtown");
        println!(
            "   devices now in downtown: {}",
            fleet.devices_in("downtown")
        );
    }

    println!("\n4) stopping the query by deleting it from the model:");
    session.delete(q).unwrap();
    platform.submit_model(session.submit().unwrap()).unwrap();
    println!("   fleet now runs {:?}", fleet.lock().unwrap().running());

    println!("\ncommand trace against the fleet:");
    for line in platform.command_trace() {
        println!("   {line}");
    }
}
