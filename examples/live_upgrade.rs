//! Live model evolution end-to-end: hot-upgrade a serving broker from
//! the E14 v1 model to the v2 candidate, then push a second candidate
//! that regresses in probation and watch the supervisor roll it back.
//!
//! The candidate models exercised here are the same ones the
//! `analyze_models` CI gate checks (`bench-e14-*`), so an unsound
//! candidate can never reach the shadow phase in CI.
//!
//! ```text
//! cargo run --example live_upgrade
//! ```

use bench::e14::{e14_model_v1, e14_model_v2, INVARIANTS};
use mddsm::broker::{
    recover_versioned, GenericBroker, LiveUpgrade, RestartPolicy, Supervisor, SupervisorDecision,
    UpgradePhase,
};
use mddsm::sim::resource::{args, Args, Outcome};
use mddsm::sim::{LatencyModel, ResourceHub, SimDuration, SimTime};

fn hub() -> ResourceHub {
    let mut h = ResourceHub::new(7);
    h.register(
        "sim.store",
        LatencyModel::fixed_ms(3),
        SimDuration::from_millis(250),
        Box::new(|_: &str, _: &Args| Outcome::ok()),
    );
    h
}

fn main() {
    let v1 = e14_model_v1();
    let v2 = e14_model_v2();
    let mut broker = GenericBroker::from_model(&v1, hub()).expect("v1 valid");
    broker.enable_journal_with(16, true);
    let mut supervisor = Supervisor::new(&["broker"], RestartPolicy::default());

    // Serve some traffic on the old model.
    for i in 0..4 {
        let n = i.to_string();
        broker.call("op", &args(&[("n", &n)])).expect("serves");
    }
    println!(
        "serving on v1 (model version {}, state version {})",
        broker.model_version(),
        broker.state().version()
    );

    // Stage 1: gate the candidate and classify the delta.
    let mut up = LiveUpgrade::prepare(&broker, &v1, &v2, "v2", 3).expect("candidate passes gate");
    println!("\ngate passed; delta classification:");
    for (class, what) in up.classified() {
        println!("  {class:?}: {what}");
    }

    // Stage 2: shadow the candidate's monitors and policies over real calls.
    for i in 4..10 {
        let n = i.to_string();
        broker.call("op", &args(&[("n", &n)])).expect("serves");
        up.observe_call(&broker);
    }
    let (mon_div, pol_div) = up.divergences();
    println!(
        "\nshadow phase: {} calls observed, {mon_div} monitor / {pol_div} policy divergences",
        up.shadow_calls()
    );

    // Stage 3: atomic journaled cutover (the declared migration seeds
    // svc_tier inside the same Upgrade record).
    up.cutover(&mut broker, 6, 1).expect("cutover");
    println!(
        "cutover journaled: model version {} (svc_tier = {:?})",
        broker.model_version(),
        broker.state().str("svc_tier")
    );

    // Stage 4: probation — healthy ticks commit.
    let mut t = SimTime::ZERO;
    while up.phase() == UpgradePhase::Probation {
        let n = "p".to_string();
        broker.call("op", &args(&[("n", &n)])).expect("serves");
        supervisor.heartbeat("broker", t);
        up.probation_tick(&broker, &mut supervisor, "broker");
        t = t + SimDuration::from_millis(20);
    }
    println!(
        "probation passed: upgrade committed, phase {:?}",
        up.phase()
    );

    // Crash here and the journal resolves to exactly one version.
    let bytes = broker.journal_bytes().expect("journaling on").to_vec();
    let versions = [(1u64, &v1), (2u64, &v2)];
    let (recovered, _) =
        recover_versioned(&versions, ResourceHub::new(7), &bytes, INVARIANTS).expect("recovers");
    println!(
        "crash recovery resolves to pure model version {}",
        recovered.model_version()
    );

    // Second push: the same protocol, but a corruption trips a monitor in
    // probation and the supervisor decides a rollback.
    let mut up2 =
        LiveUpgrade::prepare(&broker, &v2, &e14_model_v1(), "back-to-v1", 8).expect("gate");
    for i in 0..6 {
        let n = i.to_string();
        broker.call("op", &args(&[("n", &n)])).expect("serves");
        up2.observe_call(&broker);
    }
    up2.cutover(&mut broker, 6, 1).expect("cutover");
    let trips = broker.corrupt_state("count", "-5");
    println!(
        "\nsecond upgrade cut over to version {}; corruption trips {:?}",
        broker.model_version(),
        trips
            .iter()
            .map(|tr| tr.monitor.clone())
            .collect::<Vec<_>>()
    );
    up2.probation_tick(&broker, &mut supervisor, "broker");
    let decisions = supervisor.tick(t).expect("symptoms evaluate");
    for d in &decisions {
        if let SupervisorDecision::RollbackUpgrade { component, reason } = d {
            println!("supervisor: rollback {component}: {reason}");
        }
    }
    broker.rollback_to_snapshot().expect("heal the corruption");
    up2.rollback(&mut broker, "monitor tripped in probation")
        .expect("rolls back");
    println!(
        "rolled back to model version {} ({:?})",
        broker.model_version(),
        up2.outcome()
    );
}
