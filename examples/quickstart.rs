//! Quickstart: build an MD-DSM platform for a brand-new domain in ~100
//! lines — the paper's core promise ("the rapid development of middleware
//! platforms to match the proliferation of application domains").
//!
//! The toy domain is home irrigation: models declare sprinkler zones;
//! the middleware waters them through a (simulated) valve controller.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use mddsm::broker::BrokerModelBuilder;
use mddsm::controller::procedure::{Instr, Operand, Procedure};
use mddsm::controller::{ActionRegistry, DscRegistry, ProcedureRepository};
use mddsm::core::{DomainKnowledge, PlatformBuilder, PlatformModelBuilder};
use mddsm::meta::metamodel::{DataType, MetamodelBuilder};
use mddsm::sim::resource::Outcome;
use mddsm::sim::ResourceHub;
use mddsm::synthesis::lts::{ChangePattern, CommandTemplate};
use mddsm::synthesis::LtsBuilder;

fn main() {
    // 1. The application DSML: irrigation zones with a watering duration.
    let dsml = MetamodelBuilder::new("irrigation")
        .class("Zone", |c| {
            c.attr("name", DataType::Str)
                .attr("minutes", DataType::Int)
                .invariant("sane-duration", "self.minutes > 0 and self.minutes <= 120")
        })
        .build()
        .expect("well-formed DSML");

    // 2a. Synthesis semantics: creating a zone waters it; deleting stops it.
    let lts = LtsBuilder::new()
        .state("tending")
        .initial("tending")
        .transition("tending", "tending", ChangePattern::create("Zone"), |t| {
            t.emit(
                CommandTemplate::new("water", "$key")
                    .with("zone", "$attr_name")
                    .with("minutes", "$attr_minutes"),
            )
        })
        .transition("tending", "tending", ChangePattern::delete("Zone"), |t| {
            t.emit(CommandTemplate::new("stop", "$key").with("zone", "$id"))
        })
        .build()
        .expect("well-formed LTS");

    // 2b. Controller knowledge: one DSC, one procedure per operation.
    let mut dscs = DscRegistry::new();
    dscs.operation("Water", None, "open a zone's valve for a while")
        .unwrap();
    dscs.operation("Stop", None, "close a zone's valve")
        .unwrap();
    let mut procedures = ProcedureRepository::new();
    procedures
        .add(Procedure::simple(
            "waterZone",
            "Water",
            vec![
                Instr::BrokerCall {
                    api: "valves".into(),
                    op: "open".into(),
                    args: vec![
                        ("zone".into(), Operand::arg("zone")),
                        ("minutes".into(), Operand::arg("minutes")),
                    ],
                },
                Instr::Complete,
            ],
        ))
        .unwrap();
    procedures
        .add(Procedure::simple(
            "stopZone",
            "Stop",
            vec![
                Instr::BrokerCall {
                    api: "valves".into(),
                    op: "close".into(),
                    args: vec![("zone".into(), Operand::arg("zone"))],
                },
                Instr::Complete,
            ],
        ))
        .unwrap();

    let dsk = DomainKnowledge {
        dsml,
        lts,
        dscs,
        procedures,
        actions: ActionRegistry::new(),
        command_map: vec![
            ("water".into(), "Water".into()),
            ("stop".into(), "Stop".into()),
        ],
        event_commands: vec![],
    };

    // 3. Platform structure: all four layers; broker model over the valves.
    let platform_model = PlatformModelBuilder::new("irrigationvm", "irrigation")
        .ui("irrigation")
        .synthesis("Skip")
        .controller(|_, _| {})
        .broker("valveBroker")
        .build();
    let broker_model = BrokerModelBuilder::new("valveBroker")
        .call_handler("open", "valves.open")
        .action(
            "open",
            "open",
            "sim.valves",
            "open",
            &["zone=$zone", "minutes=$minutes"],
            None,
            &["watering=+1"],
        )
        .call_handler("close", "valves.close")
        .action(
            "close",
            "close",
            "sim.valves",
            "close",
            &["zone=$zone"],
            None,
            &["watering=-1"],
        )
        .build();

    // The simulated valve controller.
    let mut hub = ResourceHub::new(42);
    hub.register_fn("sim.valves", |op, args| {
        let zone = args
            .iter()
            .find(|(k, _)| k == "zone")
            .map(|(_, v)| v.as_str())
            .unwrap_or("?");
        println!("   [valves] {op} zone={zone}");
        Outcome::ok()
    });

    // 4. Generate the platform and run application models on it.
    let mut platform = PlatformBuilder::new(&platform_model, dsk)
        .expect("consistent inputs")
        .broker_model(broker_model)
        .resources(hub)
        .build()
        .expect("platform assembles");
    println!(
        "generated platform `{}` for domain `{}`",
        platform.name(),
        platform.domain()
    );

    let mut session = platform.open_session().expect("UI layer present");
    let lawn = session.create("Zone").unwrap();
    session.set(lawn, "name", "lawn").unwrap();
    session.set(lawn, "minutes", "20").unwrap();
    let roses = session.create("Zone").unwrap();
    session.set(roses, "name", "roses").unwrap();
    session.set(roses, "minutes", "10").unwrap();

    println!("\nsubmitting the irrigation model (2 zones):");
    let report = platform.submit_model(session.submit().unwrap()).unwrap();
    println!("   -> {} commands executed", report.execution.commands);

    println!("\nediting the model at runtime: the roses zone is removed:");
    session.delete(roses).unwrap();
    let report = platform.submit_model(session.submit().unwrap()).unwrap();
    println!("   -> {} commands executed", report.execution.commands);

    println!("\nvalidation is free: an invalid model never reaches the plant:");
    let bad = session.create("Zone").unwrap();
    session.set(bad, "name", "swamp").unwrap();
    session.set(bad, "minutes", "999").unwrap();
    match session.submit() {
        Err(e) => println!("   rejected as expected:\n   {e}"),
        Ok(_) => unreachable!("the invariant must reject 999 minutes"),
    }

    println!("\ncommand trace against the valve controller:");
    for line in platform.command_trace() {
        println!("   {line}");
    }
}
