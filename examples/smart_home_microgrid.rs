//! The smart-microgrid domain end-to-end (§IV-B): a home's energy setup is
//! a model; editing it reconfigures the (simulated) plant, and the energy
//! management algorithm dispatches renewables, storage, and grid while
//! shedding deferrable loads under deficit.
//!
//! ```text
//! cargo run --example smart_home_microgrid
//! ```

use mddsm::mgridvm::build_mgridvm;
use mddsm::mgridvm::plant::shared_plant;

fn main() {
    let plant = shared_plant();
    let mut platform = build_mgridvm(11, plant.clone());
    println!(
        "platform `{}` (domain `{}`)\n",
        platform.name(),
        platform.domain()
    );

    let mut session = platform.open_session().expect("MGridVM has a UI layer");

    println!("1) the home model: rooftop PV, a generator, HVAC, and a pool pump");
    let pv = session.create("PowerSource").unwrap();
    session.set(pv, "name", "roofPV").unwrap();
    session.set(pv, "kind", "Solar").unwrap();
    session.set(pv, "capacityKw", "4").unwrap();
    let gen = session.create("PowerSource").unwrap();
    session.set(gen, "name", "generator").unwrap();
    session.set(gen, "kind", "Generator").unwrap();
    session.set(gen, "capacityKw", "2").unwrap();
    let hvac = session.create("Load").unwrap();
    session.set(hvac, "name", "hvac").unwrap();
    session.set(hvac, "demandKw", "3").unwrap();
    let pool = session.create("Load").unwrap();
    session.set(pool, "name", "pool").unwrap();
    session.set(pool, "demandKw", "2").unwrap();
    session.set(pool, "priority", "Deferrable").unwrap();

    let report = platform.submit_model(session.submit().unwrap()).unwrap();
    println!(
        "   -> {} commands; events: {:?}",
        report.execution.commands, report.execution.events
    );
    {
        let plant = plant.lock().unwrap();
        println!(
            "   plant now tracks {} dispatch round(s)",
            plant.dispatches()
        );
    }

    println!("\n2) evening: demand spikes (hvac 3 -> 6 kW); deferrable load is shed");
    session.set(hvac, "demandKw", "6").unwrap();
    let report = platform.submit_model(session.submit().unwrap()).unwrap();
    println!("   events from the balancer: {:?}", report.execution.events);

    println!("\n3) switching the pool pump off explicitly (Case-1 fast action):");
    session.set(pool, "enabled", "false").unwrap();
    let report = platform.submit_model(session.submit().unwrap()).unwrap();
    println!("   case1 executions: {}", report.execution.case1);

    println!("\ncommand trace against the plant:");
    for line in platform.command_trace() {
        println!("   {line}");
    }
}
