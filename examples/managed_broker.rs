//! The §V-A runtime-environment story end-to-end: the Broker layer's
//! managers are *generated as components* from the broker model by the
//! component factory, hosted in a container, and driven by messages.
//!
//! ```text
//! cargo run --example managed_broker
//! ```

use mddsm::broker::components::{managers_container, share};
use mddsm::broker::{BrokerModelBuilder, GenericBroker};
use mddsm::runtime::Message;
use mddsm::sim::resource::Outcome;
use mddsm::sim::ResourceHub;

fn main() {
    // A broker model (instance of the Fig. 6 metamodel) with an autonomic
    // rule: too many pings trip a cool-down.
    let model = BrokerModelBuilder::new("pingBroker")
        .call_handler("ping", "ping")
        .action(
            "ping",
            "pong",
            "svc",
            "ping",
            &["from=$from"],
            None,
            &["pings=+1"],
        )
        .autonomic_rule(
            "overheated",
            "self.pings <> null and self.pings > 2",
            &["set pings 0", "emit cooled"],
        )
        .build();

    let mut hub = ResourceHub::new(1);
    hub.register_fn("svc", |_, args| {
        let from = args
            .iter()
            .find(|(k, _)| k == "from")
            .map(|(_, v)| v.as_str())
            .unwrap_or("?");
        println!("   [svc] ping from {from}");
        Outcome::ok()
    });
    let broker = share(GenericBroker::from_model(&model, hub).expect("valid model"));

    // The component factory instantiates one component per Manager object
    // of the model — this is "the runtime environment generates and
    // executes the appropriate middleware components defined in the model".
    let mut container = managers_container(&model, broker.clone()).expect("managers generate");
    println!("generated manager components: {:?}\n", container.names());

    println!("driving the broker through the message bus:");
    for who in ["ana", "bob", "carol"] {
        container
            .dispatch(
                Message::new("broker.call")
                    .with("op", "ping")
                    .with("from", who),
            )
            .expect("dispatch succeeds");
    }
    println!(
        "   pings counted by the state manager: {:?}",
        broker.lock().unwrap().state().int("pings")
    );

    println!("\nautonomic tick (MAPE-K over the model-defined rule):");
    container
        .dispatch(Message::new("broker.tick"))
        .expect("tick succeeds");
    println!(
        "   pings after cool-down: {:?}",
        broker.lock().unwrap().state().int("pings")
    );

    println!("\nreflective state change through the state-manager component:");
    container
        .dispatch(Message::new("broker.setState").with("effect", "mode=maintenance"))
        .expect("state change succeeds");
    println!("   mode: {:?}", broker.lock().unwrap().state().str("mode"));

    println!("\nfull command trace:");
    for line in broker.lock().unwrap().hub().command_trace() {
        println!("   {line}");
    }
}
