//! The communication domain end-to-end (§IV-A): a user grows and reshapes
//! a multimedia session purely by editing a CML model; the CVM platform
//! synthesizes the deltas, the Controller generates intent models, and the
//! model-defined NCB orchestrates the simulated services. The finale
//! injects a media-engine failure to show the Controller's failure-driven
//! adaptation (the §VII-B scenario where adaptability wins).
//!
//! ```text
//! cargo run --example communication_session
//! ```

use mddsm::cvm;

fn main() {
    let mut platform = cvm::build_cvm(7, 1_000);
    println!(
        "platform `{}` (domain `{}`)\n",
        platform.name(),
        platform.domain()
    );

    let mut session = platform.open_session().expect("CVM has a UI layer");

    // Two people and an audio medium...
    let ana = session.create("Person").unwrap();
    session.set(ana, "name", "ana").unwrap();
    session.set(ana, "userId", "ana@cvm").unwrap();
    let bob = session.create("Person").unwrap();
    session.set(bob, "name", "bob").unwrap();
    session.set(bob, "userId", "bob@cvm").unwrap();
    let voice = session.create("Medium").unwrap();
    session.set(voice, "name", "voice").unwrap();
    session.set(voice, "kind", "Audio").unwrap();

    // ...connected in a call.
    let call = session.create("Connection").unwrap();
    session.set(call, "name", "standup").unwrap();
    session.link(call, "parties", ana).unwrap();
    session.link(call, "parties", bob).unwrap();
    session.link(call, "media", voice).unwrap();

    println!("1) establishing the two-party audio call:");
    let report = platform.submit_model(session.submit().unwrap()).unwrap();
    println!(
        "   {} commands, {} broker calls (case1={} case2={})",
        report.execution.commands,
        report.execution.broker_calls,
        report.execution.case1,
        report.execution.case2
    );

    println!("\n2) carol joins (one model edit, one synthesized delta):");
    let carol = session.create("Person").unwrap();
    session.set(carol, "name", "carol").unwrap();
    session.set(carol, "userId", "carol@cvm").unwrap();
    session.link(call, "parties", carol).unwrap();
    let report = platform.submit_model(session.submit().unwrap()).unwrap();
    println!("   {} command(s) executed", report.execution.commands);

    println!("\n3) upgrading the voice codec (served by a Case-1 fast action):");
    session.set(voice, "codec", "opus-hd").unwrap();
    let report = platform.submit_model(session.submit().unwrap()).unwrap();
    println!("   case1 executions: {}", report.execution.case1);

    println!("\n4) media engine fails; the Controller adapts to the relay:");
    platform
        .broker_mut()
        .unwrap()
        .hub_mut()
        .set_healthy("sim.media", false);
    let video = session.create("Medium").unwrap();
    session.set(video, "name", "screen").unwrap();
    session.set(video, "kind", "Video").unwrap();
    session.set(video, "bandwidthKbps", "512").unwrap();
    session.link(call, "media", video).unwrap();
    let report = platform.submit_model(session.submit().unwrap()).unwrap();
    println!(
        "   adaptations: {} (failed procedure excluded, IM regenerated)",
        report.execution.adaptations
    );

    println!("\n5) the autonomic manager heals the media engine:");
    platform.autonomic_tick().unwrap();
    println!(
        "   media healthy again: {}",
        platform.broker().unwrap().hub().is_healthy("sim.media")
    );

    println!("\nfull command trace against the simulated services:");
    for line in platform.command_trace() {
        println!("   {line}");
    }
}
