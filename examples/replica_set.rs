//! Quorum-replicated models@runtime end-to-end: a broker model declares
//! a 3-node replica set, the quorum replicator (built *from the model*)
//! ships the journal to both peers and advances the majority commit
//! point, the primary is killed, the supervisor elects the replica with
//! the longest quorum-committed prefix under a bumped fencing epoch, and
//! the promoted node keeps serving — without losing a single committed
//! update.
//!
//! The replica-set topology walked here is the same one the
//! `analyze_models` CI gate checks (`bench-e15-3`), so a malformed set
//! is refused at load time, never discovered at the first failover.
//!
//! ```text
//! cargo run --example replica_set
//! ```

use bench::e15::{e15_broker_model, INVARIANTS, NODES3};
use mddsm::broker::replication::Standby;
use mddsm::broker::supervisor::Supervisor;
use mddsm::broker::{GenericBroker, QuorumReplicator, RestartPolicy};
use mddsm::sim::fault::ComponentTarget;
use mddsm::sim::net::{Link, Network};
use mddsm::sim::resource::{args, Args, Outcome};
use mddsm::sim::{LatencyModel, ResourceHub, SimDuration};

fn hub(seed: u64) -> ResourceHub {
    let mut h = ResourceHub::new(seed);
    for (name, ms) in [("sim.alpha", 3), ("sim.beta", 5)] {
        h.register(
            name,
            LatencyModel::fixed_ms(ms),
            SimDuration::from_millis(250),
            Box::new(|_: &str, _: &Args| Outcome::ok()),
        );
    }
    h
}

fn main() {
    // The replica set is part of the broker model: node `a` serves,
    // `b` and `c` mirror its journal, and 2 of 3 make a quorum.
    let model = e15_broker_model(NODES3, 2);
    let mut broker = GenericBroker::from_model(&model, hub(7)).expect("model valid");
    broker.enable_journal(8);
    let mut rep = QuorumReplicator::from_model(&model, "a")
        .expect("replica set parses")
        .expect("the model declares a replica set");
    let mut standbys = vec![Standby::new("b"), Standby::new("c")];
    let net = Network::new(Link::default(), 7);
    println!(
        "replica set from the model: primary a, peers {:?}, quorum {}",
        rep.peer_nodes(),
        rep.quorum()
    );

    // Serve traffic; after each call, ship the journal and watch the
    // quorum commit LSN follow the majority of acknowledgements.
    for i in 0..6 {
        let n = i.to_string();
        broker.call("op", &args(&[("n", &n)])).expect("serves");
        let mut peers: Vec<&mut Standby> = standbys.iter_mut().collect();
        rep.tick(
            broker.now(),
            broker.epoch(),
            &net,
            broker.journal_bytes().expect("journaling on"),
            &mut peers,
        )
        .expect("shipping healthy");
        broker.advance_clock(SimDuration::from_millis(20));
    }
    println!(
        "served 6 calls: commit lsn {}, acked b={} c={}, quorum synced: {}",
        rep.commit_lsn(),
        rep.acked_lsn("b"),
        rep.acked_lsn("c"),
        rep.quorum_synced()
    );

    // Kill the primary. The supervisor notices the silence, bumps the
    // fencing epoch, and elects the replica with the longest
    // quorum-committed prefix.
    let mut supervisor = Supervisor::new(NODES3, RestartPolicy::default());
    supervisor.designate_replica_set("a", &["b", "c"]);
    ComponentTarget::crash_component(&mut supervisor, "a");
    for sb in &standbys {
        supervisor.note_replica_lsn(sb.node(), sb.applied_lsn());
    }
    let t = broker.now();
    let decisions = supervisor.tick(t).expect("symptoms evaluate");
    println!("\nprimary a crashed; supervisor decides: {decisions:?}");

    // Promote the elected replica and keep serving under the new epoch.
    let mut elected = standbys.remove(0);
    let epoch = supervisor.epoch();
    let (mut promoted, report) = elected
        .promote(epoch, &model, broker.into_hub(), INVARIANTS)
        .expect("promotion recovers from the mirror");
    println!(
        "promoted b under epoch {epoch}: replayed {} ops + {} commands, state version {}",
        report.ops_replayed,
        report.commands_replayed,
        promoted.state().version()
    );
    promoted.call("op", &args(&[("n", "6")])).expect("serves on");
    println!(
        "new primary serves on: served_alpha={} served_beta={} (no committed update lost)",
        promoted.state().int("served_alpha").unwrap_or(0),
        promoted.state().int("served_beta").unwrap_or(0)
    );
}
