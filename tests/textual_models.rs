//! The textual model format as the user-facing artifact: hand-written
//! models for all four domain DSMLs parse, validate, round-trip, and
//! execute.

use mddsm::meta::diff::{equivalent, DiffOptions};
use mddsm::meta::text;

const CML_MODEL: &str = r#"
// A three-party conference with voice and screen share.
model conference conformsTo cml {
    CommSchema s { name = "standup" persons -> [ana, bob, cj] media -> [voice, screen] connections -> [main] }
    Person ana { name = "ana" userId = "ana@cvm" device = "desktop" }
    Person bob { name = "bob" userId = "bob@cvm" device = "mobile" }
    Person cj  { name = "cj"  userId = "cj@cvm" }
    Medium voice  { name = "voice" kind = MediaKind::Audio bandwidthKbps = 64 codec = "opus" }
    Medium screen { name = "screen" kind = MediaKind::Video bandwidthKbps = 1024 codec = "h264" }
    Connection main { name = "main" parties -> [ana, bob, cj] media -> [voice, screen] }
}
"#;

const MGRID_MODEL: &str = r#"
model home conformsTo mgridml {
    Microgrid g { name = "home" sources -> [pv, gen] storage -> [batt] loads -> [hvac, pool] }
    PowerSource pv  { name = "pv"  kind = SourceKind::Solar capacityKw = 4.5 }
    PowerSource gen { name = "gen" kind = SourceKind::Generator capacityKw = 2.0 online = true }
    StorageUnit batt { name = "batt" capacityKwh = 10.0 chargeKwh = 6.5 }
    Load hvac { name = "hvac" demandKw = 3.0 priority = LoadPriority::Critical }
    Load pool { name = "pool" demandKw = 1.5 priority = LoadPriority::Deferrable enabled = true }
}
"#;

const TWOSML_MODEL: &str = r#"
model lab conformsTo "2sml" {
    SmartSpace lab { name = "lab" users -> [u] objects -> [lamp] rules -> [welcome] }
    User u { name = "dana" }
    SmartObject lamp { name = "hall:lamp" kind = ObjectKind::Lamp location = "hall" }
    AutomationRule welcome { name = "welcome" onEvent = SpaceEvent::objectEntered object = "hall:lamp" action = "on" }
}
"#;

const CSML_MODEL: &str = r#"
model survey conformsTo csml {
    SensingQuery air { name = "air" sensor = Sensor::AirQuality region = "harbor" sampleRateHz = 4 aggregation = Aggregation::Max }
}
"#;

fn roundtrip(src: &str, mm: &mddsm::meta::Metamodel) {
    let model = text::parse(src).expect("fixture parses");
    mddsm::meta::conformance::check(&model, mm).expect("fixture conforms");
    let written = text::write(&model);
    let reparsed = text::parse(&written).expect("written form parses");
    assert!(equivalent(&model, &reparsed, &DiffOptions::default()));
}

#[test]
fn all_domain_fixtures_roundtrip() {
    roundtrip(CML_MODEL, &mddsm::cvm::cml::cml_metamodel());
    roundtrip(MGRID_MODEL, &mddsm::mgridvm::mgridml::mgridml_metamodel());
    roundtrip(TWOSML_MODEL, &mddsm::ssvm::twosml::twosml_metamodel());
    roundtrip(CSML_MODEL, &mddsm::csvm::csml::csml_metamodel());
}

#[test]
fn cml_fixture_executes_on_cvm() {
    let mut p = mddsm::cvm::build_cvm(13, 20);
    let report = p.submit_text(CML_MODEL).unwrap();
    assert!(report.execution.commands >= 1);
    assert!(p
        .command_trace()
        .iter()
        .any(|t| t.starts_with("sim.signaling.invite")));
}

#[test]
fn mgrid_fixture_executes_on_mgridvm() {
    let plant = mddsm::mgridvm::plant::shared_plant();
    let mut p = mddsm::mgridvm::build_mgridvm(13, plant.clone());
    p.submit_text(MGRID_MODEL).unwrap();
    assert!(plant.lock().unwrap().dispatches() >= 1);
}

#[test]
fn csml_fixture_executes_on_csvm() {
    let fleet = mddsm::csvm::fleet::shared_fleet(8, &["harbor"], 13);
    let mut p = mddsm::csvm::build_csvm(13, fleet.clone());
    p.submit_text(CSML_MODEL).unwrap();
    assert_eq!(fleet.lock().unwrap().running(), vec!["air"]);
}

#[test]
fn broken_fixtures_fail_with_positions() {
    // Unknown enum type literal.
    let e = text::parse("model m conformsTo cml { Medium v { kind = 5x } }").unwrap_err();
    assert!(e.to_string().contains("syntax error"));
    // A structurally fine model that violates the DSML still parses but is
    // rejected at conformance.
    let m = text::parse("model m conformsTo cml { Connection c { name = \"x\" } }").unwrap();
    assert!(mddsm::meta::conformance::check(&m, &mddsm::cvm::cml::cml_metamodel()).is_err());
}
