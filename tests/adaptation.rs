//! Failure injection and runtime adaptation across the stack:
//! Controller-level IM regeneration, Broker-level MAPE-K recovery, and
//! models@runtime reflective changes with immediate effect.

use mddsm::controller::{Case, ClassificationPolicy};
use mddsm::runtime::RuntimeModel;

#[test]
fn controller_adapts_around_failed_procedures() {
    let mut p = mddsm::cvm::build_cvm(8, 50);
    p.broker_mut()
        .unwrap()
        .hub_mut()
        .set_healthy("sim.media", false);
    let report = p
        .submit_text(
            r#"model m conformsTo cml {
                Person a { name = "ana" userId = "a@x" }
                Person b { name = "bob" userId = "b@x" }
                Medium v { name = "voice" kind = MediaKind::Audio }
                Connection c { name = "call" parties -> [a, b] media -> [v] }
            }"#,
        )
        .unwrap();
    assert!(report.execution.adaptations >= 1);
    // The failed procedure is excluded from the context.
    assert!(p.controller().unwrap().context().is_failed("mediaDirect"));
    // The relay served the session instead.
    assert!(p
        .command_trace()
        .iter()
        .any(|t| t.starts_with("sim.relay.open")));
}

#[test]
fn autonomic_loop_heals_the_broker_and_controller_recovers() {
    let mut p = mddsm::cvm::build_cvm(8, 50);
    p.broker_mut()
        .unwrap()
        .hub_mut()
        .set_healthy("sim.media", false);
    p.submit_text(
        r#"model m conformsTo cml {
            Person a { name = "ana" userId = "a@x" }
            Person b { name = "bob" userId = "b@x" }
            Medium v { name = "voice" kind = MediaKind::Audio }
            Connection c { name = "call" parties -> [a, b] media -> [v] }
        }"#,
    )
    .unwrap();
    assert!(!p.broker().unwrap().hub().is_healthy("sim.media"));
    // The broker recorded the failure; the MAPE-K cycle heals the engine.
    p.autonomic_tick().unwrap();
    assert!(p.broker().unwrap().hub().is_healthy("sim.media"));
    // Clearing the controller's failure marks restores the direct path.
    p.controller_mut().unwrap().recover();
    assert!(!p.controller().unwrap().context().is_failed("mediaDirect"));
}

#[test]
fn classification_policy_changes_take_immediate_effect() {
    let mut p = mddsm::cvm::build_cvm(8, 50);
    let mut session = p.open_session().unwrap();
    let a = session.create("Person").unwrap();
    session.set(a, "name", "ana").unwrap();
    session.set(a, "userId", "a@x").unwrap();
    let b = session.create("Person").unwrap();
    session.set(b, "name", "bob").unwrap();
    session.set(b, "userId", "b@x").unwrap();
    let v = session.create("Medium").unwrap();
    session.set(v, "name", "voice").unwrap();
    session.set(v, "kind", "Audio").unwrap();
    let c = session.create("Connection").unwrap();
    session.set(c, "name", "call").unwrap();
    session.link(c, "parties", a).unwrap();
    session.link(c, "parties", b).unwrap();
    session.link(c, "media", v).unwrap();
    p.submit_model(session.submit().unwrap()).unwrap();

    // Codec edits normally go through the Case-1 fast action...
    session.set(v, "codec", "vp9").unwrap();
    let r = p.submit_model(session.submit().unwrap()).unwrap();
    assert_eq!(r.execution.case1, 1);
    assert_eq!(r.execution.case2, 0);

    // ...until we reflectively flip the policy to always-dynamic (the
    // models@runtime knob of Fig. 8): the next identical edit takes Case 2.
    p.controller_mut()
        .unwrap()
        .set_classification_policy(ClassificationPolicy::always_dynamic());
    session.set(v, "codec", "av1").unwrap();
    let r = p.submit_model(session.submit().unwrap()).unwrap();
    assert_eq!(r.execution.case1, 0);
    assert_eq!(r.execution.case2, 1);

    // Per-command overrides win over the preference.
    p.controller_mut().unwrap().set_classification_policy(
        ClassificationPolicy::always_dynamic().with_override("reconfigureMedia", Case::Predefined),
    );
    session.set(v, "codec", "h265").unwrap();
    let r = p.submit_model(session.submit().unwrap()).unwrap();
    assert_eq!(r.execution.case1, 1);
}

#[test]
fn low_memory_context_prefers_dynamic_generation() {
    let mut p = mddsm::cvm::build_cvm(8, 50);
    p.submit_text(
        r#"model m conformsTo cml {
            Person a { name = "ana" userId = "a@x" }
            Person b { name = "bob" userId = "b@x" }
            Medium v { name = "voice" kind = MediaKind::Audio }
            Connection c { name = "call" parties -> [a, b] media -> [v] }
        }"#,
    )
    .unwrap();
    // The Fig. 8 memory rationale: under memory pressure, prefer dynamic
    // IM generation over stored predefined actions.
    p.controller_mut()
        .unwrap()
        .context_mut()
        .set("memory", "low");
    let r = p
        .submit_text(
            r#"model m conformsTo cml {
                Person a { name = "ana" userId = "a@x" }
                Person b { name = "bob" userId = "b@x" }
                Medium v { name = "voice" kind = MediaKind::Audio codec = "vp9" }
                Connection c { name = "call" parties -> [a, b] media -> [v] }
            }"#,
        )
        .unwrap();
    assert_eq!(r.execution.case1, 0, "{:?}", r.execution);
    assert_eq!(r.execution.case2, 1);
}

#[test]
fn runtime_model_updates_notify_watchers_immediately() {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    // The models@runtime foundation: a platform's own model is watchable
    // and versioned; watchers run synchronously with each change.
    let rm = RuntimeModel::new(mddsm::meta::Model::new("mm"));
    let seen = Arc::new(AtomicU64::new(0));
    let s = seen.clone();
    rm.watch(move |v, _| s.store(v, Ordering::SeqCst));
    for _ in 0..5 {
        rm.update(|m| {
            m.create("X");
        });
    }
    assert_eq!(seen.load(Ordering::SeqCst), 5);
    assert_eq!(rm.version(), 5);
    assert_eq!(rm.read(|m| m.len()), 5);
}

#[test]
fn engine_exhausts_when_no_alternative_exists() {
    let mut p = mddsm::cvm::build_cvm(8, 50);
    // Take down both media paths: no adaptation can succeed.
    p.broker_mut()
        .unwrap()
        .hub_mut()
        .set_healthy("sim.media", false);
    p.broker_mut()
        .unwrap()
        .hub_mut()
        .set_healthy("sim.relay", false);
    let r = p.submit_text(
        r#"model m conformsTo cml {
            Person a { name = "ana" userId = "a@x" }
            Person b { name = "bob" userId = "b@x" }
            Medium v { name = "voice" kind = MediaKind::Audio }
            Connection c { name = "call" parties -> [a, b] media -> [v] }
        }"#,
    );
    assert!(
        r.is_err(),
        "with every media path down, establishment must fail loudly"
    );
}
