//! Footprint soundness: random fault-free executions of the four domain
//! broker models never **write** a state key outside the statically
//! computed footprint of the unit that ran.
//!
//! The static analyzer ([`mddsm::broker::analyze`]) computes per-action
//! read/write key sets and exposes their per-operation union through
//! [`mddsm::broker::op_footprint`] — the row a shard router would key on.
//! This test drives each domain broker with seeded random call streams
//! (including calls with junk arguments, whose failure paths bump failure
//! counters) and interleaved autonomic ticks, and diffs a state snapshot
//! around every step: every changed key must lie inside the static write
//! set of the dispatched operation (for calls) or inside the union of the
//! autonomic/brownout unit write sets plus engine bookkeeping (for ticks).
//!
//! Reads are not observable behaviourally (the state manager records
//! writes, not lookups), but the read sets are extracted from the same
//! guard/condition expressions the engine evaluates, so the write-side
//! check is the half that can actually drift.

use mddsm::broker::{analyze, op_footprint, GenericBroker};
use mddsm::meta::{Model, Value};
use mddsm::sim::resource::{args, Args};
use mddsm::sim::{ResourceHub, SimRng};
use std::collections::BTreeSet;

/// Engine bookkeeping prefixes: keys the broker itself maintains across
/// any dispatch (failure counters, breakers, admission meters, monitor
/// memory, replication gauges, brownout state).
const ENGINE_KEY_PREFIXES: &[&str] = &[
    "failures_",
    "breaker_",
    "adm_",
    "mon_",
    "repl_",
    "brownout_",
];

fn is_engine_key(k: &str) -> bool {
    ENGINE_KEY_PREFIXES.iter().any(|p| k.starts_with(p))
}

/// Call selectors of a broker model (handlers with `kind = Call`).
fn call_selectors(model: &Model) -> Vec<String> {
    model
        .all_of_class("Handler")
        .into_iter()
        .filter(|h| {
            matches!(
                model.attr(*h, "kind"),
                Some(Value::Enum(_, lit)) if lit == "Call"
            )
        })
        .filter_map(|h| model.attr_str(h, "selector").map(str::to_owned))
        .collect()
}

/// All keys currently set in the runtime model, with their rendered
/// values (so overwrites count as writes, not just insertions).
fn state_map(broker: &GenericBroker) -> Vec<(String, String)> {
    broker
        .state()
        .snapshot()
        .vars
        .into_iter()
        .map(|(k, v)| (k, format!("{v:?}")))
        .collect()
}

/// Keys whose value changed (or appeared/disappeared) between two maps.
fn written_keys(before: &[(String, String)], after: &[(String, String)]) -> BTreeSet<String> {
    let b: std::collections::BTreeMap<&str, &str> = before
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .collect();
    let a: std::collections::BTreeMap<&str, &str> = after
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .collect();
    let mut out = BTreeSet::new();
    for (k, v) in &a {
        if b.get(k) != Some(v) {
            out.insert((*k).to_owned());
        }
    }
    for k in b.keys() {
        if !a.contains_key(k) {
            out.insert((*k).to_owned());
        }
    }
    out
}

/// A junk-but-plausible argument set; domain resources that dislike the
/// values fail the invocation, which is itself a legal (and footprinted)
/// path: failure counters live under `failures_*`.
fn random_args(rng: &mut SimRng) -> Args {
    let n = rng.range(0, 1000).to_string();
    args(&[
        ("session", "s1"),
        ("from", "alice"),
        ("to", "bob"),
        ("who", "carol"),
        ("kind", "audio"),
        ("codec", "g711"),
        ("stream", "st1"),
        ("device", "lamp-1"),
        ("command", "on"),
        ("region", "north"),
        ("n", &n),
    ])
}

/// Drives one model: seeded random calls and autonomic ticks, asserting
/// every observed write stays inside the static footprint tables.
fn assert_footprint_sound(name: &str, model: &Model, hub: ResourceHub, seed: u64, calls: u64) {
    let report = analyze(model);
    assert!(
        report.is_accepted(),
        "{name}: shipped model must analyze clean: {:?}",
        report.errors().collect::<Vec<_>>()
    );
    let selectors = call_selectors(model);
    assert!(!selectors.is_empty(), "{name}: no call handlers");

    // The union write set of every autonomic plan and brownout unit — a
    // tick may fire any armed symptom.
    let mut tick_writes: BTreeSet<String> = BTreeSet::new();
    for (unit, fp) in &report.footprints {
        if unit.starts_with("plan:") || unit.starts_with("brownout:") {
            tick_writes.extend(fp.writes.iter().cloned());
        }
    }

    let mut broker = GenericBroker::from_model(model, hub).expect("model loads");
    let mut rng = SimRng::seed_from_u64(seed);
    for i in 0..calls {
        let op = selectors[rng.index(selectors.len())].clone();
        let fp = op_footprint(model, &report, &op)
            .unwrap_or_else(|| panic!("{name}: no footprint for `{op}`"));
        let before = state_map(&broker);
        let _ = broker.call(&op, &random_args(&mut rng));
        let after = state_map(&broker);
        for k in written_keys(&before, &after) {
            assert!(
                fp.writes.contains(&k),
                "{name}: call {i} `{op}` wrote `{k}`, outside its static write set {:?}",
                fp.writes
            );
        }

        if rng.chance(0.2) {
            let before = state_map(&broker);
            let _ = broker.autonomic_tick();
            let after = state_map(&broker);
            for k in written_keys(&before, &after) {
                assert!(
                    tick_writes.contains(&k) || is_engine_key(&k),
                    "{name}: autonomic tick after call {i} wrote `{k}`, outside the plan/brownout write union {tick_writes:?}"
                );
            }
        }
    }
}

#[test]
fn cvm_ncb_writes_stay_inside_static_footprints() {
    for seed in [1, 7, 42] {
        let model = cvm::ncb::ncb_broker_model();
        let hub = cvm::services::service_hub(seed, 0);
        assert_footprint_sound("cvm", &model, hub, seed, 200);
    }
}

#[test]
fn mgridvm_mhb_writes_stay_inside_static_footprints() {
    for seed in [1, 7, 42] {
        let model = mgridvm::platform::mhb_broker_model();
        let mut hub = ResourceHub::new(seed);
        mgridvm::plant::register_plant(&mut hub, mgridvm::plant::shared_plant());
        assert_footprint_sound("mgridvm", &model, hub, seed, 200);
    }
}

#[test]
fn ssvm_object_writes_stay_inside_static_footprints() {
    for seed in [1, 7, 42] {
        let model = ssvm::objects::object_broker_model("lamp-1");
        let mut hub = ResourceHub::new(seed);
        ssvm::objects::register_devices(&mut hub, ssvm::objects::shared_devices());
        assert_footprint_sound("ssvm", &model, hub, seed, 200);
    }
}

#[test]
fn csvm_fleet_writes_stay_inside_static_footprints() {
    for seed in [1, 7, 42] {
        let model = csvm::platform::cs_broker_model();
        let mut hub = ResourceHub::new(seed);
        csvm::fleet::register_fleet(
            &mut hub,
            csvm::fleet::shared_fleet(5, &["north", "south"], seed),
        );
        assert_footprint_sound("csvm", &model, hub, seed, 200);
    }
}
