//! Integration test for experiment E1 (§VII-A): the model-based Broker
//! layer is behaviourally equivalent to the handcrafted one — identical
//! command sequences to the underlying services in all eight scenarios —
//! while being defined entirely by a Fig. 6 broker model.

use mddsm::cvm::baseline::HandcraftedNcb;
use mddsm::cvm::ncb::{ModelBasedNcb, Ncb};
use mddsm::cvm::scenarios::{all_scenarios, run_scenario};

#[test]
fn traces_identical_across_all_scenarios_and_seeds() {
    for seed in [1u64, 42, 2024] {
        for scenario in all_scenarios() {
            let mut model_based = ModelBasedNcb::new(seed, 100);
            run_scenario(&mut model_based, &scenario);
            let mut handcrafted = HandcraftedNcb::new(seed, 100);
            run_scenario(&mut handcrafted, &scenario);
            assert_eq!(
                model_based.trace(),
                handcrafted.trace(),
                "seed {seed}, {}",
                scenario.name
            );
        }
    }
}

#[test]
fn bookkeeping_state_matches_too() {
    // Beyond the command trace, the state the two implementations track
    // (sessions/streams) must agree at the end of every scenario.
    for scenario in all_scenarios() {
        let mut model_based = ModelBasedNcb::new(9, 100);
        run_scenario(&mut model_based, &scenario);
        let mut handcrafted = HandcraftedNcb::new(9, 100);
        run_scenario(&mut handcrafted, &scenario);
        let mb_sessions = model_based.broker().state().int("sessions").unwrap_or(0);
        let mb_streams = model_based.broker().state().int("streams").unwrap_or(0);
        assert_eq!(
            mb_sessions,
            handcrafted.sessions(),
            "{}: sessions",
            scenario.name
        );
        assert_eq!(
            mb_streams,
            handcrafted.streams(),
            "{}: streams",
            scenario.name
        );
    }
}

#[test]
fn scenario_seven_exercises_failure_and_recovery() {
    // The recovery scenario must actually fail once, fall back to the
    // relay, and return to the direct engine after recovery — on both
    // implementations.
    let scenario = all_scenarios()
        .into_iter()
        .find(|s| s.name.starts_with("S7"))
        .unwrap();
    for make in [true, false] {
        let trace = if make {
            let mut ncb = ModelBasedNcb::new(4, 100);
            run_scenario(&mut ncb, &scenario);
            ncb.trace()
        } else {
            let mut ncb = HandcraftedNcb::new(4, 100);
            run_scenario(&mut ncb, &scenario);
            ncb.trace()
        };
        let relays = trace
            .iter()
            .filter(|t| t.starts_with("sim.relay.open"))
            .count();
        let opens = trace
            .iter()
            .filter(|t| t.starts_with("sim.media.open"))
            .count();
        assert_eq!(relays, 2, "one failover + one relay-mode open: {trace:?}");
        assert_eq!(opens, 2, "one failed + one recovered open: {trace:?}");
    }
}
