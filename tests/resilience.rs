//! Integration tests for the model-defined resilience layer.
//!
//! Covers the full path: resilience parameters declared on `Action` objects
//! of a Fig. 6 broker model → interpreted by the generic engine (retries,
//! backoff, timeout budgets, circuit breaker, fallback) → observed by the
//! Controller as recoverable `on_error` paths → exercised end-to-end by the
//! E6 fault-recovery experiment, which must replay bit-for-bit.

use mddsm::broker::{BrokerModelBuilder, GenericBroker, Resilience};
use mddsm::controller::intent::{ImNode, IntentModel};
use mddsm::controller::machine::{PortResponse, StackMachine};
use mddsm::controller::procedure::{Instr, Procedure};
use mddsm::controller::repository::ProcedureRepository;
use mddsm::sim::resource::{Args, Outcome};
use mddsm::sim::{LatencyModel, ResourceHub, SimDuration, SimTime};

/// A hub whose `sim.flaky` fails the first `fails` invocations (10 ms
/// each, 400 ms resource timeout), plus an instant healthy `sim.backup`.
fn flaky_hub(fails: u32) -> ResourceHub {
    let mut h = ResourceHub::new(5);
    let mut left = fails;
    h.register(
        "sim.flaky",
        LatencyModel::fixed_ms(10),
        SimDuration::from_millis(400),
        Box::new(move |_: &str, _: &Args| {
            if left > 0 {
                left -= 1;
                Outcome::Failed("transient".into())
            } else {
                Outcome::ok()
            }
        }),
    );
    h.register_fn("sim.backup", |_, _| Outcome::ok());
    h
}

fn resilient_model(r: &Resilience) -> mddsm::meta::Model {
    BrokerModelBuilder::lean("itest")
        .call_handler("h", "op")
        .resilient_action("h", "primary", "sim.flaky", "go", &[], None, &[], r)
        .action("h", "backup", "sim.backup", "go", &[], None, &[])
        .build()
}

#[test]
fn retry_with_backoff_recovers_in_virtual_time() {
    let m = resilient_model(&Resilience::retries(3, 20));
    let mut b = GenericBroker::from_model(&m, flaky_hub(2)).unwrap();
    let r = b.call("op", &Args::new()).unwrap();
    assert!(r.outcome.is_ok());
    assert_eq!(r.attempts, 3);
    // Two 10 ms failures with 20 ms and 40 ms backoffs, then 10 ms success;
    // all charged to the virtual clock, none slept.
    assert_eq!(r.cost, SimDuration::from_millis(90));
    assert_eq!(b.now(), SimTime::from_millis(90));
}

#[test]
fn timeout_budget_bounds_slow_calls() {
    let m = resilient_model(&Resilience::default().with_timeout(4));
    // Healthy resource, but its 10 ms latency exceeds the 4 ms budget.
    let mut b = GenericBroker::from_model(&m, flaky_hub(0)).unwrap();
    let r = b.call("op", &Args::new()).unwrap();
    assert!(!r.outcome.is_ok());
    assert_eq!(r.cost, SimDuration::from_millis(4));
}

#[test]
fn breaker_cycles_open_half_open_closed() {
    let m = resilient_model(&Resilience::breaker(2, 100));
    let mut b = GenericBroker::from_model(&m, flaky_hub(3)).unwrap();
    for _ in 0..2 {
        assert!(!b.call("op", &Args::new()).unwrap().outcome.is_ok());
    }
    assert_eq!(b.state().str("breaker_sim.flaky"), Some("open"));
    // Open: fast-fail without touching the resource.
    let calls_before = b.hub().log().len();
    let r = b.call("op", &Args::new()).unwrap();
    assert_eq!(r.attempts, 0);
    assert_eq!(r.cost, SimDuration::ZERO);
    assert_eq!(b.hub().log().len(), calls_before);
    // Cooldown -> half-open trial fails (flaky still has one failure
    // left) -> reopens; next cooldown -> trial succeeds -> closed.
    b.advance_clock(SimDuration::from_millis(100));
    assert!(!b.call("op", &Args::new()).unwrap().outcome.is_ok());
    assert_eq!(b.state().str("breaker_sim.flaky"), Some("open"));
    b.advance_clock(SimDuration::from_millis(100));
    assert!(b.call("op", &Args::new()).unwrap().outcome.is_ok());
    assert_eq!(b.state().str("breaker_sim.flaky"), Some("closed"));
}

#[test]
fn fallback_escalation_reaches_the_backup() {
    let m = resilient_model(&Resilience::retries(1, 5).with_fallback("backup"));
    let mut b = GenericBroker::from_model(&m, flaky_hub(10)).unwrap();
    let r = b.call("op", &Args::new()).unwrap();
    assert!(r.outcome.is_ok());
    assert_eq!(r.action, "backup");
    // Failed attempts' cost and count carry into the escalated result.
    assert_eq!(r.attempts, 3);
    assert_eq!(r.cost, SimDuration::from_millis(10 + 5 + 10));
}

#[test]
fn controller_absorbs_broker_failures_via_on_error() {
    // A resilient broker that still fails (no fallback, retries exhausted)
    // surfaces the failure to the Controller, whose procedure compensates.
    let m = BrokerModelBuilder::lean("ctl")
        .call_handler("h", "op")
        .resilient_action(
            "h",
            "primary",
            "sim.flaky",
            "go",
            &[],
            None,
            &[],
            &Resilience::retries(1, 5),
        )
        .build();
    let mut b = GenericBroker::from_model(&m, flaky_hub(100)).unwrap();

    let proc = Procedure::simple(
        "task",
        "C",
        vec![
            Instr::BrokerCall {
                api: "any".into(),
                op: "op".into(),
                args: vec![],
            },
            Instr::Complete,
        ],
    )
    .with_on_error(vec![
        Instr::EmitEvent {
            topic: "degraded".into(),
            payload: vec![],
        },
        Instr::Complete,
    ]);
    let mut repo = ProcedureRepository::new();
    repo.add(proc).unwrap();
    let im = IntentModel {
        root: ImNode {
            proc: "task".into(),
            children: vec![],
        },
    };
    let mut port = |_: &str, op: &str, args: &[(String, String)]| {
        let r = b.call(op, &args.to_vec()).expect("handler exists");
        if r.outcome.is_ok() {
            PortResponse {
                ok: true,
                cost_us: r.cost.as_micros(),
                ..Default::default()
            }
        } else {
            PortResponse::failed("broker gave up", r.cost.as_micros())
        }
    };
    let out = StackMachine::new()
        .execute(&im, &repo, &[], &mut port)
        .unwrap();
    assert_eq!(out.recovered_failures, 1);
    assert_eq!(out.events.len(), 1);
    assert_eq!(out.events[0].topic, "degraded");
    // Two attempts (10 ms each) + one 5 ms backoff were charged.
    assert_eq!(out.virtual_cost_us, 25_000);
}

#[test]
fn fault_campaigns_replay_byte_for_byte() {
    // Acceptance criterion: a fixed-seed campaign run twice produces
    // byte-identical invocation traces and identical E6 metrics.
    let a = bench::e6::run(2024, 250, 20);
    let b = bench::e6::run(2024, 250, 20);
    assert_eq!(
        a.baseline.trace.join("\n"),
        b.baseline.trace.join("\n"),
        "baseline traces must be byte-identical"
    );
    assert_eq!(
        a.resilient.trace.join("\n"),
        b.resilient.trace.join("\n"),
        "resilient traces must be byte-identical"
    );
    assert_eq!(a, b, "all E6 metrics must be identical across replays");
    // And the experiment's headline claim holds on this seed.
    assert!(a.resilient.success_rate >= a.baseline.success_rate);
}
