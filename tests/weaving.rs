//! Aspect-oriented model execution (§IX future work, implemented):
//! multiple concern models are woven into one executable application model
//! and submitted to the platform.

use mddsm::meta::text;
use mddsm::meta::weave::weave;

#[test]
fn structural_and_qos_concerns_weave_and_execute() {
    // Concern 1: who communicates (structure).
    let structural = text::parse(
        r#"model structure conformsTo cml {
            Person a { name = "ana" userId = "a@x" }
            Person b { name = "bob" userId = "b@x" }
            Medium v { name = "voice" kind = MediaKind::Audio }
            Connection c { name = "call" parties -> [a, b] media -> [v] }
        }"#,
    )
    .unwrap();
    // Concern 2: quality attributes of the same elements (QoS aspect).
    let qos = text::parse(
        r#"model qos conformsTo cml {
            Medium v { name = "voice" bandwidthKbps = 96 codec = "opus-hd" }
            Person a { name = "ana" device = "studio-rig" }
        }"#,
    )
    .unwrap();

    let mut platform = mddsm::cvm::build_cvm(6, 20);
    // First the structural concern alone establishes the session...
    let report = platform.submit_model(structural.clone()).unwrap();
    assert!(report.execution.commands >= 1);
    // ...then weaving in the QoS concern updates the *existing* medium,
    // which synthesizes a reconfiguration carrying the aspect's codec.
    let report = platform.submit_woven(&[structural, qos]).unwrap();
    assert!(report.execution.commands >= 1, "{report:?}");
    let trace = platform.command_trace();
    assert!(
        trace.iter().any(|t| t.contains("codec=opus-hd")),
        "QoS concern must reach the services: {trace:?}"
    );
}

#[test]
fn contradicting_concerns_are_rejected_with_conflicts() {
    let a = text::parse(
        r#"model a conformsTo cml {
            Medium v { name = "voice" kind = MediaKind::Audio codec = "opus" }
        }"#,
    )
    .unwrap();
    let b = text::parse(
        r#"model b conformsTo cml {
            Medium v { name = "voice" codec = "h264" }
        }"#,
    )
    .unwrap();
    let conflicts = weave(&[a.clone(), b.clone()]).unwrap_err();
    assert_eq!(conflicts.len(), 1);
    assert_eq!(conflicts[0].attr, "codec");
    // And the platform surfaces the same failure.
    let mut platform = mddsm::cvm::build_cvm(6, 20);
    assert!(platform.submit_woven(&[a, b]).is_err());
}

#[test]
fn woven_models_still_validate_against_the_dsml() {
    // Weaving is structural; DSML invariants still gate execution. Here
    // the woven connection ends up with a single party -> rejected.
    let a = text::parse(
        r#"model a conformsTo cml {
            Person x { name = "x" userId = "x@x" }
            Medium v { name = "voice" kind = MediaKind::Audio }
            Connection c { name = "call" parties -> [x] media -> [v] }
        }"#,
    )
    .unwrap();
    let b = text::parse(
        r#"model b conformsTo cml {
            Connection c { name = "call" }
        }"#,
    )
    .unwrap();
    let mut platform = mddsm::cvm::build_cvm(6, 20);
    assert!(platform.submit_woven(&[a, b]).is_err());
    assert!(platform.command_trace().is_empty());
}
