//! Workspace-level properties of the live-evolution substrate.
//!
//! * The Synthesis-layer model comparator round-trips: for any mutated
//!   descendant of the four shipped domain models,
//!   `apply(old, diff(old, new))` is `equivalent` to `new` (and the
//!   reverse diff undoes it).
//! * Positional (`~N`) matching of unkeyed objects cannot distinguish a
//!   reorder from a cross-rename — pinned as a regression so a future
//!   matcher change is a conscious decision.
//! * Crash-at-every-boundary: truncating the journal at every byte
//!   during an in-flight hot upgrade always recovers to pure old-model
//!   or pure new-model state — never a hybrid — with `mon_*` monitor
//!   memory carried or reset along with its model version.
//!
//! Cases are generated with the simulator's seeded [`SimRng`], keeping
//! the suite deterministic without an external property-testing
//! dependency.

use bench::e11;
use bench::e14::{e14_model_v1, e14_model_v2, INVARIANTS};
use mddsm::broker::{
    journal, recover_versioned, GenericBroker, LiveUpgrade, RestartPolicy, Supervisor,
};
use mddsm::meta::diff::{apply, diff, equivalent, Change, DiffOptions, ObjectKey};
use mddsm::meta::{Model, Value};
use mddsm::sim::resource::{args, Args, Outcome};
use mddsm::sim::{LatencyModel, ResourceHub, SimRng};

fn opts() -> DiffOptions {
    DiffOptions::default()
}

#[test]
fn diff_round_trips_across_seeded_mutations_of_the_corpus() {
    let deck = e11::deck();
    let mut trials = 0usize;
    for seed in [1u64, 7, 23] {
        let mut rng = SimRng::seed_from_u64(seed);
        for (name, old) in e11::corpus() {
            // A chain of mutations, checked cumulatively: old → m1 → m2…
            let mut new = old.clone();
            for (op_name, op) in deck.draw(4, &mut rng) {
                if !op(&mut new, &mut rng) {
                    continue;
                }
                trials += 1;
                let forward = diff(&old, &new, &opts());
                let mut patched = old.clone();
                apply(&mut patched, &forward, &opts())
                    .unwrap_or_else(|e| panic!("{name}/{op_name} seed {seed}: apply: {e}"));
                assert!(
                    equivalent(&patched, &new, &opts()),
                    "{name}/{op_name} seed {seed}: apply(old, diff(old, new)) != new"
                );
                // The reverse diff restores the original — provided the
                // mutant kept object keys unique (keyed matching cannot
                // tell duplicate-keyed objects apart, by design).
                let keys = mddsm::meta::diff::keys_of(&new, &opts());
                let distinct: std::collections::BTreeSet<_> = keys.values().collect();
                if distinct.len() == keys.len() {
                    let backward = diff(&new, &old, &opts());
                    let mut reverted = new.clone();
                    apply(&mut reverted, &backward, &opts())
                        .unwrap_or_else(|e| panic!("{name}/{op_name} seed {seed}: revert: {e}"));
                    assert!(
                        equivalent(&reverted, &old, &opts()),
                        "{name}/{op_name} seed {seed}: reverse diff did not restore old"
                    );
                }
            }
        }
    }
    assert!(trials >= 20, "only {trials} mutation trials ran");
}

fn unkeyed_pair(first: &str, second: &str) -> Model {
    let mut m = Model::new("tags");
    for label in [first, second] {
        let o = m.create("Tag");
        m.set_attr(o, "label", Value::from(label));
    }
    m
}

/// Unkeyed objects match positionally (`~0`, `~1`, … in creation order),
/// so swapping two objects' creation order is indistinguishable from
/// renaming each into the other: both read as two `SetAttr` changes and
/// round-trip through `apply`. Pinned so a future identity-aware matcher
/// changes this consciously.
#[test]
fn positional_matching_reads_reorder_as_cross_rename() {
    let old = unkeyed_pair("x", "y");
    let reordered = unkeyed_pair("y", "x");
    let mut renamed = old.clone();
    for (id, obj) in old.iter() {
        let label = obj.attrs.get("label").and_then(|v| v.first()).unwrap();
        let flipped = if label == &Value::from("x") { "y" } else { "x" };
        renamed.set_attr(id, "label", Value::from(flipped));
    }

    let as_reorder = diff(&old, &reordered, &opts());
    let as_rename = diff(&old, &renamed, &opts());
    assert_eq!(
        as_reorder, as_rename,
        "reorder and cross-rename must produce the same positional change list"
    );
    assert_eq!(as_reorder.len(), 2);
    for (change, want_key, want_label) in as_reorder
        .iter()
        .zip([("~0", "y"), ("~1", "x")])
        .map(|(c, (k, l))| (c, k, l))
    {
        match change {
            Change::SetAttr { key, attr, values } => {
                assert_eq!(
                    key,
                    &ObjectKey {
                        class: "Tag".into(),
                        key: want_key.into()
                    }
                );
                assert_eq!(attr, "label");
                assert_eq!(values, &vec![Value::from(want_label)]);
            }
            other => panic!("expected SetAttr, got {other:?}"),
        }
    }

    let mut patched = old.clone();
    apply(&mut patched, &as_reorder, &opts()).unwrap();
    assert!(equivalent(&patched, &reordered, &opts()));
    assert!(equivalent(&patched, &renamed, &opts()));
}

fn hub() -> ResourceHub {
    let mut h = ResourceHub::new(0);
    h.register(
        "sim.store",
        LatencyModel::fixed_ms(3),
        mddsm::sim::SimDuration::from_millis(250),
        Box::new(|_: &str, _: &Args| Outcome::ok()),
    );
    h
}

#[test]
fn crash_at_every_journal_boundary_never_yields_a_hybrid() {
    let v1 = e14_model_v1();
    let v2 = e14_model_v2();
    let mut broker = GenericBroker::from_model(&v1, hub()).expect("v1 valid");
    broker.enable_journal_with(4, true);
    let mut supervisor = Supervisor::new(&["a"], RestartPolicy::default());

    let call = |b: &mut GenericBroker, i: usize| {
        let n = i.to_string();
        b.call("op", &args(&[("n", &n)])).expect("serves");
    };
    for i in 0..3 {
        call(&mut broker, i);
    }
    // Full protocol: gate, shadow, journaled cutover with the svc_tier
    // migration riding inside the Upgrade record.
    let mut up = LiveUpgrade::prepare(&broker, &v1, &v2, "v2", 2).expect("gate");
    for i in 3..9 {
        call(&mut broker, i);
        up.observe_call(&broker);
    }
    up.cutover(&mut broker, 6, 1).expect("cutover");
    // Post-upgrade traffic, a monitor trip (journaled `mon_*` memory
    // under the new model), and the heal.
    call(&mut broker, 9);
    let trips = broker.corrupt_state("svc_tier", "mystery");
    assert!(!trips.is_empty(), "tier_known must trip under v2");
    broker.rollback_to_snapshot().expect("heal");
    for i in 10..13 {
        call(&mut broker, i);
    }
    up.probation_tick(&broker, &mut supervisor, "a");

    let bytes = broker.journal_bytes().expect("journaling on").to_vec();
    let versions = [(1u64, &v1), (2u64, &v2)];
    let mut saw_old = false;
    let mut saw_new = false;
    let first_record_end = bytes
        .iter()
        .position(|&b| b == b'\n')
        .expect("journal has records");
    // Crash at EVERY byte offset — record boundaries and torn tails alike.
    for cut in 0..=bytes.len() {
        let prefix = &bytes[..cut];
        let recovered = recover_versioned(&versions, ResourceHub::new(0), prefix, INVARIANTS);
        let (rec, _) = match recovered {
            Ok(r) => r,
            Err(e) => {
                // A torn *head* record leaves no readable journal at all:
                // that is a typed refusal (the E13 mirror heals it), never
                // a silently wrong recovery. Any later cut must resolve.
                assert!(
                    cut > 0 && cut <= first_record_end,
                    "cut at {cut}: recovery refused beyond the head record: {e}"
                );
                continue;
            }
        };
        let v = rec.model_version();
        let tier = rec.state().str("svc_tier").map(str::to_owned);
        let mon = rec.state().str("mon_tier_known_tripped").map(str::to_owned);
        match v {
            1 => {
                saw_old = true;
                // Pure old model: no half-applied migration, and no
                // monitor memory belonging to the candidate's monitor.
                assert_eq!(tier, None, "cut at {cut}: v1 state carries the migration");
                assert_eq!(
                    mon, None,
                    "cut at {cut}: v1 state carries v2 monitor memory"
                );
            }
            2 => {
                saw_new = true;
                // Pure new model: the migration is fully applied (the
                // corruption window rewrites it, but never erases it).
                assert!(
                    tier.is_some(),
                    "cut at {cut}: v2 state lost the seeded migration"
                );
            }
            other => panic!("cut at {cut}: hybrid/unknown model version {other}"),
        }
        // Recovery is byte-identical to an independent replay.
        let replayed = journal::replay(prefix).expect("prefix replays");
        assert_eq!(
            replayed.state.snapshot(),
            rec.state().snapshot(),
            "cut {cut}"
        );
        assert_eq!(replayed.model_version, v, "cut {cut}");
    }
    assert!(saw_old && saw_new, "both versions must be reachable");
}
