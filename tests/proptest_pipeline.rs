//! Workspace-level property tests: random (valid) application models and
//! edit sequences flow through the full pipeline without panics, and
//! pipeline invariants hold (delta-based synthesis, trace monotonicity,
//! IM acyclicity under arbitrary failure marks).
//!
//! Cases are generated with the simulator's [`SimRng`] over fixed seeds,
//! keeping the suite deterministic without an external property-testing
//! dependency.

use mddsm::controller::{ControllerContext, DscId, GenerationConfig};
use mddsm::sim::SimRng;

#[test]
fn random_valid_call_models_execute() {
    for extra_parties in 0u8..4 {
        for extra_media in 0u8..3 {
            let mut p = mddsm::cvm::build_cvm(1, 10);
            let mut s = p.open_session().unwrap();
            let mut parties = Vec::new();
            for i in 0..(2 + extra_parties) {
                let person = s.create("Person").unwrap();
                s.set(person, "name", &format!("p{i}")).unwrap();
                s.set(person, "userId", &format!("p{i}@x")).unwrap();
                parties.push(person);
            }
            let mut media = Vec::new();
            for i in 0..(1 + extra_media) {
                let m = s.create("Medium").unwrap();
                s.set(m, "name", &format!("m{i}")).unwrap();
                s.set(m, "kind", "Audio").unwrap();
                media.push(m);
            }
            let c = s.create("Connection").unwrap();
            s.set(c, "name", "call").unwrap();
            for party in &parties {
                s.link(c, "parties", *party).unwrap();
            }
            for m in &media {
                s.link(c, "media", *m).unwrap();
            }
            let report = p.submit_model(s.submit().unwrap()).unwrap();
            assert!(report.execution.commands >= 1);
            // Establishment always invites + opens at least one stream.
            let trace = p.command_trace();
            assert!(trace.iter().any(|t| t.starts_with("sim.signaling.invite")));
            assert!(trace.iter().any(|t| t.starts_with("sim.media.open")));
        }
    }
}

#[test]
fn resubmission_is_always_a_noop() {
    let mut gen = SimRng::seed_from_u64(0xF1_0000);
    for _ in 0..24 {
        let seed = gen.range(0, 1000);
        let mut p = mddsm::cvm::build_cvm(seed, 10);
        let src = r#"model m conformsTo cml {
            Person a { name = "ana" userId = "a@x" }
            Person b { name = "bob" userId = "b@x" }
            Medium v { name = "voice" kind = MediaKind::Audio }
            Connection c { name = "call" parties -> [a, b] media -> [v] }
        }"#;
        p.submit_text(src).unwrap();
        let before = p.command_trace().len();
        let report = p.submit_text(src).unwrap();
        assert_eq!(report.synthesized_commands, 0);
        assert_eq!(p.command_trace().len(), before);
    }
}

#[test]
fn im_generation_never_yields_cycles_under_failures() {
    let mut gen = SimRng::seed_from_u64(0xF2_0000);
    for _ in 0..24 {
        let fail_mask = gen.range(0, 256) as u32;
        // Arbitrarily mark procedures failed; generation must either fail
        // cleanly or produce a valid (acyclic, dependency-complete) IM.
        let dscs = mddsm::cvm::artifacts::cvm_dscs();
        let repo = mddsm::cvm::artifacts::cvm_procedures();
        let mut ctx = ControllerContext::new();
        let ids: Vec<_> = repo.ids().into_iter().cloned().collect();
        for (i, id) in ids.iter().enumerate() {
            if fail_mask & (1 << (i % 8)) != 0 {
                ctx.mark_failed(id.as_str());
            }
        }
        for dsc in [
            "EstablishSession",
            "StreamMedia",
            "ManageParty",
            "ReconfigureMedia",
        ] {
            let result = mddsm::controller::intent::generate(
                &DscId::new(dsc),
                &repo,
                &dscs,
                &ctx,
                &GenerationConfig::default(),
            );
            if let Ok(im) = result {
                mddsm::controller::intent::validate(&im, &repo, &dscs, &DscId::new(dsc))
                    .expect("generated IMs always validate");
            }
        }
    }
}

#[test]
fn microgrid_dispatch_conserves_power() {
    use mddsm::mgridvm::plant::{LoadPriority, Plant, SourceKind};
    let mut gen = SimRng::seed_from_u64(0xF3_0000);
    for _ in 0..24 {
        let n = gen.range(1, 6) as usize;
        let demands: Vec<f64> = (0..n).map(|_| 0.1 + gen.unit() * 4.9).collect();
        let mut plant = Plant::new();
        plant.attach_source("pv", SourceKind::Solar, 4.0);
        plant.attach_source("grid", SourceKind::Grid, 6.0);
        plant.set_battery(8.0, 4.0);
        for (i, d) in demands.iter().enumerate() {
            plant.attach_load(&format!("l{i}"), *d, LoadPriority::Normal);
        }
        let d = plant.dispatch(1.0);
        // Supply always covers the served demand.
        assert!(
            d.renewable_kw + d.storage_kw + d.import_kw >= d.demand_kw - 1e-9,
            "dispatch under-supplies: {d:?}"
        );
        // No source over-delivers its capacity.
        assert!(d.renewable_kw <= 4.0 + 1e-9);
        assert!(d.import_kw <= 6.0 + 1e-9);
        // Battery stays within bounds.
        let (cap, charge) = plant.battery();
        assert!(charge >= -1e-9 && charge <= cap + 1e-9);
    }
}
