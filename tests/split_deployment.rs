//! The §IV-C/§IV-D split deployments: layers suppressed per node, scripts
//! and models crossing node boundaries.

use mddsm::csvm::fleet::shared_fleet;
use mddsm::csvm::CrowdsensingDeployment;
use mddsm::ssvm::SmartSpaceDeployment;

#[test]
fn smart_space_routes_scripts_to_the_right_node() {
    let mut space = SmartSpaceDeployment::new("lab", &["hall", "office"], 5);
    let mut s = space.open_session().unwrap();
    for (name, kind) in [("hall:lamp", "Lamp"), ("office:thermo", "Thermostat")] {
        let o = s.create("SmartObject").unwrap();
        s.set(o, "name", name).unwrap();
        s.set(o, "kind", kind).unwrap();
    }
    space.submit_model(s.submit().unwrap()).unwrap();
    // Each node saw exactly its own object.
    assert_eq!(space.node("hall").unwrap().command_trace().len(), 1);
    assert_eq!(space.node("office").unwrap().command_trace().len(), 1);
    assert!(space.node("hall").unwrap().command_trace()[0].contains("hall:lamp"));
}

#[test]
fn rules_fire_repeatedly_and_only_on_their_event() {
    let mut space = SmartSpaceDeployment::new("lab", &["hall"], 5);
    let mut s = space.open_session().unwrap();
    let lamp = s.create("SmartObject").unwrap();
    s.set(lamp, "name", "hall:lamp").unwrap();
    s.set(lamp, "kind", "Lamp").unwrap();
    let on_enter = s.create("AutomationRule").unwrap();
    s.set(on_enter, "name", "welcome").unwrap();
    s.set(on_enter, "onEvent", "objectEntered").unwrap();
    s.set(on_enter, "object", "hall:lamp").unwrap();
    s.set(on_enter, "action", "on").unwrap();
    let on_leave = s.create("AutomationRule").unwrap();
    s.set(on_leave, "name", "goodbye").unwrap();
    s.set(on_leave, "onEvent", "objectLeft").unwrap();
    s.set(on_leave, "object", "hall:lamp").unwrap();
    s.set(on_leave, "action", "off").unwrap();
    space.submit_model(s.submit().unwrap()).unwrap();

    space.notify_event("objectEntered", &[]).unwrap();
    assert_eq!(space.devices().lock().unwrap()["hall:lamp"].state, "on");
    space.notify_event("objectLeft", &[]).unwrap();
    assert_eq!(space.devices().lock().unwrap()["hall:lamp"].state, "off");
    space.notify_event("objectEntered", &[]).unwrap();
    assert_eq!(space.devices().lock().unwrap()["hall:lamp"].state, "on");
    assert_eq!(space.devices().lock().unwrap()["hall:lamp"].actuations, 3);
    // Unrelated events do nothing.
    space.notify_event("motionDetected", &[]).unwrap();
    assert_eq!(space.devices().lock().unwrap()["hall:lamp"].actuations, 3);
}

#[test]
fn smart_object_nodes_have_no_upper_layers() {
    let space = SmartSpaceDeployment::new("lab", &["hall"], 5);
    let node = space.node("hall").unwrap();
    assert!(
        node.open_session().is_err(),
        "object nodes must not host the UI layer"
    );
    assert!(node.synthesis().is_none());
    assert!(node.controller().is_some());
    assert!(node.broker().is_some());
}

#[test]
fn crowdsensing_models_author_on_device_execute_on_provider() {
    let fleet = shared_fleet(10, &["park"], 11);
    let mut d = CrowdsensingDeployment::new(2, fleet.clone());
    let mut s = d.open_session().unwrap();
    let q = s.create("SensingQuery").unwrap();
    s.set(q, "name", "temp").unwrap();
    s.set(q, "sensor", "Temperature").unwrap();
    s.set(q, "region", "park").unwrap();
    let report = d.upload(s.submit().unwrap()).unwrap();
    assert!(report.commands >= 1);
    assert_eq!(fleet.lock().unwrap().running(), vec!["temp"]);
    // On-the-fly change from the device, reflected by the provider.
    s.set(q, "sampleRateHz", "7").unwrap();
    d.upload(s.submit().unwrap()).unwrap();
    assert!(d
        .provider_trace()
        .iter()
        .any(|t| t.contains("retarget") && t.contains("rate=7")));
}

#[test]
fn crowdsensing_collection_follows_participant_mobility() {
    let fleet = shared_fleet(6, &["a", "b"], 11);
    let mut d = CrowdsensingDeployment::new(2, fleet.clone());
    let mut s = d.open_session().unwrap();
    let q = s.create("SensingQuery").unwrap();
    s.set(q, "name", "cnt").unwrap();
    s.set(q, "sensor", "Noise").unwrap();
    s.set(q, "region", "a").unwrap();
    s.set(q, "aggregation", "Count").unwrap();
    d.upload(s.submit().unwrap()).unwrap();
    // Devices are spread round-robin: 3 sit in region "a".
    assert_eq!(fleet.lock().unwrap().devices_in("a"), 3);
    // Two participants move in; subsequent collections see 5.
    {
        let mut fleet = fleet.lock().unwrap();
        assert!(fleet.move_device("phone1", "a"));
        assert!(fleet.move_device("phone3", "a"));
        assert_eq!(fleet.devices_in("a"), 5);
    }
}
