//! Cross-crate integration: every domain platform runs the full
//! UI → Synthesis → Controller → Broker pipeline, and — the §VII-B
//! separation claim — the *identical* domain-independent Controller engine
//! executes both the communication and the microgrid DSK "without
//! modification".

use mddsm::controller::{
    ClassificationPolicy, CommandClassifier, ControllerEngine, EngineConfig, PortResponse,
};
use mddsm::synthesis::Command;

#[test]
fn cvm_full_pipeline() {
    let mut p = mddsm::cvm::build_cvm(3, 50);
    let report = p
        .submit_text(
            r#"model m conformsTo cml {
                Person a { name = "ana" userId = "a@x" }
                Person b { name = "bob" userId = "b@x" }
                Medium v { name = "voice" kind = MediaKind::Audio }
                Connection c { name = "call" parties -> [a, b] media -> [v] }
            }"#,
        )
        .unwrap();
    assert_eq!(report.execution.commands, 1);
    assert_eq!(p.command_trace().len(), 2);
}

#[test]
fn mgridvm_full_pipeline() {
    let plant = mddsm::mgridvm::plant::shared_plant();
    let mut p = mddsm::mgridvm::build_mgridvm(3, plant.clone());
    p.submit_text(
        r#"model m conformsTo mgridml {
            PowerSource pv { name = "pv" kind = SourceKind::Solar capacityKw = 5.0 }
            Load hvac { name = "hvac" demandKw = 2.0 }
        }"#,
    )
    .unwrap();
    assert!(plant.lock().unwrap().dispatches() >= 1);
}

#[test]
fn csvm_full_pipeline() {
    let fleet = mddsm::csvm::fleet::shared_fleet(12, &["downtown"], 1);
    let mut p = mddsm::csvm::build_csvm(3, fleet.clone());
    p.submit_text(
        r#"model m conformsTo csml {
            SensingQuery q { name = "q1" sensor = Sensor::Noise region = "downtown" }
        }"#,
    )
    .unwrap();
    assert_eq!(fleet.lock().unwrap().running(), vec!["q1"]);
}

/// The same domain-independent engine type, constructed from two different
/// domains' DSK, executes both — with no domain words in the engine crate.
#[test]
fn one_controller_engine_two_domains() {
    // A port that accepts anything and records the APIs touched.
    fn ok_port(
        seen: std::rc::Rc<std::cell::RefCell<Vec<String>>>,
    ) -> impl FnMut(&str, &str, &[(String, String)]) -> PortResponse {
        move |api: &str, op: &str, _args: &[(String, String)]| {
            seen.borrow_mut().push(format!("{api}.{op}"));
            let mut r = PortResponse::ok();
            if op == "invite" {
                r.values.insert("session".into(), "s0".into());
            }
            if op == "dispatch" {
                r.values.insert("shed".into(), String::new());
            }
            r
        }
    }

    // Communication DSK.
    let mut classifier = CommandClassifier::new(ClassificationPolicy::always_dynamic());
    for (c, d) in mddsm::cvm::artifacts::cvm_command_map() {
        classifier.map_command(&c, &d);
    }
    let mut comm_engine = ControllerEngine::new(
        mddsm::cvm::artifacts::cvm_dscs(),
        mddsm::cvm::artifacts::cvm_procedures(),
        mddsm::cvm::artifacts::cvm_actions(),
        classifier,
        EngineConfig::default(),
    )
    .unwrap();
    let seen = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
    let mut port = ok_port(seen.clone());
    comm_engine
        .execute_command(
            &Command::new("createConnection", "")
                .with("from", "a")
                .with("to", "b"),
            &mut port,
        )
        .unwrap();
    assert!(seen.borrow().iter().any(|c| c == "signaling.invite"));

    // Microgrid DSK through the *same engine type*.
    let mut classifier = CommandClassifier::new(ClassificationPolicy::always_dynamic());
    for (c, d) in mddsm::mgridvm::dsk::mgrid_command_map() {
        classifier.map_command(&c, &d);
    }
    let mut grid_engine = ControllerEngine::new(
        mddsm::mgridvm::dsk::mgrid_dscs(),
        mddsm::mgridvm::dsk::mgrid_procedures(),
        mddsm::mgridvm::dsk::mgrid_actions(),
        classifier,
        EngineConfig::default(),
    )
    .unwrap();
    let seen = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
    let mut port = ok_port(seen.clone());
    grid_engine
        .execute_command(
            &Command::new("attachLoad", "")
                .with("name", "hvac")
                .with("demandKw", "2")
                .with("priority", "Normal"),
            &mut port,
        )
        .unwrap();
    assert!(seen.borrow().iter().any(|c| c == "plant.attachLoad"));
    assert!(seen.borrow().iter().any(|c| c == "plant.dispatch"));
}

/// Incremental model evolution: only deltas are synthesized and executed.
#[test]
fn incremental_synthesis_is_delta_based() {
    let mut p = mddsm::cvm::build_cvm(3, 50);
    let mut session = p.open_session().unwrap();
    let a = session.create("Person").unwrap();
    session.set(a, "name", "ana").unwrap();
    session.set(a, "userId", "a@x").unwrap();
    let b = session.create("Person").unwrap();
    session.set(b, "name", "bob").unwrap();
    session.set(b, "userId", "b@x").unwrap();
    let v = session.create("Medium").unwrap();
    session.set(v, "name", "voice").unwrap();
    session.set(v, "kind", "Audio").unwrap();
    let c = session.create("Connection").unwrap();
    session.set(c, "name", "call").unwrap();
    session.link(c, "parties", a).unwrap();
    session.link(c, "parties", b).unwrap();
    session.link(c, "media", v).unwrap();
    p.submit_model(session.submit().unwrap()).unwrap();
    let after_create = p.command_trace().len();

    // Re-submitting the identical model does nothing.
    let report = p.submit_model(session.submit().unwrap()).unwrap();
    assert_eq!(report.synthesized_commands, 0);
    assert_eq!(p.command_trace().len(), after_create);

    // A one-attribute edit produces exactly one reconfiguration call.
    session.set(v, "codec", "opus-hd").unwrap();
    let report = p.submit_model(session.submit().unwrap()).unwrap();
    assert_eq!(report.synthesized_commands, 1);
    assert_eq!(p.command_trace().len(), after_create + 1);
}

/// Invalid models are stopped at the Synthesis boundary; nothing reaches
/// the services.
#[test]
fn invalid_models_never_touch_resources() {
    let mut p = mddsm::cvm::build_cvm(3, 50);
    let r = p.submit_text(
        r#"model m conformsTo cml {
            Person lonely { name = "solo" userId = "s@x" }
            Medium v { name = "voice" kind = MediaKind::Audio }
            Connection bad { name = "x" parties -> [lonely] media -> [v] }
        }"#,
    );
    assert!(
        r.is_err(),
        "a one-party connection violates the CML invariant"
    );
    assert!(p.command_trace().is_empty());
}
