//! The simulated microgrid plant: the hardware behind the MHB.
//!
//! Substitutes the paper's physical plant controllers and smart devices. The
//! plant tracks sources, a battery bank, and loads, and implements a greedy
//! energy-dispatch algorithm — the "energy management algorithms" the MCM
//! applies (§IV-B): renewable generation first, then storage discharge,
//! then grid import; on deficit, deferrable loads are shed before normal
//! ones, and critical loads are never shed.

use mddsm_sim::resource::{Args, Outcome};
use mddsm_sim::{LatencyModel, ResourceHub, SimDuration};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Kind of a power source (mirrors the MGridML enum).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceKind {
    /// Photovoltaic.
    Solar,
    /// Wind turbine.
    Wind,
    /// Utility grid import.
    Grid,
    /// Fossil generator.
    Generator,
}

impl SourceKind {
    fn parse(s: &str) -> Option<SourceKind> {
        match s {
            "Solar" => Some(SourceKind::Solar),
            "Wind" => Some(SourceKind::Wind),
            "Grid" => Some(SourceKind::Grid),
            "Generator" => Some(SourceKind::Generator),
            _ => None,
        }
    }

    /// Renewables dispatch before storage; grid/generator after.
    pub fn is_renewable(self) -> bool {
        matches!(self, SourceKind::Solar | SourceKind::Wind)
    }
}

/// Load priority (mirrors the MGridML enum).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LoadPriority {
    /// Shed first.
    Deferrable,
    /// Shed only after all deferrable loads.
    Normal,
    /// Never shed.
    Critical,
}

impl LoadPriority {
    fn parse(s: &str) -> Option<LoadPriority> {
        match s {
            "Critical" => Some(LoadPriority::Critical),
            "Normal" => Some(LoadPriority::Normal),
            "Deferrable" => Some(LoadPriority::Deferrable),
            _ => None,
        }
    }
}

#[derive(Debug, Clone)]
struct Source {
    kind: SourceKind,
    capacity_kw: f64,
    online: bool,
}

#[derive(Debug, Clone)]
struct Load {
    demand_kw: f64,
    priority: LoadPriority,
    enabled: bool,
    shed: bool,
}

/// Result of one dispatch round.
#[derive(Debug, Clone, PartialEq)]
pub struct Dispatch {
    /// Total demand of enabled, unshed loads (kW).
    pub demand_kw: f64,
    /// Power drawn from renewables (kW).
    pub renewable_kw: f64,
    /// Power drawn from storage (kW).
    pub storage_kw: f64,
    /// Power imported from grid/generator (kW).
    pub import_kw: f64,
    /// Loads shed this round, in shedding order.
    pub shed: Vec<String>,
}

/// The plant state and dispatch algorithm.
#[derive(Debug, Default)]
pub struct Plant {
    sources: BTreeMap<String, Source>,
    loads: BTreeMap<String, Load>,
    battery_capacity_kwh: f64,
    battery_charge_kwh: f64,
    dispatches: u64,
}

impl Plant {
    /// Creates an empty plant.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches (or replaces) a source.
    pub fn attach_source(&mut self, name: &str, kind: SourceKind, capacity_kw: f64) {
        self.sources.insert(
            name.to_owned(),
            Source {
                kind,
                capacity_kw,
                online: true,
            },
        );
    }

    /// Sets a source online/offline; `false` if unknown.
    pub fn set_source_online(&mut self, name: &str, online: bool) -> bool {
        match self.sources.get_mut(name) {
            Some(s) => {
                s.online = online;
                true
            }
            None => false,
        }
    }

    /// Attaches (or replaces) a load.
    pub fn attach_load(&mut self, name: &str, demand_kw: f64, priority: LoadPriority) {
        self.loads.insert(
            name.to_owned(),
            Load {
                demand_kw,
                priority,
                enabled: true,
                shed: false,
            },
        );
    }

    /// Enables/disables a load; `false` if unknown.
    pub fn set_load_enabled(&mut self, name: &str, enabled: bool) -> bool {
        match self.loads.get_mut(name) {
            Some(l) => {
                l.enabled = enabled;
                if enabled {
                    l.shed = false;
                }
                true
            }
            None => false,
        }
    }

    /// Detaches a load; `false` if unknown.
    pub fn detach_load(&mut self, name: &str) -> bool {
        self.loads.remove(name).is_some()
    }

    /// Detaches a source; `false` if unknown.
    pub fn detach_source(&mut self, name: &str) -> bool {
        self.sources.remove(name).is_some()
    }

    /// Configures the battery bank.
    pub fn set_battery(&mut self, capacity_kwh: f64, charge_kwh: f64) {
        self.battery_capacity_kwh = capacity_kwh.max(0.0);
        self.battery_charge_kwh = charge_kwh.clamp(0.0, self.battery_capacity_kwh);
    }

    /// Battery state `(capacity, charge)` in kWh.
    pub fn battery(&self) -> (f64, f64) {
        (self.battery_capacity_kwh, self.battery_charge_kwh)
    }

    /// Number of dispatch rounds run.
    pub fn dispatches(&self) -> u64 {
        self.dispatches
    }

    /// One dispatch round over `hours` of operation: serve demand from
    /// renewables, then battery, then grid/generator import; shed
    /// deferrable, then normal loads if import capacity cannot cover the
    /// residual. Surplus renewable power charges the battery.
    pub fn dispatch(&mut self, hours: f64) -> Dispatch {
        self.dispatches += 1;
        let hours = hours.max(0.0);
        // Un-shed everything; shedding is re-decided every round.
        for l in self.loads.values_mut() {
            if l.enabled {
                l.shed = false;
            }
        }
        let renewable_cap: f64 = self
            .sources
            .values()
            .filter(|s| s.online && s.kind.is_renewable())
            .map(|s| s.capacity_kw)
            .sum();
        let import_cap: f64 = self
            .sources
            .values()
            .filter(|s| s.online && !s.kind.is_renewable())
            .map(|s| s.capacity_kw)
            .sum();
        let battery_kw = if hours > 0.0 {
            self.battery_charge_kwh / hours
        } else {
            0.0
        };

        let mut shed = Vec::new();
        loop {
            let demand: f64 = self
                .loads
                .values()
                .filter(|l| l.enabled && !l.shed)
                .map(|l| l.demand_kw)
                .sum();
            let deficit = demand - (renewable_cap + battery_kw + import_cap);
            if deficit <= 1e-9 {
                let renewable_kw = demand.min(renewable_cap);
                let storage_kw = (demand - renewable_kw).min(battery_kw).max(0.0);
                let import_kw = (demand - renewable_kw - storage_kw).max(0.0);
                // Battery bookkeeping: discharge what was used; charge from
                // renewable surplus.
                self.battery_charge_kwh = (self.battery_charge_kwh - storage_kw * hours).max(0.0);
                let surplus = (renewable_cap - renewable_kw).max(0.0);
                self.battery_charge_kwh =
                    (self.battery_charge_kwh + surplus * hours).min(self.battery_capacity_kwh);
                self.dispatches += 0;
                return Dispatch {
                    demand_kw: demand,
                    renewable_kw,
                    storage_kw,
                    import_kw,
                    shed,
                };
            }
            // Shed the lowest-priority, largest load still running.
            let victim = self
                .loads
                .iter()
                .filter(|(_, l)| l.enabled && !l.shed && l.priority != LoadPriority::Critical)
                .min_by(|(an, a), (bn, b)| {
                    (
                        a.priority,
                        std::cmp::Reverse((a.demand_kw * 1000.0) as i64),
                        an.as_str(),
                    )
                        .cmp(&(
                            b.priority,
                            std::cmp::Reverse((b.demand_kw * 1000.0) as i64),
                            bn.as_str(),
                        ))
                })
                .map(|(n, _)| n.clone());
            match victim {
                Some(name) => {
                    if let Some(l) = self.loads.get_mut(&name) {
                        l.shed = true;
                    }
                    shed.push(name);
                }
                None => {
                    // Only critical loads remain: serve what we can.
                    let demand: f64 = self
                        .loads
                        .values()
                        .filter(|l| l.enabled && !l.shed)
                        .map(|l| l.demand_kw)
                        .sum();
                    let renewable_kw = demand.min(renewable_cap);
                    let storage_kw = (demand - renewable_kw).min(battery_kw).max(0.0);
                    let import_kw = (demand - renewable_kw - storage_kw)
                        .max(0.0)
                        .min(import_cap);
                    self.battery_charge_kwh =
                        (self.battery_charge_kwh - storage_kw * hours).max(0.0);
                    return Dispatch {
                        demand_kw: demand,
                        renewable_kw,
                        storage_kw,
                        import_kw,
                        shed,
                    };
                }
            }
        }
    }
}

/// A shared handle to a plant, cloneable across resource closures.
pub type SharedPlant = Arc<Mutex<Plant>>;

/// Creates a shared plant.
pub fn shared_plant() -> SharedPlant {
    Arc::new(Mutex::new(Plant::new()))
}

fn arg<'a>(args: &'a Args, key: &str) -> &'a str {
    args.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
        .unwrap_or("")
}

fn farg(args: &Args, key: &str) -> f64 {
    arg(args, key).parse().unwrap_or(0.0)
}

/// Registers the plant as the `sim.plant` resource (the MHB's hardware
/// surface): `attachSource`, `attachLoad`, `detachLoad`, `switchLoad`,
/// `switchSource`, `battery`, `dispatch`, `meter`.
pub fn register_plant(hub: &mut ResourceHub, plant: SharedPlant) {
    hub.register(
        "sim.plant",
        LatencyModel::uniform_ms(1, 4),
        SimDuration::from_millis(500),
        Box::new(move |op: &str, args: &Args| {
            let mut plant = plant.lock().expect("plant lock");
            match op {
                "attachSource" => {
                    let kind = match SourceKind::parse(arg(args, "kind")) {
                        Some(k) => k,
                        None => {
                            return Outcome::Failed(format!(
                                "bad source kind `{}`",
                                arg(args, "kind")
                            ))
                        }
                    };
                    plant.attach_source(arg(args, "name"), kind, farg(args, "capacityKw"));
                    Outcome::ok()
                }
                "attachLoad" => {
                    let p =
                        LoadPriority::parse(arg(args, "priority")).unwrap_or(LoadPriority::Normal);
                    plant.attach_load(arg(args, "name"), farg(args, "demandKw"), p);
                    Outcome::ok()
                }
                "detachLoad" => {
                    if plant.detach_load(arg(args, "name")) {
                        Outcome::ok()
                    } else {
                        Outcome::Failed(format!("unknown load `{}`", arg(args, "name")))
                    }
                }
                "detachSource" => {
                    if plant.detach_source(arg(args, "name")) {
                        Outcome::ok()
                    } else {
                        Outcome::Failed(format!("unknown source `{}`", arg(args, "name")))
                    }
                }
                "switchLoad" => {
                    let on = arg(args, "enabled") == "true";
                    if plant.set_load_enabled(arg(args, "name"), on) {
                        Outcome::ok()
                    } else {
                        Outcome::Failed(format!("unknown load `{}`", arg(args, "name")))
                    }
                }
                "switchSource" => {
                    let on = arg(args, "online") == "true";
                    if plant.set_source_online(arg(args, "name"), on) {
                        Outcome::ok()
                    } else {
                        Outcome::Failed(format!("unknown source `{}`", arg(args, "name")))
                    }
                }
                "battery" => {
                    plant.set_battery(farg(args, "capacityKwh"), farg(args, "chargeKwh"));
                    Outcome::ok()
                }
                "dispatch" => {
                    let d = plant.dispatch(farg(args, "hours").max(f64::MIN_POSITIVE));
                    let mut out = BTreeMap::new();
                    out.insert("demandKw".into(), format!("{:.3}", d.demand_kw));
                    out.insert("renewableKw".into(), format!("{:.3}", d.renewable_kw));
                    out.insert("storageKw".into(), format!("{:.3}", d.storage_kw));
                    out.insert("importKw".into(), format!("{:.3}", d.import_kw));
                    out.insert("shed".into(), d.shed.join(","));
                    Outcome::Ok(out)
                }
                "meter" => {
                    let (cap, charge) = plant.battery();
                    let mut out = BTreeMap::new();
                    out.insert("batteryCapacityKwh".into(), format!("{cap:.3}"));
                    out.insert("batteryChargeKwh".into(), format!("{charge:.3}"));
                    out.insert("dispatches".into(), plant.dispatches().to_string());
                    Outcome::Ok(out)
                }
                other => Outcome::Failed(format!("plant: unknown op `{other}`")),
            }
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plant_with(
        sources: &[(&str, SourceKind, f64)],
        loads: &[(&str, f64, LoadPriority)],
    ) -> Plant {
        let mut p = Plant::new();
        for (n, k, c) in sources {
            p.attach_source(n, *k, *c);
        }
        for (n, d, pr) in loads {
            p.attach_load(n, *d, *pr);
        }
        p
    }

    #[test]
    fn renewables_dispatch_first() {
        let mut p = plant_with(
            &[
                ("pv", SourceKind::Solar, 5.0),
                ("grid", SourceKind::Grid, 10.0),
            ],
            &[("hvac", 3.0, LoadPriority::Normal)],
        );
        let d = p.dispatch(1.0);
        assert_eq!(d.renewable_kw, 3.0);
        assert_eq!(d.import_kw, 0.0);
        assert!(d.shed.is_empty());
    }

    #[test]
    fn storage_before_import_and_surplus_charges() {
        let mut p = plant_with(
            &[
                ("pv", SourceKind::Solar, 2.0),
                ("grid", SourceKind::Grid, 10.0),
            ],
            &[("hvac", 3.0, LoadPriority::Normal)],
        );
        p.set_battery(10.0, 5.0);
        let d = p.dispatch(1.0);
        assert_eq!(d.renewable_kw, 2.0);
        assert_eq!(d.storage_kw, 1.0);
        assert_eq!(d.import_kw, 0.0);
        let (_, charge) = p.battery();
        assert!((charge - 4.0).abs() < 1e-9);
        // With demand below renewables, surplus charges the battery.
        p.set_load_enabled("hvac", false);
        p.dispatch(1.0);
        let (_, charge) = p.battery();
        assert!((charge - 6.0).abs() < 1e-9, "charge was {charge}");
    }

    #[test]
    fn deficit_sheds_deferrable_before_normal_never_critical() {
        let mut p = plant_with(
            &[("gen", SourceKind::Generator, 3.0)],
            &[
                ("icu", 2.0, LoadPriority::Critical),
                ("hvac", 2.0, LoadPriority::Normal),
                ("pool", 2.0, LoadPriority::Deferrable),
            ],
        );
        let d = p.dispatch(1.0);
        // 6 kW demand, 3 kW capacity: shed pool (deferrable), then hvac.
        assert_eq!(d.shed, vec!["pool".to_string(), "hvac".to_string()]);
        assert_eq!(d.demand_kw, 2.0);
        assert_eq!(d.import_kw, 2.0);
    }

    #[test]
    fn critical_only_overload_is_served_best_effort() {
        let mut p = plant_with(
            &[("gen", SourceKind::Generator, 1.0)],
            &[("icu", 5.0, LoadPriority::Critical)],
        );
        let d = p.dispatch(1.0);
        assert!(d.shed.is_empty());
        assert_eq!(d.import_kw, 1.0);
        assert_eq!(d.demand_kw, 5.0);
    }

    #[test]
    fn offline_sources_do_not_contribute() {
        let mut p = plant_with(
            &[
                ("pv", SourceKind::Solar, 5.0),
                ("grid", SourceKind::Grid, 5.0),
            ],
            &[("hvac", 3.0, LoadPriority::Normal)],
        );
        assert!(p.set_source_online("pv", false));
        let d = p.dispatch(1.0);
        assert_eq!(d.renewable_kw, 0.0);
        assert_eq!(d.import_kw, 3.0);
        assert!(!p.set_source_online("ghost", true));
    }

    #[test]
    fn hub_surface_round_trips() {
        let mut hub = ResourceHub::new(1);
        let plant = shared_plant();
        register_plant(&mut hub, plant.clone());
        let (o, _) = hub.invoke(
            "sim.plant",
            "attachSource",
            &mddsm_sim::resource::args(&[("name", "pv"), ("kind", "Solar"), ("capacityKw", "5")]),
        );
        assert!(o.is_ok());
        let (o, _) = hub.invoke(
            "sim.plant",
            "attachLoad",
            &mddsm_sim::resource::args(&[
                ("name", "hvac"),
                ("demandKw", "2"),
                ("priority", "Normal"),
            ]),
        );
        assert!(o.is_ok());
        let (o, _) = hub.invoke(
            "sim.plant",
            "dispatch",
            &mddsm_sim::resource::args(&[("hours", "1")]),
        );
        assert_eq!(o.get("renewableKw"), Some("2.000"));
        let (o, _) = hub.invoke("sim.plant", "meter", &Args::new());
        assert_eq!(o.get("dispatches"), Some("1"));
        let (o, _) = hub.invoke(
            "sim.plant",
            "attachSource",
            &mddsm_sim::resource::args(&[("name", "x"), ("kind", "Fusion")]),
        );
        assert!(!o.is_ok());
        let (o, _) = hub.invoke("sim.plant", "explode", &Args::new());
        assert!(!o.is_ok());
    }
}
