//! Smart-microgrid domain for MD-DSM: MGridML and the Microgrid Virtual
//! Machine (§IV-B).
//!
//! "The user expresses the configuration requirements of the microgrid,
//! which may be a home, using MGridML and the MGridVM interprets the model
//! to realize the state of the system." Unlike the communication domain,
//! microgrid models follow *centralized* application semantics: a shared
//! main processing unit, accessibility to all resources, high resource
//! utilization.
//!
//! * [`mgridml`] — the MGridML metamodel: power sources, storage units,
//!   loads with priorities, and energy policies, with physical invariants.
//! * [`plant`] — the simulated plant: sources, batteries, and loads behind
//!   a hardware-broker call surface, including a greedy energy-dispatch
//!   algorithm (renewables → storage → grid, shedding deferrable loads on
//!   deficit) standing in for the paper's "energy management algorithms".
//! * [`dsk`] — the MGridVM domain knowledge: DSCs, procedures, the
//!   synthesis LTS, and the command map.
//! * [`platform`] — the assembled MGridVM (MUI/MSE/MCM/MHB stack).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dsk;
pub mod mgridml;
pub mod plant;
pub mod platform;

pub use platform::build_mgridvm;
