//! MGridVM domain knowledge: DSCs, procedures, the synthesis LTS, and the
//! command map — the microgrid counterpart of the CVM artifacts, executed
//! by the *identical* domain-independent Controller engine (the §VII-B
//! separation-of-concerns claim).

use mddsm_controller::actions::ActionOutcome;
use mddsm_controller::procedure::{ExecutionUnit, Instr, Operand, ProcMeta, Procedure};
use mddsm_controller::{ActionRegistry, DscRegistry, ProcedureRepository};
use mddsm_synthesis::lts::{ChangePattern, CommandTemplate};
use mddsm_synthesis::{Lts, LtsBuilder};

/// The microgrid DSC taxonomy.
pub fn mgrid_dscs() -> DscRegistry {
    let mut d = DscRegistry::new();
    for (id, parent, desc) in [
        ("ConfigurePlant", None, "attach/detach plant equipment"),
        (
            "AttachSource",
            Some("ConfigurePlant"),
            "bring a source under management",
        ),
        (
            "AttachLoad",
            Some("ConfigurePlant"),
            "bring a load under management",
        ),
        ("DetachLoad", Some("ConfigurePlant"), "remove a load"),
        ("SwitchLoad", None, "enable/disable a load"),
        ("BalanceEnergy", None, "run the energy-management dispatch"),
        ("ConfigureStorage", None, "configure the battery bank"),
    ] {
        d.operation(id, parent, desc).expect("unique DSC");
    }
    d.data("PlantState", None, "metered plant state")
        .expect("unique DSC");
    d
}

fn plant_call(op: &str, args: &[(&str, Operand)]) -> Instr {
    Instr::BrokerCall {
        api: "plant".into(),
        op: op.into(),
        args: args
            .iter()
            .map(|(k, v)| ((*k).to_owned(), v.clone()))
            .collect(),
    }
}

/// The microgrid procedure repository.
pub fn mgrid_procedures() -> ProcedureRepository {
    let mut r = ProcedureRepository::new();
    let a = Operand::arg;

    r.add(Procedure {
        id: "attachSource".into(),
        classifier: "AttachSource".into(),
        dependencies: vec![],
        meta: ProcMeta::default(),
        on_error: None,
        eus: vec![ExecutionUnit::new(
            "main",
            vec![
                plant_call(
                    "attachSource",
                    &[
                        ("name", a("name")),
                        ("kind", a("kind")),
                        ("capacityKw", a("capacityKw")),
                    ],
                ),
                Instr::Complete,
            ],
        )],
    })
    .expect("unique procedure");

    r.add(Procedure {
        id: "attachLoad".into(),
        classifier: "AttachLoad".into(),
        // Attaching a load immediately rebalances the plant.
        dependencies: vec!["BalanceEnergy".into()],
        meta: ProcMeta::default(),
        on_error: None,
        eus: vec![ExecutionUnit::new(
            "main",
            vec![
                plant_call(
                    "attachLoad",
                    &[
                        ("name", a("name")),
                        ("demandKw", a("demandKw")),
                        ("priority", a("priority")),
                    ],
                ),
                Instr::CallDep(0),
                Instr::Complete,
            ],
        )],
    })
    .expect("unique procedure");

    r.add(Procedure {
        id: "detachLoad".into(),
        classifier: "DetachLoad".into(),
        dependencies: vec!["BalanceEnergy".into()],
        meta: ProcMeta::default(),
        on_error: None,
        eus: vec![ExecutionUnit::new(
            "main",
            vec![
                plant_call("detachLoad", &[("name", a("name"))]),
                Instr::CallDep(0),
                Instr::Complete,
            ],
        )],
    })
    .expect("unique procedure");

    r.add(Procedure {
        id: "switchLoad".into(),
        classifier: "SwitchLoad".into(),
        dependencies: vec!["BalanceEnergy".into()],
        meta: ProcMeta::default(),
        on_error: None,
        eus: vec![ExecutionUnit::new(
            "main",
            vec![
                plant_call(
                    "switchLoad",
                    &[("name", a("name")), ("enabled", a("enabled"))],
                ),
                Instr::CallDep(0),
                Instr::Complete,
            ],
        )],
    })
    .expect("unique procedure");

    r.add(Procedure {
        id: "balanceGreedy".into(),
        classifier: "BalanceEnergy".into(),
        dependencies: vec![],
        meta: ProcMeta {
            cost: 1.0,
            reliability: 0.98,
            memory: 1.0,
            requires: vec![],
        },
        on_error: None,
        eus: vec![ExecutionUnit::new(
            "main",
            vec![
                plant_call("dispatch", &[("hours", Operand::lit("1"))]),
                Instr::SetVar {
                    name: "shed".into(),
                    value: Operand::var("result.shed"),
                },
                Instr::IfVar {
                    var: "shed".into(),
                    equals: "".into(),
                    then: vec![],
                    otherwise: vec![Instr::EmitEvent {
                        topic: "loadsShed".into(),
                        payload: vec![("loads".into(), Operand::var("shed"))],
                    }],
                },
                Instr::Complete,
            ],
        )],
    })
    .expect("unique procedure");

    // A finer-grained balancer: meters first, then dispatches over a
    // shorter horizon; dearer but more reliable (candidate alternative).
    r.add(Procedure {
        id: "balanceMetered".into(),
        classifier: "BalanceEnergy".into(),
        dependencies: vec![],
        meta: ProcMeta {
            cost: 2.0,
            reliability: 0.995,
            memory: 1.5,
            requires: vec![],
        },
        on_error: None,
        eus: vec![ExecutionUnit::new(
            "main",
            vec![
                plant_call("meter", &[]),
                plant_call("dispatch", &[("hours", Operand::lit("0.25"))]),
                Instr::Complete,
            ],
        )],
    })
    .expect("unique procedure");

    r.add(Procedure {
        id: "configureStorage".into(),
        classifier: "ConfigureStorage".into(),
        dependencies: vec![],
        meta: ProcMeta::default(),
        on_error: None,
        eus: vec![ExecutionUnit::new(
            "main",
            vec![
                plant_call(
                    "battery",
                    &[
                        ("capacityKwh", a("capacityKwh")),
                        ("chargeKwh", a("chargeKwh")),
                    ],
                ),
                Instr::Complete,
            ],
        )],
    })
    .expect("unique procedure");
    r
}

/// Case-1 fast action: the load switch is latency-critical (a light
/// switch must not wait for IM generation).
pub fn mgrid_actions() -> ActionRegistry {
    let mut actions = ActionRegistry::new();
    actions.register("fastSwitch", "SwitchLoad", |cmd, port| {
        let mut out = ActionOutcome::default();
        let args: Vec<(String, String)> = vec![
            ("name".into(), cmd.arg("name").unwrap_or("").to_owned()),
            (
                "enabled".into(),
                cmd.arg("enabled").unwrap_or("true").to_owned(),
            ),
        ];
        let resp = port.invoke("plant", "switchLoad", &args);
        out.absorb(resp, "fastSwitch", "plant", "switchLoad")?;
        let resp = port.invoke("plant", "dispatch", &[("hours".into(), "1".into())]);
        out.absorb(resp, "fastSwitch", "plant", "dispatch")?;
        Ok(out)
    });
    actions
}

/// Command → DSC map.
pub fn mgrid_command_map() -> Vec<(String, String)> {
    [
        ("attachSource", "AttachSource"),
        ("attachLoad", "AttachLoad"),
        ("detachLoad", "DetachLoad"),
        ("switchLoad", "SwitchLoad"),
        ("configureStorage", "ConfigureStorage"),
        ("rebalance", "BalanceEnergy"),
    ]
    .iter()
    .map(|(c, d)| ((*c).to_owned(), (*d).to_owned()))
    .collect()
}

/// The MGridML synthesis LTS: a single `managing` state whose transitions
/// map model edits to plant commands — microgrid management is mode-free,
/// unlike the session-oriented communication domain.
pub fn mgrid_lts() -> Lts {
    LtsBuilder::new()
        .state("managing")
        .initial("managing")
        .transition(
            "managing",
            "managing",
            ChangePattern::create("PowerSource"),
            |t| {
                t.emit(
                    CommandTemplate::new("attachSource", "$key")
                        .with("name", "$attr_name")
                        .with("kind", "$attr_kind")
                        .with("capacityKw", "$attr_capacityKw"),
                )
            },
        )
        .transition(
            "managing",
            "managing",
            ChangePattern::set_attr("PowerSource", "capacityKw").on_existing(),
            |t| {
                t.emit(
                    CommandTemplate::new("attachSource", "$key")
                        .with("name", "$id")
                        .with("kind", "Solar")
                        .with("capacityKw", "$value"),
                )
            },
        )
        .transition("managing", "managing", ChangePattern::create("Load"), |t| {
            t.emit(
                CommandTemplate::new("attachLoad", "$key")
                    .with("name", "$attr_name")
                    .with("demandKw", "$attr_demandKw")
                    .with("priority", "$attr_priority"),
            )
        })
        .transition(
            "managing",
            "managing",
            ChangePattern::set_attr("Load", "demandKw").on_existing(),
            |t| {
                t.emit(
                    CommandTemplate::new("attachLoad", "$key")
                        .with("name", "$id")
                        .with("demandKw", "$value")
                        .with("priority", "Normal"),
                )
            },
        )
        .transition(
            "managing",
            "managing",
            ChangePattern::set_attr("Load", "enabled").on_existing(),
            |t| {
                t.emit(
                    CommandTemplate::new("switchLoad", "$key")
                        .with("name", "$id")
                        .with("enabled", "$value"),
                )
            },
        )
        .transition("managing", "managing", ChangePattern::delete("Load"), |t| {
            t.emit(CommandTemplate::new("detachLoad", "$key").with("name", "$id"))
        })
        .transition(
            "managing",
            "managing",
            ChangePattern::set_attr("StorageUnit", "chargeKwh").on_existing(),
            |t| {
                t.emit(
                    CommandTemplate::new("configureStorage", "$key")
                        .with("capacityKwh", "10")
                        .with("chargeKwh", "$value"),
                )
            },
        )
        .build()
        .expect("MGrid LTS is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mddsm_controller::{ControllerContext, DscId, GenerationConfig};

    #[test]
    fn artifacts_consistent() {
        mgrid_procedures().validate(&mgrid_dscs()).unwrap();
        for (_, d) in mgrid_command_map() {
            assert!(mgrid_dscs().get(&DscId::new(d.clone())).is_some(), "{d}");
        }
    }

    #[test]
    fn attach_load_composes_with_balancer() {
        let im = mddsm_controller::intent::generate(
            &DscId::new("AttachLoad"),
            &mgrid_procedures(),
            &mgrid_dscs(),
            &ControllerContext::new(),
            &GenerationConfig::default(),
        )
        .unwrap();
        assert_eq!(im.render(), "attachLoad(balanceGreedy)");
    }

    #[test]
    fn balancer_failure_switches_to_metered() {
        let mut ctx = ControllerContext::new();
        ctx.mark_failed("balanceGreedy");
        let im = mddsm_controller::intent::generate(
            &DscId::new("BalanceEnergy"),
            &mgrid_procedures(),
            &mgrid_dscs(),
            &ctx,
            &GenerationConfig::default(),
        )
        .unwrap();
        assert_eq!(im.render(), "balanceMetered");
    }
}
