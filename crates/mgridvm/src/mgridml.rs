//! The Microgrid Modeling Language (MGridML).

use mddsm_meta::metamodel::{DataType, Metamodel, MetamodelBuilder, Multiplicity};
use mddsm_meta::Value;

/// Name of the MGridML metamodel.
pub const MGRIDML: &str = "mgridml";

/// Builds the MGridML metamodel: a microgrid owns power sources, storage
/// units, loads, and an energy policy. Invariants capture physical
/// plausibility (non-negative capacities, charge within capacity).
pub fn mgridml_metamodel() -> Metamodel {
    MetamodelBuilder::new(MGRIDML)
        .enumeration("SourceKind", ["Solar", "Wind", "Grid", "Generator"])
        .enumeration("LoadPriority", ["Critical", "Normal", "Deferrable"])
        .enumeration("Objective", ["MinimizeCost", "MaximizeGreen", "Resilience"])
        .class("Microgrid", |c| {
            c.attr("name", DataType::Str)
                .contains("sources", "PowerSource", Multiplicity::MANY)
                .contains("storage", "StorageUnit", Multiplicity::MANY)
                .contains("loads", "Load", Multiplicity::MANY)
                .contains("policy", "EnergyPolicy", Multiplicity::OPT)
        })
        .class("PowerSource", |c| {
            c.attr("name", DataType::Str)
                .attr("kind", DataType::Enum("SourceKind".into()))
                .attr("capacityKw", DataType::Float)
                .attr_default("online", DataType::Bool, Value::from(true))
                .invariant("capacity-positive", "self.capacityKw > 0.0")
        })
        .class("StorageUnit", |c| {
            c.attr("name", DataType::Str)
                .attr("capacityKwh", DataType::Float)
                .attr_default("chargeKwh", DataType::Float, Value::from(0.0))
                .invariant(
                    "charge-within-capacity",
                    "self.chargeKwh >= 0.0 and self.chargeKwh <= self.capacityKwh",
                )
        })
        .class("Load", |c| {
            c.attr("name", DataType::Str)
                .attr("demandKw", DataType::Float)
                .attr_default(
                    "priority",
                    DataType::Enum("LoadPriority".into()),
                    Value::enumeration("LoadPriority", "Normal"),
                )
                .attr_default("enabled", DataType::Bool, Value::from(true))
                .invariant("demand-non-negative", "self.demandKw >= 0.0")
        })
        .class("EnergyPolicy", |c| {
            c.attr("name", DataType::Str).attr_default(
                "objective",
                DataType::Enum("Objective".into()),
                Value::enumeration("Objective", "MinimizeCost"),
            )
        })
        .build()
        .expect("MGridML metamodel is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mddsm_meta::conformance;
    use mddsm_meta::model::Model;

    fn home() -> Model {
        let mut m = Model::new(MGRIDML);
        let g = m.create("Microgrid");
        m.set_attr(g, "name", Value::from("home"));
        let pv = m.create("PowerSource");
        m.set_attr(pv, "name", Value::from("roofPV"));
        m.set_attr(pv, "kind", Value::enumeration("SourceKind", "Solar"));
        m.set_attr(pv, "capacityKw", Value::from(5.0));
        let batt = m.create("StorageUnit");
        m.set_attr(batt, "name", Value::from("battery"));
        m.set_attr(batt, "capacityKwh", Value::from(10.0));
        m.set_attr(batt, "chargeKwh", Value::from(4.0));
        let hvac = m.create("Load");
        m.set_attr(hvac, "name", Value::from("hvac"));
        m.set_attr(hvac, "demandKw", Value::from(2.5));
        m.add_ref(g, "sources", pv);
        m.add_ref(g, "storage", batt);
        m.add_ref(g, "loads", hvac);
        m
    }

    #[test]
    fn valid_microgrid_conforms() {
        conformance::check(&home(), &mgridml_metamodel()).unwrap();
    }

    #[test]
    fn physical_invariants_enforced() {
        let mm = mgridml_metamodel();
        let mut m = home();
        let batt = m.all_of_class("StorageUnit")[0];
        m.set_attr(batt, "chargeKwh", Value::from(99.0));
        assert!(conformance::check(&m, &mm).is_err());
        let mut m = home();
        let pv = m.all_of_class("PowerSource")[0];
        m.set_attr(pv, "capacityKw", Value::from(-1.0));
        assert!(conformance::check(&m, &mm).is_err());
        let mut m = home();
        let l = m.all_of_class("Load")[0];
        m.set_attr(l, "demandKw", Value::from(-0.1));
        assert!(conformance::check(&m, &mm).is_err());
    }

    #[test]
    fn defaults_make_minimal_models_valid() {
        let mm = mgridml_metamodel();
        let mut m = Model::new(MGRIDML);
        let l = m.create("Load");
        m.set_attr(l, "name", Value::from("light"));
        m.set_attr(l, "demandKw", Value::from(0.1));
        // priority/enabled come from defaults.
        conformance::check(&m, &mm).unwrap();
    }
}
