//! The assembled MGridVM: MUI / MSE / MCM / MHB as an MD-DSM platform.

use crate::dsk::{mgrid_actions, mgrid_command_map, mgrid_dscs, mgrid_lts, mgrid_procedures};
use crate::mgridml::mgridml_metamodel;
use crate::plant::{register_plant, SharedPlant};
use mddsm_broker::BrokerModelBuilder;
use mddsm_core::{DomainKnowledge, MdDsmPlatform, PlatformBuilder, PlatformModelBuilder};
use mddsm_sim::ResourceHub;

/// Builds the MHB (microgrid hardware broker) model: one handler per
/// plant operation, all bound to the simulated plant.
pub fn mhb_broker_model() -> mddsm_meta::Model {
    let ops: &[(&str, &str, &[&str])] = &[
        (
            "attachSource",
            "plant.attachSource",
            &["name=$name", "kind=$kind", "capacityKw=$capacityKw"],
        ),
        (
            "attachLoad",
            "plant.attachLoad",
            &["name=$name", "demandKw=$demandKw", "priority=$priority"],
        ),
        ("detachLoad", "plant.detachLoad", &["name=$name"]),
        ("detachSource", "plant.detachSource", &["name=$name"]),
        (
            "switchLoad",
            "plant.switchLoad",
            &["name=$name", "enabled=$enabled"],
        ),
        (
            "switchSource",
            "plant.switchSource",
            &["name=$name", "online=$online"],
        ),
        (
            "battery",
            "plant.battery",
            &["capacityKwh=$capacityKwh", "chargeKwh=$chargeKwh"],
        ),
        ("dispatch", "plant.dispatch", &["hours=$hours"]),
        ("meter", "plant.meter", &[]),
    ];
    let mut b = BrokerModelBuilder::new("mhb");
    for (handler, selector, mapping) in ops {
        let op = selector.split('.').nth(1).expect("selector has op");
        b = b.call_handler(handler, selector).action(
            handler,
            handler,
            "plant",
            op,
            mapping,
            None,
            &[],
        );
    }
    b.autonomic_rule(
        "plantUnresponsive",
        "self.failures_plant <> null and self.failures_plant > 2",
        &["heal plant", "set failures_plant 0", "emit plantRecovered"],
    )
    .bind_resource("plant", "sim.plant")
    .build()
}

/// Builds the MGridVM platform model.
pub fn mgrid_platform_model() -> mddsm_meta::Model {
    PlatformModelBuilder::new("mgridvm", "smart-microgrid")
        .ui("mgridml")
        .synthesis("Skip")
        .controller(|_, _| {})
        .broker("mhb")
        .build()
}

/// Bundles the MGridVM domain knowledge.
pub fn mgrid_domain_knowledge() -> DomainKnowledge {
    DomainKnowledge {
        dsml: mgridml_metamodel(),
        lts: mgrid_lts(),
        dscs: mgrid_dscs(),
        procedures: mgrid_procedures(),
        actions: mgrid_actions(),
        command_map: mgrid_command_map(),
        event_commands: vec![],
    }
}

/// Generates the complete MGridVM over a shared simulated plant; the
/// caller keeps the handle for physics-level assertions.
pub fn build_mgridvm(seed: u64, plant: SharedPlant) -> MdDsmPlatform {
    let mut hub = ResourceHub::new(seed);
    register_plant(&mut hub, plant);
    PlatformBuilder::new(&mgrid_platform_model(), mgrid_domain_knowledge())
        .expect("MGridVM platform model and DSK are consistent")
        .broker_model(mhb_broker_model())
        .resources(hub)
        .build()
        .expect("MGridVM platform assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plant::shared_plant;

    #[test]
    fn mhb_model_analyzes_clean() {
        // Load-time gate: zero diagnostics on the shipped broker model.
        let report = mddsm_broker::analyze(&mhb_broker_model());
        assert!(report.is_clean(), "diagnostics: {:?}", report.diagnostics);
    }

    #[test]
    fn mgridvm_assembles() {
        let p = build_mgridvm(1, shared_plant());
        assert_eq!(p.name(), "mgridvm");
        assert_eq!(p.domain(), "smart-microgrid");
    }

    #[test]
    fn model_edits_drive_the_plant() {
        let plant = shared_plant();
        let mut p = build_mgridvm(1, plant.clone());
        let mut s = p.open_session().unwrap();
        let pv = s.create("PowerSource").unwrap();
        s.set(pv, "name", "roofPV").unwrap();
        s.set(pv, "kind", "Solar").unwrap();
        s.set(pv, "capacityKw", "5").unwrap();
        let hvac = s.create("Load").unwrap();
        s.set(hvac, "name", "hvac").unwrap();
        s.set(hvac, "demandKw", "2.5").unwrap();
        let report = p.submit_model(s.submit().unwrap()).unwrap();
        assert!(report.execution.commands >= 2, "{report:?}");
        // The plant saw the equipment and ran a dispatch.
        {
            let plant = plant.lock().unwrap();
            assert!(plant.dispatches() >= 1);
        }
        let trace = p.command_trace();
        assert!(
            trace.iter().any(|t| t.contains("attachSource")),
            "{trace:?}"
        );
        assert!(trace.iter().any(|t| t.contains("attachLoad")), "{trace:?}");
        assert!(trace.iter().any(|t| t.contains("dispatch")), "{trace:?}");

        // Disabling the load goes through the Case-1 fast switch.
        s.set(hvac, "enabled", "false").unwrap();
        let report = p.submit_model(s.submit().unwrap()).unwrap();
        assert_eq!(report.execution.case1, 1, "{report:?}");
        assert!(
            p.command_trace().iter().any(|t| t.contains("switchLoad")),
            "{:?}",
            p.command_trace()
        );
    }

    #[test]
    fn shedding_event_surfaces_through_controller() {
        let plant = shared_plant();
        // Overload: generator 1 kW, two loads 2 kW each.
        let mut p = build_mgridvm(1, plant);
        let src = r#"model m conformsTo mgridml {
            PowerSource gen { name = "gen" kind = SourceKind::Generator capacityKw = 1.0 }
            Load pool { name = "pool" demandKw = 2.0 priority = LoadPriority::Deferrable }
            Load hvac { name = "hvac" demandKw = 2.0 }
        }"#;
        let report = p.submit_text(src).unwrap();
        // The balancer shed something and raised the loadsShed event.
        assert!(
            report.execution.events.iter().any(|e| e == "loadsShed"),
            "{report:?}"
        );
    }
}
