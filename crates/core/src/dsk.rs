//! The domain knowledge (DSK) bundle — everything domain-specific a
//! platform needs, kept separate from the model of execution.
//!
//! "Ideally, the internal structure and semantics of the middleware and the
//! semantics of the application domain should be specified separately"
//! (§V-C); MD-DSM's integration step (Fig. 2) combines the middleware model
//! with this bundle.

use crate::{CoreError, Result};
use mddsm_controller::{ActionRegistry, DscRegistry, ProcedureRepository};
use mddsm_meta::metamodel::Metamodel;
use mddsm_synthesis::{Command, Lts};

/// The domain-specific knowledge for one application domain.
pub struct DomainKnowledge {
    /// The application-level DSML (UI-layer DSK).
    pub dsml: Metamodel,
    /// The synthesis LTS encoding model-to-command semantics
    /// (Synthesis-layer DSK).
    pub lts: Lts,
    /// The DSC taxonomy (Controller-layer DSK).
    pub dscs: DscRegistry,
    /// Procedures with their EUs (Controller-layer DSK).
    pub procedures: ProcedureRepository,
    /// Predefined actions for Case-1 execution (Controller-layer DSK).
    pub actions: ActionRegistry,
    /// Command-name → DSC-name classification map.
    pub command_map: Vec<(String, String)>,
    /// Event-topic → command map for the Controller's event handler.
    pub event_commands: Vec<(String, Command)>,
}

impl DomainKnowledge {
    /// Validates internal consistency: procedures against the DSC
    /// taxonomy, and every mapped command's DSC must exist.
    pub fn validate(&self) -> Result<()> {
        self.procedures
            .validate(&self.dscs)
            .map_err(|e| CoreError::InvalidDomainKnowledge(e.to_string()))?;
        for (cmd, dsc) in &self.command_map {
            if self
                .dscs
                .get(&mddsm_controller::DscId::new(dsc.clone()))
                .is_none()
            {
                return Err(CoreError::InvalidDomainKnowledge(format!(
                    "command `{cmd}` maps to unknown DSC `{dsc}`"
                )));
            }
        }
        Ok(())
    }
}

impl std::fmt::Debug for DomainKnowledge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DomainKnowledge")
            .field("dsml", &self.dsml.name())
            .field("dscs", &self.dscs.len())
            .field("procedures", &self.procedures.len())
            .field("actions", &self.actions.len())
            .field("commands", &self.command_map.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mddsm_controller::procedure::{Instr, Procedure};
    use mddsm_meta::metamodel::MetamodelBuilder;
    use mddsm_synthesis::LtsBuilder;

    fn dsk() -> DomainKnowledge {
        let mut dscs = DscRegistry::new();
        dscs.operation("Op", None, "").unwrap();
        let mut procedures = ProcedureRepository::new();
        procedures
            .add(Procedure::simple("p", "Op", vec![Instr::Complete]))
            .unwrap();
        DomainKnowledge {
            dsml: MetamodelBuilder::new("toy").build().unwrap(),
            lts: LtsBuilder::new().state("s").initial("s").build().unwrap(),
            dscs,
            procedures,
            actions: ActionRegistry::new(),
            command_map: vec![("doOp".into(), "Op".into())],
            event_commands: vec![],
        }
    }

    #[test]
    fn valid_bundle_passes() {
        dsk().validate().unwrap();
    }

    #[test]
    fn bad_command_map_rejected() {
        let mut d = dsk();
        d.command_map.push(("x".into(), "Ghost".into()));
        assert!(matches!(
            d.validate(),
            Err(CoreError::InvalidDomainKnowledge(_))
        ));
    }

    #[test]
    fn bad_procedures_rejected() {
        let mut d = dsk();
        d.procedures
            .add(Procedure::simple("bad", "Ghost", vec![Instr::Complete]))
            .unwrap();
        assert!(d.validate().is_err());
    }
}
