//! The generated MD-DSM platform: a four-layer model-execution engine.

use crate::dsk::DomainKnowledge;
use crate::mwmodel::PlatformSpec;
use crate::port::BrokerAdapter;
use crate::{CoreError, Result};
use mddsm_broker::GenericBroker;
use mddsm_controller::{
    ClassificationPolicy, CommandClassifier, ControllerEngine, ExecutionReport,
};
use mddsm_meta::model::Model;
use mddsm_sim::ResourceHub;
use mddsm_synthesis::{ChangeInterpreter, ControlScript, InterpreterConfig, SynthesisEngine};
use mddsm_ui::{DsmlEnvironment, EditingSession};
use std::sync::Arc;

/// Builder generating a platform from its two input models (Fig. 2):
/// the structural platform model and the domain knowledge.
pub struct PlatformBuilder {
    spec: PlatformSpec,
    dsk: DomainKnowledge,
    broker_model: Option<Model>,
    hub: Option<ResourceHub>,
}

impl PlatformBuilder {
    /// Starts from a platform model and domain knowledge.
    pub fn new(platform_model: &Model, dsk: DomainKnowledge) -> Result<Self> {
        let spec = PlatformSpec::from_model(platform_model)?;
        dsk.validate()?;
        if let Some(dsml) = &spec.ui_dsml {
            if dsml != dsk.dsml.name() {
                return Err(CoreError::InvalidDomainKnowledge(format!(
                    "platform UI expects DSML `{dsml}` but domain knowledge provides `{}`",
                    dsk.dsml.name()
                )));
            }
        }
        Ok(PlatformBuilder {
            spec,
            dsk,
            broker_model: None,
            hub: None,
        })
    }

    /// Supplies the broker model referenced by the platform's broker spec.
    pub fn broker_model(mut self, model: Model) -> Self {
        self.broker_model = Some(model);
        self
    }

    /// Supplies the resource hub (the simulated underlying services).
    pub fn resources(mut self, hub: ResourceHub) -> Self {
        self.hub = Some(hub);
        self
    }

    /// Generates the platform.
    pub fn build(self) -> Result<MdDsmPlatform> {
        let PlatformBuilder {
            spec,
            dsk,
            broker_model,
            hub,
        } = self;

        // UI layer.
        let ui = spec.ui_dsml.as_ref().map(|_| {
            let mut env = DsmlEnvironment::new();
            env.register(dsk.dsml.clone());
            env
        });

        // Synthesis layer.
        let synthesis = spec.synthesis_unmatched.map(|unmatched| {
            SynthesisEngine::new(
                Arc::new(dsk.dsml.clone()),
                ChangeInterpreter::new(dsk.lts.clone(), InterpreterConfig { unmatched }),
            )
        });

        // Controller layer.
        let controller = match &spec.controller {
            None => None,
            Some(config) => {
                let mut classifier = CommandClassifier::new(ClassificationPolicy {
                    prefer: spec
                        .controller_prefer
                        .unwrap_or(mddsm_controller::Case::Predefined),
                    low_memory_prefers_dynamic: spec.controller_low_memory_dynamic,
                    overrides: Default::default(),
                });
                for (cmd, dsc) in &dsk.command_map {
                    classifier.map_command(cmd, dsc);
                }
                let mut engine = ControllerEngine::new(
                    dsk.dscs.clone(),
                    dsk.procedures.clone(),
                    dsk.actions.clone(),
                    classifier,
                    config.clone(),
                )?;
                for (topic, cmd) in &dsk.event_commands {
                    engine.map_event(topic, cmd.clone());
                }
                Some(engine)
            }
        };

        // Broker layer.
        let broker = match (&spec.broker_model, broker_model) {
            (None, _) => None,
            (Some(name), Some(model)) => {
                let hub = hub.unwrap_or_else(|| ResourceHub::new(0));
                let b = GenericBroker::from_model(&model, hub)?;
                if b.name() != name {
                    return Err(CoreError::InvalidPlatformModel(format!(
                        "platform references broker model `{name}` but `{}` was supplied",
                        b.name()
                    )));
                }
                Some(b)
            }
            (Some(name), None) => {
                return Err(CoreError::InvalidPlatformModel(format!(
                    "platform references broker model `{name}` but none was supplied"
                )))
            }
        };

        Ok(MdDsmPlatform {
            name: spec.name,
            domain: spec.domain,
            ui,
            synthesis,
            controller,
            broker,
            installed: Vec::new(),
            outbox: Vec::new(),
        })
    }
}

/// Aggregate report of one platform interaction.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlatformReport {
    /// Immediate commands synthesized.
    pub synthesized_commands: usize,
    /// Scripts installed for later event-triggered execution.
    pub installed_scripts: usize,
    /// Controller execution metrics.
    pub execution: ExecutionReport,
}

/// A generated MD-DSM platform: the model-execution engine for one domain.
pub struct MdDsmPlatform {
    name: String,
    domain: String,
    ui: Option<DsmlEnvironment>,
    synthesis: Option<SynthesisEngine>,
    controller: Option<ControllerEngine>,
    broker: Option<GenericBroker>,
    installed: Vec<ControlScript>,
    outbox: Vec<ControlScript>,
}

impl MdDsmPlatform {
    /// Platform name (from the platform model).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Domain label.
    pub fn domain(&self) -> &str {
        &self.domain
    }

    /// Opens a UI editing session for the platform's DSML.
    pub fn open_session(&self) -> Result<EditingSession> {
        let ui = self.ui.as_ref().ok_or(CoreError::LayerSuppressed("ui"))?;
        let dsml = self
            .synthesis
            .as_ref()
            .map(|s| s.metamodel().name().to_owned())
            .or_else(|| ui.dsmls().first().map(|s| (*s).to_owned()))
            .ok_or(CoreError::LayerSuppressed("synthesis"))?;
        Ok(ui.open(&dsml)?)
    }

    /// Submits an application model (the models@runtime entry point): the
    /// full UI → Synthesis → Controller → Broker pipeline.
    pub fn submit_model(&mut self, model: Model) -> Result<PlatformReport> {
        let synthesis = self
            .synthesis
            .as_mut()
            .ok_or(CoreError::LayerSuppressed("synthesis"))?;
        let out = synthesis.submit(model)?;
        let mut report = PlatformReport {
            synthesized_commands: out.immediate.len(),
            installed_scripts: out.installed.len(),
            execution: ExecutionReport::default(),
        };
        self.installed.extend(out.installed);
        let exec = self.run_script_internal(&out.immediate)?;
        report.execution = exec;
        // Controller events feed back into the Synthesis LTS, which may
        // emit follow-up commands (single feedback round).
        let follow_up: Vec<String> = report.execution.events.clone();
        for topic in follow_up {
            let script = self
                .synthesis
                .as_mut()
                .expect("synthesis present")
                .notify_event(&topic)
                .map_err(CoreError::Synthesis)?;
            if !script.is_empty() {
                let r = self.run_script_internal(&script)?;
                report.execution.merge(&r);
            }
        }
        Ok(report)
    }

    /// Submits an application model written in the textual format.
    pub fn submit_text(&mut self, source: &str) -> Result<PlatformReport> {
        let model = mddsm_meta::text::parse(source).map_err(mddsm_ui::UiError::from)?;
        self.submit_model(model)
    }

    /// Weaves multiple concern models into one application model and
    /// submits the result — the §IX aspect-oriented execution step
    /// ("simultaneously executing (through a weaving step) multiple
    /// related models that describe the different concerns of an
    /// application"). Contradicting concerns are rejected with the full
    /// conflict list.
    pub fn submit_woven(&mut self, concerns: &[Model]) -> Result<PlatformReport> {
        let woven = mddsm_meta::weave::weave_or_err(concerns).map_err(mddsm_ui::UiError::from)?;
        self.submit_model(woven)
    }

    /// Executes a control script directly — the entry point of nodes whose
    /// upper layers are suppressed (e.g. 2SVM smart objects).
    pub fn run_script(&mut self, script: &ControlScript) -> Result<ExecutionReport> {
        self.run_script_internal(script)
    }

    fn run_script_internal(&mut self, script: &ControlScript) -> Result<ExecutionReport> {
        if script.is_empty() {
            return Ok(ExecutionReport::default());
        }
        match (&mut self.controller, &mut self.broker) {
            (Some(controller), Some(broker)) => {
                let mut port = BrokerAdapter::new(broker);
                Ok(controller.execute_script(script, &mut port)?)
            }
            (None, Some(broker)) => {
                // Controller suppressed: commands dispatch straight to the
                // broker, command name as selector.
                let mut report = ExecutionReport::default();
                for cmd in &script.commands {
                    let result = broker
                        .call(&cmd.name, &cmd.args.to_vec())
                        .map_err(CoreError::Broker)?;
                    report.commands += 1;
                    report.broker_calls += 1;
                    report.virtual_cost_us += result.cost.as_micros();
                }
                Ok(report)
            }
            (_, None) => {
                // No executor layers on this node: scripts go to the outbox
                // for an external dispatcher (the split deployments of
                // 2SVM/CSVM, §IV-C/D).
                self.outbox.push(script.clone());
                Ok(ExecutionReport::default())
            }
        }
    }

    /// Drains scripts produced by a node without executor layers.
    pub fn drain_outbox(&mut self) -> Vec<ControlScript> {
        std::mem::take(&mut self.outbox)
    }

    /// Removes and returns the installed (event-triggered) scripts — used
    /// by split deployments that install them on remote nodes.
    pub fn take_installed(&mut self) -> Vec<ControlScript> {
        std::mem::take(&mut self.installed)
    }

    /// Installs an event-triggered script on this node.
    pub fn install_script(&mut self, script: ControlScript) {
        self.installed.push(script);
    }

    /// Delivers an environmental event: runs any installed (triggered)
    /// scripts matching it and routes the event through the Controller's
    /// event handler.
    pub fn notify_event(
        &mut self,
        topic: &str,
        payload: &[(String, String)],
    ) -> Result<ExecutionReport> {
        let mut report = ExecutionReport::default();
        let matching: Vec<ControlScript> = self
            .installed
            .iter()
            .filter(|s| {
                s.trigger
                    .as_ref()
                    .map(|t| t.matches(topic, payload))
                    .unwrap_or(false)
            })
            .cloned()
            .collect();
        for script in matching {
            let r = self.run_script_internal(&script)?;
            report.merge(&r);
        }
        if let (Some(controller), Some(broker)) = (&mut self.controller, &mut self.broker) {
            controller.enqueue(mddsm_controller::engine::Signal::Event {
                topic: topic.to_owned(),
                payload: payload.to_vec(),
            });
            let mut port = BrokerAdapter::new(broker);
            let r = controller.process_signals(&mut port)?;
            report.merge(&r);
        }
        Ok(report)
    }

    /// Runs one autonomic MAPE cycle on the Broker layer; emitted events
    /// are routed like [`MdDsmPlatform::notify_event`].
    pub fn autonomic_tick(&mut self) -> Result<ExecutionReport> {
        let broker = self
            .broker
            .as_mut()
            .ok_or(CoreError::LayerSuppressed("broker"))?;
        let emitted = broker.autonomic_tick()?;
        let mut report = ExecutionReport::default();
        for topic in emitted {
            let r = self.notify_event(&topic, &[])?;
            report.merge(&r);
            report.events.push(topic);
        }
        Ok(report)
    }

    /// Number of installed (event-triggered) scripts.
    pub fn installed_scripts(&self) -> usize {
        self.installed.len()
    }

    /// The Broker layer, when present.
    pub fn broker(&self) -> Option<&GenericBroker> {
        self.broker.as_ref()
    }

    /// Mutable Broker access (failure injection in tests/benches).
    pub fn broker_mut(&mut self) -> Option<&mut GenericBroker> {
        self.broker.as_mut()
    }

    /// The Controller layer, when present.
    pub fn controller(&self) -> Option<&ControllerEngine> {
        self.controller.as_ref()
    }

    /// Mutable Controller access (context/policy tuning at runtime).
    pub fn controller_mut(&mut self) -> Option<&mut ControllerEngine> {
        self.controller.as_mut()
    }

    /// The Synthesis layer, when present.
    pub fn synthesis(&self) -> Option<&SynthesisEngine> {
        self.synthesis.as_ref()
    }

    /// The command trace of the underlying resources (experiment E1's
    /// observable).
    pub fn command_trace(&self) -> Vec<String> {
        self.broker
            .as_ref()
            .map(|b| b.hub().command_trace())
            .unwrap_or_default()
    }
}

impl std::fmt::Debug for MdDsmPlatform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MdDsmPlatform")
            .field("name", &self.name)
            .field("domain", &self.domain)
            .field("ui", &self.ui.is_some())
            .field("synthesis", &self.synthesis.is_some())
            .field("controller", &self.controller.is_some())
            .field("broker", &self.broker.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mwmodel::PlatformModelBuilder;
    use mddsm_broker::BrokerModelBuilder;
    use mddsm_controller::procedure::{Instr, Procedure};
    use mddsm_controller::{ActionRegistry, DscRegistry, ProcedureRepository};
    use mddsm_meta::metamodel::{DataType, MetamodelBuilder};
    use mddsm_meta::Value;
    use mddsm_sim::resource::Outcome;
    use mddsm_synthesis::lts::{ChangePattern, CommandTemplate};
    use mddsm_synthesis::LtsBuilder;

    /// A minimal "lamp" domain: models declare lamps; synthesis emits
    /// `turnOn` commands; the controller's procedure calls `power.on`.
    fn dsk() -> DomainKnowledge {
        let dsml = MetamodelBuilder::new("lamps")
            .class("Lamp", |c| c.attr("name", DataType::Str))
            .build()
            .unwrap();
        let lts = LtsBuilder::new()
            .state("s")
            .initial("s")
            .transition("s", "s", ChangePattern::create("Lamp"), |t| {
                t.emit(CommandTemplate::new("turnOn", "$key").with("lamp", "$id"))
            })
            .transition("s", "s", ChangePattern::delete("Lamp"), |t| {
                t.emit(CommandTemplate::new("turnOff", "$key").with("lamp", "$id"))
            })
            .build()
            .unwrap();
        let mut dscs = DscRegistry::new();
        dscs.operation("Switch", None, "switch a lamp").unwrap();
        let mut procedures = ProcedureRepository::new();
        procedures
            .add(Procedure::simple(
                "switchOn",
                "Switch",
                vec![
                    Instr::BrokerCall {
                        api: "power".into(),
                        op: "set".into(),
                        args: vec![(
                            "lamp".into(),
                            mddsm_controller::procedure::Operand::arg("lamp"),
                        )],
                    },
                    Instr::Complete,
                ],
            ))
            .unwrap();
        DomainKnowledge {
            dsml,
            lts,
            dscs,
            procedures,
            actions: ActionRegistry::new(),
            command_map: vec![
                ("turnOn".into(), "Switch".into()),
                ("turnOff".into(), "Switch".into()),
            ],
            event_commands: vec![],
        }
    }

    fn broker_model() -> Model {
        BrokerModelBuilder::new("lampBroker")
            .call_handler("power", "power.set")
            .action(
                "power",
                "set",
                "sim.power",
                "set",
                &["lamp=$lamp"],
                None,
                &["switches=+1"],
            )
            .build()
    }

    fn hub() -> ResourceHub {
        let mut h = ResourceHub::new(3);
        h.register_fn("sim.power", |_, _| Outcome::ok());
        h
    }

    fn platform() -> MdDsmPlatform {
        let pm = PlatformModelBuilder::new("lampvm", "lighting")
            .ui("lamps")
            .synthesis("Skip")
            .controller(|_, _| {})
            .broker("lampBroker")
            .build();
        PlatformBuilder::new(&pm, dsk())
            .unwrap()
            .broker_model(broker_model())
            .resources(hub())
            .build()
            .unwrap()
    }

    #[test]
    fn end_to_end_model_execution() {
        let mut p = platform();
        assert_eq!(p.name(), "lampvm");
        let mut session = p.open_session().unwrap();
        let lamp = session.create("Lamp").unwrap();
        session.set(lamp, "name", "desk").unwrap();
        let model = session.submit().unwrap();
        let report = p.submit_model(model).unwrap();
        assert_eq!(report.synthesized_commands, 1);
        assert_eq!(report.execution.commands, 1);
        assert_eq!(p.command_trace(), vec!["sim.power.set(lamp=desk)"]);
        assert_eq!(p.broker().unwrap().state().int("switches"), Some(1));
    }

    #[test]
    fn incremental_model_updates() {
        let mut p = platform();
        let mut session = p.open_session().unwrap();
        let a = session.create("Lamp").unwrap();
        session.set(a, "name", "a").unwrap();
        p.submit_model(session.submit().unwrap()).unwrap();
        // Add a second lamp: only the delta executes.
        let b = session.create("Lamp").unwrap();
        session.set(b, "name", "b").unwrap();
        let r = p.submit_model(session.submit().unwrap()).unwrap();
        assert_eq!(r.synthesized_commands, 1);
        assert_eq!(p.command_trace().len(), 2);
        // Remove lamp a: turnOff command.
        session.delete(a).unwrap();
        let r = p.submit_model(session.submit().unwrap()).unwrap();
        assert_eq!(r.synthesized_commands, 1);
        assert_eq!(p.command_trace()[2], "sim.power.set(lamp=a)");
    }

    #[test]
    fn text_submission() {
        let mut p = platform();
        let r = p
            .submit_text("model m conformsTo lamps { Lamp l { name = \"hall\" } }")
            .unwrap();
        assert_eq!(r.execution.commands, 1);
        assert!(p
            .submit_text("model m conformsTo lamps { Lamp l { } }")
            .is_err());
        assert!(p.submit_text("garbage").is_err());
    }

    #[test]
    fn suppressed_layers_are_reported() {
        let pm = PlatformModelBuilder::new("obj", "lighting")
            .controller(|_, _| {})
            .broker("lampBroker")
            .build();
        let mut p = PlatformBuilder::new(&pm, dsk())
            .unwrap()
            .broker_model(broker_model())
            .resources(hub())
            .build()
            .unwrap();
        assert!(matches!(
            p.open_session(),
            Err(CoreError::LayerSuppressed("ui"))
        ));
        assert!(matches!(
            p.submit_model(Model::new("lamps")),
            Err(CoreError::LayerSuppressed("synthesis"))
        ));
        // But direct script execution works (smart-object mode).
        let script = ControlScript::immediate(vec![
            mddsm_synthesis::Command::new("turnOn", "").with("lamp", "desk")
        ]);
        let r = p.run_script(&script).unwrap();
        assert_eq!(r.commands, 1);
        assert_eq!(p.command_trace(), vec!["sim.power.set(lamp=desk)"]);
    }

    #[test]
    fn controllerless_node_calls_broker_directly() {
        let pm = PlatformModelBuilder::new("thin", "lighting")
            .broker("lampBroker")
            .build();
        let mut p = PlatformBuilder::new(&pm, dsk())
            .unwrap()
            .broker_model(broker_model())
            .resources(hub())
            .build()
            .unwrap();
        let script = ControlScript::immediate(vec![
            mddsm_synthesis::Command::new("power.set", "").with("lamp", "x")
        ]);
        let r = p.run_script(&script).unwrap();
        assert_eq!(r.broker_calls, 1);
        assert_eq!(p.command_trace(), vec!["sim.power.set(lamp=x)"]);
    }

    #[test]
    fn builder_rejects_mismatches() {
        // DSML mismatch.
        let pm = PlatformModelBuilder::new("x", "d").ui("other").build();
        assert!(PlatformBuilder::new(&pm, dsk()).is_err());
        // Missing broker model.
        let pm = PlatformModelBuilder::new("x", "d")
            .broker("lampBroker")
            .build();
        assert!(PlatformBuilder::new(&pm, dsk())
            .unwrap()
            .resources(hub())
            .build()
            .is_err());
        // Broker model name mismatch.
        let pm = PlatformModelBuilder::new("x", "d")
            .broker("otherBroker")
            .build();
        let r = PlatformBuilder::new(&pm, dsk())
            .unwrap()
            .broker_model(broker_model())
            .resources(hub())
            .build();
        assert!(r.is_err());
    }

    #[test]
    fn reflective_platform_model_defaults_apply() {
        // ControllerLayerSpec defaults flow into the engine config.
        let pm = PlatformModelBuilder::new("x", "d")
            .ui("lamps")
            .synthesis("Skip")
            .controller(|m, c| m.set_attr(c, "adaptive", Value::from(false)))
            .broker("lampBroker")
            .build();
        let p = PlatformBuilder::new(&pm, dsk())
            .unwrap()
            .broker_model(broker_model())
            .resources(hub())
            .build()
            .unwrap();
        assert!(p.controller().is_some());
    }
}
