//! MD-DSM platform assembly — the paper's primary contribution.
//!
//! "Initially, the middleware platform is generated from two input models:
//! a model of its structural elements, and a model of the domain knowledge
//! describing its operational semantics" (§III, Fig. 2). This crate
//! provides exactly that factory:
//!
//! * [`mwmodel`] — the **middleware metamodel** (Fig. 5): one
//!   `MiddlewarePlatform` with per-layer specification objects (UI,
//!   Synthesis, Controller, Broker). Any layer may be suppressed, matching
//!   the split deployments of 2SVM and CSVM (§IV).
//! * [`dsk`] — the **domain knowledge** bundle: the application DSML, the
//!   synthesis LTS, the DSC taxonomy, procedures, predefined actions, the
//!   command→DSC map — everything domain-specific, kept separate from the
//!   model of execution (§V-B, §VI).
//! * [`platform`] — [`platform::MdDsmPlatform`]: the generated platform, a
//!   four-layer model-execution engine. User models submitted at the top
//!   flow through validation (UI), model comparison + LTS interpretation
//!   (Synthesis), command classification + action/IM execution
//!   (Controller), and model-defined action dispatch over simulated
//!   resources (Broker).
//! * [`port`] — the Controller→Broker adapter (the "set of exposed APIs"
//!   of §V-B).
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs` at the workspace root for a complete,
//! runnable walk-through of defining a tiny domain and executing an
//! application model on the generated platform.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dsk;
pub mod mwmodel;
pub mod platform;
pub mod port;

pub use dsk::DomainKnowledge;
pub use mwmodel::{middleware_metamodel, PlatformModelBuilder, PlatformSpec};
pub use platform::{MdDsmPlatform, PlatformBuilder, PlatformReport};

/// Errors produced while generating or running a platform.
#[derive(Debug)]
pub enum CoreError {
    /// The middleware (structural) model is invalid.
    InvalidPlatformModel(String),
    /// The domain knowledge bundle is inconsistent.
    InvalidDomainKnowledge(String),
    /// A required layer is suppressed in this configuration.
    LayerSuppressed(&'static str),
    /// UI-layer error.
    Ui(mddsm_ui::UiError),
    /// Synthesis-layer error.
    Synthesis(mddsm_synthesis::SynthesisError),
    /// Controller-layer error.
    Controller(mddsm_controller::ControllerError),
    /// Broker-layer error.
    Broker(mddsm_broker::BrokerError),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::InvalidPlatformModel(m) => write!(f, "invalid platform model: {m}"),
            CoreError::InvalidDomainKnowledge(m) => write!(f, "invalid domain knowledge: {m}"),
            CoreError::LayerSuppressed(l) => {
                write!(f, "layer `{l}` is suppressed in this configuration")
            }
            CoreError::Ui(e) => write!(f, "UI layer: {e}"),
            CoreError::Synthesis(e) => write!(f, "Synthesis layer: {e}"),
            CoreError::Controller(e) => write!(f, "Controller layer: {e}"),
            CoreError::Broker(e) => write!(f, "Broker layer: {e}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<mddsm_ui::UiError> for CoreError {
    fn from(e: mddsm_ui::UiError) -> Self {
        CoreError::Ui(e)
    }
}
impl From<mddsm_synthesis::SynthesisError> for CoreError {
    fn from(e: mddsm_synthesis::SynthesisError) -> Self {
        CoreError::Synthesis(e)
    }
}
impl From<mddsm_controller::ControllerError> for CoreError {
    fn from(e: mddsm_controller::ControllerError) -> Self {
        CoreError::Controller(e)
    }
}
impl From<mddsm_broker::BrokerError> for CoreError {
    fn from(e: mddsm_broker::BrokerError) -> Self {
        CoreError::Broker(e)
    }
}

/// Result alias for platform operations.
pub type Result<T> = std::result::Result<T, CoreError>;
