//! The Controller→Broker port: "the execution of an EU involves making
//! calls to the underlying Broker layer through a set of exposed APIs"
//! (§V-B).
//!
//! EU instructions name a broker API and operation; the adapter joins them
//! into the broker-handler selector `api.op` (broker models declare their
//! handlers with such selectors) and converts outcomes/costs into
//! [`PortResponse`]s the stack machine understands.

use mddsm_broker::{BrokerError, GenericBroker};
use mddsm_controller::{BrokerPort, PortResponse};
use mddsm_sim::resource::Outcome;

/// Adapts a [`GenericBroker`] into the Controller's [`BrokerPort`].
pub struct BrokerAdapter<'a> {
    broker: &'a mut GenericBroker,
}

impl<'a> BrokerAdapter<'a> {
    /// Wraps a broker for the duration of an execution.
    pub fn new(broker: &'a mut GenericBroker) -> Self {
        BrokerAdapter { broker }
    }
}

impl BrokerPort for BrokerAdapter<'_> {
    fn invoke(&mut self, api: &str, op: &str, args: &[(String, String)]) -> PortResponse {
        let selector = if api.is_empty() {
            op.to_owned()
        } else {
            format!("{api}.{op}")
        };
        let args_vec: Vec<(String, String)> = args.to_vec();
        match self.broker.call(&selector, &args_vec) {
            Ok(result) => {
                let cost_us = result.cost.as_micros();
                match result.outcome {
                    Outcome::Ok(values) => PortResponse {
                        ok: true,
                        values: values.into_iter().collect(),
                        reason: None,
                        cost_us,
                    },
                    Outcome::Failed(reason) => PortResponse {
                        ok: false,
                        values: Default::default(),
                        reason: Some(reason),
                        cost_us,
                    },
                }
            }
            Err(e @ (BrokerError::NoHandler(_) | BrokerError::NoAction(_))) => {
                PortResponse::failed(e.to_string(), 0)
            }
            Err(e) => PortResponse::failed(e.to_string(), 0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mddsm_broker::BrokerModelBuilder;
    use mddsm_sim::resource::Outcome;
    use mddsm_sim::ResourceHub;

    fn broker() -> GenericBroker {
        let mut hub = ResourceHub::new(1);
        hub.register_fn("svc", |op, _| {
            if op == "fail" {
                Outcome::Failed("boom".into())
            } else {
                Outcome::ok_with("r", "1")
            }
        });
        let model = BrokerModelBuilder::new("b")
            .call_handler("ok", "media.open")
            .action("ok", "a", "svc", "open", &["peer=$peer"], None, &[])
            .call_handler("bad", "media.fail")
            .action("bad", "b", "svc", "fail", &[], None, &[])
            .build();
        GenericBroker::from_model(&model, hub).unwrap()
    }

    #[test]
    fn success_maps_values() {
        let mut b = broker();
        let mut port = BrokerAdapter::new(&mut b);
        let r = port.invoke("media", "open", &[("peer".into(), "ana".into())]);
        assert!(r.ok);
        assert_eq!(r.values.get("r").map(String::as_str), Some("1"));
    }

    #[test]
    fn resource_failure_maps_to_not_ok() {
        let mut b = broker();
        let mut port = BrokerAdapter::new(&mut b);
        let r = port.invoke("media", "fail", &[]);
        assert!(!r.ok);
        assert_eq!(r.reason.as_deref(), Some("boom"));
    }

    #[test]
    fn missing_handler_maps_to_not_ok() {
        let mut b = broker();
        let mut port = BrokerAdapter::new(&mut b);
        let r = port.invoke("media", "nothing", &[]);
        assert!(!r.ok);
        assert!(r.reason.unwrap().contains("no handler"));
    }

    #[test]
    fn empty_api_uses_bare_op() {
        let mut hub = ResourceHub::new(1);
        hub.register_fn("svc", |_, _| Outcome::ok());
        let model = BrokerModelBuilder::new("b")
            .call_handler("h", "ping")
            .action("h", "a", "svc", "ping", &[], None, &[])
            .build();
        let mut b = GenericBroker::from_model(&model, hub).unwrap();
        let mut port = BrokerAdapter::new(&mut b);
        assert!(port.invoke("", "ping", &[]).ok);
    }
}
