//! The middleware metamodel (Fig. 5) and platform-model handling.
//!
//! "The macro structure of the middleware metamodel is in accordance with
//! the layered architecture […] Each layer is defined by its own
//! (sub-)metamodel" (§V-A). A *platform model* instantiates this metamodel
//! to describe one concrete middleware configuration; layers are optional
//! ("an entire layer may be suppressed if not needed", §V-C).

use crate::{CoreError, Result};
use mddsm_meta::metamodel::{DataType, Metamodel, MetamodelBuilder, Multiplicity};
use mddsm_meta::model::Model;
use mddsm_meta::Value;

/// Name under which the middleware metamodel registers.
pub const MIDDLEWARE_METAMODEL: &str = "mddsm.middleware";

/// Builds the Fig. 5 middleware metamodel.
pub fn middleware_metamodel() -> Metamodel {
    MetamodelBuilder::new(MIDDLEWARE_METAMODEL)
        .enumeration("UnmatchedPolicy", ["Skip", "Error", "Passthrough"])
        .enumeration("CasePreference", ["Predefined", "Dynamic"])
        .enumeration("Objective", ["MinimizeCost", "MaximizeReliability", "MinimizeMemory"])
        .class("MiddlewarePlatform", |c| {
            c.attr("name", DataType::Str)
                .attr("domain", DataType::Str)
                .contains("ui", "UiLayerSpec", Multiplicity::OPT)
                .contains("synthesis", "SynthesisLayerSpec", Multiplicity::OPT)
                .contains("controller", "ControllerLayerSpec", Multiplicity::OPT)
                .contains("broker", "BrokerLayerSpec", Multiplicity::OPT)
                .invariant("named", "self.name <> \"\"")
        })
        .class("UiLayerSpec", |c| {
            // The DSML this platform's UI layer edits; must match the DSK.
            c.attr("dsml", DataType::Str)
        })
        .class("SynthesisLayerSpec", |c| {
            c.attr_default(
                "unmatched",
                DataType::Enum("UnmatchedPolicy".into()),
                Value::enumeration("UnmatchedPolicy", "Skip"),
            )
        })
        .class("ControllerLayerSpec", |c| {
            c.attr_default("adaptive", DataType::Bool, Value::from(true))
                .attr_default("maxAdaptations", DataType::Int, Value::from(4))
                .attr_default("maxRetries", DataType::Int, Value::from(4))
                .attr_default("beamWidth", DataType::Int, Value::from(8))
                .attr_default("maxDepth", DataType::Int, Value::from(16))
                .attr_default(
                    "prefer",
                    DataType::Enum("CasePreference".into()),
                    Value::enumeration("CasePreference", "Predefined"),
                )
                .attr_default("lowMemoryPrefersDynamic", DataType::Bool, Value::from(true))
                .attr_default(
                    "objective",
                    DataType::Enum("Objective".into()),
                    Value::enumeration("Objective", "MinimizeCost"),
                )
                .invariant("sane-limits", "self.maxAdaptations >= 0 and self.maxRetries >= 0 and self.beamWidth > 0 and self.maxDepth > 0")
        })
        .class("BrokerLayerSpec", |c| {
            // Name of the broker model supplied alongside the platform
            // model (broker structure has its own metamodel, Fig. 6).
            c.attr("brokerModel", DataType::Str)
        })
        .build()
        .expect("middleware metamodel is well-formed")
}

/// Parsed view of a platform model.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformSpec {
    /// Platform name.
    pub name: String,
    /// Domain label (documentation).
    pub domain: String,
    /// DSML name when the UI layer is present.
    pub ui_dsml: Option<String>,
    /// Synthesis unmatched-change policy when the layer is present.
    pub synthesis_unmatched: Option<mddsm_synthesis::UnmatchedPolicy>,
    /// Controller engine configuration when the layer is present.
    pub controller: Option<mddsm_controller::EngineConfig>,
    /// Controller classification preference.
    pub controller_prefer: Option<mddsm_controller::Case>,
    /// Low-memory dynamic preference flag.
    pub controller_low_memory_dynamic: bool,
    /// Broker model name when the layer is present.
    pub broker_model: Option<String>,
}

impl PlatformSpec {
    /// Parses and validates a platform model.
    pub fn from_model(model: &Model) -> Result<PlatformSpec> {
        let mm = middleware_metamodel();
        if model.metamodel_name() != MIDDLEWARE_METAMODEL {
            return Err(CoreError::InvalidPlatformModel(format!(
                "expected metamodel `{MIDDLEWARE_METAMODEL}`, got `{}`",
                model.metamodel_name()
            )));
        }
        mddsm_meta::conformance::check(model, &mm)
            .map_err(|e| CoreError::InvalidPlatformModel(e.to_string()))?;
        let platforms = model.all_of_class("MiddlewarePlatform");
        let [p] = platforms.as_slice() else {
            return Err(CoreError::InvalidPlatformModel(format!(
                "expected exactly 1 MiddlewarePlatform, found {}",
                platforms.len()
            )));
        };
        let p = *p;

        let ui_dsml = model
            .ref_one(p, "ui")
            .and_then(|u| model.attr_str(u, "dsml"))
            .map(str::to_owned);

        let synthesis_unmatched = model.ref_one(p, "synthesis").map(|s| {
            match model.attr(s, "unmatched").and_then(Value::as_enum_literal) {
                Some("Error") => mddsm_synthesis::UnmatchedPolicy::Error,
                Some("Passthrough") => mddsm_synthesis::UnmatchedPolicy::Passthrough,
                _ => mddsm_synthesis::UnmatchedPolicy::Skip,
            }
        });

        let mut controller = None;
        let mut controller_prefer = None;
        let mut controller_low_memory_dynamic = true;
        if let Some(c) = model.ref_one(p, "controller") {
            let objective = match model.attr(c, "objective").and_then(Value::as_enum_literal) {
                Some("MaximizeReliability") => {
                    mddsm_controller::PolicyObjective::MaximizeReliability
                }
                Some("MinimizeMemory") => mddsm_controller::PolicyObjective::MinimizeMemory,
                _ => mddsm_controller::PolicyObjective::MinimizeCost,
            };
            controller = Some(mddsm_controller::EngineConfig {
                adaptive: model.attr_bool(c, "adaptive").unwrap_or(true),
                max_adaptations: model.attr_int(c, "maxAdaptations").unwrap_or(4) as u32,
                max_retries: model.attr_int(c, "maxRetries").unwrap_or(4) as u32,
                generation: mddsm_controller::GenerationConfig {
                    policy: objective,
                    beam_width: model.attr_int(c, "beamWidth").unwrap_or(8) as usize,
                    max_depth: model.attr_int(c, "maxDepth").unwrap_or(16) as usize,
                    ..Default::default()
                },
            });
            controller_prefer = Some(
                match model.attr(c, "prefer").and_then(Value::as_enum_literal) {
                    Some("Dynamic") => mddsm_controller::Case::Dynamic,
                    _ => mddsm_controller::Case::Predefined,
                },
            );
            controller_low_memory_dynamic = model
                .attr_bool(c, "lowMemoryPrefersDynamic")
                .unwrap_or(true);
        }

        let broker_model = model
            .ref_one(p, "broker")
            .and_then(|b| model.attr_str(b, "brokerModel"))
            .map(str::to_owned);

        Ok(PlatformSpec {
            name: model.attr_str(p, "name").unwrap_or_default().to_owned(),
            domain: model.attr_str(p, "domain").unwrap_or_default().to_owned(),
            ui_dsml,
            synthesis_unmatched,
            controller,
            controller_prefer,
            controller_low_memory_dynamic,
            broker_model,
        })
    }
}

/// Builder producing platform models (instances of the Fig. 5 metamodel).
#[derive(Debug)]
pub struct PlatformModelBuilder {
    model: Model,
    platform: mddsm_meta::ObjectId,
}

impl PlatformModelBuilder {
    /// Starts a platform model.
    pub fn new(name: &str, domain: &str) -> Self {
        let mut model = Model::new(MIDDLEWARE_METAMODEL);
        let platform = model.create("MiddlewarePlatform");
        model.set_attr(platform, "name", Value::from(name));
        model.set_attr(platform, "domain", Value::from(domain));
        PlatformModelBuilder { model, platform }
    }

    /// Adds the UI layer editing the given DSML.
    pub fn ui(mut self, dsml: &str) -> Self {
        let u = self.model.create("UiLayerSpec");
        self.model.set_attr(u, "dsml", Value::from(dsml));
        self.model.add_ref(self.platform, "ui", u);
        self
    }

    /// Adds the Synthesis layer with an unmatched-change policy name
    /// (`Skip` | `Error` | `Passthrough`).
    pub fn synthesis(mut self, unmatched: &str) -> Self {
        let s = self.model.create("SynthesisLayerSpec");
        self.model.set_attr(
            s,
            "unmatched",
            Value::enumeration("UnmatchedPolicy", unmatched),
        );
        self.model.add_ref(self.platform, "synthesis", s);
        self
    }

    /// Adds the Controller layer with defaults; tune through the closure.
    pub fn controller(mut self, f: impl FnOnce(&mut Model, mddsm_meta::ObjectId)) -> Self {
        let mm = middleware_metamodel();
        let c = self
            .model
            .create_with_defaults("ControllerLayerSpec", &mm)
            .expect("ControllerLayerSpec instantiable");
        f(&mut self.model, c);
        self.model.add_ref(self.platform, "controller", c);
        self
    }

    /// Adds the Broker layer referencing a broker model by name.
    pub fn broker(mut self, broker_model: &str) -> Self {
        let b = self.model.create("BrokerLayerSpec");
        self.model
            .set_attr(b, "brokerModel", Value::from(broker_model));
        self.model.add_ref(self.platform, "broker", b);
        self
    }

    /// Finishes and returns the platform model.
    pub fn build(self) -> Model {
        self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metamodel_well_formed() {
        let mm = middleware_metamodel();
        assert!(mm.class("MiddlewarePlatform").is_some());
        assert!(mm.enum_def("UnmatchedPolicy").is_some());
    }

    #[test]
    fn full_platform_roundtrip() {
        let model = PlatformModelBuilder::new("cvm", "communication")
            .ui("cml")
            .synthesis("Error")
            .controller(|m, c| {
                m.set_attr(c, "adaptive", Value::from(false));
                m.set_attr(c, "prefer", Value::enumeration("CasePreference", "Dynamic"));
                m.set_attr(
                    c,
                    "objective",
                    Value::enumeration("Objective", "MinimizeMemory"),
                );
            })
            .broker("ncb")
            .build();
        let spec = PlatformSpec::from_model(&model).unwrap();
        assert_eq!(spec.name, "cvm");
        assert_eq!(spec.ui_dsml.as_deref(), Some("cml"));
        assert_eq!(
            spec.synthesis_unmatched,
            Some(mddsm_synthesis::UnmatchedPolicy::Error)
        );
        let c = spec.controller.unwrap();
        assert!(!c.adaptive);
        assert!(matches!(
            c.generation.policy,
            mddsm_controller::PolicyObjective::MinimizeMemory
        ));
        assert_eq!(
            spec.controller_prefer,
            Some(mddsm_controller::Case::Dynamic)
        );
        assert_eq!(spec.broker_model.as_deref(), Some("ncb"));
    }

    #[test]
    fn layers_may_be_suppressed() {
        // A smart-object node: bottom two layers only (§IV-C).
        let model = PlatformModelBuilder::new("2svm-object", "smartspaces")
            .controller(|_, _| {})
            .broker("objBroker")
            .build();
        let spec = PlatformSpec::from_model(&model).unwrap();
        assert!(spec.ui_dsml.is_none());
        assert!(spec.synthesis_unmatched.is_none());
        assert!(spec.controller.is_some());
    }

    #[test]
    fn invalid_models_rejected() {
        // Wrong metamodel.
        assert!(matches!(
            PlatformSpec::from_model(&Model::new("zzz")),
            Err(CoreError::InvalidPlatformModel(_))
        ));
        // No platform object.
        assert!(PlatformSpec::from_model(&Model::new(MIDDLEWARE_METAMODEL)).is_err());
        // Two platform objects.
        let mut m = PlatformModelBuilder::new("a", "d").build();
        let extra = m.create("MiddlewarePlatform");
        m.set_attr(extra, "name", Value::from("b"));
        m.set_attr(extra, "domain", Value::from("d"));
        assert!(PlatformSpec::from_model(&m).is_err());
        // Invariant violation: empty name.
        let m = PlatformModelBuilder::new("", "d").build();
        assert!(PlatformSpec::from_model(&m).is_err());
        // Bad limit values caught by the sane-limits invariant.
        let m = PlatformModelBuilder::new("x", "d")
            .controller(|m, c| m.set_attr(c, "beamWidth", Value::from(0)))
            .build();
        assert!(PlatformSpec::from_model(&m).is_err());
    }
}
