//! Middleware models are ordinary model artifacts: platform models and
//! broker models serialize to the textual format, travel as text, and
//! regenerate identical platforms — the tool-chain property behind Fig. 2.

use mddsm_broker::{broker_metamodel, BrokerModelBuilder, GenericBroker};
use mddsm_core::mwmodel::{middleware_metamodel, PlatformModelBuilder, PlatformSpec};
use mddsm_meta::text;
use mddsm_sim::resource::Outcome;
use mddsm_sim::ResourceHub;

#[test]
fn platform_models_roundtrip_through_text() {
    let model = PlatformModelBuilder::new("cvm", "communication")
        .ui("cml")
        .synthesis("Error")
        .controller(|m, c| m.set_attr(c, "adaptive", mddsm_meta::Value::from(false)))
        .broker("ncb")
        .build();
    let spec_before = PlatformSpec::from_model(&model).unwrap();

    let transported = text::write(&model);
    let parsed = text::parse(&transported).unwrap();
    mddsm_meta::conformance::check(&parsed, &middleware_metamodel()).unwrap();
    let spec_after = PlatformSpec::from_model(&parsed).unwrap();
    assert_eq!(spec_before, spec_after);
}

#[test]
fn broker_models_roundtrip_and_behave_identically() {
    let model = BrokerModelBuilder::new("rt")
        .call_handler("h", "svc.op")
        .policy("always", "true")
        .action(
            "h",
            "a",
            "res",
            "op",
            &["k=$k"],
            Some("always"),
            &["count=+1"],
        )
        .bind_resource("res", "sim.res")
        .build();
    let transported = text::write(&model);
    let parsed = text::parse(&transported).unwrap();
    mddsm_meta::conformance::check(&parsed, &broker_metamodel()).unwrap();

    let run = |m: &mddsm_meta::Model| {
        let mut hub = ResourceHub::new(9);
        hub.register_fn("sim.res", |_, _| Outcome::ok_with("r", "1"));
        let mut b = GenericBroker::from_model(m, hub).unwrap();
        let result = b
            .call("svc.op", &vec![("k".to_owned(), "42".to_owned())])
            .unwrap();
        (
            result.action,
            b.hub().command_trace(),
            b.state().int("count"),
        )
    };
    assert_eq!(run(&model), run(&parsed));
}

#[test]
fn hand_written_platform_model_text_is_accepted() {
    // A platform model authored directly in the textual format — the
    // "middleware engineer writes a model" workflow.
    let src = r#"
        model myplatform conformsTo "mddsm.middleware" {
            MiddlewarePlatform p {
                name = "tinyvm"
                domain = "demo"
                ui -> u
                synthesis -> s
                controller -> c
                broker -> b
            }
            UiLayerSpec u { dsml = "toy" }
            SynthesisLayerSpec s { unmatched = UnmatchedPolicy::Passthrough }
            ControllerLayerSpec c { adaptive = false maxAdaptations = 2 maxRetries = 1
                                    beamWidth = 4 maxDepth = 8
                                    prefer = CasePreference::Dynamic
                                    lowMemoryPrefersDynamic = false
                                    objective = Objective::MaximizeReliability }
            BrokerLayerSpec b { brokerModel = "toyBroker" }
        }
    "#;
    let model = text::parse(src).unwrap();
    let spec = PlatformSpec::from_model(&model).unwrap();
    assert_eq!(spec.name, "tinyvm");
    assert_eq!(
        spec.synthesis_unmatched,
        Some(mddsm_synthesis::UnmatchedPolicy::Passthrough)
    );
    let c = spec.controller.unwrap();
    assert!(!c.adaptive);
    assert_eq!(c.max_retries, 1);
    assert_eq!(c.generation.beam_width, 4);
    assert!(matches!(
        c.generation.policy,
        mddsm_controller::PolicyObjective::MaximizeReliability
    ));
}

#[test]
fn malformed_platform_text_fails_at_the_right_layer() {
    // Syntactic garbage fails in the parser...
    assert!(text::parse("model x conformsTo").is_err());
    // ...well-formed text of a wrong shape fails at conformance/spec.
    let src = r#"model m conformsTo "mddsm.middleware" {
        MiddlewarePlatform p { name = "x" domain = "d" }
        MiddlewarePlatform q { name = "y" domain = "d" }
    }"#;
    let model = text::parse(src).unwrap();
    assert!(PlatformSpec::from_model(&model).is_err());
}
