//! Synthesis layer of the MD-DSM reference architecture.
//!
//! "The Synthesis layer is responsible for transforming application models
//! into sequences of commands" (§III). Its semantics "involves comparing
//! two models at runtime: the model that is currently running (an empty
//! model if the system has just been started) and a new (updated) model
//! submitted by the user" (§V-B), with domain behaviour encoded as labeled
//! transition systems.
//!
//! The layer's three components (§V-A) map to this crate's modules:
//!
//! * **model comparator** — delegated to [`mddsm_meta::diff`]; wrapped by
//!   the [`engine::SynthesisEngine`].
//! * **change interpreter** ([`interpreter`]) — processes the change list,
//!   driving a domain-specific [`lts::Lts`] whose transitions emit control
//!   commands.
//! * **dispatcher** ([`engine`]) — validates and installs the new runtime
//!   model and hands the generated [`script::ControlScript`]s downstream.
//!
//! The domain-specific knowledge (DSK) of the layer is the DSML metamodel,
//! the LTS, and the command vocabulary; the model of execution (MoE) is the
//! comparator/interpreter/dispatcher machinery, which is fully
//! domain-independent.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod interpreter;
pub mod lts;
pub mod script;

pub use engine::SynthesisEngine;
pub use interpreter::{ChangeInterpreter, InterpreterConfig, UnmatchedPolicy};
pub use lts::{ChangePattern, CommandTemplate, Lts, LtsBuilder};
pub use script::{Command, ControlScript};

/// Errors produced by the Synthesis layer.
#[derive(Debug, Clone, PartialEq)]
pub enum SynthesisError {
    /// The submitted model failed validation against the DSML metamodel.
    InvalidModel(String),
    /// A change had no enabled transition and the policy was `Error`.
    UnmatchedChange(String),
    /// A guard expression failed to evaluate.
    GuardFailed(String),
    /// The LTS definition is ill-formed.
    IllFormedLts(String),
    /// An error bubbled up from the modeling substrate.
    Meta(String),
}

impl std::fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SynthesisError::InvalidModel(m) => write!(f, "invalid application model: {m}"),
            SynthesisError::UnmatchedChange(m) => write!(f, "unmatched model change: {m}"),
            SynthesisError::GuardFailed(m) => write!(f, "guard evaluation failed: {m}"),
            SynthesisError::IllFormedLts(m) => write!(f, "ill-formed LTS: {m}"),
            SynthesisError::Meta(m) => write!(f, "model error: {m}"),
        }
    }
}

impl std::error::Error for SynthesisError {}

impl From<mddsm_meta::MetaError> for SynthesisError {
    fn from(e: mddsm_meta::MetaError) -> Self {
        SynthesisError::Meta(e.to_string())
    }
}

/// Result alias for synthesis operations.
pub type Result<T> = std::result::Result<T, SynthesisError>;
