//! The synthesis engine: comparator + interpreter + dispatcher in one
//! façade, owning the currently-executing runtime model.

use crate::interpreter::{ChangeInterpreter, Interpretation};
use crate::{Result, SynthesisError};
use mddsm_meta::conformance;
use mddsm_meta::diff::{diff, DiffOptions};
use mddsm_meta::metamodel::Metamodel;
use mddsm_meta::model::Model;
use std::sync::Arc;

/// The Synthesis layer façade.
///
/// Holds the DSML metamodel (domain-specific knowledge), the change
/// interpreter (with its domain LTS), and the currently-running model. User
/// model submissions flow through [`SynthesisEngine::submit`]:
///
/// 1. validate the new model against the DSML metamodel (conformance and
///    invariants);
/// 2. compare it with the current runtime model (the *model comparator*);
/// 3. interpret the change list through the LTS (the *change interpreter*);
/// 4. install the new model as current (the *dispatcher*).
pub struct SynthesisEngine {
    metamodel: Arc<Metamodel>,
    interpreter: ChangeInterpreter,
    current: Model,
    diff_opts: DiffOptions,
    submissions: u64,
}

impl SynthesisEngine {
    /// Creates an engine with an empty current model.
    pub fn new(metamodel: Arc<Metamodel>, interpreter: ChangeInterpreter) -> Self {
        let current = Model::new(metamodel.name());
        SynthesisEngine {
            metamodel,
            interpreter,
            current,
            diff_opts: DiffOptions::default(),
            submissions: 0,
        }
    }

    /// The currently-executing runtime model.
    pub fn current_model(&self) -> &Model {
        &self.current
    }

    /// The DSML metamodel.
    pub fn metamodel(&self) -> &Metamodel {
        &self.metamodel
    }

    /// Number of accepted submissions.
    pub fn submissions(&self) -> u64 {
        self.submissions
    }

    /// The current LTS state name (exposed for diagnostics).
    pub fn lts_state(&self) -> &str {
        self.interpreter.state_name()
    }

    /// Submits a new user model; on success the model becomes current and
    /// the resulting scripts are returned.
    pub fn submit(&mut self, new_model: Model) -> Result<Interpretation> {
        if new_model.metamodel_name() != self.metamodel.name() {
            return Err(SynthesisError::InvalidModel(format!(
                "model conforms to `{}`, engine expects `{}`",
                new_model.metamodel_name(),
                self.metamodel.name()
            )));
        }
        conformance::check(&new_model, &self.metamodel)
            .map_err(|e| SynthesisError::InvalidModel(e.to_string()))?;
        let changes = diff(&self.current, &new_model, &self.diff_opts);
        let out = self
            .interpreter
            .interpret(&changes, &new_model, &self.metamodel)?;
        self.current = new_model;
        self.submissions += 1;
        Ok(out)
    }

    /// Feeds a Controller-layer event to the LTS (e.g. a failure
    /// notification); may emit recovery commands.
    pub fn notify_event(&mut self, topic: &str) -> Result<crate::script::ControlScript> {
        self.interpreter.interpret_event(topic)
    }

    /// Clears the runtime model and resets the LTS — a full restart.
    pub fn reset(&mut self) {
        self.current = Model::new(self.metamodel.name());
        self.interpreter.reset();
    }
}

impl std::fmt::Debug for SynthesisEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SynthesisEngine")
            .field("metamodel", &self.metamodel.name())
            .field("state", &self.lts_state())
            .field("submissions", &self.submissions)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interpreter::InterpreterConfig;
    use crate::lts::{ChangePattern, CommandTemplate, LtsBuilder};
    use mddsm_meta::metamodel::{DataType, MetamodelBuilder, Multiplicity};
    use mddsm_meta::Value;

    fn mm() -> Arc<Metamodel> {
        Arc::new(
            MetamodelBuilder::new("cml")
                .class("Session", |c| {
                    c.attr("name", DataType::Str)
                        .reference("parties", "Party", Multiplicity::MANY)
                })
                .class("Party", |c| c.attr("name", DataType::Str))
                .build()
                .unwrap(),
        )
    }

    fn engine() -> SynthesisEngine {
        let lts = LtsBuilder::new()
            .state("idle")
            .state("open")
            .initial("idle")
            .transition("idle", "open", ChangePattern::create("Session"), |t| {
                t.emit(CommandTemplate::new("openSession", "$key"))
            })
            .transition("open", "open", ChangePattern::create("Party"), |t| {
                t.emit(CommandTemplate::new("addParty", "$key"))
            })
            .transition("open", "idle", ChangePattern::delete("Session"), |t| {
                t.emit(CommandTemplate::new("closeSession", "$key"))
            })
            .build()
            .unwrap();
        SynthesisEngine::new(
            mm(),
            ChangeInterpreter::new(lts, InterpreterConfig::default()),
        )
    }

    fn model_with_session() -> Model {
        let mut m = Model::new("cml");
        let s = m.create("Session");
        m.set_attr(s, "name", Value::from("s1"));
        m
    }

    #[test]
    fn incremental_submissions() {
        let mut e = engine();
        assert!(e.current_model().is_empty());

        let m1 = model_with_session();
        let out = e.submit(m1.clone()).unwrap();
        assert_eq!(out.immediate.render(), "openSession@Session[\"s1\"]()");
        assert_eq!(e.lts_state(), "open");
        assert_eq!(e.submissions(), 1);

        // Second submission adds a party; only the delta is synthesized.
        let mut m2 = m1.clone();
        let s = m2.all_of_class("Session")[0];
        let p = m2.create("Party");
        m2.set_attr(p, "name", Value::from("ana"));
        m2.add_ref(s, "parties", p);
        let out = e.submit(m2).unwrap();
        assert_eq!(out.immediate.render(), "addParty@Party[\"ana\"]()");
        assert_eq!(e.current_model().len(), 2);
    }

    #[test]
    fn invalid_model_rejected_and_state_unchanged() {
        let mut e = engine();
        let mut bad = Model::new("cml");
        bad.create("Session"); // missing mandatory `name`
        let err = e.submit(bad).unwrap_err();
        assert!(matches!(err, SynthesisError::InvalidModel(_)));
        assert!(e.current_model().is_empty());
        assert_eq!(e.lts_state(), "idle");
        assert_eq!(e.submissions(), 0);
    }

    #[test]
    fn wrong_metamodel_rejected() {
        let mut e = engine();
        let err = e.submit(Model::new("other")).unwrap_err();
        assert!(matches!(err, SynthesisError::InvalidModel(_)));
    }

    #[test]
    fn resubmitting_same_model_is_a_noop() {
        let mut e = engine();
        let m = model_with_session();
        e.submit(m.clone()).unwrap();
        let out = e.submit(m).unwrap();
        assert!(out.immediate.is_empty());
        assert!(out.installed.is_empty());
    }

    #[test]
    fn reset_clears_everything() {
        let mut e = engine();
        e.submit(model_with_session()).unwrap();
        e.reset();
        assert!(e.current_model().is_empty());
        assert_eq!(e.lts_state(), "idle");
        // Resubmitting the same model now re-generates the open command.
        let out = e.submit(model_with_session()).unwrap();
        assert_eq!(out.immediate.len(), 1);
    }
}
