//! The change interpreter: walks a change list, drives the domain LTS, and
//! emits control scripts.

use crate::lts::{ChangeKind, Label, Lts, StateId};
use crate::script::{Command, ControlScript, EventTrigger};
use crate::{Result, SynthesisError};
use mddsm_meta::constraint::{eval_bool, EvalEnv, Val};
use mddsm_meta::diff::{keys_of, Change, ChangeList, DiffOptions};
use mddsm_meta::metamodel::Metamodel;
use mddsm_meta::model::Model;
use mddsm_meta::Value;
use std::collections::BTreeMap;

/// What to do with a model change no transition matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UnmatchedPolicy {
    /// Ignore the change (the default: not every model edit has runtime
    /// meaning).
    #[default]
    Skip,
    /// Fail synthesis.
    Error,
    /// Emit a generic command named after the change kind, so downstream
    /// layers can decide.
    Passthrough,
}

/// Interpreter configuration.
#[derive(Debug, Clone, Default)]
pub struct InterpreterConfig {
    /// Policy for unmatched changes.
    pub unmatched: UnmatchedPolicy,
}

/// The change interpreter; owns the LTS's current state.
#[derive(Debug, Clone)]
pub struct ChangeInterpreter {
    lts: Lts,
    state: StateId,
    config: InterpreterConfig,
}

/// Output of one interpretation pass.
#[derive(Debug, Clone, Default)]
pub struct Interpretation {
    /// Commands to execute immediately, in order.
    pub immediate: ControlScript,
    /// Scripts installed to run on future events.
    pub installed: Vec<ControlScript>,
}

impl ChangeInterpreter {
    /// Creates an interpreter positioned at the LTS initial state.
    pub fn new(lts: Lts, config: InterpreterConfig) -> Self {
        let state = lts.initial();
        ChangeInterpreter { lts, state, config }
    }

    /// The current LTS state name.
    pub fn state_name(&self) -> &str {
        self.lts.state_name(self.state)
    }

    /// Resets to the initial state.
    pub fn reset(&mut self) {
        self.state = self.lts.initial();
    }

    /// Interprets a change list against the *new* model, producing control
    /// scripts. First enabled transition (declaration order) wins per
    /// change.
    pub fn interpret(
        &mut self,
        changes: &ChangeList,
        new_model: &Model,
        mm: &Metamodel,
    ) -> Result<Interpretation> {
        let mut out = Interpretation::default();
        let key_index: BTreeMap<_, _> = keys_of(new_model, &DiffOptions::default())
            .into_iter()
            .map(|(id, k)| (k, id))
            .collect();
        // Objects created by this very change list ("new" objects, whose
        // initial SetAttr/SetRefs changes `existing_only` patterns skip).
        let created: std::collections::BTreeSet<_> = changes
            .iter()
            .filter_map(|c| match c {
                mddsm_meta::diff::Change::Create { key } => Some(key.clone()),
                _ => None,
            })
            .collect();

        for change in changes.iter() {
            let mut vars = change_vars(change);
            // Expose the changed object's attribute values (from the new
            // model) as `attr_<name>` so command templates can carry domain
            // data, e.g. `$attr_action` for an automation rule's action.
            if let Some(id) = key_index.get(change.subject()) {
                if let Ok(obj) = new_model.object(*id) {
                    // Declared defaults first, so explicit values override.
                    for attr in mm.all_attributes(&obj.class) {
                        if let Some(d) = attr.default.first() {
                            vars.insert(format!("attr_{}", attr.name), render_value(d));
                        }
                    }
                    for (name, values) in &obj.attrs {
                        if let Some(v) = values.first() {
                            vars.insert(format!("attr_{name}"), render_value(v));
                        }
                    }
                    // And its reference slots as `ref_<slot>`: the targets'
                    // `name`/`id` attributes (comma-joined), so creation
                    // commands can carry related element names.
                    for (slot, targets) in &obj.refs {
                        let rendered: Vec<String> = targets
                            .iter()
                            .filter_map(|t| {
                                new_model
                                    .attr_str(*t, "id")
                                    .or_else(|| new_model.attr_str(*t, "name"))
                                    .map(str::to_owned)
                            })
                            .collect();
                        vars.insert(format!("ref_{slot}"), rendered.join(","));
                    }
                }
            }
            let mut taken = false;
            // Candidate transition indices, collected first because taking
            // one mutates `self.state`.
            let candidates: Vec<usize> = self
                .lts
                .transitions
                .iter()
                .enumerate()
                .filter(|(_, t)| {
                    t.from == self.state
                        && matches!(&t.label, Label::Change(p) if p.matches_in(change, &created))
                })
                .map(|(i, _)| i)
                .collect();

            for idx in candidates {
                let t = &self.lts.transitions[idx];
                if let Some(guard) = &t.guard {
                    let mut env = EvalEnv::new(new_model, mm);
                    for (k, v) in &vars {
                        env.bind(k.clone(), Val::Scalar(Value::Str(v.clone())));
                    }
                    // Bind `self` to the changed object when it still
                    // exists in the new model.
                    if let Some(id) = key_index.get(change.subject()) {
                        env.bind("self", Val::Obj(*id));
                    }
                    match eval_bool(guard, &env) {
                        Ok(true) => {}
                        Ok(false) => continue,
                        Err(e) => {
                            return Err(SynthesisError::GuardFailed(format!(
                                "{e} (change {change:?})"
                            )))
                        }
                    }
                }
                let commands: Vec<Command> =
                    t.emit.iter().map(|tmpl| tmpl.instantiate(&vars)).collect();
                match &t.install_on {
                    None => out.immediate.commands.extend(commands),
                    Some(topic) => out.installed.push(ControlScript::triggered(
                        EventTrigger::on(topic.clone()),
                        commands,
                    )),
                }
                self.state = t.to;
                taken = true;
                break;
            }

            if !taken {
                match self.config.unmatched {
                    UnmatchedPolicy::Skip => {}
                    UnmatchedPolicy::Error => {
                        return Err(SynthesisError::UnmatchedChange(format!(
                            "{change:?} in state `{}`",
                            self.state_name()
                        )))
                    }
                    UnmatchedPolicy::Passthrough => {
                        let name = match ChangeKind::of(change) {
                            ChangeKind::Create => "create",
                            ChangeKind::Delete => "delete",
                            ChangeKind::SetAttr => "setAttr",
                            ChangeKind::SetRefs => "setRefs",
                        };
                        let mut cmd = Command::new(name, vars["key"].clone());
                        for (k, v) in &vars {
                            if k != "key" {
                                cmd = cmd.with(k.clone(), v.clone());
                            }
                        }
                        out.immediate.commands.push(cmd);
                    }
                }
            }
        }
        Ok(out)
    }

    /// Feeds a Controller-layer event to the LTS; event transitions may
    /// also emit commands (e.g. failure-recovery commands).
    pub fn interpret_event(&mut self, topic: &str) -> Result<ControlScript> {
        let candidate = self.lts.transitions.iter().position(|t| {
            t.from == self.state && matches!(&t.label, Label::Event(e) if e == topic)
        });
        let mut script = ControlScript::default();
        if let Some(idx) = candidate {
            let t = &self.lts.transitions[idx];
            let vars = BTreeMap::from([("event".to_string(), topic.to_string())]);
            script.commands = t.emit.iter().map(|tmpl| tmpl.instantiate(&vars)).collect();
            self.state = t.to;
        }
        Ok(script)
    }
}

/// Substitution variables derived from a change.
fn change_vars(change: &Change) -> BTreeMap<String, String> {
    let mut vars = BTreeMap::new();
    let key = change.subject();
    vars.insert("key".into(), key.to_string());
    vars.insert("class".into(), key.class.clone());
    vars.insert("id".into(), key.key.trim_matches('"').to_owned());
    match change {
        Change::SetAttr { attr, values, .. } => {
            vars.insert("slot".into(), attr.clone());
            if let Some(v) = values.first() {
                vars.insert("value".into(), render_value(v));
            }
            vars.insert(
                "values".into(),
                values
                    .iter()
                    .map(render_value)
                    .collect::<Vec<_>>()
                    .join(","),
            );
        }
        Change::SetRefs {
            reference, targets, ..
        } => {
            vars.insert("slot".into(), reference.clone());
            vars.insert(
                "targets".into(),
                targets
                    .iter()
                    .map(|t| t.key.trim_matches('"').to_owned())
                    .collect::<Vec<_>>()
                    .join(","),
            );
        }
        _ => {}
    }
    vars
}

fn render_value(v: &Value) -> String {
    match v {
        Value::Str(s) => s.clone(),
        // Commands carry the bare literal; the enum type is metamodel-side
        // knowledge the Broker layer does not share.
        Value::Enum(_, literal) => literal.clone(),
        other => other.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lts::{ChangePattern, CommandTemplate, LtsBuilder};
    use mddsm_meta::diff::diff;
    use mddsm_meta::metamodel::{DataType, MetamodelBuilder, Multiplicity};

    fn mm() -> Metamodel {
        MetamodelBuilder::new("cml")
            .class("Session", |c| {
                c.attr("name", DataType::Str)
                    .opt_attr("kind", DataType::Str)
                    .reference("parties", "Party", Multiplicity::MANY)
            })
            .class("Party", |c| {
                c.attr("name", DataType::Str).opt_attr("bw", DataType::Int)
            })
            .build()
            .unwrap()
    }

    fn lts() -> Lts {
        LtsBuilder::new()
            .state("idle")
            .state("open")
            .initial("idle")
            .transition("idle", "open", ChangePattern::create("Session"), |t| {
                t.emit(CommandTemplate::new("openSession", "$key"))
            })
            .transition("open", "open", ChangePattern::create("Party"), |t| {
                t.guard("self.bw <> null and self.bw > 0")
                    .emit(CommandTemplate::new("addParty", "$key").with("id", "$id"))
            })
            .transition("open", "idle", ChangePattern::delete("Session"), |t| {
                t.emit(CommandTemplate::new("closeSession", "$key"))
            })
            .on_event("open", "idle", "sessionFailed", |t| {
                t.emit(CommandTemplate::new("recover", ""))
            })
            .build()
            .unwrap()
    }

    fn session_model(with_party: bool, bw: i64) -> Model {
        let mut m = Model::new("cml");
        let s = m.create("Session");
        m.set_attr(s, "name", Value::from("s1"));
        if with_party {
            let p = m.create("Party");
            m.set_attr(p, "name", Value::from("ana"));
            m.set_attr(p, "bw", Value::from(bw));
            m.add_ref(s, "parties", p);
        }
        m
    }

    #[test]
    fn create_session_emits_open() {
        let mm = mm();
        let mut interp = ChangeInterpreter::new(lts(), InterpreterConfig::default());
        assert_eq!(interp.state_name(), "idle");
        let old = Model::new("cml");
        let new = session_model(false, 0);
        let changes = diff(&old, &new, &DiffOptions::default());
        let out = interp.interpret(&changes, &new, &mm).unwrap();
        assert_eq!(out.immediate.render(), "openSession@Session[\"s1\"]()");
        assert_eq!(interp.state_name(), "open");
    }

    #[test]
    fn guard_filters_transitions() {
        let mm = mm();
        // Incremental submissions: session first, then the party joins.
        let run = |bw: i64| {
            let mut interp = ChangeInterpreter::new(lts(), InterpreterConfig::default());
            let empty = Model::new("cml");
            let base = session_model(false, 0);
            let changes = diff(&empty, &base, &DiffOptions::default());
            let first = interp.interpret(&changes, &base, &mm).unwrap();
            assert_eq!(first.immediate.render(), "openSession@Session[\"s1\"]()");
            let withparty = session_model(true, bw);
            let changes = diff(&base, &withparty, &DiffOptions::default());
            interp.interpret(&changes, &withparty, &mm).unwrap()
        };
        // Party with bw=0 fails the guard -> addParty not emitted.
        let out = run(0);
        assert!(out.immediate.is_empty(), "{}", out.immediate.render());
        // With bw>0 the guard passes.
        let out = run(100);
        assert!(
            out.immediate
                .render()
                .contains("addParty@Party[\"ana\"](id=ana)"),
            "{}",
            out.immediate.render()
        );
    }

    #[test]
    fn unmatched_policies() {
        let mm = mm();
        let old = session_model(false, 0);
        let mut new = old.clone();
        let s = new.all_of_class("Session")[0];
        new.set_attr(s, "kind", Value::from("video"));
        let changes = diff(&old, &new, &DiffOptions::default());
        assert_eq!(changes.len(), 1);

        // Skip (default): nothing emitted.
        let mut interp = ChangeInterpreter::new(lts(), InterpreterConfig::default());
        let out = interp.interpret(&changes, &new, &mm).unwrap();
        assert!(out.immediate.is_empty());

        // Error.
        let mut interp = ChangeInterpreter::new(
            lts(),
            InterpreterConfig {
                unmatched: UnmatchedPolicy::Error,
            },
        );
        assert!(matches!(
            interp.interpret(&changes, &new, &mm),
            Err(SynthesisError::UnmatchedChange(_))
        ));

        // Passthrough.
        let mut interp = ChangeInterpreter::new(
            lts(),
            InterpreterConfig {
                unmatched: UnmatchedPolicy::Passthrough,
            },
        );
        let out = interp.interpret(&changes, &new, &mm).unwrap();
        assert_eq!(out.immediate.len(), 1);
        assert_eq!(out.immediate.commands[0].name, "setAttr");
        assert_eq!(out.immediate.commands[0].arg("slot"), Some("kind"));
        assert_eq!(out.immediate.commands[0].arg("value"), Some("video"));
    }

    #[test]
    fn event_transitions_fire_and_move_state() {
        let mm = mm();
        let mut interp = ChangeInterpreter::new(lts(), InterpreterConfig::default());
        let old = Model::new("cml");
        let new = session_model(false, 0);
        let changes = diff(&old, &new, &DiffOptions::default());
        interp.interpret(&changes, &new, &mm).unwrap();
        assert_eq!(interp.state_name(), "open");
        let script = interp.interpret_event("sessionFailed").unwrap();
        assert_eq!(script.render(), "recover()");
        assert_eq!(interp.state_name(), "idle");
        // Unknown events are ignored.
        let script = interp.interpret_event("nothing").unwrap();
        assert!(script.is_empty());
    }

    #[test]
    fn delete_closes_session_and_reset_restores_initial() {
        let mm = mm();
        let mut interp = ChangeInterpreter::new(lts(), InterpreterConfig::default());
        let old = Model::new("cml");
        let new = session_model(false, 0);
        let changes = diff(&old, &new, &DiffOptions::default());
        interp.interpret(&changes, &new, &mm).unwrap();
        let back = diff(&new, &old, &DiffOptions::default());
        let out = interp.interpret(&back, &old, &mm).unwrap();
        assert_eq!(out.immediate.render(), "closeSession@Session[\"s1\"]()");
        assert_eq!(interp.state_name(), "idle");
        interp.reset();
        assert_eq!(interp.state_name(), "idle");
    }

    #[test]
    fn install_on_produces_triggered_scripts() {
        let lts = LtsBuilder::new()
            .state("s")
            .initial("s")
            .transition("s", "s", ChangePattern::create("Rule"), |t| {
                t.install_on("objectEntered")
                    .emit(CommandTemplate::new("applyRule", "$key"))
            })
            .build()
            .unwrap();
        let mm = MetamodelBuilder::new("mm")
            .class("Rule", |c| c.attr("name", DataType::Str))
            .build()
            .unwrap();
        let mut interp = ChangeInterpreter::new(lts, InterpreterConfig::default());
        let old = Model::new("mm");
        let mut new = Model::new("mm");
        let r = new.create("Rule");
        new.set_attr(r, "name", Value::from("r1"));
        let changes = diff(&old, &new, &DiffOptions::default());
        let out = interp.interpret(&changes, &new, &mm).unwrap();
        assert!(out.immediate.is_empty());
        assert_eq!(out.installed.len(), 1);
        let t = out.installed[0].trigger.as_ref().unwrap();
        assert_eq!(t.topic, "objectEntered");
        assert_eq!(out.installed[0].render(), "applyRule@Rule[\"r1\"]()");
    }
}
