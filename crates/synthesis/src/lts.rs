//! Labeled transition systems encoding domain-specific synthesis semantics.
//!
//! "The labeled transition systems contain the behavior for the level of
//! abstraction relevant to the synthesis process" (§V-B). States track the
//! synthesis-relevant mode of the system (e.g. *idle*, *session open*);
//! transitions are labeled with model-change patterns (or Controller
//! events), optionally guarded by OCL-lite expressions, and emit control
//! command templates when taken.

use crate::{Result, SynthesisError};
use mddsm_meta::constraint::{self, Expr};
use mddsm_meta::diff::Change;
use std::collections::BTreeMap;

/// Identifier of an LTS state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId(pub(crate) usize);

/// The kind of model change a pattern matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChangeKind {
    /// Object creation.
    Create,
    /// Object deletion.
    Delete,
    /// Attribute slot replacement.
    SetAttr,
    /// Reference slot replacement.
    SetRefs,
}

impl ChangeKind {
    /// The kind of a concrete [`Change`].
    pub fn of(change: &Change) -> ChangeKind {
        match change {
            Change::Create { .. } => ChangeKind::Create,
            Change::Delete { .. } => ChangeKind::Delete,
            Change::SetAttr { .. } => ChangeKind::SetAttr,
            Change::SetRefs { .. } => ChangeKind::SetRefs,
        }
    }
}

/// A pattern over model changes; `None` fields match anything.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ChangePattern {
    /// Change kind to match.
    pub kind: Option<ChangeKind>,
    /// Class of the changed object.
    pub class: Option<String>,
    /// Slot (attribute or reference) name, for `SetAttr`/`SetRefs`.
    pub slot: Option<String>,
    /// When `true`, the pattern does not match changes whose subject is
    /// created in the same change list — use for "update of an existing
    /// element" semantics (a new object's initial attribute values arrive
    /// as `SetAttr` changes alongside its `Create`).
    pub existing_only: bool,
}

impl ChangePattern {
    /// Matches any change.
    pub fn any() -> Self {
        Self::default()
    }

    /// Matches creations of the given class.
    pub fn create(class: &str) -> Self {
        ChangePattern {
            kind: Some(ChangeKind::Create),
            class: Some(class.into()),
            slot: None,
            existing_only: false,
        }
    }

    /// Matches deletions of the given class.
    pub fn delete(class: &str) -> Self {
        ChangePattern {
            kind: Some(ChangeKind::Delete),
            class: Some(class.into()),
            slot: None,
            existing_only: false,
        }
    }

    /// Matches attribute updates of `class.slot`.
    pub fn set_attr(class: &str, slot: &str) -> Self {
        ChangePattern {
            kind: Some(ChangeKind::SetAttr),
            class: Some(class.into()),
            slot: Some(slot.into()),
            existing_only: false,
        }
    }

    /// Matches reference updates of `class.slot`.
    pub fn set_refs(class: &str, slot: &str) -> Self {
        ChangePattern {
            kind: Some(ChangeKind::SetRefs),
            class: Some(class.into()),
            slot: Some(slot.into()),
            existing_only: false,
        }
    }

    /// Restricts the pattern to objects that already existed before this
    /// change list (see [`ChangePattern::existing_only`]).
    pub fn on_existing(mut self) -> Self {
        self.existing_only = true;
        self
    }

    /// Returns `true` if the pattern matches the change, given the set of
    /// object keys created in the same change list.
    pub fn matches_in(
        &self,
        change: &Change,
        created: &std::collections::BTreeSet<mddsm_meta::diff::ObjectKey>,
    ) -> bool {
        if self.existing_only && created.contains(change.subject()) {
            return false;
        }
        self.matches(change)
    }

    /// Returns `true` if the pattern matches the change (ignoring the
    /// `existing_only` restriction; see [`ChangePattern::matches_in`]).
    pub fn matches(&self, change: &Change) -> bool {
        if let Some(k) = self.kind {
            if k != ChangeKind::of(change) {
                return false;
            }
        }
        if let Some(class) = &self.class {
            if &change.subject().class != class {
                return false;
            }
        }
        if let Some(slot) = &self.slot {
            let actual = match change {
                Change::SetAttr { attr, .. } => Some(attr.as_str()),
                Change::SetRefs { reference, .. } => Some(reference.as_str()),
                _ => None,
            };
            if actual != Some(slot.as_str()) {
                return false;
            }
        }
        true
    }
}

/// A transition label: a model-change pattern or a Controller-layer event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Label {
    /// Taken when a model change matches.
    Change(ChangePattern),
    /// Taken when the Controller reports an event with this topic.
    Event(String),
}

/// A command template; `$`-placeholders are substituted from the change
/// context: `$key`, `$class`, `$slot`, `$value` (first value), `$values`
/// (comma-joined), `$targets` (comma-joined reference targets), plus any
/// extra variables supplied by the caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommandTemplate {
    /// Command name (may contain placeholders).
    pub name: String,
    /// Command target (may contain placeholders).
    pub target: String,
    /// Arguments (keys fixed, values may contain placeholders).
    pub args: Vec<(String, String)>,
}

impl CommandTemplate {
    /// Creates a template with no arguments.
    pub fn new(name: impl Into<String>, target: impl Into<String>) -> Self {
        CommandTemplate {
            name: name.into(),
            target: target.into(),
            args: Vec::new(),
        }
    }

    /// Builder-style argument.
    pub fn with(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.args.push((key.into(), value.into()));
        self
    }

    /// Instantiates the template against a substitution map.
    pub fn instantiate(&self, vars: &BTreeMap<String, String>) -> crate::script::Command {
        crate::script::Command {
            name: subst(&self.name, vars),
            target: subst(&self.target, vars),
            args: self
                .args
                .iter()
                .map(|(k, v)| (k.clone(), subst(v, vars)))
                .collect(),
        }
    }
}

fn subst(template: &str, vars: &BTreeMap<String, String>) -> String {
    let mut out = String::with_capacity(template.len());
    let mut chars = template.chars().peekable();
    while let Some(c) = chars.next() {
        if c == '$' {
            let mut name = String::new();
            while let Some(&n) = chars.peek() {
                if n.is_alphanumeric() || n == '_' {
                    name.push(n);
                    chars.next();
                } else {
                    break;
                }
            }
            match vars.get(&name) {
                Some(v) => out.push_str(v),
                None => {
                    out.push('$');
                    out.push_str(&name);
                }
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// One LTS transition.
#[derive(Debug, Clone)]
pub struct Transition {
    /// Source state.
    pub from: StateId,
    /// What takes this transition.
    pub label: Label,
    /// Optional OCL-lite guard over the change context.
    pub guard: Option<Expr>,
    /// Commands emitted when the transition fires.
    pub emit: Vec<CommandTemplate>,
    /// When set, emitted commands form a *triggered* script installed to
    /// run on this event topic instead of executing immediately.
    pub install_on: Option<String>,
    /// Destination state.
    pub to: StateId,
}

/// A labeled transition system with named states.
#[derive(Debug, Clone)]
pub struct Lts {
    pub(crate) states: Vec<String>,
    pub(crate) initial: StateId,
    pub(crate) transitions: Vec<Transition>,
}

impl Lts {
    /// The initial state.
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// The name of a state.
    pub fn state_name(&self, id: StateId) -> &str {
        &self.states[id.0]
    }

    /// Looks up a state id by name.
    pub fn state(&self, name: &str) -> Option<StateId> {
        self.states.iter().position(|s| s == name).map(StateId)
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Transitions leaving `from`, in declaration order (first match wins
    /// during interpretation).
    pub fn outgoing(&self, from: StateId) -> impl Iterator<Item = &Transition> {
        self.transitions.iter().filter(move |t| t.from == from)
    }
}

/// Fluent builder for [`Lts`].
///
/// ```
/// use mddsm_synthesis::lts::{ChangePattern, CommandTemplate, LtsBuilder};
/// let lts = LtsBuilder::new()
///     .state("idle")
///     .state("open")
///     .initial("idle")
///     .transition("idle", "open", ChangePattern::create("Session"), |t| {
///         t.emit(CommandTemplate::new("openSession", "$key"))
///     })
///     .build()
///     .unwrap();
/// assert_eq!(lts.state_count(), 2);
/// ```
#[derive(Debug, Default)]
pub struct LtsBuilder {
    states: Vec<String>,
    initial: Option<String>,
    transitions: Vec<PendingTransition>,
    errors: Vec<String>,
}

#[derive(Debug)]
struct PendingTransition {
    from: String,
    to: String,
    label: Label,
    guard: Option<String>,
    emit: Vec<CommandTemplate>,
    install_on: Option<String>,
}

/// Configures one transition inside [`LtsBuilder::transition`].
#[derive(Debug, Default)]
pub struct TransitionBuilder {
    guard: Option<String>,
    emit: Vec<CommandTemplate>,
    install_on: Option<String>,
}

impl TransitionBuilder {
    /// Adds an OCL-lite guard (parsed at [`LtsBuilder::build`]).
    pub fn guard(mut self, source: &str) -> Self {
        self.guard = Some(source.to_owned());
        self
    }

    /// Adds an emitted command template.
    pub fn emit(mut self, t: CommandTemplate) -> Self {
        self.emit.push(t);
        self
    }

    /// Marks emissions as a triggered script installed on the given topic.
    pub fn install_on(mut self, topic: &str) -> Self {
        self.install_on = Some(topic.to_owned());
        self
    }
}

impl LtsBuilder {
    /// Starts an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a state.
    pub fn state(mut self, name: &str) -> Self {
        if self.states.iter().any(|s| s == name) {
            self.errors.push(format!("duplicate state `{name}`"));
        }
        self.states.push(name.to_owned());
        self
    }

    /// Selects the initial state.
    pub fn initial(mut self, name: &str) -> Self {
        self.initial = Some(name.to_owned());
        self
    }

    /// Adds a transition on a model-change pattern.
    pub fn transition(
        self,
        from: &str,
        to: &str,
        pattern: ChangePattern,
        f: impl FnOnce(TransitionBuilder) -> TransitionBuilder,
    ) -> Self {
        self.add(from, to, Label::Change(pattern), f)
    }

    /// Adds a transition on a Controller event topic.
    pub fn on_event(
        self,
        from: &str,
        to: &str,
        topic: &str,
        f: impl FnOnce(TransitionBuilder) -> TransitionBuilder,
    ) -> Self {
        self.add(from, to, Label::Event(topic.to_owned()), f)
    }

    fn add(
        mut self,
        from: &str,
        to: &str,
        label: Label,
        f: impl FnOnce(TransitionBuilder) -> TransitionBuilder,
    ) -> Self {
        let tb = f(TransitionBuilder::default());
        self.transitions.push(PendingTransition {
            from: from.to_owned(),
            to: to.to_owned(),
            label,
            guard: tb.guard,
            emit: tb.emit,
            install_on: tb.install_on,
        });
        self
    }

    /// Validates and builds the LTS.
    pub fn build(self) -> Result<Lts> {
        if let Some(e) = self.errors.into_iter().next() {
            return Err(SynthesisError::IllFormedLts(e));
        }
        if self.states.is_empty() {
            return Err(SynthesisError::IllFormedLts("no states declared".into()));
        }
        let initial_name = self
            .initial
            .ok_or_else(|| SynthesisError::IllFormedLts("no initial state".into()))?;
        let find = |name: &str| -> Result<StateId> {
            self.states
                .iter()
                .position(|s| s == name)
                .map(StateId)
                .ok_or_else(|| SynthesisError::IllFormedLts(format!("unknown state `{name}`")))
        };
        let initial = find(&initial_name)?;
        let mut transitions = Vec::with_capacity(self.transitions.len());
        for p in self.transitions {
            let guard = match p.guard {
                None => None,
                Some(src) => Some(constraint::parse(&src).map_err(|e| {
                    SynthesisError::IllFormedLts(format!("guard `{src}` failed to parse: {e}"))
                })?),
            };
            transitions.push(Transition {
                from: find(&p.from)?,
                to: find(&p.to)?,
                label: p.label,
                guard,
                emit: p.emit,
                install_on: p.install_on,
            });
        }
        Ok(Lts {
            states: self.states,
            initial,
            transitions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mddsm_meta::diff::ObjectKey;

    fn key(class: &str, k: &str) -> ObjectKey {
        ObjectKey {
            class: class.into(),
            key: k.into(),
        }
    }

    #[test]
    fn pattern_matching() {
        let create = Change::Create {
            key: key("Session", "\"s\""),
        };
        let set = Change::SetAttr {
            key: key("Session", "\"s\""),
            attr: "kind".into(),
            values: vec![],
        };
        assert!(ChangePattern::any().matches(&create));
        assert!(ChangePattern::create("Session").matches(&create));
        assert!(!ChangePattern::create("Party").matches(&create));
        assert!(!ChangePattern::create("Session").matches(&set));
        assert!(ChangePattern::set_attr("Session", "kind").matches(&set));
        assert!(!ChangePattern::set_attr("Session", "name").matches(&set));
        let refs = Change::SetRefs {
            key: key("Session", "\"s\""),
            reference: "parties".into(),
            targets: vec![],
        };
        assert!(ChangePattern::set_refs("Session", "parties").matches(&refs));
        assert!(ChangePattern::delete("Session").matches(&Change::Delete {
            key: key("Session", "\"s\"")
        }));
    }

    #[test]
    fn template_substitution() {
        let mut vars = BTreeMap::new();
        vars.insert("key".to_string(), "Session[\"s\"]".to_string());
        vars.insert("value".to_string(), "video".to_string());
        let t = CommandTemplate::new("open_$value", "$key").with("mode", "$value/$missing");
        let c = t.instantiate(&vars);
        assert_eq!(c.name, "open_video");
        assert_eq!(c.target, "Session[\"s\"]");
        assert_eq!(c.arg("mode"), Some("video/$missing"));
    }

    #[test]
    fn builder_validates() {
        assert!(matches!(
            LtsBuilder::new().build(),
            Err(SynthesisError::IllFormedLts(_))
        ));
        assert!(LtsBuilder::new().state("a").build().is_err()); // no initial
        assert!(LtsBuilder::new()
            .state("a")
            .state("a")
            .initial("a")
            .build()
            .is_err());
        assert!(LtsBuilder::new().state("a").initial("b").build().is_err());
        let r = LtsBuilder::new()
            .state("a")
            .initial("a")
            .transition("a", "nope", ChangePattern::any(), |t| t)
            .build();
        assert!(r.is_err());
        let r = LtsBuilder::new()
            .state("a")
            .initial("a")
            .transition("a", "a", ChangePattern::any(), |t| t.guard("1 +"))
            .build();
        assert!(r.is_err());
    }

    #[test]
    fn builds_and_navigates() {
        let lts = LtsBuilder::new()
            .state("idle")
            .state("open")
            .initial("idle")
            .transition("idle", "open", ChangePattern::create("Session"), |t| {
                t.emit(CommandTemplate::new("openSession", "$key"))
            })
            .on_event("open", "idle", "sessionClosed", |t| t)
            .build()
            .unwrap();
        assert_eq!(lts.state_name(lts.initial()), "idle");
        assert_eq!(lts.state("open"), Some(StateId(1)));
        assert_eq!(lts.state("zzz"), None);
        assert_eq!(lts.outgoing(lts.initial()).count(), 1);
        assert_eq!(lts.outgoing(StateId(1)).count(), 1);
    }
}
