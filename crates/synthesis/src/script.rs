//! Control scripts: the output of the Synthesis layer and the input of the
//! Controller layer.

use std::fmt;

/// One command of a control script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Command {
    /// Operation name, in the domain vocabulary (e.g. `openSession`).
    pub name: String,
    /// The model element the command concerns (an [`ObjectKey`]-style
    /// rendering such as `Party["ana"]`, or empty).
    ///
    /// [`ObjectKey`]: mddsm_meta::diff::ObjectKey
    pub target: String,
    /// Named arguments.
    pub args: Vec<(String, String)>,
}

impl Command {
    /// Creates a command with no arguments.
    pub fn new(name: impl Into<String>, target: impl Into<String>) -> Self {
        Command {
            name: name.into(),
            target: target.into(),
            args: Vec::new(),
        }
    }

    /// Builder-style argument insertion.
    pub fn with(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.args.push((key.into(), value.into()));
        self
    }

    /// Looks up an argument value.
    pub fn arg(&self, key: &str) -> Option<&str> {
        self.args
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

impl fmt::Display for Command {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let args: Vec<String> = self.args.iter().map(|(k, v)| format!("{k}={v}")).collect();
        if self.target.is_empty() {
            write!(f, "{}({})", self.name, args.join(", "))
        } else {
            write!(f, "{}@{}({})", self.name, self.target, args.join(", "))
        }
    }
}

/// An event pattern that triggers installed scripts (used by domains such
/// as smart spaces, where scripts run when objects enter/leave).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventTrigger {
    /// Event topic to wait for, e.g. `objectEntered`.
    pub topic: String,
    /// Required payload fields (all must match).
    pub conditions: Vec<(String, String)>,
}

impl EventTrigger {
    /// Creates a trigger on a topic with no payload conditions.
    pub fn on(topic: impl Into<String>) -> Self {
        EventTrigger {
            topic: topic.into(),
            conditions: Vec::new(),
        }
    }

    /// Builder-style payload condition.
    pub fn when(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.conditions.push((key.into(), value.into()));
        self
    }

    /// Returns `true` if an event with this topic/payload satisfies the
    /// trigger.
    pub fn matches(&self, topic: &str, payload: &[(String, String)]) -> bool {
        topic == self.topic
            && self
                .conditions
                .iter()
                .all(|(k, v)| payload.iter().any(|(pk, pv)| pk == k && pv == v))
    }
}

/// A sequence of commands, optionally gated behind an event trigger.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ControlScript {
    /// Commands in execution order.
    pub commands: Vec<Command>,
    /// When present, the script is *installed* rather than executed
    /// immediately, and runs each time a matching event arrives.
    pub trigger: Option<EventTrigger>,
}

impl ControlScript {
    /// An immediate (untriggered) script.
    pub fn immediate(commands: Vec<Command>) -> Self {
        ControlScript {
            commands,
            trigger: None,
        }
    }

    /// A script installed to run on matching events.
    pub fn triggered(trigger: EventTrigger, commands: Vec<Command>) -> Self {
        ControlScript {
            commands,
            trigger: Some(trigger),
        }
    }

    /// Returns `true` when the script has no commands.
    pub fn is_empty(&self) -> bool {
        self.commands.is_empty()
    }

    /// Number of commands.
    pub fn len(&self) -> usize {
        self.commands.len()
    }

    /// Canonical rendering, one command per line.
    pub fn render(&self) -> String {
        self.commands
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_builder_and_display() {
        let c = Command::new("openSession", "Session[\"s\"]").with("kind", "video");
        assert_eq!(c.arg("kind"), Some("video"));
        assert_eq!(c.arg("nope"), None);
        assert_eq!(c.to_string(), "openSession@Session[\"s\"](kind=video)");
        let c2 = Command::new("shutdown", "");
        assert_eq!(c2.to_string(), "shutdown()");
    }

    #[test]
    fn trigger_matching() {
        let t = EventTrigger::on("objectEntered").when("kind", "lamp");
        let payload = vec![
            ("kind".to_string(), "lamp".to_string()),
            ("id".into(), "7".into()),
        ];
        assert!(t.matches("objectEntered", &payload));
        assert!(!t.matches("objectLeft", &payload));
        let wrong = vec![("kind".to_string(), "door".to_string())];
        assert!(!t.matches("objectEntered", &wrong));
        assert!(EventTrigger::on("x").matches("x", &[]));
    }

    #[test]
    fn script_render() {
        let s = ControlScript::immediate(vec![
            Command::new("a", "t1"),
            Command::new("b", "").with("x", "1"),
        ]);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.render(), "a@t1()\nb(x=1)");
        assert!(s.trigger.is_none());
        let t = ControlScript::triggered(EventTrigger::on("e"), vec![]);
        assert!(t.is_empty());
        assert!(t.trigger.is_some());
    }
}
