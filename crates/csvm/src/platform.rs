//! The assembled CSVM and the split device/provider deployment.

use crate::csml::{csml_lts, csml_metamodel, CSML};
use crate::fleet::{register_fleet, SharedFleet};
use mddsm_broker::BrokerModelBuilder;
use mddsm_controller::procedure::{ExecutionUnit, Instr, Operand, ProcMeta, Procedure};
use mddsm_controller::{ActionRegistry, DscRegistry, ExecutionReport, ProcedureRepository};
use mddsm_core::{DomainKnowledge, MdDsmPlatform, PlatformBuilder, PlatformModelBuilder};
use mddsm_meta::model::Model;
use mddsm_sim::ResourceHub;

/// DSCs of the crowdsensing controller.
pub fn cs_dscs() -> DscRegistry {
    let mut d = DscRegistry::new();
    d.operation("ManageQuery", None, "query lifecycle")
        .expect("unique DSC");
    d.operation("StartQuery", Some("ManageQuery"), "start acquisition")
        .expect("unique DSC");
    d.operation("RetargetQuery", Some("ManageQuery"), "on-the-fly change")
        .expect("unique DSC");
    d.operation("StopQuery", Some("ManageQuery"), "stop acquisition")
        .expect("unique DSC");
    d.operation("CollectData", None, "one collection round")
        .expect("unique DSC");
    d
}

fn fleet_call(op: &str, args: &[(&str, Operand)]) -> Instr {
    Instr::BrokerCall {
        api: "fleet".into(),
        op: op.into(),
        args: args
            .iter()
            .map(|(k, v)| ((*k).to_owned(), v.clone()))
            .collect(),
    }
}

/// Procedures of the crowdsensing controller.
pub fn cs_procedures() -> ProcedureRepository {
    let mut r = ProcedureRepository::new();
    let a = Operand::arg;
    r.add(Procedure {
        id: "startQuery".into(),
        classifier: "StartQuery".into(),
        // Starting a query performs an immediate first collection round.
        dependencies: vec!["CollectData".into()],
        meta: ProcMeta::default(),
        on_error: None,
        eus: vec![ExecutionUnit::new(
            "main",
            vec![
                fleet_call(
                    "start",
                    &[
                        ("query", a("query")),
                        ("sensor", a("sensor")),
                        ("region", a("region")),
                        ("rate", a("rate")),
                        ("aggregation", a("aggregation")),
                    ],
                ),
                Instr::CallDep(0),
                Instr::EmitEvent {
                    topic: "queryStarted".into(),
                    payload: vec![("query".into(), Operand::arg("query"))],
                },
                Instr::Complete,
            ],
        )],
    })
    .expect("unique procedure");
    r.add(Procedure {
        id: "collectRound".into(),
        classifier: "CollectData".into(),
        dependencies: vec![],
        meta: ProcMeta::default(),
        on_error: None,
        eus: vec![ExecutionUnit::new(
            "main",
            vec![
                fleet_call("collect", &[("query", a("query"))]),
                Instr::SetVar {
                    name: "value".into(),
                    value: Operand::var("result.value"),
                },
                Instr::Complete,
            ],
        )],
    })
    .expect("unique procedure");
    r.add(Procedure {
        id: "retargetQuery".into(),
        classifier: "RetargetQuery".into(),
        dependencies: vec![],
        meta: ProcMeta::default(),
        on_error: None,
        eus: vec![ExecutionUnit::new(
            "main",
            vec![
                fleet_call(
                    "retarget",
                    &[
                        ("query", a("query")),
                        ("rate", a("rate")),
                        ("region", a("region")),
                    ],
                ),
                Instr::Complete,
            ],
        )],
    })
    .expect("unique procedure");
    r.add(Procedure {
        id: "stopQuery".into(),
        classifier: "StopQuery".into(),
        dependencies: vec![],
        meta: ProcMeta::default(),
        on_error: None,
        eus: vec![ExecutionUnit::new(
            "main",
            vec![
                fleet_call("stop", &[("query", a("query"))]),
                Instr::Complete,
            ],
        )],
    })
    .expect("unique procedure");
    r
}

/// Command map.
pub fn cs_command_map() -> Vec<(String, String)> {
    [
        ("startQuery", "StartQuery"),
        ("retargetQuery", "RetargetQuery"),
        ("stopQuery", "StopQuery"),
        ("collect", "CollectData"),
    ]
    .iter()
    .map(|(c, d)| ((*c).to_owned(), (*d).to_owned()))
    .collect()
}

/// The provider broker model over the fleet resource.
pub fn cs_broker_model() -> Model {
    let mut b = BrokerModelBuilder::new("csbroker");
    for (h, sel, op, mapping) in [
        (
            "start",
            "fleet.start",
            "start",
            vec![
                "query=$query",
                "sensor=$sensor",
                "region=$region",
                "rate=$rate",
                "aggregation=$aggregation",
            ],
        ),
        (
            "retarget",
            "fleet.retarget",
            "retarget",
            vec!["query=$query", "rate=$rate", "region=$region"],
        ),
        ("stop", "fleet.stop", "stop", vec!["query=$query"]),
        ("collect", "fleet.collect", "collect", vec!["query=$query"]),
        ("status", "fleet.status", "status", vec![]),
    ] {
        let mapping = mapping.to_vec();
        b = b
            .call_handler(h, sel)
            .action(h, h, "fleet", op, &mapping, None, &[]);
    }
    b.bind_resource("fleet", "sim.fleet").build()
}

/// Domain knowledge bundle.
pub fn cs_domain_knowledge() -> DomainKnowledge {
    DomainKnowledge {
        dsml: csml_metamodel(),
        lts: csml_lts(),
        dscs: cs_dscs(),
        procedures: cs_procedures(),
        actions: ActionRegistry::new(),
        command_map: cs_command_map(),
        event_commands: vec![],
    }
}

/// Builds the full four-layer CSVM (the mobile-device configuration).
pub fn build_csvm(seed: u64, fleet: SharedFleet) -> MdDsmPlatform {
    let platform_model = PlatformModelBuilder::new("csvm", "crowdsensing")
        .ui(CSML)
        .synthesis("Skip")
        .controller(|_, _| {})
        .broker("csbroker")
        .build();
    let mut hub = ResourceHub::new(seed);
    register_fleet(&mut hub, fleet);
    PlatformBuilder::new(&platform_model, cs_domain_knowledge())
        .expect("CSVM platform model and DSK are consistent")
        .broker_model(cs_broker_model())
        .resources(hub)
        .build()
        .expect("CSVM platform assembles")
}

/// The split deployment: models are authored on mobile devices (UI layer
/// only) and executed by the provider (Synthesis + Controller + Broker).
pub struct CrowdsensingDeployment {
    device: MdDsmPlatform,
    provider: MdDsmPlatform,
}

impl CrowdsensingDeployment {
    /// Builds the deployment over a shared fleet.
    pub fn new(seed: u64, fleet: SharedFleet) -> Self {
        let device_model = PlatformModelBuilder::new("csvm-device", "crowdsensing")
            .ui(CSML)
            .build();
        let device = PlatformBuilder::new(&device_model, cs_domain_knowledge())
            .expect("device node is consistent")
            .build()
            .expect("device node assembles");
        let provider_model = PlatformModelBuilder::new("csvm-provider", "crowdsensing")
            .synthesis("Skip")
            .controller(|_, _| {})
            .broker("csbroker")
            .build();
        let mut hub = ResourceHub::new(seed);
        register_fleet(&mut hub, fleet);
        let provider = PlatformBuilder::new(&provider_model, cs_domain_knowledge())
            .expect("provider node is consistent")
            .broker_model(cs_broker_model())
            .resources(hub)
            .build()
            .expect("provider node assembles");
        CrowdsensingDeployment { device, provider }
    }

    /// Opens a model-editing session on the device.
    pub fn open_session(&self) -> mddsm_core::Result<mddsm_ui::EditingSession> {
        // The device node hosts only the UI layer; sessions open on the
        // registered CSML environment.
        self.device.open_session()
    }

    /// Uploads a device-authored model to the provider for execution.
    pub fn upload(&mut self, model: Model) -> mddsm_core::Result<ExecutionReport> {
        Ok(self.provider.submit_model(model)?.execution)
    }

    /// The provider's command trace against the fleet.
    pub fn provider_trace(&self) -> Vec<String> {
        self.provider.command_trace()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::shared_fleet;

    #[test]
    fn cs_model_analyzes_clean() {
        // Load-time gate: zero diagnostics on the shipped broker model.
        let report = mddsm_broker::analyze(&cs_broker_model());
        assert!(report.is_clean(), "diagnostics: {:?}", report.diagnostics);
    }

    #[test]
    fn full_csvm_runs_query_lifecycle() {
        let fleet = shared_fleet(10, &["downtown", "harbor"], 42);
        let mut p = build_csvm(1, fleet.clone());
        let mut s = p.open_session().unwrap();
        let q = s.create("SensingQuery").unwrap();
        s.set(q, "name", "noise1").unwrap();
        s.set(q, "sensor", "Noise").unwrap();
        s.set(q, "region", "downtown").unwrap();
        s.set(q, "sampleRateHz", "2").unwrap();
        let report = p.submit_model(s.submit().unwrap()).unwrap();
        assert!(
            report
                .execution
                .events
                .contains(&"queryStarted".to_string()),
            "{report:?}"
        );
        {
            let fleet = fleet.lock().unwrap();
            assert_eq!(fleet.running(), vec!["noise1"]);
        }
        let trace = p.command_trace();
        assert!(trace.iter().any(|t| t.contains("fleet.start")), "{trace:?}");
        assert!(
            trace.iter().any(|t| t.contains("fleet.collect")),
            "{trace:?}"
        );

        // On-the-fly retarget.
        s.set(q, "sampleRateHz", "8").unwrap();
        p.submit_model(s.submit().unwrap()).unwrap();
        assert!(
            p.command_trace().iter().any(|t| t.contains("retarget")),
            "{:?}",
            p.command_trace()
        );

        // Stop by deleting the query.
        s.delete(q).unwrap();
        p.submit_model(s.submit().unwrap()).unwrap();
        {
            let fleet = fleet.lock().unwrap();
            assert!(fleet.running().is_empty());
        }
    }

    #[test]
    fn split_deployment_routes_models_to_provider() {
        let fleet = shared_fleet(6, &["park"], 3);
        let mut d = CrowdsensingDeployment::new(1, fleet);
        let mut s = d.open_session().unwrap();
        let q = s.create("SensingQuery").unwrap();
        s.set(q, "name", "air1").unwrap();
        s.set(q, "sensor", "AirQuality").unwrap();
        s.set(q, "region", "park").unwrap();
        let report = d.upload(s.submit().unwrap()).unwrap();
        assert!(report.commands >= 1);
        assert!(d.provider_trace().iter().any(|t| t.contains("fleet.start")));
    }
}
