//! The simulated crowdsensing fleet: a provider and N participating
//! phones with sensors.
//!
//! Substitutes the paper's participatory-sensing smartphone deployment.
//! Devices are placed in named regions and produce deterministic synthetic
//! readings per sensor (seeded noise around region-specific baselines), so
//! query results are reproducible. The provider aggregates device samples
//! per collection round.

use mddsm_sim::resource::{Args, Outcome};
use mddsm_sim::{LatencyModel, ResourceHub, SimDuration, SimRng};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Aggregation functions over collected samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregation {
    /// Arithmetic mean.
    Mean,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Sample count.
    Count,
}

impl Aggregation {
    /// Parses the CSML literal.
    pub fn parse(s: &str) -> Option<Aggregation> {
        match s {
            "Mean" => Some(Aggregation::Mean),
            "Min" => Some(Aggregation::Min),
            "Max" => Some(Aggregation::Max),
            "Count" => Some(Aggregation::Count),
            _ => None,
        }
    }

    /// Applies the aggregation; empty input yields `None` (except Count).
    pub fn apply(self, samples: &[f64]) -> Option<f64> {
        match self {
            Aggregation::Count => Some(samples.len() as f64),
            _ if samples.is_empty() => None,
            Aggregation::Mean => Some(samples.iter().sum::<f64>() / samples.len() as f64),
            Aggregation::Min => samples
                .iter()
                .copied()
                .fold(None, |m: Option<f64>, x| Some(m.map_or(x, |m| m.min(x)))),
            Aggregation::Max => samples
                .iter()
                .copied()
                .fold(None, |m: Option<f64>, x| Some(m.map_or(x, |m| m.max(x)))),
        }
    }
}

/// One participating device.
#[derive(Debug, Clone)]
pub struct Device {
    /// Device id.
    pub id: String,
    /// Region the device is currently in.
    pub region: String,
    /// Battery level in `[0, 1]`; sampling drains it.
    pub battery: f64,
}

#[derive(Debug, Clone)]
struct RunningQuery {
    sensor: String,
    region: String,
    rate_hz: u32,
    aggregation: Aggregation,
    rounds: u64,
}

/// The fleet: devices plus running queries.
#[derive(Debug)]
pub struct Fleet {
    devices: Vec<Device>,
    queries: BTreeMap<String, RunningQuery>,
    rng: SimRng,
}

impl Fleet {
    /// Creates a fleet of `n` devices spread round-robin over `regions`.
    pub fn new(n: usize, regions: &[&str], seed: u64) -> Self {
        let devices = (0..n)
            .map(|i| Device {
                id: format!("phone{i}"),
                region: regions[i % regions.len().max(1)].to_owned(),
                battery: 1.0,
            })
            .collect();
        Fleet {
            devices,
            queries: BTreeMap::new(),
            rng: SimRng::seed_from_u64(seed),
        }
    }

    /// Number of devices currently in `region`.
    pub fn devices_in(&self, region: &str) -> usize {
        self.devices.iter().filter(|d| d.region == region).count()
    }

    /// Moves a device to another region (participant mobility).
    pub fn move_device(&mut self, id: &str, region: &str) -> bool {
        match self.devices.iter_mut().find(|d| d.id == id) {
            Some(d) => {
                d.region = region.to_owned();
                true
            }
            None => false,
        }
    }

    /// Names of the running queries.
    pub fn running(&self) -> Vec<&str> {
        self.queries.keys().map(String::as_str).collect()
    }

    fn baseline(sensor: &str, region: &str) -> f64 {
        // Region- and sensor-specific deterministic baselines.
        let rh = region.bytes().map(u64::from).sum::<u64>() % 17;
        match sensor {
            "Noise" => 50.0 + rh as f64,
            "Temperature" => 15.0 + (rh as f64) / 2.0,
            "AirQuality" => 30.0 + rh as f64 * 2.0,
            "Accelerometer" => 0.5,
            _ => 10.0,
        }
    }

    fn start(&mut self, query: &str, sensor: &str, region: &str, rate_hz: u32, agg: Aggregation) {
        self.queries.insert(
            query.to_owned(),
            RunningQuery {
                sensor: sensor.to_owned(),
                region: region.to_owned(),
                rate_hz: rate_hz.max(1),
                aggregation: agg,
                rounds: 0,
            },
        );
    }

    fn retarget(&mut self, query: &str, rate_hz: Option<u32>, region: Option<&str>) -> bool {
        match self.queries.get_mut(query) {
            Some(q) => {
                if let Some(r) = rate_hz {
                    q.rate_hz = r.max(1);
                }
                if let Some(r) = region {
                    q.region = r.to_owned();
                }
                true
            }
            None => false,
        }
    }

    fn stop(&mut self, query: &str) -> bool {
        self.queries.remove(query).is_some()
    }

    /// Runs one collection round for a query: every participating device
    /// in the query's region contributes `rate_hz` samples; returns
    /// `(aggregate, sample count, participants)`.
    fn collect(&mut self, query: &str) -> Option<(Option<f64>, usize, usize)> {
        let q = self.queries.get(query)?.clone();
        let mut samples = Vec::new();
        let mut participants = 0usize;
        let baseline = Self::baseline(&q.sensor, &q.region);
        for d in self
            .devices
            .iter_mut()
            .filter(|d| d.region == q.region && d.battery > 0.05)
        {
            participants += 1;
            for _ in 0..q.rate_hz {
                let noise = (self.rng.unit() - 0.5) * 4.0;
                samples.push(baseline + noise);
            }
            d.battery = (d.battery - 0.001 * f64::from(q.rate_hz)).max(0.0);
        }
        if let Some(q) = self.queries.get_mut(query) {
            q.rounds += 1;
        }
        Some((q.aggregation.apply(&samples), samples.len(), participants))
    }
}

/// Shared fleet handle.
pub type SharedFleet = Arc<Mutex<Fleet>>;

/// Creates a shared fleet.
pub fn shared_fleet(n: usize, regions: &[&str], seed: u64) -> SharedFleet {
    Arc::new(Mutex::new(Fleet::new(n, regions, seed)))
}

fn arg<'a>(args: &'a Args, key: &str) -> &'a str {
    args.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
        .unwrap_or("")
}

/// Registers the fleet as the `sim.fleet` resource: `start`, `retarget`,
/// `stop`, `collect`, `status`.
pub fn register_fleet(hub: &mut ResourceHub, fleet: SharedFleet) {
    hub.register(
        "sim.fleet",
        LatencyModel::uniform_ms(5, 15),
        SimDuration::from_millis(2_000),
        Box::new(move |op: &str, args: &Args| {
            let mut fleet = fleet.lock().expect("fleet lock");
            match op {
                "start" => {
                    let agg =
                        Aggregation::parse(arg(args, "aggregation")).unwrap_or(Aggregation::Mean);
                    let rate: u32 = arg(args, "rate").parse().unwrap_or(1);
                    fleet.start(
                        arg(args, "query"),
                        arg(args, "sensor"),
                        arg(args, "region"),
                        rate,
                        agg,
                    );
                    Outcome::ok_with("query", arg(args, "query"))
                }
                "retarget" => {
                    let rate = arg(args, "rate").parse::<u32>().ok();
                    let region = match arg(args, "region") {
                        "" => None,
                        r => Some(r),
                    };
                    if fleet.retarget(arg(args, "query"), rate, region) {
                        Outcome::ok()
                    } else {
                        Outcome::Failed(format!("unknown query `{}`", arg(args, "query")))
                    }
                }
                "stop" => {
                    if fleet.stop(arg(args, "query")) {
                        Outcome::ok()
                    } else {
                        Outcome::Failed(format!("unknown query `{}`", arg(args, "query")))
                    }
                }
                "collect" => match fleet.collect(arg(args, "query")) {
                    Some((agg, n, participants)) => {
                        let mut out = BTreeMap::new();
                        out.insert(
                            "value".into(),
                            agg.map(|v| format!("{v:.3}"))
                                .unwrap_or_else(|| "nan".into()),
                        );
                        out.insert("samples".into(), n.to_string());
                        out.insert("participants".into(), participants.to_string());
                        Outcome::Ok(out)
                    }
                    None => Outcome::Failed(format!("unknown query `{}`", arg(args, "query"))),
                },
                "status" => Outcome::ok_with("running", fleet.running().len().to_string()),
                other => Outcome::Failed(format!("fleet: unknown op `{other}`")),
            }
        }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregations() {
        let xs = [1.0, 2.0, 3.0];
        assert_eq!(Aggregation::Mean.apply(&xs), Some(2.0));
        assert_eq!(Aggregation::Min.apply(&xs), Some(1.0));
        assert_eq!(Aggregation::Max.apply(&xs), Some(3.0));
        assert_eq!(Aggregation::Count.apply(&xs), Some(3.0));
        assert_eq!(Aggregation::Mean.apply(&[]), None);
        assert_eq!(Aggregation::Count.apply(&[]), Some(0.0));
        assert_eq!(Aggregation::parse("Max"), Some(Aggregation::Max));
        assert_eq!(Aggregation::parse("Sum"), None);
    }

    #[test]
    fn fleet_lifecycle_and_collection() {
        let mut f = Fleet::new(10, &["downtown", "harbor"], 42);
        assert_eq!(f.devices_in("downtown"), 5);
        f.start("q1", "Noise", "downtown", 2, Aggregation::Mean);
        let (agg, n, participants) = f.collect("q1").unwrap();
        assert_eq!(participants, 5);
        assert_eq!(n, 10);
        let v = agg.unwrap();
        let baseline = Fleet::baseline("Noise", "downtown");
        assert!(
            (v - baseline).abs() < 2.5,
            "value {v} vs baseline {baseline}"
        );
        assert!(f.retarget("q1", Some(5), None));
        let (_, n, _) = f.collect("q1").unwrap();
        assert_eq!(n, 25);
        assert!(f.stop("q1"));
        assert!(f.collect("q1").is_none());
        assert!(!f.stop("q1"));
    }

    #[test]
    fn mobility_changes_participation() {
        let mut f = Fleet::new(4, &["a", "b"], 1);
        f.start("q", "Temperature", "a", 1, Aggregation::Count);
        let (agg, _, _) = f.collect("q").unwrap();
        assert_eq!(agg, Some(2.0));
        assert!(f.move_device("phone1", "a"));
        let (agg, _, _) = f.collect("q").unwrap();
        assert_eq!(agg, Some(3.0));
        assert!(!f.move_device("ghost", "a"));
    }

    #[test]
    fn determinism_per_seed() {
        let run = |seed| {
            let mut f = Fleet::new(6, &["x"], seed);
            f.start("q", "Noise", "x", 3, Aggregation::Mean);
            f.collect("q").unwrap().0.unwrap()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn hub_surface() {
        let mut hub = ResourceHub::new(1);
        register_fleet(&mut hub, shared_fleet(8, &["downtown"], 5));
        let (o, _) = hub.invoke(
            "sim.fleet",
            "start",
            &mddsm_sim::resource::args(&[
                ("query", "q1"),
                ("sensor", "Noise"),
                ("region", "downtown"),
                ("rate", "2"),
                ("aggregation", "Max"),
            ]),
        );
        assert!(o.is_ok());
        let (o, _) = hub.invoke(
            "sim.fleet",
            "collect",
            &mddsm_sim::resource::args(&[("query", "q1")]),
        );
        assert_eq!(o.get("participants"), Some("8"));
        let (o, _) = hub.invoke("sim.fleet", "status", &Args::new());
        assert_eq!(o.get("running"), Some("1"));
        let (o, _) = hub.invoke(
            "sim.fleet",
            "stop",
            &mddsm_sim::resource::args(&[("query", "zzz")]),
        );
        assert!(!o.is_ok());
    }
}
