//! Mobile-crowdsensing domain for MD-DSM: CSML and the Crowdsensing
//! Virtual Machine (§IV-D).
//!
//! "CSML and CSVM […] allow the user to specify models that represent
//! crowdsensing queries, which in turn are dynamically interpreted to drive
//! the acquisition of sensing data (from participating devices) and the
//! subsequent processing to produce the query results. For long running
//! queries, CSVM also allows on-the-fly changes to the user's model, which
//! dynamically reflect on the execution of the query."
//!
//! * [`csml`] — the CSML metamodel (sensing queries: sensor, region,
//!   sampling rate, aggregation) and its synthesis LTS, including the
//!   *retarget* transition implementing on-the-fly query changes.
//! * [`fleet`] — the simulated device fleet: a logically centralized
//!   provider plus N phones with sensors producing deterministic synthetic
//!   readings; aggregation (mean/min/max/count) happens provider-side.
//! * [`platform`] — the assembled CSVM and the split device/provider
//!   deployment ("the configuration that runs on the provider only has the
//!   three bottom layers, since creation and modification of user models
//!   only happens in the mobile devices").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csml;
pub mod fleet;
pub mod platform;

pub use platform::{build_csvm, CrowdsensingDeployment};
