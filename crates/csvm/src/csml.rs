//! The Crowdsensing Modeling Language (CSML).

use mddsm_meta::metamodel::{DataType, Metamodel, MetamodelBuilder};
use mddsm_meta::Value;
use mddsm_synthesis::lts::{ChangePattern, CommandTemplate};
use mddsm_synthesis::{Lts, LtsBuilder};

/// Name of the CSML metamodel.
pub const CSML: &str = "csml";

/// Builds the CSML metamodel: a sensing query names a sensor, a region of
/// interest, a sampling rate, and an aggregation function.
pub fn csml_metamodel() -> Metamodel {
    MetamodelBuilder::new(CSML)
        .enumeration(
            "Sensor",
            ["Gps", "Accelerometer", "Temperature", "Noise", "AirQuality"],
        )
        .enumeration("Aggregation", ["Mean", "Min", "Max", "Count"])
        .class("SensingQuery", |c| {
            c.attr("name", DataType::Str)
                .attr("sensor", DataType::Enum("Sensor".into()))
                .attr("region", DataType::Str)
                .attr_default("sampleRateHz", DataType::Int, Value::from(1))
                .attr_default(
                    "aggregation",
                    DataType::Enum("Aggregation".into()),
                    Value::enumeration("Aggregation", "Mean"),
                )
                .invariant("rate-positive", "self.sampleRateHz > 0")
                .invariant("region-set", "self.region <> \"\"")
        })
        .build()
        .expect("CSML metamodel is well-formed")
}

/// The CSML synthesis LTS: query creation starts acquisition, attribute
/// edits retarget the running query on the fly, deletion stops it.
pub fn csml_lts() -> Lts {
    LtsBuilder::new()
        .state("serving")
        .initial("serving")
        .transition(
            "serving",
            "serving",
            ChangePattern::create("SensingQuery"),
            |t| {
                t.emit(
                    CommandTemplate::new("startQuery", "$key")
                        .with("query", "$attr_name")
                        .with("sensor", "$attr_sensor")
                        .with("region", "$attr_region")
                        .with("rate", "$attr_sampleRateHz")
                        .with("aggregation", "$attr_aggregation"),
                )
            },
        )
        .transition(
            "serving",
            "serving",
            ChangePattern::set_attr("SensingQuery", "sampleRateHz").on_existing(),
            |t| {
                t.emit(
                    CommandTemplate::new("retargetQuery", "$key")
                        .with("query", "$attr_name")
                        .with("rate", "$value"),
                )
            },
        )
        .transition(
            "serving",
            "serving",
            ChangePattern::set_attr("SensingQuery", "region").on_existing(),
            |t| {
                t.emit(
                    CommandTemplate::new("retargetQuery", "$key")
                        .with("query", "$attr_name")
                        .with("region", "$value"),
                )
            },
        )
        .transition(
            "serving",
            "serving",
            ChangePattern::delete("SensingQuery"),
            |t| t.emit(CommandTemplate::new("stopQuery", "$key").with("query", "$id")),
        )
        .build()
        .expect("CSML LTS is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mddsm_meta::conformance;
    use mddsm_meta::model::Model;

    fn query_model() -> Model {
        let mut m = Model::new(CSML);
        let q = m.create("SensingQuery");
        m.set_attr(q, "name", Value::from("noise-downtown"));
        m.set_attr(q, "sensor", Value::enumeration("Sensor", "Noise"));
        m.set_attr(q, "region", Value::from("downtown"));
        m.set_attr(q, "sampleRateHz", Value::from(2));
        m
    }

    #[test]
    fn query_models_conform() {
        conformance::check(&query_model(), &csml_metamodel()).unwrap();
    }

    #[test]
    fn invariants_enforced() {
        let mm = csml_metamodel();
        let mut m = query_model();
        let q = m.all_of_class("SensingQuery")[0];
        m.set_attr(q, "sampleRateHz", Value::from(0));
        assert!(conformance::check(&m, &mm).is_err());
        let mut m = query_model();
        let q = m.all_of_class("SensingQuery")[0];
        m.set_attr(q, "region", Value::from(""));
        assert!(conformance::check(&m, &mm).is_err());
    }

    #[test]
    fn lts_emits_query_lifecycle() {
        use mddsm_meta::diff::{diff, DiffOptions};
        use mddsm_synthesis::{ChangeInterpreter, InterpreterConfig};
        let mm = csml_metamodel();
        let mut interp = ChangeInterpreter::new(csml_lts(), InterpreterConfig::default());
        let empty = Model::new(CSML);
        let m = query_model();
        let changes = diff(&empty, &m, &DiffOptions::default());
        let out = interp.interpret(&changes, &m, &mm).unwrap();
        let rendered = out.immediate.render();
        assert!(rendered.contains("startQuery"), "{rendered}");
        assert!(rendered.contains("rate=2"), "{rendered}");
        assert!(rendered.contains("region=downtown"), "{rendered}");

        // On-the-fly rate change -> retarget.
        let mut m2 = m.clone();
        let q = m2.all_of_class("SensingQuery")[0];
        m2.set_attr(q, "sampleRateHz", Value::from(10));
        let changes = diff(&m, &m2, &DiffOptions::default());
        let out = interp.interpret(&changes, &m2, &mm).unwrap();
        assert!(
            out.immediate.render().contains("retargetQuery"),
            "{}",
            out.immediate.render()
        );
        assert!(out.immediate.render().contains("rate=10"));

        // Deletion stops.
        let changes = diff(&m2, &empty, &DiffOptions::default());
        let out = interp.interpret(&changes, &empty, &mm).unwrap();
        assert!(out.immediate.render().contains("stopQuery"));
    }
}
