//! The state manager: the Broker layer's runtime model.
//!
//! The Fig. 6 `StateManager` "stores and manipulates the layer's
//! runtime model". True to MD-DSM, the runtime state *is a model*: a single
//! `State` object whose attribute slots hold the state variables, so
//! policies and autonomic symptoms are plain OCL-lite expressions evaluated
//! with `self` bound to that object.

use crate::{BrokerError, Result};
use mddsm_meta::constraint::{eval_bool, EvalEnv, Expr};
use mddsm_meta::metamodel::Metamodel;
use mddsm_meta::model::{Model, ObjectId};
use mddsm_meta::Value;

/// One journaled primitive mutation of the runtime model. The `lsn` is the
/// [`StateManager::version`] value *after* the write — versions bump by one
/// per primitive write, so LSNs of consecutive ops are contiguous, which
/// recovery exploits to detect lost entries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateOp {
    /// A string variable was set.
    SetStr {
        /// Log sequence number (the version after the write).
        lsn: u64,
        /// Variable name.
        key: String,
        /// New value.
        value: String,
    },
    /// An integer variable was set.
    SetInt {
        /// Log sequence number (the version after the write).
        lsn: u64,
        /// Variable name.
        key: String,
        /// New value.
        value: i64,
    },
    /// A variable was removed.
    Unset {
        /// Log sequence number (the version after the write).
        lsn: u64,
        /// Variable name.
        key: String,
    },
}

impl StateOp {
    /// The op's log sequence number.
    pub fn lsn(&self) -> u64 {
        match self {
            StateOp::SetStr { lsn, .. }
            | StateOp::SetInt { lsn, .. }
            | StateOp::Unset { lsn, .. } => *lsn,
        }
    }

    /// The variable the op writes.
    pub fn key(&self) -> &str {
        match self {
            StateOp::SetStr { key, .. }
            | StateOp::SetInt { key, .. }
            | StateOp::Unset { key, .. } => key,
        }
    }
}

/// A point-in-time copy of every state variable plus the version counter —
/// what a journal snapshot stores and what recovery restores before replay.
#[derive(Debug, Clone, PartialEq)]
pub struct StateSnapshot {
    /// The version (LSN) at snapshot time.
    pub version: u64,
    /// All variables, in key order.
    pub vars: Vec<(String, SnapValue)>,
}

/// A snapshotted variable value (the state model only holds these two).
#[derive(Debug, Clone, PartialEq)]
pub enum SnapValue {
    /// String variable.
    Str(String),
    /// Integer variable.
    Int(i64),
}

/// The Broker layer's mutable runtime state.
#[derive(Debug, Clone)]
pub struct StateManager {
    model: Model,
    state_obj: ObjectId,
    // Empty metamodel: state attribute slots resolve through the raw-slot
    // fallback of the constraint evaluator.
    mm: Metamodel,
    version: u64,
    /// When `true`, every primitive write is mirrored into `pending` for a
    /// journal to drain; off by default so unjournaled managers pay nothing.
    recording: bool,
    pending: Vec<StateOp>,
}

impl Default for StateManager {
    fn default() -> Self {
        Self::new()
    }
}

impl StateManager {
    /// Creates an empty state. Infallible: the empty metamodel is trivially
    /// well-formed, so no failure path (and no panic path) exists.
    pub fn new() -> Self {
        let mut model = Model::new("mddsm.broker.state");
        let state_obj = model.create("State");
        StateManager {
            model,
            state_obj,
            mm: Metamodel::empty("mddsm.broker.state"),
            version: 0,
            recording: false,
            pending: Vec::new(),
        }
    }

    /// Turns journaling support on or off: while on, primitive writes are
    /// mirrored as [`StateOp`]s retrievable with [`StateManager::take_ops`].
    pub fn record_ops(&mut self, on: bool) {
        self.recording = on;
        if !on {
            self.pending.clear();
        }
    }

    /// Drains the ops recorded since the last drain.
    pub fn take_ops(&mut self) -> Vec<StateOp> {
        std::mem::take(&mut self.pending)
    }

    /// The ops recorded since the last drain, without draining them.
    /// In-stream monitors peek here for the dirty keys of the current
    /// command frame before the journal drains the queue.
    pub fn pending_ops(&self) -> &[StateOp] {
        &self.pending
    }

    /// Sets a string variable.
    pub fn set_str(&mut self, key: &str, value: &str) {
        self.model.set_attr(self.state_obj, key, Value::from(value));
        self.version += 1;
        if self.recording {
            self.pending.push(StateOp::SetStr {
                lsn: self.version,
                key: key.to_owned(),
                value: value.to_owned(),
            });
        }
    }

    /// Sets an integer variable.
    pub fn set_int(&mut self, key: &str, value: i64) {
        self.model.set_attr(self.state_obj, key, Value::from(value));
        self.version += 1;
        if self.recording {
            self.pending.push(StateOp::SetInt {
                lsn: self.version,
                key: key.to_owned(),
                value,
            });
        }
    }

    /// Adds `delta` to an integer variable (0 when unset).
    pub fn bump(&mut self, key: &str, delta: i64) -> i64 {
        let cur = self.int(key).unwrap_or(0);
        let next = cur + delta;
        self.set_int(key, next);
        next
    }

    /// Reads a string variable.
    pub fn str(&self, key: &str) -> Option<&str> {
        self.model.attr_str(self.state_obj, key)
    }

    /// Reads an integer variable.
    pub fn int(&self, key: &str) -> Option<i64> {
        self.model.attr_int(self.state_obj, key)
    }

    /// Removes a variable.
    pub fn unset(&mut self, key: &str) {
        self.model.unset_attr(self.state_obj, key);
        self.version += 1;
        if self.recording {
            self.pending.push(StateOp::Unset {
                lsn: self.version,
                key: key.to_owned(),
            });
        }
    }

    /// Mutation counter (each write bumps it). Doubles as the journal LSN.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Captures every variable plus the version counter.
    pub fn snapshot(&self) -> StateSnapshot {
        let mut vars = Vec::new();
        if let Ok(obj) = self.model.object(self.state_obj) {
            for (key, values) in &obj.attrs {
                let Some(v) = values.first() else { continue };
                if let Some(s) = v.as_str() {
                    vars.push((key.clone(), SnapValue::Str(s.to_owned())));
                } else if let Some(i) = v.as_int() {
                    vars.push((key.clone(), SnapValue::Int(i)));
                }
            }
        }
        StateSnapshot {
            version: self.version,
            vars,
        }
    }

    /// Replaces the entire state with a snapshot's contents (recording and
    /// pending ops are untouched — restore is not itself a mutation).
    pub fn restore(&mut self, snap: &StateSnapshot) {
        let mut model = Model::new("mddsm.broker.state");
        let state_obj = model.create("State");
        for (key, value) in &snap.vars {
            match value {
                SnapValue::Str(s) => model.set_attr(state_obj, key, Value::from(s.as_str())),
                SnapValue::Int(i) => model.set_attr(state_obj, key, Value::from(*i)),
            }
        }
        self.model = model;
        self.state_obj = state_obj;
        self.version = snap.version;
    }

    /// Replays one journaled op. Refuses (with a typed error) when the
    /// op's LSN is not exactly `version + 1` — a gap or reorder means the
    /// journal and the model have diverged.
    pub fn apply_op(&mut self, op: &StateOp) -> Result<()> {
        if op.lsn() != self.version + 1 {
            return Err(BrokerError::RecoveryDiverged(format!(
                "journal LSN {} does not follow state version {}",
                op.lsn(),
                self.version
            )));
        }
        match op {
            StateOp::SetStr { key, value, .. } => {
                self.model
                    .set_attr(self.state_obj, key, Value::from(value.as_str()));
            }
            StateOp::SetInt { key, value, .. } => {
                self.model
                    .set_attr(self.state_obj, key, Value::from(*value));
            }
            StateOp::Unset { key, .. } => {
                self.model.unset_attr(self.state_obj, key);
            }
        }
        self.version = op.lsn();
        Ok(())
    }

    /// Replays a coalesced journal record: `op` is the *last* of a run of
    /// consecutive writes to the same key whose first LSN was `first_lsn`
    /// — only the final value matters, so the intermediate writes were
    /// never journaled. Requires the run to start exactly at
    /// `version + 1` (same gap detection as [`StateManager::apply_op`])
    /// and advances the version over the whole run in one step.
    pub fn apply_coalesced(&mut self, first_lsn: u64, op: &StateOp) -> Result<()> {
        if first_lsn != self.version + 1 || op.lsn() < first_lsn {
            return Err(BrokerError::RecoveryDiverged(format!(
                "coalesced journal run {first_lsn}..={} does not follow state version {}",
                op.lsn(),
                self.version
            )));
        }
        match op {
            StateOp::SetStr { key, value, .. } => {
                self.model
                    .set_attr(self.state_obj, key, Value::from(value.as_str()));
            }
            StateOp::SetInt { key, value, .. } => {
                self.model
                    .set_attr(self.state_obj, key, Value::from(*value));
            }
            StateOp::Unset { key, .. } => {
                self.model.unset_attr(self.state_obj, key);
            }
        }
        self.version = op.lsn();
        Ok(())
    }

    /// Compares two states variable-by-variable and reports the first
    /// difference (in key order) as a human-readable description, or `None`
    /// when the states agree on every variable. Versions are compared too:
    /// reconciliation uses this to prove a promoted standby converged with
    /// what the failed primary had committed.
    pub fn first_divergence(&self, other: &StateManager) -> Option<String> {
        let (a, b) = (self.snapshot(), other.snapshot());
        if a.version != b.version {
            return Some(format!("version {} vs {}", a.version, b.version));
        }
        let show = |v: &SnapValue| match v {
            SnapValue::Str(s) => format!("\"{s}\""),
            SnapValue::Int(i) => i.to_string(),
        };
        let mut left = a.vars.iter();
        let mut right = b.vars.iter();
        loop {
            match (left.next(), right.next()) {
                (None, None) => return None,
                (Some((k, v)), None) => {
                    return Some(format!("{k}={} vs unset", show(v)));
                }
                (None, Some((k, v))) => {
                    return Some(format!("{k} unset vs {}", show(v)));
                }
                (Some((ka, va)), Some((kb, vb))) => {
                    if ka != kb {
                        return Some(format!("key {ka} vs {kb}"));
                    }
                    if va != vb {
                        return Some(format!("{ka}={} vs {}", show(va), show(vb)));
                    }
                }
            }
        }
    }

    /// Evaluates an OCL-lite expression with `self` bound to the state
    /// object; missing variables read as `null`.
    pub fn eval(&self, expr: &Expr) -> Result<bool> {
        let env = EvalEnv::for_object(&self.model, &self.mm, self.state_obj);
        eval_bool(expr, &env).map_err(|e| BrokerError::PolicyFailed(e.to_string()))
    }

    /// Applies a `k=v` or `k=+n` effect string: `=+n` bumps an integer,
    /// otherwise the value is stored as string (or int when it parses).
    pub fn apply_effect(&mut self, effect: &str) -> Result<()> {
        let (key, value) = effect.split_once('=').ok_or_else(|| {
            BrokerError::BadPlanStep(format!("state effect `{effect}` is not `k=v`"))
        })?;
        if let Some(delta) = value.strip_prefix('+').and_then(|d| d.parse::<i64>().ok()) {
            self.bump(key, delta);
        } else if let Some(delta) = value.strip_prefix('-').and_then(|d| d.parse::<i64>().ok()) {
            self.bump(key, -delta);
        } else if let Ok(n) = value.parse::<i64>() {
            self.set_int(key, n);
        } else {
            self.set_str(key, value);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mddsm_meta::constraint::parse;

    #[test]
    fn variables_and_versioning() {
        let mut s = StateManager::new();
        assert_eq!(s.version(), 0);
        s.set_str("mode", "direct");
        s.set_int("opens", 2);
        assert_eq!(s.str("mode"), Some("direct"));
        assert_eq!(s.int("opens"), Some(2));
        assert_eq!(s.bump("opens", 3), 5);
        assert_eq!(s.bump("fresh", 1), 1);
        s.unset("mode");
        assert_eq!(s.str("mode"), None);
        assert_eq!(s.version(), 5);
    }

    #[test]
    fn policy_evaluation_over_state() {
        let mut s = StateManager::new();
        s.set_str("mode", "direct");
        s.set_int("failures", 3);
        assert!(s.eval(&parse("self.mode = \"direct\"").unwrap()).unwrap());
        assert!(s.eval(&parse("self.failures > 2").unwrap()).unwrap());
        assert!(s.eval(&parse("self.missing = null").unwrap()).unwrap());
        assert!(!s.eval(&parse("self.failures > 5").unwrap()).unwrap());
        // Non-boolean expression is a policy failure.
        assert!(s.eval(&parse("self.failures + 1").unwrap()).is_err());
    }

    #[test]
    fn recording_mirrors_primitive_writes() {
        let mut s = StateManager::new();
        s.set_int("quiet", 1); // not recording yet
        s.record_ops(true);
        s.set_str("mode", "direct");
        s.bump("opens", 2);
        s.unset("mode");
        let ops = s.take_ops();
        assert_eq!(
            ops,
            vec![
                StateOp::SetStr {
                    lsn: 2,
                    key: "mode".into(),
                    value: "direct".into()
                },
                StateOp::SetInt {
                    lsn: 3,
                    key: "opens".into(),
                    value: 2
                },
                StateOp::Unset {
                    lsn: 4,
                    key: "mode".into()
                },
            ]
        );
        assert!(s.take_ops().is_empty());
        s.record_ops(false);
        s.set_int("quiet", 2);
        assert!(s.take_ops().is_empty());
    }

    #[test]
    fn snapshot_restore_and_replay_roundtrip() {
        let mut s = StateManager::new();
        s.set_str("mode", "direct");
        s.set_int("opens", 3);
        let snap = s.snapshot();
        assert_eq!(snap.version, 2);

        s.record_ops(true);
        s.set_int("opens", 4);
        s.unset("mode");
        let ops = s.take_ops();

        // Restore the snapshot into a fresh manager and replay the tail.
        let mut r = StateManager::new();
        r.restore(&snap);
        assert_eq!(r.int("opens"), Some(3));
        assert_eq!(r.str("mode"), Some("direct"));
        for op in &ops {
            r.apply_op(op).unwrap();
        }
        assert_eq!(r.version(), s.version());
        assert_eq!(r.int("opens"), Some(4));
        assert_eq!(r.str("mode"), None);
        assert_eq!(r.snapshot(), s.snapshot());
    }

    #[test]
    fn replay_refuses_lsn_gaps() {
        let mut s = StateManager::new();
        let op = StateOp::SetInt {
            lsn: 5,
            key: "x".into(),
            value: 1,
        };
        match s.apply_op(&op) {
            Err(BrokerError::RecoveryDiverged(m)) => assert!(m.contains("LSN 5"), "{m}"),
            other => panic!("expected RecoveryDiverged, got {other:?}"),
        }
    }

    #[test]
    fn first_divergence_reports_the_difference() {
        let mut a = StateManager::new();
        let mut b = StateManager::new();
        assert_eq!(a.first_divergence(&b), None);
        a.set_int("x", 1);
        // Version mismatch is itself a divergence.
        assert_eq!(a.first_divergence(&b), Some("version 1 vs 0".into()));
        b.set_int("x", 2);
        let d = a.first_divergence(&b).unwrap();
        assert!(d.contains("x=1 vs 2"), "{d}");
        a.set_str("m", "on"); // a now v2
        b.set_str("n", "on"); // b now v2 with a different inventory
        let d = a.first_divergence(&b).unwrap();
        assert!(d.contains('m'), "{d}");
        // Restoring a's snapshot into b makes them agree again.
        b.restore(&a.snapshot());
        assert_eq!(a.first_divergence(&b), None);
    }

    #[test]
    fn effects() {
        let mut s = StateManager::new();
        s.apply_effect("opens=+1").unwrap();
        s.apply_effect("opens=+1").unwrap();
        assert_eq!(s.int("opens"), Some(2));
        s.apply_effect("opens=-1").unwrap();
        assert_eq!(s.int("opens"), Some(1));
        s.apply_effect("mode=relay").unwrap();
        assert_eq!(s.str("mode"), Some("relay"));
        s.apply_effect("limit=42").unwrap();
        assert_eq!(s.int("limit"), Some(42));
        assert!(s.apply_effect("broken").is_err());
    }
}
