//! The state manager: the Broker layer's runtime model.
//!
//! The Fig. 6 `StateManager` "stores and manipulates the layer's
//! runtime model". True to MD-DSM, the runtime state *is a model*: a single
//! `State` object whose attribute slots hold the state variables, so
//! policies and autonomic symptoms are plain OCL-lite expressions evaluated
//! with `self` bound to that object.

use crate::{BrokerError, Result};
use mddsm_meta::constraint::{eval_bool, EvalEnv, Expr};
use mddsm_meta::metamodel::{Metamodel, MetamodelBuilder};
use mddsm_meta::model::{Model, ObjectId};
use mddsm_meta::Value;

/// The Broker layer's mutable runtime state.
#[derive(Debug, Clone)]
pub struct StateManager {
    model: Model,
    state_obj: ObjectId,
    // Empty metamodel: state attribute slots resolve through the raw-slot
    // fallback of the constraint evaluator.
    mm: Metamodel,
    version: u64,
}

impl Default for StateManager {
    fn default() -> Self {
        Self::new()
    }
}

impl StateManager {
    /// Creates an empty state.
    pub fn new() -> Self {
        let mut model = Model::new("mddsm.broker.state");
        let state_obj = model.create("State");
        let mm = MetamodelBuilder::new("mddsm.broker.state")
            .build()
            .expect("empty metamodel is well-formed");
        StateManager {
            model,
            state_obj,
            mm,
            version: 0,
        }
    }

    /// Sets a string variable.
    pub fn set_str(&mut self, key: &str, value: &str) {
        self.model.set_attr(self.state_obj, key, Value::from(value));
        self.version += 1;
    }

    /// Sets an integer variable.
    pub fn set_int(&mut self, key: &str, value: i64) {
        self.model.set_attr(self.state_obj, key, Value::from(value));
        self.version += 1;
    }

    /// Adds `delta` to an integer variable (0 when unset).
    pub fn bump(&mut self, key: &str, delta: i64) -> i64 {
        let cur = self.int(key).unwrap_or(0);
        let next = cur + delta;
        self.set_int(key, next);
        next
    }

    /// Reads a string variable.
    pub fn str(&self, key: &str) -> Option<&str> {
        self.model.attr_str(self.state_obj, key)
    }

    /// Reads an integer variable.
    pub fn int(&self, key: &str) -> Option<i64> {
        self.model.attr_int(self.state_obj, key)
    }

    /// Removes a variable.
    pub fn unset(&mut self, key: &str) {
        self.model.unset_attr(self.state_obj, key);
        self.version += 1;
    }

    /// Mutation counter (each write bumps it).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Evaluates an OCL-lite expression with `self` bound to the state
    /// object; missing variables read as `null`.
    pub fn eval(&self, expr: &Expr) -> Result<bool> {
        let env = EvalEnv::for_object(&self.model, &self.mm, self.state_obj);
        eval_bool(expr, &env).map_err(|e| BrokerError::PolicyFailed(e.to_string()))
    }

    /// Applies a `k=v` or `k=+n` effect string: `=+n` bumps an integer,
    /// otherwise the value is stored as string (or int when it parses).
    pub fn apply_effect(&mut self, effect: &str) -> Result<()> {
        let (key, value) = effect.split_once('=').ok_or_else(|| {
            BrokerError::BadPlanStep(format!("state effect `{effect}` is not `k=v`"))
        })?;
        if let Some(delta) = value.strip_prefix('+').and_then(|d| d.parse::<i64>().ok()) {
            self.bump(key, delta);
        } else if let Some(delta) = value.strip_prefix('-').and_then(|d| d.parse::<i64>().ok()) {
            self.bump(key, -delta);
        } else if let Ok(n) = value.parse::<i64>() {
            self.set_int(key, n);
        } else {
            self.set_str(key, value);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mddsm_meta::constraint::parse;

    #[test]
    fn variables_and_versioning() {
        let mut s = StateManager::new();
        assert_eq!(s.version(), 0);
        s.set_str("mode", "direct");
        s.set_int("opens", 2);
        assert_eq!(s.str("mode"), Some("direct"));
        assert_eq!(s.int("opens"), Some(2));
        assert_eq!(s.bump("opens", 3), 5);
        assert_eq!(s.bump("fresh", 1), 1);
        s.unset("mode");
        assert_eq!(s.str("mode"), None);
        assert_eq!(s.version(), 5);
    }

    #[test]
    fn policy_evaluation_over_state() {
        let mut s = StateManager::new();
        s.set_str("mode", "direct");
        s.set_int("failures", 3);
        assert!(s.eval(&parse("self.mode = \"direct\"").unwrap()).unwrap());
        assert!(s.eval(&parse("self.failures > 2").unwrap()).unwrap());
        assert!(s.eval(&parse("self.missing = null").unwrap()).unwrap());
        assert!(!s.eval(&parse("self.failures > 5").unwrap()).unwrap());
        // Non-boolean expression is a policy failure.
        assert!(s.eval(&parse("self.failures + 1").unwrap()).is_err());
    }

    #[test]
    fn effects() {
        let mut s = StateManager::new();
        s.apply_effect("opens=+1").unwrap();
        s.apply_effect("opens=+1").unwrap();
        assert_eq!(s.int("opens"), Some(2));
        s.apply_effect("opens=-1").unwrap();
        assert_eq!(s.int("opens"), Some(1));
        s.apply_effect("mode=relay").unwrap();
        assert_eq!(s.str("mode"), Some("relay"));
        s.apply_effect("limit=42").unwrap();
        assert_eq!(s.int("limit"), Some(42));
        assert!(s.apply_effect("broken").is_err());
    }
}
