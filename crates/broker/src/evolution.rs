//! Live model evolution: hot upgrade of a running broker's model under
//! traffic.
//!
//! The paper's Synthesis layer already names the pieces — a model
//! comparator producing a change list and a change interpreter enacting
//! it — and the models@runtime line (KMF, arXiv:1405.6817) argues runtime
//! models must be cheap to clone and swap precisely so adaptation happens
//! *live*. This module composes those pieces with every robustness
//! substrate built so far into a staged, crash-consistent upgrade
//! protocol:
//!
//! 1. **Gate** — the candidate runs the full load-time validation
//!    pipeline (conformance, eager expression parsing, monitor
//!    compilation, static analysis), and the [`mddsm_meta::diff`] change
//!    list against the live model is classified into [`DeltaClass`]es; a
//!    breaking delta is the typed [`BrokerError::UpgradeRefused`] before
//!    anything moves.
//! 2. **Shadow** — the candidate's compiled monitors and policies are
//!    evaluated side-by-side with the live model over real calls
//!    ([`LiveUpgrade::observe_call`]), counting divergences; the cutover
//!    refuses while the evidence is thin or divergent.
//! 3. **Cutover** — one atomic, journaled
//!    [`JournalRecord::Upgrade`](crate::journal::JournalRecord::Upgrade)
//!    line carries the new model version plus every declared state
//!    migration as embedded LSN'd ops
//!    ([`GenericBroker::commit_upgrade`]). The torn-tail replay policy
//!    keeps or drops that line wholesale, so a crash anywhere recovers to
//!    pure old-model or pure new-model state — never a hybrid — and the
//!    record ships to the standby like any other, so failover mid-upgrade
//!    resolves to one consistent version under epoch fencing.
//! 4. **Probation** — a window of post-cutover ticks in which a monitor
//!    trip or a deepened brownout raises
//!    [`SupervisorDecision::RollbackUpgrade`](crate::supervisor::SupervisorDecision::RollbackUpgrade)
//!    and [`LiveUpgrade::rollback`] restores the pre-upgrade model and
//!    the captured pre-values of every migration-touched key — through
//!    the same journaled cutover primitive, so the rollback is exactly as
//!    durable as the upgrade. Domain writes committed during probation
//!    survive: each was monitor-verified at commit, and only the
//!    migration-touched keys are restored.

use crate::admission::AdmissionController;
use crate::engine::{GenericBroker, RecoveryReport};
use crate::journal;
use crate::monitor::{owner_key, period_key, trip_key, MonitorSet, TRIP_COUNTER_KEY};
use crate::state::{SnapValue, StateManager};
use crate::supervisor::Supervisor;
use crate::{BrokerError, Result};
use mddsm_meta::constraint::{self, Expr};
use mddsm_meta::diff::{diff, Change, ChangeList, DiffOptions};
use mddsm_meta::model::Model;
use mddsm_sim::ResourceHub;
use std::collections::{BTreeMap, BTreeSet};

/// How one model delta affects a running broker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaClass {
    /// Swappable in place: the running state needs no change (policies,
    /// monitors, brownout modes, action tuning, new handlers).
    Compatible,
    /// Swappable only together with journaled state migrations (declared
    /// `StateMigration` objects, admission classes whose cells must be
    /// seeded or retired).
    StateMigrating,
    /// Not swappable live: the change removes or re-keys part of the
    /// serving interface (a handler, its selector or kind, the layer
    /// itself) out from under in-flight callers — a typed refusal.
    Breaking,
}

/// Classifies every change in a [`ChangeList`] (as produced by
/// [`mddsm_meta::diff::diff`] between the live and candidate models),
/// pairing each class with a human-readable description of the change.
pub fn classify_changes(changes: &ChangeList) -> Vec<(DeltaClass, String)> {
    changes
        .iter()
        .map(|c| {
            let subject = c.subject();
            let class = match (subject.class.as_str(), c) {
                // The layer object is the serving identity: reshaping it
                // breaks every caller's addressing.
                ("BrokerLayer", _) => DeltaClass::Breaking,
                // Removing a handler — or changing what it answers to —
                // pulls the interface out from under in-flight traffic.
                ("Handler", Change::Delete { .. }) => DeltaClass::Breaking,
                ("Handler", Change::SetAttr { attr, .. })
                    if attr == "selector" || attr == "kind" =>
                {
                    DeltaClass::Breaking
                }
                // Declared migrations and admission classes carry state:
                // their deltas must ride inside the journaled cutover.
                ("StateMigration", _) => DeltaClass::StateMigrating,
                ("AdmissionClass", Change::Create { .. })
                | ("AdmissionClass", Change::Delete { .. }) => DeltaClass::StateMigrating,
                _ => DeltaClass::Compatible,
            };
            (class, format!("{c:?}"))
        })
        .collect()
}

/// Where an in-flight [`LiveUpgrade`] currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpgradePhase {
    /// Gated and classified; the candidate is being evaluated shadow-mode
    /// against real calls.
    Shadow,
    /// Cut over; a regression in this window triggers rollback.
    Probation,
    /// Probation passed: the upgrade is final.
    Committed,
    /// Rolled back to the pre-upgrade model and state.
    RolledBack,
}

/// How a settled upgrade ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpgradeOutcome {
    /// The candidate survived probation and is the live model.
    Committed,
    /// The candidate regressed and the pre-upgrade model is live again.
    RolledBack,
}

/// A pre-cutover value captured for rollback.
#[derive(Debug, Clone, PartialEq)]
enum PreValue {
    Str(String),
    Int(i64),
    Absent,
}

/// One planned migration write, applied inside the cutover record.
#[derive(Debug, Clone)]
enum MigrationWrite {
    SetStr(String, String),
    SetInt(String, i64),
    Unset(String),
}

impl MigrationWrite {
    fn key(&self) -> &str {
        match self {
            MigrationWrite::SetStr(k, _)
            | MigrationWrite::SetInt(k, _)
            | MigrationWrite::Unset(k) => k,
        }
    }
}

fn refused(stage: &str, reasons: Vec<String>) -> BrokerError {
    BrokerError::UpgradeRefused {
        stage: stage.to_owned(),
        reasons,
    }
}

/// `(name, property)` of every declared monitor in a model.
fn monitor_specs(model: &Model) -> Vec<(String, String)> {
    model
        .all_of_class("Monitor")
        .into_iter()
        .map(|m| {
            (
                model.attr_str(m, "name").unwrap_or_default().to_owned(),
                model.attr_str(m, "property").unwrap_or_default().to_owned(),
            )
        })
        .collect()
}

/// `name -> parsed expression` for every policy in a model.
fn policy_exprs(model: &Model) -> Result<BTreeMap<String, Expr>> {
    let mut out = BTreeMap::new();
    for p in model.all_of_class("Policy") {
        let name = model.attr_str(p, "name").unwrap_or_default().to_owned();
        let src = model.attr_str(p, "expression").unwrap_or_default();
        let expr = constraint::parse(src)
            .map_err(|e| BrokerError::InvalidModel(format!("policy `{name}`: {e}")))?;
        out.insert(name, expr);
    }
    Ok(out)
}

/// The current value of `key` in `state`, captured for rollback.
fn capture(state: &StateManager, key: &str) -> PreValue {
    if let Some(i) = state.int(key) {
        PreValue::Int(i)
    } else if let Some(s) = state.str(key) {
        PreValue::Str(s.to_owned())
    } else {
        PreValue::Absent
    }
}

/// A staged hot upgrade of one broker's runtime model. Construct with
/// [`LiveUpgrade::prepare`] (stage 1), feed real traffic through
/// [`LiveUpgrade::observe_call`] (stage 2), commit with
/// [`LiveUpgrade::cutover`] (stage 3), then drive
/// [`LiveUpgrade::probation_tick`] until the phase settles (stage 4),
/// calling [`LiveUpgrade::rollback`] when the supervisor decides
/// [`RollbackUpgrade`](crate::supervisor::SupervisorDecision::RollbackUpgrade).
#[derive(Debug)]
pub struct LiveUpgrade {
    old: Model,
    candidate: Model,
    tag: String,
    pre_version: u64,
    new_version: u64,
    phase: UpgradePhase,
    classified: Vec<(DeltaClass, String)>,
    // -- shadow phase --------------------------------------------------
    shadow_monitors: MonitorSet,
    shadow_memory: BTreeMap<String, String>,
    candidate_policies: BTreeMap<String, Expr>,
    live_policies: BTreeMap<String, Expr>,
    shadow_calls: u64,
    monitor_divergences: u64,
    policy_divergences: u64,
    // -- cutover / rollback bookkeeping --------------------------------
    pre_values: Vec<(String, PreValue)>,
    baseline_brownout: i64,
    probation_target: u64,
    probation_healthy: u64,
}

impl LiveUpgrade {
    /// Stage 1: gates `candidate` and classifies its delta against the
    /// live model. Refuses (typed [`BrokerError::UpgradeRefused`], stage
    /// `gate`) when the candidate fails any load-time validation, when
    /// the delta contains a breaking change, or when the live broker has
    /// a latched monitor trip (upgrading a broker that is refusing
    /// traffic would mask the violation). `old` must be the model
    /// `broker` currently interprets; `probation_target` is how many
    /// consecutive healthy probation ticks commit the upgrade.
    pub fn prepare(
        broker: &GenericBroker,
        old: &Model,
        candidate: &Model,
        tag: &str,
        probation_target: u64,
    ) -> Result<LiveUpgrade> {
        // The full from_model pipeline — conformance, eager parsing,
        // monitor compilation, static analysis — against a throwaway hub.
        if let Err(e) = GenericBroker::from_model(candidate, ResourceHub::new(0)) {
            return Err(refused("gate", vec![format!("candidate invalid: {e}")]));
        }
        if broker.monitor_latched() {
            return Err(refused(
                "gate",
                vec!["live broker has a latched monitor trip; repair before upgrading".into()],
            ));
        }
        let changes = diff(old, candidate, &DiffOptions::default());
        let classified = classify_changes(&changes);
        let breaking: Vec<String> = classified
            .iter()
            .filter(|(c, _)| *c == DeltaClass::Breaking)
            .map(|(_, what)| format!("breaking delta: {what}"))
            .collect();
        if !breaking.is_empty() {
            return Err(refused("gate", breaking));
        }
        Ok(LiveUpgrade {
            old: old.clone(),
            candidate: candidate.clone(),
            tag: tag.to_owned(),
            pre_version: broker.model_version(),
            new_version: broker.model_version() + 1,
            phase: UpgradePhase::Shadow,
            classified,
            shadow_monitors: MonitorSet::compile(&monitor_specs(candidate))?,
            shadow_memory: BTreeMap::new(),
            candidate_policies: policy_exprs(candidate)?,
            live_policies: policy_exprs(old)?,
            shadow_calls: 0,
            monitor_divergences: 0,
            policy_divergences: 0,
            pre_values: Vec::new(),
            baseline_brownout: 0,
            probation_target,
            probation_healthy: 0,
        })
    }

    /// The phase the upgrade is in.
    pub fn phase(&self) -> UpgradePhase {
        self.phase
    }

    /// The version the cutover will journal (pre-upgrade version + 1).
    pub fn new_version(&self) -> u64 {
        self.new_version
    }

    /// The per-change [`DeltaClass`] classification from stage 1.
    pub fn classified(&self) -> &[(DeltaClass, String)] {
        &self.classified
    }

    /// Calls observed in the shadow phase so far.
    pub fn shadow_calls(&self) -> u64 {
        self.shadow_calls
    }

    /// `(monitor, policy)` divergences counted in the shadow phase.
    pub fn divergences(&self) -> (u64, u64) {
        (self.monitor_divergences, self.policy_divergences)
    }

    /// Stage 2: evaluates the candidate's compiled monitors and policies
    /// side-by-side with the live model over the broker's *current* state
    /// — call it after each real call while shadowing. A candidate
    /// monitor tripping where the live model serves cleanly, or a policy
    /// (same name in both models) whose verdict differs, is a
    /// divergence. The candidate's temporal-monitor memory lives in a
    /// local shadow map, so shadowing never writes the live runtime
    /// model.
    pub fn observe_call(&mut self, broker: &GenericBroker) {
        if self.phase != UpgradePhase::Shadow {
            return;
        }
        self.shadow_calls += 1;
        let state = broker.state();
        if !self.shadow_monitors.is_empty() {
            let watched = self.shadow_monitors.watched_keys();
            let dirty: Vec<&str> = watched.iter().map(String::as_str).collect();
            let trips = self
                .shadow_monitors
                .check_observed(state, &dirty, &mut self.shadow_memory);
            self.monitor_divergences += trips.len() as u64;
        }
        for (name, cand) in &self.candidate_policies {
            if let Some(live) = self.live_policies.get(name) {
                let diverged = match (state.eval(live), state.eval(cand)) {
                    (Ok(a), Ok(b)) => a != b,
                    (Err(_), Err(_)) => false,
                    _ => true,
                };
                if diverged {
                    self.policy_divergences += 1;
                }
            }
        }
    }

    /// The migration writes a cutover to the candidate applies: seeds
    /// for admission cells the live state lacks, the candidate's
    /// declared `StateMigration`s, and the retirement of monitor memory
    /// belonging to monitors the candidate removed or re-defined.
    fn migration_plan(&self, live: &StateManager) -> Vec<MigrationWrite> {
        let mut plan = Vec::new();
        // New admission classes need their OCL-addressable cells seeded
        // exactly as `from_model` would have; cells the live state
        // already holds (existing classes, possibly retuned at runtime)
        // are kept.
        if let Some(ctrl) = AdmissionController::from_model(&self.candidate) {
            let mut scratch = StateManager::new();
            ctrl.seed_state(&mut scratch);
            for (key, value) in &scratch.snapshot().vars {
                if live.int(key).is_none() && live.str(key).is_none() {
                    plan.push(match value {
                        SnapValue::Int(i) => MigrationWrite::SetInt(key.clone(), *i),
                        SnapValue::Str(s) => MigrationWrite::SetStr(key.clone(), s.clone()),
                    });
                }
            }
        }
        // Declared migrations: an integer-shaped value writes an int, an
        // empty value unsets, anything else writes a string.
        for m in self.candidate.all_of_class("StateMigration") {
            let key = self
                .candidate
                .attr_str(m, "key")
                .unwrap_or_default()
                .to_owned();
            if key.is_empty() {
                continue;
            }
            let value = self.candidate.attr_str(m, "value").unwrap_or_default();
            plan.push(if value.is_empty() {
                MigrationWrite::Unset(key)
            } else if let Ok(i) = value.parse::<i64>() {
                MigrationWrite::SetInt(key, i)
            } else {
                MigrationWrite::SetStr(key, value.to_owned())
            });
        }
        // Monitor memory carryover: a monitor the candidate keeps (same
        // name, same property) keeps its latches and temporal cells; one
        // the candidate removed or re-defined has its memory retired so
        // stale cells can't confuse the new property.
        let cand: BTreeMap<String, String> = monitor_specs(&self.candidate).into_iter().collect();
        for (name, property) in monitor_specs(&self.old) {
            if cand.get(&name) == Some(&property) {
                continue;
            }
            for key in [trip_key(&name), period_key(&name), owner_key(&name)] {
                if live.int(&key).is_some() || live.str(&key).is_some() {
                    plan.push(MigrationWrite::Unset(key));
                }
            }
        }
        plan
    }

    /// Stage 3: the atomic journaled cutover. Refuses (stage `cutover`)
    /// while the shadow evidence is thin (`min_shadow_calls`), divergent
    /// (more than `max_divergences` monitor + policy divergences), or
    /// the live broker is latched. On success the broker interprets the
    /// candidate, the migrations ride inside one journaled `Upgrade`
    /// record, and probation begins. Returns the state version at the
    /// commit point.
    pub fn cutover(
        &mut self,
        broker: &mut GenericBroker,
        min_shadow_calls: u64,
        max_divergences: u64,
    ) -> Result<u64> {
        if self.phase != UpgradePhase::Shadow {
            return Err(refused(
                "cutover",
                vec![format!("upgrade is in phase {:?}, not Shadow", self.phase)],
            ));
        }
        let mut reasons = Vec::new();
        if self.shadow_calls < min_shadow_calls {
            reasons.push(format!(
                "shadow phase too short: {} of {min_shadow_calls} required calls observed",
                self.shadow_calls
            ));
        }
        let diverged = self.monitor_divergences + self.policy_divergences;
        if diverged > max_divergences {
            reasons.push(format!(
                "candidate diverged from the live model on real traffic: \
                 {} monitor trip(s), {} policy verdict(s) (allowed {max_divergences})",
                self.monitor_divergences, self.policy_divergences
            ));
        }
        if broker.monitor_latched() {
            reasons.push("live broker has a latched monitor trip".into());
        }
        if !reasons.is_empty() {
            return Err(refused("cutover", reasons));
        }

        let plan = self.migration_plan(broker.state());
        // Capture the pre-value of every key the cutover (or a probation
        // window under the candidate's monitors) can touch, so rollback
        // restores exactly the migration-affected keys and nothing else.
        let mut keys: BTreeSet<String> = plan.iter().map(|w| w.key().to_owned()).collect();
        keys.insert(TRIP_COUNTER_KEY.to_owned());
        for (name, _) in monitor_specs(&self.candidate) {
            keys.insert(trip_key(&name));
            keys.insert(period_key(&name));
            keys.insert(owner_key(&name));
        }
        self.pre_values = keys
            .into_iter()
            .map(|k| {
                let v = capture(broker.state(), &k);
                (k, v)
            })
            .collect();

        broker.adopt_model(&self.candidate)?;
        let tag = self.tag.clone();
        let version = broker.commit_upgrade(self.new_version, &tag, &mut |state| {
            for w in &plan {
                match w {
                    MigrationWrite::SetStr(k, v) => state.set_str(k, v),
                    MigrationWrite::SetInt(k, v) => state.set_int(k, *v),
                    MigrationWrite::Unset(k) => state.unset(k),
                }
            }
        })?;
        self.baseline_brownout = broker.state().int("brownout_level").unwrap_or(0);
        self.phase = UpgradePhase::Probation;
        self.probation_healthy = 0;
        Ok(version)
    }

    /// Stage 4: one probation heartbeat. A latched monitor trip or a
    /// brownout deeper than the cutover baseline is a regression — it is
    /// fed to the supervisor as an upgrade-regression symptom (the next
    /// [`Supervisor::tick`] decides
    /// [`RollbackUpgrade`](crate::supervisor::SupervisorDecision::RollbackUpgrade));
    /// `probation_target` consecutive healthy ticks commit the upgrade.
    /// Returns the phase after the tick.
    pub fn probation_tick(
        &mut self,
        broker: &GenericBroker,
        supervisor: &mut Supervisor,
        component: &str,
    ) -> UpgradePhase {
        if self.phase != UpgradePhase::Probation {
            return self.phase;
        }
        if broker.monitor_latched() {
            let monitor = broker
                .monitor_trips()
                .last()
                .map(|t| t.monitor.clone())
                .unwrap_or_else(|| "unknown".to_owned());
            supervisor.note_upgrade_regression(component, &format!("monitor `{monitor}` tripped"));
            return self.phase;
        }
        let level = broker.state().int("brownout_level").unwrap_or(0);
        if level > self.baseline_brownout {
            supervisor.note_upgrade_regression(
                component,
                &format!(
                    "brownout deepened under the candidate: level {level} > baseline {}",
                    self.baseline_brownout
                ),
            );
            return self.phase;
        }
        self.probation_healthy += 1;
        if self.probation_healthy >= self.probation_target {
            self.phase = UpgradePhase::Committed;
        }
        self.phase
    }

    /// Rolls a probation-phase upgrade back: restores the captured
    /// pre-value of every migration-touched key (including the monitor
    /// trip counter and any candidate-monitor memory written during
    /// probation) and re-journals the pre-upgrade model version —
    /// through the same atomic [`GenericBroker::commit_upgrade`]
    /// primitive, so the rollback is exactly as crash-consistent as the
    /// cutover. Domain writes committed during probation are preserved
    /// (each one was monitor-verified when it committed). Returns the
    /// state version at the rollback point.
    pub fn rollback(&mut self, broker: &mut GenericBroker, reason: &str) -> Result<u64> {
        if self.phase != UpgradePhase::Probation {
            return Err(refused(
                "rollback",
                vec![format!(
                    "upgrade is in phase {:?}, not Probation",
                    self.phase
                )],
            ));
        }
        broker.adopt_model(&self.old)?;
        let tag = format!("rollback({}): {reason}", self.tag);
        let pre_values = std::mem::take(&mut self.pre_values);
        let version = broker.commit_upgrade(self.pre_version, &tag, &mut |state| {
            // Compare before writing: `unset` on an absent key still
            // records an op, and a no-op `set_*` would churn the LSN.
            for (key, pre) in &pre_values {
                match pre {
                    PreValue::Int(i) => {
                        if state.int(key) != Some(*i) {
                            state.set_int(key, *i);
                        }
                    }
                    PreValue::Str(s) => {
                        if state.str(key) != Some(s.as_str()) {
                            state.set_str(key, s);
                        }
                    }
                    PreValue::Absent => {
                        if state.int(key).is_some() || state.str(key).is_some() {
                            state.unset(key);
                        }
                    }
                }
            }
        })?;
        self.phase = UpgradePhase::RolledBack;
        Ok(version)
    }

    /// The final outcome, once the upgrade has settled.
    pub fn outcome(&self) -> Option<UpgradeOutcome> {
        match self.phase {
            UpgradePhase::Committed => Some(UpgradeOutcome::Committed),
            UpgradePhase::RolledBack => Some(UpgradeOutcome::RolledBack),
            _ => None,
        }
    }
}

/// Version-aware crash recovery: replays the journal to find which model
/// version its newest `Upgrade` record put live, picks that model from
/// `versions` (a `(version, model)` table; version 1 is the
/// pre-evolution model), and runs the ordinary [`GenericBroker::recover`]
/// path with it. A crash mid-upgrade therefore resolves to *one*
/// consistent model — whichever side of the atomic cutover record
/// survived — and never to a hybrid. Refuses with
/// [`BrokerError::RecoveryDiverged`] when the journal pins a version the
/// caller did not supply.
pub fn recover_versioned(
    versions: &[(u64, &Model)],
    hub: ResourceHub,
    journal_bytes: &[u8],
    invariants: &[&str],
) -> Result<(GenericBroker, RecoveryReport)> {
    let pinned = journal::replay(journal_bytes)?.model_version;
    let model = versions
        .iter()
        .find(|(v, _)| *v == pinned)
        .map(|(_, m)| *m)
        .ok_or_else(|| {
            BrokerError::RecoveryDiverged(format!(
                "journal pins model version {pinned}, but no such model was supplied \
                 (have: {:?})",
                versions.iter().map(|(v, _)| *v).collect::<Vec<_>>()
            ))
        })?;
    GenericBroker::recover(model, hub, journal_bytes, invariants)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::BrokerModelBuilder;
    use crate::supervisor::{RestartPolicy, SupervisorDecision};
    use mddsm_sim::resource::{args, Outcome};
    use mddsm_sim::SimTime;

    fn hub() -> ResourceHub {
        let mut h = ResourceHub::new(7);
        h.register_fn("sim.media", |_, _| Outcome::ok());
        h
    }

    fn v1() -> Model {
        BrokerModelBuilder::new("ncb")
            .call_handler("open", "openSession")
            .action(
                "open",
                "openDirect",
                "media",
                "open",
                &["peer=$peer"],
                None,
                &["opens=+1"],
            )
            .policy("boundedOpens", "self.opens < 1000")
            .monitor("opens_nonneg", "self.opens >= 0")
            .bind_resource("media", "sim.media")
            .build()
    }

    /// v2 keeps the serving interface, adds a migration, and adds a
    /// second monitor over the migrated key.
    fn v2() -> Model {
        BrokerModelBuilder::new("ncb")
            .call_handler("open", "openSession")
            .action(
                "open",
                "openDirect",
                "media",
                "open",
                &["peer=$peer"],
                None,
                &["opens=+1"],
            )
            .policy("boundedOpens", "self.opens < 1000")
            .monitor("opens_nonneg", "self.opens >= 0")
            .monitor(
                "tier_known",
                "self.svc_tier = \"gold\" or self.svc_tier = \"lite\"",
            )
            .migration("seed-tier", "svc_tier", "gold")
            .bind_resource("media", "sim.media")
            .build()
    }

    /// A breaking v2: the handler's selector changes.
    fn v2_breaking() -> Model {
        BrokerModelBuilder::new("ncb")
            .call_handler("open", "openSessionV2")
            .action(
                "open",
                "openDirect",
                "media",
                "open",
                &["peer=$peer"],
                None,
                &["opens=+1"],
            )
            .bind_resource("media", "sim.media")
            .build()
    }

    fn serving_broker(model: &Model) -> GenericBroker {
        let mut b = GenericBroker::from_model(model, hub()).unwrap();
        b.enable_journal(64);
        b
    }

    fn call(b: &mut GenericBroker) {
        b.call("openSession", &args(&[("peer", "p1")])).unwrap();
    }

    #[test]
    fn breaking_deltas_are_refused_at_the_gate() {
        let old = v1();
        let broker = serving_broker(&old);
        let err = LiveUpgrade::prepare(&broker, &old, &v2_breaking(), "v2", 3).unwrap_err();
        match err {
            BrokerError::UpgradeRefused { stage, reasons } => {
                assert_eq!(stage, "gate");
                assert!(
                    reasons.iter().any(|r| r.contains("breaking delta")),
                    "{reasons:?}"
                );
            }
            other => panic!("expected UpgradeRefused, got {other}"),
        }
    }

    #[test]
    fn delta_classification_separates_the_three_classes() {
        let old = v1();
        let classes: Vec<DeltaClass> =
            classify_changes(&diff(&old, &v2(), &DiffOptions::default()))
                .into_iter()
                .map(|(c, _)| c)
                .collect();
        assert!(classes.contains(&DeltaClass::StateMigrating), "{classes:?}");
        assert!(!classes.contains(&DeltaClass::Breaking), "{classes:?}");
        let breaking: Vec<DeltaClass> =
            classify_changes(&diff(&old, &v2_breaking(), &DiffOptions::default()))
                .into_iter()
                .map(|(c, _)| c)
                .collect();
        assert!(breaking.contains(&DeltaClass::Breaking), "{breaking:?}");
    }

    #[test]
    fn full_protocol_commits_a_clean_candidate() {
        let old = v1();
        let new = v2();
        let mut broker = serving_broker(&old);
        for _ in 0..3 {
            call(&mut broker);
        }
        let mut up = LiveUpgrade::prepare(&broker, &old, &new, "v2", 2).unwrap();
        // Too little shadow evidence: refused.
        assert!(matches!(
            up.cutover(&mut broker, 5, 0),
            Err(BrokerError::UpgradeRefused { .. })
        ));
        for _ in 0..5 {
            call(&mut broker);
            up.observe_call(&broker);
        }
        // The v2-only monitor watches `svc_tier`, which is unset while
        // shadowing — a real pre-migration divergence the shadow phase
        // must surface (and the cutover threshold must acknowledge).
        let (mon_div, pol_div) = up.divergences();
        assert_eq!(pol_div, 0);
        assert_eq!(mon_div, 1);
        let v = up.cutover(&mut broker, 5, 1).unwrap();
        assert!(v > 0);
        assert_eq!(broker.model_version(), 2);
        assert_eq!(broker.state().str("svc_tier"), Some("gold"));
        // Probation: clean ticks commit.
        let mut sup = Supervisor::new(&["broker"], RestartPolicy::default());
        for _ in 0..2 {
            call(&mut broker);
            up.probation_tick(&broker, &mut sup, "broker");
        }
        assert_eq!(up.phase(), UpgradePhase::Committed);
        assert_eq!(up.outcome(), Some(UpgradeOutcome::Committed));
        assert!(sup.tick(SimTime::from_micros(1)).unwrap().is_empty());
        // Recovery resolves to v2 byte-for-byte.
        let bytes = broker.journal_bytes().unwrap().to_vec();
        let (rec, _) = recover_versioned(&[(1, &old), (2, &new)], hub(), &bytes, &[]).unwrap();
        assert_eq!(rec.model_version(), 2);
        assert_eq!(rec.state().snapshot(), broker.state().snapshot());
    }

    #[test]
    fn probation_regression_rolls_back_via_the_supervisor() {
        let old = v1();
        let new = v2();
        let mut broker = serving_broker(&old);
        let mut up = LiveUpgrade::prepare(&broker, &old, &new, "v2", 10).unwrap();
        for _ in 0..4 {
            call(&mut broker);
            up.observe_call(&broker);
        }
        assert_eq!(broker.state().str("svc_tier"), None);
        up.cutover(&mut broker, 3, 1).unwrap();
        // A probation-window corruption trips the candidate's monitor.
        let trips = broker.corrupt_state("svc_tier", "mystery");
        assert!(!trips.is_empty());
        let mut sup = Supervisor::new(&["broker"], RestartPolicy::default());
        up.probation_tick(&broker, &mut sup, "broker");
        let decisions = sup.tick(SimTime::from_micros(10)).unwrap();
        let rolled: Vec<_> = decisions
            .iter()
            .filter(|d| matches!(d, SupervisorDecision::RollbackUpgrade { .. }))
            .collect();
        assert_eq!(rolled.len(), 1, "{decisions:?}");
        up.rollback(&mut broker, "monitor tripped in probation")
            .unwrap();
        assert_eq!(up.outcome(), Some(UpgradeOutcome::RolledBack));
        assert_eq!(broker.model_version(), 1);
        // The migration and the candidate's monitor memory are gone; the
        // broker serves again under the old model.
        assert_eq!(broker.state().str("svc_tier"), None);
        assert!(!broker.monitor_latched());
        call(&mut broker);
        // Recovery over the full journal resolves to v1 byte-for-byte.
        let bytes = broker.journal_bytes().unwrap().to_vec();
        let (rec, _) = recover_versioned(&[(1, &old), (2, &new)], hub(), &bytes, &[]).unwrap();
        assert_eq!(rec.model_version(), 1);
        assert_eq!(rec.state().snapshot(), broker.state().snapshot());
    }

    #[test]
    fn recover_versioned_refuses_an_unknown_version() {
        let old = v1();
        let mut broker = serving_broker(&old);
        call(&mut broker);
        let bytes = broker.journal_bytes().unwrap().to_vec();
        // Only version 2 supplied; the journal pins version 1.
        let err = recover_versioned(&[(2, &v2())], hub(), &bytes, &[]).unwrap_err();
        assert!(matches!(err, BrokerError::RecoveryDiverged(_)), "{err}");
    }
}
