//! Model-defined admission control: bounded, deadline-aware admission in
//! front of command execution.
//!
//! Following the paper's core move — domain-independent mechanism, policy
//! in models — every admission parameter is declared on `AdmissionClass`
//! metaclass instances (token-bucket rate and burst, queueing-delay bound,
//! default deadline) and mirrored into the broker's [`StateManager`] under
//! `adm_<class>_*` keys at load time. The limits are therefore
//! OCL-addressable (`self.adm_interactive_rate`), observable by autonomic
//! symptoms, and retunable by plan `set` steps; and because the bucket
//! *state* (`adm_<class>_tokens` / `adm_<class>_last_us`) lives in the
//! same journaled model, crash recovery restores admission decisions
//! exactly.
//!
//! All token math is integer µs-of-work on the virtual clock, so admission
//! decisions are deterministic and replay bit-for-bit.

use crate::state::StateManager;
use mddsm_meta::model::Model;
use mddsm_sim::SimDuration;

/// State-manager key for an admission variable of a class:
/// `adm_<class>` plus a suffix, with dots flattened so the keys stay
/// OCL-addressable (`self.adm_interactive_tokens`).
pub(crate) fn adm_key(class: &str, suffix: &str) -> String {
    format!("adm_{}_{suffix}", class.replace('.', "_"))
}

/// Per-class admission parameters, parsed from an `AdmissionClass` object.
///
/// These are the *declared* (model) values; the live values the engine
/// consults sit in the state manager, where plans may have retuned them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmissionClassSpec {
    /// Class name (`interactive`, `batch`, `control`, …).
    pub name: String,
    /// µs of admitted work refilled per virtual millisecond (0 = the
    /// class is not rate-limited).
    pub rate_us_per_ms: u64,
    /// Token-bucket capacity in µs of work.
    pub burst_us: u64,
    /// Maximum queueing delay a call may have absorbed before it is shed
    /// (0 = unbounded).
    pub queue_bound_us: u64,
    /// Default relative deadline for calls that carry none (0 = none).
    pub deadline_us: u64,
}

/// Admission metadata accompanying one call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallMeta {
    /// Admission class the call is accounted to. A class the model does
    /// not declare is not admission-controlled.
    pub class: String,
    /// Virtual arrival instant (µs); `now - arrival` is the queueing
    /// delay the call has already absorbed.
    pub arrival_us: u64,
    /// Absolute virtual-time deadline (µs); 0 means "use the class's
    /// declared default relative to arrival".
    pub deadline_us: u64,
    /// Declared work (µs) if the action's model carries no `costUs`.
    pub cost_us: u64,
}

impl CallMeta {
    /// Metadata with the class default deadline and the action-declared
    /// cost.
    pub fn new(class: &str, arrival_us: u64) -> Self {
        CallMeta {
            class: class.to_owned(),
            arrival_us,
            deadline_us: 0,
            cost_us: 0,
        }
    }

    /// Sets an explicit absolute deadline.
    pub fn with_deadline(mut self, deadline_us: u64) -> Self {
        self.deadline_us = deadline_us;
        self
    }
}

/// Why a call was shed rather than executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The deadline had already passed on arrival at the admission gate —
    /// executing would only waste capacity on a worthless result.
    DeadlineExpired,
    /// The call had queued longer than the class's declared bound.
    QueueOverflow,
    /// The token bucket cannot cover the call's cost before its deadline.
    RateLimited,
}

impl std::fmt::Display for ShedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ShedReason::DeadlineExpired => "deadline-expired",
            ShedReason::QueueOverflow => "queue-overflow",
            ShedReason::RateLimited => "rate-limited",
        })
    }
}

/// The admission verdict for one call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// Execute now.
    Admit {
        /// Queueing delay the call absorbed before admission (µs).
        queue_delay_us: u64,
        /// Resolved absolute deadline (0 = none).
        deadline_us: u64,
    },
    /// Backpressure: tokens will cover the cost after `wait`; resubmit
    /// then.
    Defer {
        /// Virtual time until the bucket holds enough tokens.
        wait: SimDuration,
    },
    /// Drop the call without touching the resource.
    Shed {
        /// Why the call was dropped.
        reason: ShedReason,
    },
}

/// Interprets the model's `AdmissionClass` declarations over the broker's
/// runtime state. The controller itself is stateless — every limit and
/// every bucket variable lives in the [`StateManager`], so journal replay
/// reconstructs admission behaviour exactly.
#[derive(Debug, Clone, Default)]
pub struct AdmissionController {
    classes: Vec<AdmissionClassSpec>,
}

impl AdmissionController {
    /// Parses the `AdmissionClass` objects of a broker model; `None` when
    /// the model declares no classes (no admission control, zero
    /// overhead).
    pub fn from_model(model: &Model) -> Option<Self> {
        let mut classes = Vec::new();
        for c in model.all_of_class("AdmissionClass") {
            let int_attr = |name: &str| model.attr_int(c, name).unwrap_or(0).max(0) as u64;
            classes.push(AdmissionClassSpec {
                name: model.attr_str(c, "name").unwrap_or_default().to_owned(),
                rate_us_per_ms: int_attr("rateUsPerMs"),
                burst_us: int_attr("burstUs"),
                queue_bound_us: int_attr("queueBoundUs"),
                deadline_us: int_attr("deadlineUs"),
            });
        }
        if classes.is_empty() {
            None
        } else {
            Some(AdmissionController { classes })
        }
    }

    /// The declared classes.
    pub fn classes(&self) -> &[AdmissionClassSpec] {
        &self.classes
    }

    /// Whether `class` is admission-controlled.
    pub fn has_class(&self, class: &str) -> bool {
        self.classes.iter().any(|c| c.name == class)
    }

    /// Mirrors every declared limit into the state manager and fills each
    /// bucket to its burst capacity. Called once at broker construction;
    /// after that the state values are authoritative (plans may retune
    /// them, and recovery restores them from the journal).
    pub fn seed_state(&self, state: &mut StateManager) {
        for c in &self.classes {
            state.set_int(&adm_key(&c.name, "rate"), c.rate_us_per_ms as i64);
            state.set_int(&adm_key(&c.name, "burst"), c.burst_us as i64);
            state.set_int(&adm_key(&c.name, "queue_us"), c.queue_bound_us as i64);
            state.set_int(&adm_key(&c.name, "deadline_us"), c.deadline_us as i64);
            state.set_int(&adm_key(&c.name, "tokens"), c.burst_us as i64);
            state.set_int(&adm_key(&c.name, "last_us"), 0);
        }
    }

    /// Decides admission for one call at virtual time `now_us`.
    /// `action_cost_us` is the selected action's declared `costUs` (0
    /// falls back to the call's own `cost_us`). All reads and writes go
    /// through the state manager, so the decision is journaled alongside
    /// the command that triggered it.
    pub fn decide(
        &self,
        state: &mut StateManager,
        now_us: u64,
        meta: &CallMeta,
        action_cost_us: u64,
    ) -> AdmissionDecision {
        let queue_delay_us = now_us.saturating_sub(meta.arrival_us);
        if !self.has_class(&meta.class) {
            return AdmissionDecision::Admit {
                queue_delay_us,
                deadline_us: meta.deadline_us,
            };
        }
        let read = |state: &StateManager, suffix: &str| {
            state.int(&adm_key(&meta.class, suffix)).unwrap_or(0).max(0) as u64
        };
        let rate = read(state, "rate");
        let burst = read(state, "burst");
        let queue_bound = read(state, "queue_us");
        let default_deadline = read(state, "deadline_us");

        let cost = if action_cost_us > 0 {
            action_cost_us
        } else {
            meta.cost_us
        };
        let deadline_us = if meta.deadline_us > 0 {
            meta.deadline_us
        } else if default_deadline > 0 {
            meta.arrival_us.saturating_add(default_deadline)
        } else {
            0
        };

        // The most recent observed queueing delay is a first-class metric
        // of the runtime model — the brownout controller's main input.
        state.set_int("adm_queue_delay_us", queue_delay_us as i64);

        if deadline_us > 0 && now_us >= deadline_us {
            return AdmissionDecision::Shed {
                reason: ShedReason::DeadlineExpired,
            };
        }
        if queue_bound > 0 && queue_delay_us > queue_bound {
            return AdmissionDecision::Shed {
                reason: ShedReason::QueueOverflow,
            };
        }
        if rate == 0 || cost == 0 {
            return AdmissionDecision::Admit {
                queue_delay_us,
                deadline_us,
            };
        }

        // Token bucket, integer µs-of-work. The cap is at least one call's
        // cost so a burst declared below the cost still admits eventually
        // instead of deferring forever.
        let last = read(state, "last_us");
        let credit = rate.saturating_mul(now_us.saturating_sub(last)) / 1_000;
        let tokens = read(state, "tokens")
            .saturating_add(credit)
            .min(burst.max(cost));
        state.set_int(&adm_key(&meta.class, "last_us"), now_us as i64);

        if tokens >= cost {
            state.set_int(&adm_key(&meta.class, "tokens"), (tokens - cost) as i64);
            return AdmissionDecision::Admit {
                queue_delay_us,
                deadline_us,
            };
        }
        state.set_int(&adm_key(&meta.class, "tokens"), tokens as i64);
        let wait_us = (cost - tokens).saturating_mul(1_000).div_ceil(rate);
        if deadline_us > 0 && now_us.saturating_add(wait_us) >= deadline_us {
            AdmissionDecision::Shed {
                reason: ShedReason::RateLimited,
            }
        } else {
            AdmissionDecision::Defer {
                wait: SimDuration::from_micros(wait_us),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(spec: AdmissionClassSpec) -> (AdmissionController, StateManager) {
        let ctrl = AdmissionController {
            classes: vec![spec],
        };
        let mut state = StateManager::new();
        ctrl.seed_state(&mut state);
        (ctrl, state)
    }

    fn spec() -> AdmissionClassSpec {
        AdmissionClassSpec {
            name: "interactive".into(),
            rate_us_per_ms: 500, // half the wall: 500µs of work per ms
            burst_us: 2_000,
            queue_bound_us: 10_000,
            deadline_us: 50_000,
        }
    }

    #[test]
    fn unknown_class_is_not_controlled() {
        let (ctrl, mut state) = controller(spec());
        let meta = CallMeta::new("ghost", 0);
        assert!(matches!(
            ctrl.decide(&mut state, 5_000, &meta, 1_000),
            AdmissionDecision::Admit { .. }
        ));
    }

    #[test]
    fn bucket_admits_until_empty_then_defers_then_refills() {
        let (ctrl, mut state) = controller(spec());
        // Burst 2000µs, cost 1000µs: two immediate admits.
        for _ in 0..2 {
            let meta = CallMeta::new("interactive", 0);
            assert!(matches!(
                ctrl.decide(&mut state, 0, &meta, 1_000),
                AdmissionDecision::Admit { .. }
            ));
        }
        // Third call: bucket empty; no deadline pressure -> defer exactly
        // the refill time (1000µs of work at 500µs/ms = 2ms).
        let meta = CallMeta {
            class: "interactive".into(),
            arrival_us: 0,
            deadline_us: 1_000_000,
            cost_us: 0,
        };
        let d = ctrl.decide(&mut state, 0, &meta, 1_000);
        let AdmissionDecision::Defer { wait } = d else {
            panic!("expected defer, got {d:?}");
        };
        assert_eq!(wait, SimDuration::from_micros(2_000));
        // After waiting exactly that long, the call is admitted.
        let now = wait.as_micros();
        assert!(matches!(
            ctrl.decide(&mut state, now, &meta, 1_000),
            AdmissionDecision::Admit { .. }
        ));
    }

    #[test]
    fn expired_deadline_and_overlong_queue_shed() {
        let (ctrl, mut state) = controller(spec());
        // Class default deadline 50ms; arrival at 0, now 60ms -> expired.
        let meta = CallMeta::new("interactive", 0);
        assert_eq!(
            ctrl.decide(&mut state, 60_000, &meta, 100),
            AdmissionDecision::Shed {
                reason: ShedReason::DeadlineExpired
            }
        );
        // Queue bound 10ms; queued 20ms with a far deadline -> overflow.
        let meta = CallMeta {
            class: "interactive".into(),
            arrival_us: 0,
            deadline_us: 1_000_000,
            cost_us: 100,
        };
        assert_eq!(
            ctrl.decide(&mut state, 20_000, &meta, 0),
            AdmissionDecision::Shed {
                reason: ShedReason::QueueOverflow
            }
        );
        assert_eq!(state.int("adm_queue_delay_us"), Some(20_000));
    }

    #[test]
    fn rate_limited_shed_when_wait_cannot_meet_deadline() {
        let (ctrl, mut state) = controller(spec());
        // Drain the bucket.
        let drain = CallMeta {
            class: "interactive".into(),
            arrival_us: 0,
            deadline_us: 1_000_000,
            cost_us: 0,
        };
        for _ in 0..2 {
            assert!(matches!(
                ctrl.decide(&mut state, 0, &drain, 1_000),
                AdmissionDecision::Admit { .. }
            ));
        }
        // Deadline 1ms away but the refill needs 2ms -> shed, not defer.
        let meta = CallMeta {
            class: "interactive".into(),
            arrival_us: 0,
            deadline_us: 1_000,
            cost_us: 0,
        };
        assert_eq!(
            ctrl.decide(&mut state, 0, &meta, 1_000),
            AdmissionDecision::Shed {
                reason: ShedReason::RateLimited
            }
        );
    }

    #[test]
    fn plans_can_retune_limits_through_state() {
        let (ctrl, mut state) = controller(spec());
        // An autonomic plan halves the rate at runtime.
        state.set_int(&adm_key("interactive", "rate"), 0);
        // Rate 0 = unlimited: always admit.
        let meta = CallMeta::new("interactive", 0);
        for _ in 0..10 {
            assert!(matches!(
                ctrl.decide(&mut state, 0, &meta, 5_000),
                AdmissionDecision::Admit { .. }
            ));
        }
    }

    #[test]
    fn decisions_are_deterministic() {
        let run = || {
            let (ctrl, mut state) = controller(spec());
            let mut outcomes = Vec::new();
            for i in 0..20u64 {
                let meta = CallMeta::new("interactive", i * 300);
                outcomes.push(format!(
                    "{:?}",
                    ctrl.decide(&mut state, i * 400, &meta, 700)
                ));
            }
            (outcomes, state.snapshot())
        };
        assert_eq!(run(), run());
    }
}
