//! Load-time static analysis of broker models.
//!
//! E10's monitors verify the model *while it runs*; this pass verifies it
//! *before* it runs. [`analyze`] walks a complete broker model (an
//! instance of the Fig. 6 metamodel) and produces an
//! [`AnalysisReport`]: typed diagnostics with model-path provenance, the
//! per-unit read/write **footprint table** (the routing input for shard
//! placement), and the pairwise **conflict graph** between units the
//! engine may dispatch concurrently.
//!
//! Passes, in order:
//!
//! 1. **Hygiene** — duplicate handler/action/policy/symptom/monitor/
//!    class/binding names, and domain writes into the reserved `mon_*`
//!    monitor memory, are errors ([`hygiene`] alone backs the builder's
//!    [`crate::model::BrokerModelBuilder::try_build`]).
//! 2. **Path/type resolution** — every OCL-lite expression (policies,
//!    symptom conditions, monitor properties) parses; every `self.<key>`
//!    navigation resolves against the typed key universe inferred from
//!    state effects, plan steps, and the engine's reserved keys; and
//!    comparisons are type-compatible. Guards must name declared
//!    policies, fallbacks declared sibling actions, `admissionClass`
//!    attributes declared classes, and plan steps known verbs.
//! 3. **Footprint + conflict analysis** — per-action, per-plan, and
//!    per-brownout-mode read/write key sets, then conflict edges
//!    (write-write, read-write) between every concurrently-dispatchable
//!    pair. Edges over engine-serialized bookkeeping keys
//!    ([`is_engine_key`]) are suppressed: the engine orders those writes
//!    by construction, only *domain* keys race meaningfully.
//! 4. **Monitor staticization** — a monitor none of whose watched keys is
//!    writable by any unit (or the engine) can never change verdict after
//!    deployment: the property is vacuous, and warned about.
//!
//! Errors refuse the model at [`crate::GenericBroker::from_model`] time
//! with the typed [`crate::BrokerError::AnalysisRejected`]; warnings ride
//! along on the broker and are journaled once journaling is enabled.

use crate::autonomic::{parse_step, PlanStep};
use mddsm_meta::analysis::{check_expr, self_paths, AnalysisReport, Footprint, KeyType};
use mddsm_meta::constraint::temporal::{parse_property, Property};
use mddsm_meta::constraint::{self, Expr};
use mddsm_meta::model::Model;
use mddsm_meta::ObjectId;
use std::collections::{BTreeMap, BTreeSet};

/// Key prefixes the engine itself writes (breaker state, failure
/// counters, admission accounting, monitor memory, replication metrics,
/// brownout mode). Conflict edges over these are suppressed — the engine
/// serializes them by construction.
pub const ENGINE_KEY_PREFIXES: &[&str] = &[
    "breaker_",
    "failures_",
    "adm_",
    "mon_",
    "repl_",
    "brownout_",
];

/// `true` for keys in the engine-reserved namespaces.
pub fn is_engine_key(key: &str) -> bool {
    ENGINE_KEY_PREFIXES.iter().any(|p| key.starts_with(p))
}

/// The key and inferred type a `k=v` state effect (or plan `set k v`
/// step) writes, per [`crate::state::StateManager::apply_effect`]
/// semantics: `+n`/`-n` bump an int, an integer literal sets an int,
/// anything else sets a string.
pub fn effect_key_type(effect: &str) -> Option<(String, KeyType)> {
    let (k, v) = effect.split_once('=')?;
    let body = v.strip_prefix('+').unwrap_or(v);
    let ty = if body.parse::<i64>().is_ok() {
        KeyType::Int
    } else {
        KeyType::Str
    };
    Some((k.to_owned(), ty))
}

/// One dispatchable unit's identity in the footprint table.
fn action_unit(handler: &str, action: &str) -> String {
    format!("action:{handler}/{action}")
}

fn plan_unit(symptom: &str) -> String {
    format!("plan:{symptom}")
}

fn brownout_unit(mode: &str) -> String {
    format!("brownout:{mode}")
}

/// Everything the analyzer needs about one action, read reflectively.
struct ActionView {
    name: String,
    resource: String,
    guard: Option<String>,
    admission_class: Option<String>,
    fallback: Option<String>,
    breaker: bool,
    effects: Vec<String>,
}

struct HandlerView {
    name: String,
    actions: Vec<ActionView>,
}

fn attr_or_empty(model: &Model, id: ObjectId, name: &str) -> String {
    model.attr_str(id, name).unwrap_or_default().to_owned()
}

fn read_handlers(model: &Model) -> Vec<HandlerView> {
    model
        .all_of_class("Handler")
        .into_iter()
        .map(|h| HandlerView {
            name: attr_or_empty(model, h, "name"),
            actions: model
                .refs(h, "actions")
                .iter()
                .map(|a| ActionView {
                    name: attr_or_empty(model, *a, "name"),
                    resource: attr_or_empty(model, *a, "resource"),
                    guard: model.attr_str(*a, "guard").map(str::to_owned),
                    admission_class: model.attr_str(*a, "admissionClass").map(str::to_owned),
                    fallback: model.attr_str(*a, "fallback").map(str::to_owned),
                    breaker: model.attr_int(*a, "breakerThreshold").unwrap_or(0) > 0,
                    effects: model
                        .attr_all(*a, "stateEffects")
                        .iter()
                        .filter_map(|v| v.as_str())
                        .map(str::to_owned)
                        .collect(),
                })
                .collect(),
        })
        .collect()
}

/// Reports duplicates within one name list.
fn check_duplicates(names: &[(String, String)], report: &mut AnalysisReport) {
    let mut seen: BTreeMap<&str, &str> = BTreeMap::new();
    for (path, name) in names {
        if name.is_empty() {
            continue;
        }
        if let Some(first) = seen.insert(name.as_str(), path.as_str()) {
            report.error(
                "duplicate-name",
                path,
                format!("`{name}` is already declared at {first}"),
            );
        }
    }
}

/// Pass 1 only: build-time hygiene. Duplicate component/monitor names and
/// domain state writes into the reserved `mon_*` monitor memory are
/// errors. This is the subset the model builder enforces at `try_build`
/// time, before the model ever reaches an engine.
pub fn hygiene(model: &Model) -> AnalysisReport {
    let mut report = AnalysisReport::new();
    let handlers = read_handlers(model);

    let mut handler_names = Vec::new();
    for h in &handlers {
        handler_names.push((format!("handler:{}", h.name), h.name.clone()));
        let action_names: Vec<(String, String)> = h
            .actions
            .iter()
            .map(|a| {
                (
                    format!("handler:{}/action:{}", h.name, a.name),
                    a.name.clone(),
                )
            })
            .collect();
        check_duplicates(&action_names, &mut report);
    }
    check_duplicates(&handler_names, &mut report);

    for (class, tag) in [
        ("Policy", "policy"),
        ("Symptom", "symptom"),
        ("ChangeRequest", "request"),
        ("ChangePlan", "plan"),
        ("Monitor", "monitor"),
        ("AdmissionClass", "admission-class"),
        ("BrownoutMode", "brownout-mode"),
        ("ResourceBinding", "binding"),
        ("StateMigration", "migration"),
    ] {
        let names: Vec<(String, String)> = model
            .all_of_class(class)
            .into_iter()
            .map(|o| {
                let n = attr_or_empty(model, o, "name");
                (format!("{tag}:{n}"), n)
            })
            .collect();
        check_duplicates(&names, &mut report);
    }

    // Domain writes into the reserved monitor memory would let an action
    // forge or clear trip latches — always an error.
    for h in &handlers {
        for a in &h.actions {
            let path = format!("handler:{}/action:{}", h.name, a.name);
            for e in &a.effects {
                if let Some((k, _)) = effect_key_type(e) {
                    if k.starts_with("mon_") {
                        report.error(
                            "reserved-key",
                            &path,
                            format!("state effect `{e}` writes reserved monitor memory `{k}`"),
                        );
                    }
                }
            }
        }
    }
    for (path, steps) in all_plan_steps(model) {
        for s in &steps {
            if let Ok(PlanStep::Set(k, _)) = parse_step(s) {
                if k.starts_with("mon_") {
                    report.error(
                        "reserved-key",
                        &path,
                        format!("plan step `{s}` writes reserved monitor memory `{k}`"),
                    );
                }
            }
        }
    }
    // Declared state migrations are domain writes too: one that targets
    // the reserved monitor memory could forge or clear trip latches at
    // cutover (the evolution protocol manages `mon_*` carryover itself).
    for m in model.all_of_class("StateMigration") {
        let name = attr_or_empty(model, m, "name");
        let key = attr_or_empty(model, m, "key");
        if key.starts_with("mon_") {
            report.error(
                "reserved-key",
                &format!("migration:{name}"),
                format!("state migration writes reserved monitor memory `{key}`"),
            );
        }
    }
    report
}

/// Every (path, raw step list) in the model: autonomic change plans plus
/// brownout enter/exit transitions.
fn all_plan_steps(model: &Model) -> Vec<(String, Vec<String>)> {
    let mut out = Vec::new();
    for p in model.all_of_class("ChangePlan") {
        let name = attr_or_empty(model, p, "name");
        let steps = model
            .attr_all(p, "steps")
            .iter()
            .filter_map(|v| v.as_str())
            .map(str::to_owned)
            .collect();
        out.push((format!("plan:{name}"), steps));
    }
    for m in model.all_of_class("BrownoutMode") {
        let name = attr_or_empty(model, m, "name");
        for attr in ["enterSteps", "exitSteps"] {
            let steps: Vec<String> = model
                .attr_all(m, attr)
                .iter()
                .filter_map(|v| v.as_str())
                .map(str::to_owned)
                .collect();
            out.push((format!("brownout:{name}/{attr}"), steps));
        }
    }
    out
}

/// The write footprint of a parsed step sequence (state keys only — hub
/// effects like `heal`/`degrade` touch resources, not the model).
fn steps_writes(steps: &[PlanStep]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for s in steps {
        match s {
            PlanStep::Set(k, _) => {
                out.insert(k.clone());
            }
            PlanStep::ResetBreaker(r) => {
                out.insert(crate::engine::breaker_key(r, ""));
                out.insert(crate::engine::breaker_key(r, "failures"));
            }
            PlanStep::Heal(_) | PlanStep::Fail(_) | PlanStep::Degrade(_, _) | PlanStep::Emit(_) => {
            }
        }
    }
    out
}

/// Full static analysis of a broker model. Never fails — defects are
/// diagnostics in the returned report; [`AnalysisReport::is_accepted`]
/// decides whether an engine may load the model.
pub fn analyze(model: &Model) -> AnalysisReport {
    let mut report = hygiene(model);
    let handlers = read_handlers(model);

    // -- Declared names ----------------------------------------------------
    let policies: BTreeMap<String, Option<Expr>> = model
        .all_of_class("Policy")
        .into_iter()
        .map(|p| {
            let name = attr_or_empty(model, p, "name");
            let src = attr_or_empty(model, p, "expression");
            let expr = match constraint::parse(&src) {
                Ok(e) => Some(e),
                Err(e) => {
                    report.error(
                        "policy-parse",
                        &format!("policy:{name}"),
                        format!("`{src}`: {e}"),
                    );
                    None
                }
            };
            (name, expr)
        })
        .collect();
    let admission_classes: BTreeSet<String> = model
        .all_of_class("AdmissionClass")
        .into_iter()
        .map(|c| attr_or_empty(model, c, "name"))
        .collect();
    let bindings: BTreeSet<String> = model
        .all_of_class("ResourceBinding")
        .into_iter()
        .map(|b| attr_or_empty(model, b, "name"))
        .collect();
    let mut resources: BTreeSet<String> = bindings.clone();
    for h in &handlers {
        for a in &h.actions {
            if !a.resource.is_empty() {
                resources.insert(a.resource.clone());
            }
        }
    }

    // -- Autonomic rule join: symptom -> request -> plan -------------------
    let symptoms: Vec<(String, String)> = model
        .all_of_class("Symptom")
        .into_iter()
        .map(|s| {
            (
                attr_or_empty(model, s, "name"),
                attr_or_empty(model, s, "condition"),
            )
        })
        .collect();
    let requests: Vec<(String, String)> = model
        .all_of_class("ChangeRequest")
        .into_iter()
        .map(|r| {
            (
                attr_or_empty(model, r, "name"),
                attr_or_empty(model, r, "symptom"),
            )
        })
        .collect();
    let plans: Vec<(String, String, Vec<String>)> = model
        .all_of_class("ChangePlan")
        .into_iter()
        .map(|p| {
            (
                attr_or_empty(model, p, "name"),
                attr_or_empty(model, p, "request"),
                model
                    .attr_all(p, "steps")
                    .iter()
                    .filter_map(|v| v.as_str())
                    .map(str::to_owned)
                    .collect(),
            )
        })
        .collect();
    // Dead steps: a request naming no symptom, or a plan naming no
    // request, can never fire.
    for (rname, symptom) in &requests {
        if !symptoms.iter().any(|(s, _)| s == symptom) {
            report.warning(
                "dangling-request",
                &format!("request:{rname}"),
                format!("references unknown symptom `{symptom}` — its plan can never fire"),
            );
        }
    }
    for (pname, request, _) in &plans {
        if !requests.iter().any(|(r, _)| r == request) {
            report.warning(
                "dangling-plan",
                &format!("plan:{pname}"),
                format!("references unknown change request `{request}` — its steps are dead"),
            );
        }
    }

    // -- Typed key universe ------------------------------------------------
    // Everything some unit or the engine may write, with inferred types.
    let mut keys: BTreeMap<String, KeyType> = BTreeMap::new();
    let note_key = |keys: &mut BTreeMap<String, KeyType>, k: String, t: KeyType| {
        // A key written as Int somewhere and Str elsewhere degrades to Any.
        keys.entry(k)
            .and_modify(|old| {
                if *old != t {
                    *old = KeyType::Any;
                }
            })
            .or_insert(t);
    };
    for h in &handlers {
        for a in &h.actions {
            for e in &a.effects {
                if let Some((k, t)) = effect_key_type(e) {
                    note_key(&mut keys, k, t);
                }
            }
        }
    }
    let mut parsed_steps: BTreeMap<String, Vec<PlanStep>> = BTreeMap::new();
    for (path, steps) in all_plan_steps(model) {
        let mut ok_steps = Vec::new();
        for s in &steps {
            match parse_step(s) {
                Ok(step) => {
                    if let PlanStep::Set(k, v) = &step {
                        if let Some((k, t)) = effect_key_type(&format!("{k}={v}")) {
                            note_key(&mut keys, k, t);
                        }
                    }
                    // Resource-directed verbs should name a bound logical
                    // resource; the runtime falls back to the raw name, so
                    // an unknown one is a (likely-typo) warning.
                    let res = match &step {
                        PlanStep::Heal(r)
                        | PlanStep::Fail(r)
                        | PlanStep::Degrade(r, _)
                        | PlanStep::ResetBreaker(r) => Some(r.clone()),
                        _ => None,
                    };
                    if let Some(r) = res {
                        if !resources.contains(&r) {
                            report.warning(
                                "unknown-resource",
                                &path,
                                format!(
                                    "step `{s}` targets `{r}`, which no binding or action declares"
                                ),
                            );
                        }
                    }
                    ok_steps.push(step);
                }
                Err(e) => report.error("bad-plan-step", &path, e.to_string()),
            }
        }
        parsed_steps.insert(path, ok_steps);
    }
    for r in &resources {
        note_key(&mut keys, format!("failures_{r}"), KeyType::Int);
        note_key(&mut keys, crate::engine::breaker_key(r, ""), KeyType::Str);
        note_key(
            &mut keys,
            crate::engine::breaker_key(r, "failures"),
            KeyType::Int,
        );
        note_key(
            &mut keys,
            crate::engine::breaker_key(r, "opened_at_us"),
            KeyType::Int,
        );
    }
    for c in &admission_classes {
        for suffix in [
            "rate",
            "burst",
            "queue_us",
            "deadline_us",
            "tokens",
            "last_us",
            "admitted",
            "deferred",
            "shed",
        ] {
            note_key(&mut keys, format!("adm_{c}_{suffix}"), KeyType::Int);
        }
    }
    if !admission_classes.is_empty() {
        note_key(&mut keys, "adm_queue_delay_us".into(), KeyType::Int);
        note_key(&mut keys, "adm_shed_recent".into(), KeyType::Int);
    }
    if !model.all_of_class("BrownoutMode").is_empty() {
        note_key(&mut keys, "brownout_mode".into(), KeyType::Str);
        note_key(&mut keys, "brownout_level".into(), KeyType::Int);
    }
    if !model.all_of_class("ReplicationManager").is_empty() {
        for k in [
            "repl_lag",
            "repl_acked_lsn",
            "repl_epoch",
            "repl_retransmits",
            "repl_fenced",
            "repl_lag_alert",
        ] {
            note_key(&mut keys, k.into(), KeyType::Int);
        }
    }
    if !model.all_of_class("ReplicaSet").is_empty() {
        for k in [
            "repl_commit_lsn",
            "repl_quorum",
            "repl_peers",
            "repl_lag",
            "repl_epoch",
            "repl_retransmits",
            "repl_fenced",
        ] {
            note_key(&mut keys, k.into(), KeyType::Int);
        }
    }
    // Declared state migrations introduce their target keys at cutover,
    // so candidate policies/monitors may reference them; the value's
    // shape decides the type (an empty value unsets and adds no key).
    for m in model.all_of_class("StateMigration") {
        let key = attr_or_empty(model, m, "key");
        let value = attr_or_empty(model, m, "value");
        if !key.is_empty() && !value.is_empty() {
            let ty = if value.parse::<i64>().is_ok() {
                KeyType::Int
            } else {
                KeyType::Str
            };
            note_key(&mut keys, key, ty);
        }
    }
    note_key(&mut keys, "mon_trips".into(), KeyType::Int);
    for mo in model.all_of_class("Monitor") {
        let name = attr_or_empty(model, mo, "name");
        note_key(&mut keys, crate::monitor::trip_key(&name), KeyType::Str);
    }

    // -- Pass 2: path/type resolution --------------------------------------
    for (name, expr) in &policies {
        if let Some(e) = expr {
            check_expr(e, &keys, &format!("policy:{name}"), &mut report);
            check_only_self_free(e, &format!("policy:{name}"), &mut report);
        }
    }
    let mut conditions: BTreeMap<String, Expr> = BTreeMap::new();
    for (name, cond) in &symptoms {
        let path = format!("symptom:{name}");
        match constraint::parse(cond) {
            Ok(e) => {
                check_expr(&e, &keys, &path, &mut report);
                check_only_self_free(&e, &path, &mut report);
                conditions.insert(name.clone(), e);
            }
            Err(e) => report.error("condition-parse", &path, format!("`{cond}`: {e}")),
        }
    }
    for h in &handlers {
        for a in &h.actions {
            let path = format!("handler:{}/action:{}", h.name, a.name);
            if let Some(g) = &a.guard {
                if !policies.contains_key(g) {
                    report.error(
                        "unknown-policy",
                        &path,
                        format!("guard references undeclared policy `{g}`"),
                    );
                }
            }
            if let Some(c) = &a.admission_class {
                if !admission_classes.contains(c) {
                    report.error(
                        "unknown-admission-class",
                        &path,
                        format!("accounted to undeclared admission class `{c}`"),
                    );
                }
            }
            if let Some(f) = &a.fallback {
                if f == &a.name {
                    report.error("self-fallback", &path, "action falls back to itself");
                } else if !h.actions.iter().any(|s| &s.name == f) {
                    report.error(
                        "unknown-fallback",
                        &path,
                        format!("falls back to unknown sibling action `{f}`"),
                    );
                }
            }
            if !a.resource.is_empty() && !bindings.is_empty() && !bindings.contains(&a.resource) {
                report.warning(
                    "unbound-resource",
                    &path,
                    format!(
                        "resource `{}` has no ResourceBinding — invocations go to the raw name",
                        a.resource
                    ),
                );
            }
        }
    }

    // -- Unreachable actions ------------------------------------------------
    // Selection takes the first guard-passing action; an action after an
    // unguarded one is only reachable as some sibling's fallback.
    for h in &handlers {
        let mut shadowed = false;
        for a in &h.actions {
            let is_fallback_target = h
                .actions
                .iter()
                .any(|s| s.fallback.as_deref() == Some(a.name.as_str()));
            if shadowed && !is_fallback_target {
                report.warning(
                    "unreachable-action",
                    &format!("handler:{}/action:{}", h.name, a.name),
                    "an earlier unguarded action always wins selection, and no sibling falls back here",
                );
            }
            if a.guard.is_none() {
                shadowed = true;
            }
        }
    }

    // -- Monitors: parse, resolve, staticize --------------------------------
    let monitors: Vec<(String, String)> = model
        .all_of_class("Monitor")
        .into_iter()
        .map(|mo| {
            (
                attr_or_empty(model, mo, "name"),
                attr_or_empty(model, mo, "property"),
            )
        })
        .collect();
    for (name, source) in &monitors {
        let path = format!("monitor:{name}");
        let property = match parse_property(source) {
            Ok(p) => p,
            Err(e) => {
                report.error("monitor-parse", &path, format!("`{source}`: {e}"));
                continue;
            }
        };
        match &property {
            Property::Always(e) => check_expr(e, &keys, &path, &mut report),
            Property::NeverDuring { never, during } => {
                check_expr(never, &keys, &path, &mut report);
                check_expr(during, &keys, &path, &mut report);
            }
            Property::AtMostOnePer { .. } => {}
        }
        let watched = property.watched_keys();
        if !watched.is_empty() && !watched.iter().any(|k| keys.contains_key(k)) {
            report.warning(
                "vacuous-monitor",
                &path,
                format!(
                    "no watched key ({}) is ever written by an action, plan, or the engine — the property can never change verdict",
                    watched.join(", ")
                ),
            );
        }
    }

    // -- Pass 3: footprints -------------------------------------------------
    for h in &handlers {
        for a in &h.actions {
            let unit = action_unit(&h.name, &a.name);
            let mut fp = Footprint::default();
            if let Some(Some(Some(e))) = a.guard.as_ref().map(|g| policies.get(g)) {
                fp.reads.extend(self_paths(e));
            }
            for e in &a.effects {
                if let Some((k, _)) = effect_key_type(e) {
                    fp.writes.insert(k);
                }
            }
            if !a.resource.is_empty() {
                fp.writes.insert(format!("failures_{}", a.resource));
                if a.breaker {
                    fp.writes
                        .insert(crate::engine::breaker_key(&a.resource, ""));
                    fp.writes
                        .insert(crate::engine::breaker_key(&a.resource, "failures"));
                    fp.writes
                        .insert(crate::engine::breaker_key(&a.resource, "opened_at_us"));
                }
            }
            if let Some(c) = &a.admission_class {
                for suffix in ["rate", "burst", "queue_us", "deadline_us"] {
                    fp.reads.insert(format!("adm_{c}_{suffix}"));
                }
                for suffix in ["tokens", "last_us", "admitted", "deferred", "shed"] {
                    fp.writes.insert(format!("adm_{c}_{suffix}"));
                }
                fp.writes.insert("adm_queue_delay_us".into());
                fp.writes.insert("adm_shed_recent".into());
            }
            report.footprints.insert(unit, fp);
        }
    }
    // One plan unit per *armed* symptom (the engine joins the same way).
    for (sname, _) in &symptoms {
        let mut fp = Footprint::default();
        if let Some(cond) = conditions.get(sname) {
            fp.reads.extend(self_paths(cond));
        }
        if let Some((rname, _)) = requests.iter().find(|(_, s)| s == sname) {
            if let Some((pname, _, _)) = plans.iter().find(|(_, r, _)| r == rname) {
                if let Some(steps) = parsed_steps.get(&format!("plan:{pname}")) {
                    fp.writes.extend(steps_writes(steps));
                }
            }
        }
        report.footprints.insert(plan_unit(sname), fp);
    }
    for m in model.all_of_class("BrownoutMode") {
        let name = attr_or_empty(model, m, "name");
        let mut fp = Footprint::default();
        fp.reads.insert("adm_queue_delay_us".into());
        fp.reads.insert("adm_shed_recent".into());
        fp.writes.insert("brownout_mode".into());
        fp.writes.insert("brownout_level".into());
        fp.writes.insert("adm_shed_recent".into());
        for attr in ["enterSteps", "exitSteps"] {
            if let Some(steps) = parsed_steps.get(&format!("brownout:{name}/{attr}")) {
                fp.writes.extend(steps_writes(steps));
            }
        }
        report.footprints.insert(brownout_unit(&name), fp);
    }

    // -- Pass 3: conflict graph ---------------------------------------------
    // Concurrently dispatchable pairs: actions of *different* handlers
    // (within one handler, actions are guarded alternatives), plans of
    // different symptoms, brownout transitions, and every cross-kind pair.
    let mut units: Vec<(usize, String)> = Vec::new(); // (group, unit)
    for (gi, h) in handlers.iter().enumerate() {
        for a in &h.actions {
            units.push((gi, action_unit(&h.name, &a.name)));
        }
    }
    let base = handlers.len();
    for (i, (sname, _)) in symptoms.iter().enumerate() {
        units.push((base + i, plan_unit(sname)));
    }
    let base = base + symptoms.len();
    for (i, m) in model.all_of_class("BrownoutMode").into_iter().enumerate() {
        units.push((base + i, brownout_unit(&attr_or_empty(model, m, "name"))));
    }
    for i in 0..units.len() {
        for j in (i + 1)..units.len() {
            if units[i].0 == units[j].0 {
                continue;
            }
            report.conflict_edges(&units[i].1, &units[j].1, &is_engine_key);
        }
    }

    report
}

/// Guards and conditions are evaluated with `self` bound to the state
/// object and nothing else; any other free variable is a latent runtime
/// eval failure.
fn check_only_self_free(e: &Expr, path: &str, report: &mut AnalysisReport) {
    for v in e.free_vars() {
        if v != "self" {
            report.warning(
                "free-variable",
                path,
                format!("free variable `{v}` has no binding at evaluation time"),
            );
        }
    }
}

/// The union footprint of every action a given call/event selector may
/// dispatch — the per-operation row a shard router keys on. Returns
/// `None` when no handler matches the selector.
pub fn op_footprint(model: &Model, report: &AnalysisReport, selector: &str) -> Option<Footprint> {
    let mut fp = Footprint::default();
    let mut found = false;
    for h in model.all_of_class("Handler") {
        if model.attr_str(h, "selector") != Some(selector) {
            continue;
        }
        let hname = attr_or_empty(model, h, "name");
        for a in model.refs(h, "actions") {
            let unit = action_unit(&hname, &attr_or_empty(model, *a, "name"));
            if let Some(afp) = report.footprints.get(&unit) {
                fp.absorb(afp);
                found = true;
            }
        }
    }
    found.then_some(fp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{BrokerModelBuilder, Resilience};
    use mddsm_meta::analysis::ConflictKind;

    fn base() -> BrokerModelBuilder {
        BrokerModelBuilder::new("b")
            .call_handler("open", "open")
            .action(
                "open",
                "doOpen",
                "media",
                "open",
                &[],
                None,
                &["streams=+1"],
            )
            .bind_resource("media", "sim.media")
    }

    #[test]
    fn clean_model_is_accepted_with_footprints() {
        let model = base().build();
        let r = analyze(&model);
        assert!(r.is_accepted(), "{:?}", r.diagnostics);
        let fp = &r.footprints["action:open/doOpen"];
        assert!(fp.writes.contains("streams"));
        assert!(fp.writes.contains("failures_media"));
    }

    #[test]
    fn unknown_guard_policy_is_an_error() {
        let model = base()
            .call_handler("close", "close")
            .action(
                "close",
                "doClose",
                "media",
                "close",
                &[],
                Some("ghost"),
                &[],
            )
            .build();
        let r = analyze(&model);
        assert!(r.errors().any(|d| d.code == "unknown-policy"));
    }

    #[test]
    fn type_clash_between_policy_and_effect_is_an_error() {
        let model = base().policy("odd", "self.streams = \"many\"").build();
        let r = analyze(&model);
        assert!(
            r.errors().any(|d| d.code == "type-mismatch"),
            "{:?}",
            r.diagnostics
        );
    }

    #[test]
    fn dangling_path_is_a_warning() {
        let model = base().policy("ghostly", "self.ghost > 0").build();
        let r = analyze(&model);
        assert!(r.is_accepted());
        assert!(r.warnings().any(|d| d.code == "unresolved-key"));
    }

    #[test]
    fn duplicate_handler_name_is_an_error() {
        // `build()` refuses duplicates now, so inject one reflectively —
        // the analyzer must still catch models from other provenances.
        let mut model = base().call_handler("other", "open2").build();
        let dup = model.all_of_class("Handler")[1];
        model.set_attr(dup, "name", mddsm_meta::Value::from("open"));
        let r = analyze(&model);
        assert!(r.errors().any(|d| d.code == "duplicate-name"));
    }

    #[test]
    fn mon_prefixed_effect_is_an_error() {
        let mut model = base().build();
        let a = model.all_of_class("Action")[0];
        model.set_attr_many(
            a,
            "stateEffects",
            vec![mddsm_meta::Value::from("mon_trips=+1")],
        );
        let r = analyze(&model);
        assert!(r.errors().any(|d| d.code == "reserved-key"));
    }

    #[test]
    fn bad_plan_step_is_an_error() {
        let model = base()
            .autonomic_rule("odd", "self.streams > 0", &["explode now"])
            .build();
        let r = analyze(&model);
        assert!(r.errors().any(|d| d.code == "bad-plan-step"));
    }

    #[test]
    fn write_write_race_is_a_conflict_edge() {
        let model = base()
            .call_handler("other", "other")
            .action(
                "other",
                "alsoOpen",
                "media",
                "op",
                &[],
                None,
                &["streams=+1"],
            )
            .build();
        let r = analyze(&model);
        assert!(r.is_accepted());
        assert!(r
            .conflicts
            .iter()
            .any(|c| c.key == "streams" && c.kind == ConflictKind::WriteWrite));
    }

    #[test]
    fn within_handler_alternatives_do_not_conflict() {
        let model = BrokerModelBuilder::new("b")
            .policy("direct", "self.mode = null or self.mode = \"direct\"")
            .call_handler("open", "open")
            .action(
                "open",
                "a1",
                "media",
                "op",
                &[],
                Some("direct"),
                &["streams=+1"],
            )
            .action("open", "a2", "media", "op", &[], None, &["streams=+1"])
            .bind_resource("media", "sim.media")
            .build();
        let r = analyze(&model);
        assert!(r.conflicts.iter().all(|c| c.key != "streams"));
    }

    #[test]
    fn plan_racing_an_action_conflicts() {
        let model = base()
            .autonomic_rule(
                "reset",
                "self.failures_media <> null and self.failures_media > 0",
                &["set streams 0"],
            )
            .build();
        let r = analyze(&model);
        assert!(r
            .conflicts
            .iter()
            .any(|c| c.key == "streams" && c.kind == ConflictKind::WriteWrite));
    }

    #[test]
    fn vacuous_monitor_is_a_warning() {
        let model = base().monitor("ghostly", "self.phantom >= 0").build();
        let r = analyze(&model);
        assert!(r.is_accepted());
        assert!(r.warnings().any(|d| d.code == "vacuous-monitor"));
    }

    #[test]
    fn grounded_monitor_is_not_vacuous() {
        let model = base().monitor("sane", "self.streams >= 0").build();
        let r = analyze(&model);
        assert!(!r.warnings().any(|d| d.code == "vacuous-monitor"));
    }

    #[test]
    fn unreachable_action_is_warned_unless_fallback_target() {
        let model = BrokerModelBuilder::new("b")
            .call_handler("open", "open")
            .action("open", "first", "media", "op", &[], None, &[])
            .action("open", "shadowed", "media", "op", &[], None, &[])
            .bind_resource("media", "sim.media")
            .build();
        let r = analyze(&model);
        assert!(r.warnings().any(|d| d.code == "unreachable-action"));

        let model = BrokerModelBuilder::new("b")
            .call_handler("open", "open")
            .resilient_action(
                "open",
                "first",
                "media",
                "op",
                &[],
                None,
                &[],
                &Resilience {
                    fallback: Some("shadowed".into()),
                    ..Resilience::default()
                },
            )
            .action("open", "shadowed", "media", "op", &[], None, &[])
            .bind_resource("media", "sim.media")
            .build();
        let r = analyze(&model);
        assert!(!r.warnings().any(|d| d.code == "unreachable-action"));
    }

    #[test]
    fn dangling_plan_is_dead_steps_warning() {
        let mut model = base().build();
        let p = model.create("ChangePlan");
        model.set_attr(p, "name", mddsm_meta::Value::from("orphan"));
        model.set_attr(p, "request", mddsm_meta::Value::from("no-such-request"));
        model.set_attr_many(p, "steps", vec![mddsm_meta::Value::from("heal media")]);
        let r = analyze(&model);
        assert!(r.warnings().any(|d| d.code == "dangling-plan"));
    }

    #[test]
    fn op_footprint_unions_handler_actions() {
        let model = base().build();
        let r = analyze(&model);
        let fp = op_footprint(&model, &r, "open").unwrap();
        assert!(fp.writes.contains("streams"));
        assert!(op_footprint(&model, &r, "nope").is_none());
    }
}
