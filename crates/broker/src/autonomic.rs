//! The autonomic manager: a MAPE-K loop over model-defined rules.
//!
//! The Fig. 6 `AutonomicManager` supports self-configuration: "different
//! symptoms, change requests and change plans may be defined to specify the
//! different situations in which autonomic behavior is triggered and how to
//! handle each such occurrence" (§V-A). Monitoring data lives in the
//! [`StateManager`] (the K of MAPE-K); symptoms are OCL-lite conditions
//! over it; plans are small step programs over resources and state.

use crate::state::StateManager;
use crate::{BrokerError, Result};
use mddsm_meta::constraint::Expr;
use mddsm_sim::{ResourceHub, SimDuration};
use std::collections::BTreeMap;

/// One step of a change plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanStep {
    /// Mark a (logical) resource healthy.
    Heal(String),
    /// Mark a (logical) resource failed.
    Fail(String),
    /// Add constant latency to a resource (0 clears degradation).
    Degrade(String, u64),
    /// Set a state variable (`k=v` semantics of
    /// [`StateManager::apply_effect`]).
    Set(String, String),
    /// Emit an event topic to the upper layer.
    Emit(String),
    /// Close the circuit breaker of a (logical) resource and zero its
    /// failure count — lets autonomic plans re-enable a resource that the
    /// resilience layer fenced off.
    ResetBreaker(String),
}

/// Parses a plan-step string: `heal r` | `fail r` | `degrade r ms` |
/// `set k v` | `emit topic` | `reset_breaker r`.
pub fn parse_step(s: &str) -> Result<PlanStep> {
    let mut parts = s.split_whitespace();
    let Some(verb) = parts.next() else {
        return Err(BrokerError::BadPlanStep(format!("empty plan step `{s}`")));
    };
    let mut next = |what: &str| {
        parts
            .next()
            .map(str::to_owned)
            .ok_or_else(|| BrokerError::BadPlanStep(format!("`{s}`: missing {what}")))
    };
    match verb {
        "heal" => Ok(PlanStep::Heal(next("resource")?)),
        "fail" => Ok(PlanStep::Fail(next("resource")?)),
        "degrade" => {
            let r = next("resource")?;
            let ms = next("milliseconds")?
                .parse::<u64>()
                .map_err(|e| BrokerError::BadPlanStep(format!("`{s}`: bad ms: {e}")))?;
            Ok(PlanStep::Degrade(r, ms))
        }
        "set" => {
            let k = next("key")?;
            let v = next("value")?;
            Ok(PlanStep::Set(k, v))
        }
        "emit" => Ok(PlanStep::Emit(next("topic")?)),
        "reset_breaker" => Ok(PlanStep::ResetBreaker(next("resource")?)),
        other => Err(BrokerError::BadPlanStep(format!(
            "unknown verb `{other}` in `{s}`"
        ))),
    }
}

/// A compiled autonomic rule: symptom condition plus plan steps.
#[derive(Debug, Clone)]
pub struct AutonomicRule {
    /// Symptom name (diagnostics).
    pub symptom: String,
    /// Condition over the state object.
    pub condition: Expr,
    /// Plan steps executed when the condition holds.
    pub steps: Vec<PlanStep>,
}

/// The autonomic manager: holds rules and runs the MAPE loop on demand.
#[derive(Debug, Clone, Default)]
pub struct AutonomicManager {
    rules: Vec<AutonomicRule>,
    fired: BTreeMap<String, u64>,
}

impl AutonomicManager {
    /// Creates a manager with no rules.
    pub fn new(rules: Vec<AutonomicRule>) -> Self {
        AutonomicManager {
            rules,
            fired: BTreeMap::new(),
        }
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Returns `true` when the manager has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// How many times a symptom's plan has fired.
    pub fn fired(&self, symptom: &str) -> u64 {
        self.fired.get(symptom).copied().unwrap_or(0)
    }

    /// One MAPE cycle: evaluate all symptoms against the state, execute
    /// plans of those that hold. `bindings` maps logical resource names to
    /// hub resources. Returns the emitted event topics.
    pub fn tick(
        &mut self,
        state: &mut StateManager,
        hub: &mut ResourceHub,
        bindings: &BTreeMap<String, String>,
    ) -> Result<Vec<String>> {
        let mut emitted = Vec::new();
        // Evaluate all conditions first against a consistent state snapshot
        // (plans of earlier rules must not enable later rules in the same
        // cycle — classic MAPE batching).
        let mut due = Vec::new();
        for (i, rule) in self.rules.iter().enumerate() {
            if state.eval(&rule.condition)? {
                due.push(i);
            }
        }
        for i in due {
            let rule = self.rules[i].clone();
            *self.fired.entry(rule.symptom.clone()).or_insert(0) += 1;
            for step in &rule.steps {
                let resolve = |r: &String| bindings.get(r).cloned().unwrap_or_else(|| r.clone());
                match step {
                    PlanStep::Heal(r) => {
                        hub.set_healthy(&resolve(r), true);
                    }
                    PlanStep::Fail(r) => {
                        hub.set_healthy(&resolve(r), false);
                    }
                    PlanStep::Degrade(r, ms) => {
                        hub.degrade(&resolve(r), SimDuration::from_millis(*ms));
                    }
                    PlanStep::Set(k, v) => state.apply_effect(&format!("{k}={v}"))?,
                    PlanStep::Emit(topic) => emitted.push(topic.clone()),
                    PlanStep::ResetBreaker(r) => {
                        // Breaker keys use the logical resource name (the
                        // same scheme the engine writes).
                        state.set_str(&crate::engine::breaker_key(r, ""), "closed");
                        state.set_int(&crate::engine::breaker_key(r, "failures"), 0);
                    }
                }
            }
        }
        Ok(emitted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mddsm_meta::constraint::parse;
    use mddsm_sim::resource::Outcome;

    fn hub() -> ResourceHub {
        let mut h = ResourceHub::new(1);
        h.register_fn("sim.media", |_, _| Outcome::ok());
        h
    }

    #[test]
    fn step_parsing() {
        assert_eq!(
            parse_step("heal media").unwrap(),
            PlanStep::Heal("media".into())
        );
        assert_eq!(
            parse_step("fail media").unwrap(),
            PlanStep::Fail("media".into())
        );
        assert_eq!(
            parse_step("degrade media 40").unwrap(),
            PlanStep::Degrade("media".into(), 40)
        );
        assert_eq!(
            parse_step("set mode relay").unwrap(),
            PlanStep::Set("mode".into(), "relay".into())
        );
        assert_eq!(
            parse_step("emit recovered").unwrap(),
            PlanStep::Emit("recovered".into())
        );
        assert_eq!(
            parse_step("reset_breaker media").unwrap(),
            PlanStep::ResetBreaker("media".into())
        );
        assert!(parse_step("explode").is_err());
        assert!(parse_step("heal").is_err());
        assert!(parse_step("degrade media soon").is_err());
    }

    #[test]
    fn empty_steps_are_rejected_with_a_clear_error() {
        // Regression: `parse_step("")` used to panic on the missing verb.
        for s in ["", "   ", "\t"] {
            match parse_step(s) {
                Err(BrokerError::BadPlanStep(m)) => assert!(m.contains("empty"), "{m}"),
                other => panic!("expected BadPlanStep for {s:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn reset_breaker_clears_breaker_state() {
        let rule = AutonomicRule {
            symptom: "s".into(),
            condition: parse("true").unwrap(),
            steps: vec![parse_step("reset_breaker media").unwrap()],
        };
        let mut mgr = AutonomicManager::new(vec![rule]);
        let mut state = StateManager::new();
        state.set_str("breaker_media", "open");
        state.set_int("breaker_media_failures", 7);
        let mut hub = hub();
        mgr.tick(&mut state, &mut hub, &BTreeMap::new()).unwrap();
        assert_eq!(state.str("breaker_media"), Some("closed"));
        assert_eq!(state.int("breaker_media_failures"), Some(0));
    }

    #[test]
    fn rule_fires_when_condition_holds() {
        let rule = AutonomicRule {
            symptom: "mediaFlaky".into(),
            condition: parse("self.failures_media <> null and self.failures_media > 2").unwrap(),
            steps: vec![
                parse_step("heal media").unwrap(),
                parse_step("set failures_media 0").unwrap(),
                parse_step("emit mediaRecovered").unwrap(),
            ],
        };
        let mut mgr = AutonomicManager::new(vec![rule]);
        let mut state = StateManager::new();
        let mut hub = hub();
        hub.set_healthy("sim.media", false);
        let bindings = BTreeMap::from([("media".to_string(), "sim.media".to_string())]);

        // Below threshold: nothing happens.
        state.set_int("failures_media", 2);
        let emitted = mgr.tick(&mut state, &mut hub, &bindings).unwrap();
        assert!(emitted.is_empty());
        assert!(!hub.is_healthy("sim.media"));
        assert_eq!(mgr.fired("mediaFlaky"), 0);

        // Above threshold: heal + reset + emit.
        state.set_int("failures_media", 3);
        let emitted = mgr.tick(&mut state, &mut hub, &bindings).unwrap();
        assert_eq!(emitted, vec!["mediaRecovered".to_string()]);
        assert!(hub.is_healthy("sim.media"));
        assert_eq!(state.int("failures_media"), Some(0));
        assert_eq!(mgr.fired("mediaFlaky"), 1);

        // Condition cleared: does not fire again.
        let emitted = mgr.tick(&mut state, &mut hub, &bindings).unwrap();
        assert!(emitted.is_empty());
        assert_eq!(mgr.fired("mediaFlaky"), 1);
    }

    #[test]
    fn plans_in_one_cycle_see_the_same_snapshot() {
        // Rule A sets trigger=1; rule B fires on trigger=1. In one cycle B
        // must NOT fire (batched analysis), only on the next.
        let a = AutonomicRule {
            symptom: "a".into(),
            condition: parse("self.go = 1").unwrap(),
            steps: vec![parse_step("set trigger 1").unwrap()],
        };
        let b = AutonomicRule {
            symptom: "b".into(),
            condition: parse("self.trigger = 1").unwrap(),
            steps: vec![parse_step("emit late").unwrap()],
        };
        let mut mgr = AutonomicManager::new(vec![a, b]);
        assert_eq!(mgr.len(), 2);
        let mut state = StateManager::new();
        state.set_int("go", 1);
        let mut hub = hub();
        let bindings = BTreeMap::new();
        let emitted = mgr.tick(&mut state, &mut hub, &bindings).unwrap();
        assert!(emitted.is_empty());
        let emitted = mgr.tick(&mut state, &mut hub, &bindings).unwrap();
        assert_eq!(emitted, vec!["late".to_string()]);
    }

    #[test]
    fn unbound_resources_fall_back_to_literal_names() {
        let rule = AutonomicRule {
            symptom: "s".into(),
            condition: parse("true").unwrap(),
            steps: vec![parse_step("fail sim.media").unwrap()],
        };
        let mut mgr = AutonomicManager::new(vec![rule]);
        let mut state = StateManager::new();
        let mut hub = hub();
        mgr.tick(&mut state, &mut hub, &BTreeMap::new()).unwrap();
        assert!(!hub.is_healthy("sim.media"));
    }
}
