//! The autonomic manager: a MAPE-K loop over model-defined rules.
//!
//! The Fig. 6 `AutonomicManager` supports self-configuration: "different
//! symptoms, change requests and change plans may be defined to specify the
//! different situations in which autonomic behavior is triggered and how to
//! handle each such occurrence" (§V-A). Monitoring data lives in the
//! [`StateManager`] (the K of MAPE-K); symptoms are OCL-lite conditions
//! over it; plans are small step programs over resources and state.

use crate::state::StateManager;
use crate::{BrokerError, Result};
use mddsm_meta::constraint::Expr;
use mddsm_meta::model::Model;
use mddsm_sim::{ResourceHub, SimDuration};
use std::collections::BTreeMap;

/// One step of a change plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanStep {
    /// Mark a (logical) resource healthy.
    Heal(String),
    /// Mark a (logical) resource failed.
    Fail(String),
    /// Add constant latency to a resource (0 clears degradation).
    Degrade(String, u64),
    /// Set a state variable (`k=v` semantics of
    /// [`StateManager::apply_effect`]).
    Set(String, String),
    /// Emit an event topic to the upper layer.
    Emit(String),
    /// Close the circuit breaker of a (logical) resource and zero its
    /// failure count — lets autonomic plans re-enable a resource that the
    /// resilience layer fenced off.
    ResetBreaker(String),
}

/// Parses a plan-step string: `heal r` | `fail r` | `degrade r ms` |
/// `set k v` | `emit topic` | `reset_breaker r`.
pub fn parse_step(s: &str) -> Result<PlanStep> {
    let mut parts = s.split_whitespace();
    let Some(verb) = parts.next() else {
        return Err(BrokerError::BadPlanStep(format!("empty plan step `{s}`")));
    };
    let mut next = |what: &str| {
        parts
            .next()
            .map(str::to_owned)
            .ok_or_else(|| BrokerError::BadPlanStep(format!("`{s}`: missing {what}")))
    };
    match verb {
        "heal" => Ok(PlanStep::Heal(next("resource")?)),
        "fail" => Ok(PlanStep::Fail(next("resource")?)),
        "degrade" => {
            let r = next("resource")?;
            let ms = next("milliseconds")?
                .parse::<u64>()
                .map_err(|e| BrokerError::BadPlanStep(format!("`{s}`: bad ms: {e}")))?;
            Ok(PlanStep::Degrade(r, ms))
        }
        "set" => {
            let k = next("key")?;
            let v = next("value")?;
            Ok(PlanStep::Set(k, v))
        }
        "emit" => Ok(PlanStep::Emit(next("topic")?)),
        "reset_breaker" => Ok(PlanStep::ResetBreaker(next("resource")?)),
        other => Err(BrokerError::BadPlanStep(format!(
            "unknown verb `{other}` in `{s}`"
        ))),
    }
}

/// Executes a sequence of plan steps against the runtime model and hub;
/// returns the emitted event topics. `bindings` maps logical resource
/// names to hub resources. Shared by autonomic plans and brownout mode
/// transitions.
pub(crate) fn run_steps(
    steps: &[PlanStep],
    state: &mut StateManager,
    hub: &mut ResourceHub,
    bindings: &BTreeMap<String, String>,
) -> Result<Vec<String>> {
    let mut emitted = Vec::new();
    let resolve = |r: &String| bindings.get(r).cloned().unwrap_or_else(|| r.clone());
    for step in steps {
        match step {
            PlanStep::Heal(r) => {
                hub.set_healthy(&resolve(r), true);
            }
            PlanStep::Fail(r) => {
                hub.set_healthy(&resolve(r), false);
            }
            PlanStep::Degrade(r, ms) => {
                hub.degrade(&resolve(r), SimDuration::from_millis(*ms));
            }
            PlanStep::Set(k, v) => state.apply_effect(&format!("{k}={v}"))?,
            PlanStep::Emit(topic) => emitted.push(topic.clone()),
            PlanStep::ResetBreaker(r) => {
                // Breaker keys use the logical resource name (the same
                // scheme the engine writes).
                state.set_str(&crate::engine::breaker_key(r, ""), "closed");
                state.set_int(&crate::engine::breaker_key(r, "failures"), 0);
            }
        }
    }
    Ok(emitted)
}

/// A compiled autonomic rule: symptom condition plus plan steps.
#[derive(Debug, Clone)]
pub struct AutonomicRule {
    /// Symptom name (diagnostics).
    pub symptom: String,
    /// Condition over the state object.
    pub condition: Expr,
    /// Plan steps executed when the condition holds.
    pub steps: Vec<PlanStep>,
}

/// The autonomic manager: holds rules and runs the MAPE loop on demand.
#[derive(Debug, Clone, Default)]
pub struct AutonomicManager {
    rules: Vec<AutonomicRule>,
    fired: BTreeMap<String, u64>,
}

impl AutonomicManager {
    /// Creates a manager with no rules.
    pub fn new(rules: Vec<AutonomicRule>) -> Self {
        AutonomicManager {
            rules,
            fired: BTreeMap::new(),
        }
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Returns `true` when the manager has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// How many times a symptom's plan has fired.
    pub fn fired(&self, symptom: &str) -> u64 {
        self.fired.get(symptom).copied().unwrap_or(0)
    }

    /// One MAPE cycle: evaluate all symptoms against the state, execute
    /// plans of those that hold. `bindings` maps logical resource names to
    /// hub resources. Returns the emitted event topics.
    pub fn tick(
        &mut self,
        state: &mut StateManager,
        hub: &mut ResourceHub,
        bindings: &BTreeMap<String, String>,
    ) -> Result<Vec<String>> {
        let mut emitted = Vec::new();
        // Evaluate all conditions first against a consistent state snapshot
        // (plans of earlier rules must not enable later rules in the same
        // cycle — classic MAPE batching).
        let mut due = Vec::new();
        for (i, rule) in self.rules.iter().enumerate() {
            if state.eval(&rule.condition)? {
                due.push(i);
            }
        }
        for i in due {
            let rule = self.rules[i].clone();
            *self.fired.entry(rule.symptom.clone()).or_insert(0) += 1;
            emitted.extend(run_steps(&rule.steps, state, hub, bindings)?);
        }
        Ok(emitted)
    }
}

/// The standard autonomic rules for a replicated broker, expressed over
/// the replicator's OCL-addressable metrics (`repl_lag`, `repl_fenced`):
/// raise `repl_lag_alert` and emit `replicationLagging` once the unacked
/// window reaches `lag_alert` records, clear it (emitting
/// `replicationCaughtUp`) when the standby catches back up, and surface a
/// fenced stale primary as a `staleEpochFenced` event. Run these against
/// the replicator's metrics state, not the journaled runtime model.
pub fn replication_rules(lag_alert: i64) -> Result<Vec<AutonomicRule>> {
    let rule = |symptom: &str, condition: &str, steps: &[&str]| -> Result<AutonomicRule> {
        Ok(AutonomicRule {
            symptom: symptom.to_owned(),
            condition: mddsm_meta::constraint::parse(condition)
                .map_err(|e| BrokerError::InvalidModel(e.to_string()))?,
            steps: steps.iter().map(|s| parse_step(s)).collect::<Result<_>>()?,
        })
    };
    let mut rules = Vec::new();
    if lag_alert > 0 {
        rules.push(rule(
            "replLagging",
            &format!(
                "self.repl_lag <> null and self.repl_lag >= {lag_alert} \
                 and self.repl_lag_alert <> 1"
            ),
            &["set repl_lag_alert 1", "emit replicationLagging"],
        )?);
        rules.push(rule(
            "replCaughtUp",
            "self.repl_lag_alert = 1 and (self.repl_lag = null or self.repl_lag = 0)",
            &["set repl_lag_alert 0", "emit replicationCaughtUp"],
        )?);
    }
    rules.push(rule(
        "replFenced",
        "self.repl_fenced <> null and self.repl_fenced > 0 and self.repl_fenced_alert <> 1",
        &["set repl_fenced_alert 1", "emit staleEpochFenced"],
    )?);
    Ok(rules)
}

/// A declared brownout (degraded-service) mode, compiled from a
/// `BrownoutMode` model object.
#[derive(Debug, Clone)]
pub struct BrownoutMode {
    /// Mode name (`lite`, `audio-only`, …). Level 0 — full service — is
    /// implicit and needs no declaration.
    pub name: String,
    /// Severity order; deeper degradations have higher levels.
    pub level: i64,
    /// Enter when `adm_queue_delay_us` reaches this (0 = trigger off).
    pub enter_delay_us: i64,
    /// Exit hysteresis: leave only once the delay is back at or below
    /// this (strictly less than `enter_delay_us` for real hysteresis).
    pub exit_delay_us: i64,
    /// Enter when the per-tick shed count reaches this (0 = trigger off).
    pub enter_shed: i64,
    /// Exit only once the per-tick shed count is at or below this.
    pub exit_shed: i64,
    /// Steps run on entering the mode.
    pub enter_steps: Vec<PlanStep>,
    /// Steps run on leaving the mode.
    pub exit_steps: Vec<PlanStep>,
}

/// One brownout mode change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BrownoutTransition {
    /// Mode left (`full` for level 0).
    pub from: String,
    /// Mode entered (`full` for level 0).
    pub to: String,
    /// Level entered.
    pub level: i64,
}

/// The brownout controller: switches the platform between model-declared
/// degraded modes when overload metrics (`adm_queue_delay_us`, per-tick
/// `adm_shed_recent`) cross the modes' enter thresholds, and restores
/// service with hysteresis once both metrics are back under the exit
/// thresholds.
///
/// The controller holds **no mutable mode state of its own**: the current
/// mode lives in the state manager (`brownout_mode` / `brownout_level`),
/// so mode transitions are journaled like any other state write and crash
/// recovery resumes in the correct degraded mode.
#[derive(Debug, Clone, Default)]
pub struct BrownoutController {
    /// Declared modes, sorted by ascending level.
    modes: Vec<BrownoutMode>,
    transitions: u64,
}

impl BrownoutController {
    /// Compiles the `BrownoutMode` objects of a broker model (empty
    /// controller when the model declares none).
    pub fn from_model(model: &Model) -> Result<Self> {
        let mut modes = Vec::new();
        for m in model.all_of_class("BrownoutMode") {
            let int_attr = |name: &str| model.attr_int(m, name).unwrap_or(0);
            let steps = |attr: &str| -> Result<Vec<PlanStep>> {
                model
                    .attr_all(m, attr)
                    .iter()
                    .filter_map(|v| v.as_str())
                    .map(parse_step)
                    .collect()
            };
            modes.push(BrownoutMode {
                name: model.attr_str(m, "name").unwrap_or_default().to_owned(),
                level: int_attr("level").max(1),
                enter_delay_us: int_attr("enterDelayUs").max(0),
                exit_delay_us: int_attr("exitDelayUs").max(0),
                enter_shed: int_attr("enterShed").max(0),
                exit_shed: int_attr("exitShed").max(0),
                enter_steps: steps("enterSteps")?,
                exit_steps: steps("exitSteps")?,
            });
        }
        modes.sort_by(|a, b| a.level.cmp(&b.level).then_with(|| a.name.cmp(&b.name)));
        Ok(BrownoutController {
            modes,
            transitions: 0,
        })
    }

    /// The declared modes.
    pub fn modes(&self) -> &[BrownoutMode] {
        &self.modes
    }

    /// Mode transitions performed so far (diagnostics only; not part of
    /// the replayed state).
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    fn mode_at(&self, level: i64) -> Option<&BrownoutMode> {
        self.modes.iter().find(|m| m.level == level)
    }

    /// The deepest mode whose enter condition holds for the metrics.
    fn target_level(&self, delay: i64, shed: i64) -> i64 {
        self.modes
            .iter()
            .filter(|m| {
                (m.enter_delay_us > 0 && delay >= m.enter_delay_us)
                    || (m.enter_shed > 0 && shed >= m.enter_shed)
            })
            .map(|m| m.level)
            .max()
            .unwrap_or(0)
    }

    /// One control cycle: reads the overload metrics from the runtime
    /// model, decides the mode, runs enter/exit steps on a change, and
    /// resets the per-tick shed window. Returns the transition (if any)
    /// and the event topics the steps emitted.
    pub fn tick(
        &mut self,
        state: &mut StateManager,
        hub: &mut ResourceHub,
        bindings: &BTreeMap<String, String>,
    ) -> Result<(Option<BrownoutTransition>, Vec<String>)> {
        if self.modes.is_empty() {
            return Ok((None, Vec::new()));
        }
        let delay = state.int("adm_queue_delay_us").unwrap_or(0);
        let shed = state.int("adm_shed_recent").unwrap_or(0);
        let current = state.int("brownout_level").unwrap_or(0);
        let target = self.target_level(delay, shed);

        let mut transition = None;
        let mut emitted = Vec::new();
        if target > current {
            // Escalate straight to the deepest triggered mode.
            if let Some(mode) = self.mode_at(target).cloned() {
                emitted.extend(run_steps(&mode.enter_steps, state, hub, bindings)?);
                let from = state.str("brownout_mode").unwrap_or("full").to_owned();
                state.set_str("brownout_mode", &mode.name);
                state.set_int("brownout_level", mode.level);
                self.transitions += 1;
                transition = Some(BrownoutTransition {
                    from,
                    to: mode.name,
                    level: mode.level,
                });
            }
        } else if target < current {
            // Hysteresis: leave the current mode only once both metrics
            // are back at or below its exit thresholds.
            let calm = self
                .mode_at(current)
                .is_none_or(|m| delay <= m.exit_delay_us && shed <= m.exit_shed);
            if calm {
                if let Some(m) = self.mode_at(current) {
                    let steps = m.exit_steps.clone();
                    emitted.extend(run_steps(&steps, state, hub, bindings)?);
                }
                let from = state.str("brownout_mode").unwrap_or("full").to_owned();
                let (to, level) = match self.mode_at(target) {
                    Some(m) if target > 0 => {
                        let steps = m.enter_steps.clone();
                        let name = m.name.clone();
                        let level = m.level;
                        emitted.extend(run_steps(&steps, state, hub, bindings)?);
                        (name, level)
                    }
                    _ => ("full".to_owned(), 0),
                };
                state.set_str("brownout_mode", &to);
                state.set_int("brownout_level", level);
                self.transitions += 1;
                transition = Some(BrownoutTransition { from, to, level });
            }
        }

        // The shed window is per control cycle; only touch the key when it
        // carries a non-zero count so idle ticks journal nothing.
        if shed != 0 {
            state.set_int("adm_shed_recent", 0);
        }
        Ok((transition, emitted))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mddsm_meta::constraint::parse;
    use mddsm_sim::resource::Outcome;

    fn hub() -> ResourceHub {
        let mut h = ResourceHub::new(1);
        h.register_fn("sim.media", |_, _| Outcome::ok());
        h
    }

    #[test]
    fn step_parsing() {
        assert_eq!(
            parse_step("heal media").unwrap(),
            PlanStep::Heal("media".into())
        );
        assert_eq!(
            parse_step("fail media").unwrap(),
            PlanStep::Fail("media".into())
        );
        assert_eq!(
            parse_step("degrade media 40").unwrap(),
            PlanStep::Degrade("media".into(), 40)
        );
        assert_eq!(
            parse_step("set mode relay").unwrap(),
            PlanStep::Set("mode".into(), "relay".into())
        );
        assert_eq!(
            parse_step("emit recovered").unwrap(),
            PlanStep::Emit("recovered".into())
        );
        assert_eq!(
            parse_step("reset_breaker media").unwrap(),
            PlanStep::ResetBreaker("media".into())
        );
        assert!(parse_step("explode").is_err());
        assert!(parse_step("heal").is_err());
        assert!(parse_step("degrade media soon").is_err());
    }

    #[test]
    fn empty_steps_are_rejected_with_a_clear_error() {
        // Regression: `parse_step("")` used to panic on the missing verb.
        for s in ["", "   ", "\t"] {
            match parse_step(s) {
                Err(BrokerError::BadPlanStep(m)) => assert!(m.contains("empty"), "{m}"),
                other => panic!("expected BadPlanStep for {s:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn reset_breaker_clears_breaker_state() {
        let rule = AutonomicRule {
            symptom: "s".into(),
            condition: parse("true").unwrap(),
            steps: vec![parse_step("reset_breaker media").unwrap()],
        };
        let mut mgr = AutonomicManager::new(vec![rule]);
        let mut state = StateManager::new();
        state.set_str("breaker_media", "open");
        state.set_int("breaker_media_failures", 7);
        let mut hub = hub();
        mgr.tick(&mut state, &mut hub, &BTreeMap::new()).unwrap();
        assert_eq!(state.str("breaker_media"), Some("closed"));
        assert_eq!(state.int("breaker_media_failures"), Some(0));
    }

    #[test]
    fn rule_fires_when_condition_holds() {
        let rule = AutonomicRule {
            symptom: "mediaFlaky".into(),
            condition: parse("self.failures_media <> null and self.failures_media > 2").unwrap(),
            steps: vec![
                parse_step("heal media").unwrap(),
                parse_step("set failures_media 0").unwrap(),
                parse_step("emit mediaRecovered").unwrap(),
            ],
        };
        let mut mgr = AutonomicManager::new(vec![rule]);
        let mut state = StateManager::new();
        let mut hub = hub();
        hub.set_healthy("sim.media", false);
        let bindings = BTreeMap::from([("media".to_string(), "sim.media".to_string())]);

        // Below threshold: nothing happens.
        state.set_int("failures_media", 2);
        let emitted = mgr.tick(&mut state, &mut hub, &bindings).unwrap();
        assert!(emitted.is_empty());
        assert!(!hub.is_healthy("sim.media"));
        assert_eq!(mgr.fired("mediaFlaky"), 0);

        // Above threshold: heal + reset + emit.
        state.set_int("failures_media", 3);
        let emitted = mgr.tick(&mut state, &mut hub, &bindings).unwrap();
        assert_eq!(emitted, vec!["mediaRecovered".to_string()]);
        assert!(hub.is_healthy("sim.media"));
        assert_eq!(state.int("failures_media"), Some(0));
        assert_eq!(mgr.fired("mediaFlaky"), 1);

        // Condition cleared: does not fire again.
        let emitted = mgr.tick(&mut state, &mut hub, &bindings).unwrap();
        assert!(emitted.is_empty());
        assert_eq!(mgr.fired("mediaFlaky"), 1);
    }

    #[test]
    fn plans_in_one_cycle_see_the_same_snapshot() {
        // Rule A sets trigger=1; rule B fires on trigger=1. In one cycle B
        // must NOT fire (batched analysis), only on the next.
        let a = AutonomicRule {
            symptom: "a".into(),
            condition: parse("self.go = 1").unwrap(),
            steps: vec![parse_step("set trigger 1").unwrap()],
        };
        let b = AutonomicRule {
            symptom: "b".into(),
            condition: parse("self.trigger = 1").unwrap(),
            steps: vec![parse_step("emit late").unwrap()],
        };
        let mut mgr = AutonomicManager::new(vec![a, b]);
        assert_eq!(mgr.len(), 2);
        let mut state = StateManager::new();
        state.set_int("go", 1);
        let mut hub = hub();
        let bindings = BTreeMap::new();
        let emitted = mgr.tick(&mut state, &mut hub, &bindings).unwrap();
        assert!(emitted.is_empty());
        let emitted = mgr.tick(&mut state, &mut hub, &bindings).unwrap();
        assert_eq!(emitted, vec!["late".to_string()]);
    }

    #[test]
    fn replication_rules_alert_and_clear_on_lag() {
        let mut mgr = AutonomicManager::new(replication_rules(8).unwrap());
        let mut metrics = StateManager::new();
        let mut hub = hub();
        let bindings = BTreeMap::new();

        // No metrics yet: nothing fires (null-safe conditions).
        assert!(mgr
            .tick(&mut metrics, &mut hub, &bindings)
            .unwrap()
            .is_empty());

        metrics.set_int("repl_lag", 9);
        let emitted = mgr.tick(&mut metrics, &mut hub, &bindings).unwrap();
        assert_eq!(emitted, vec!["replicationLagging".to_string()]);
        // Alert latched: no re-emission while still lagging.
        assert!(mgr
            .tick(&mut metrics, &mut hub, &bindings)
            .unwrap()
            .is_empty());

        metrics.set_int("repl_lag", 0);
        let emitted = mgr.tick(&mut metrics, &mut hub, &bindings).unwrap();
        assert_eq!(emitted, vec!["replicationCaughtUp".to_string()]);

        // A fenced stale primary surfaces exactly once.
        metrics.set_int("repl_fenced", 2);
        let emitted = mgr.tick(&mut metrics, &mut hub, &bindings).unwrap();
        assert_eq!(emitted, vec!["staleEpochFenced".to_string()]);
        assert!(mgr
            .tick(&mut metrics, &mut hub, &bindings)
            .unwrap()
            .is_empty());

        // lag_alert = 0 disables the lag rules but keeps the fence rule.
        assert_eq!(replication_rules(0).unwrap().len(), 1);
    }

    fn lite_mode() -> BrownoutMode {
        BrownoutMode {
            name: "lite".into(),
            level: 1,
            enter_delay_us: 10_000,
            exit_delay_us: 2_000,
            enter_shed: 5,
            exit_shed: 0,
            enter_steps: vec![parse_step("set svc lite").unwrap()],
            exit_steps: vec![parse_step("set svc full").unwrap()],
        }
    }

    #[test]
    fn brownout_enters_and_exits_with_hysteresis() {
        let mut ctl = BrownoutController {
            modes: vec![lite_mode()],
            transitions: 0,
        };
        let mut state = StateManager::new();
        let mut hub = hub();
        let bindings = BTreeMap::new();

        // Calm: nothing happens.
        let (t, _) = ctl.tick(&mut state, &mut hub, &bindings).unwrap();
        assert!(t.is_none());

        // Queue delay over the enter threshold: enter `lite`.
        state.set_int("adm_queue_delay_us", 12_000);
        let (t, _) = ctl.tick(&mut state, &mut hub, &bindings).unwrap();
        assert_eq!(t.unwrap().to, "lite");
        assert_eq!(state.str("brownout_mode"), Some("lite"));
        assert_eq!(state.int("brownout_level"), Some(1));
        assert_eq!(state.str("svc"), Some("lite"));

        // Delay back below enter but above exit: hysteresis holds the mode.
        state.set_int("adm_queue_delay_us", 5_000);
        let (t, _) = ctl.tick(&mut state, &mut hub, &bindings).unwrap();
        assert!(t.is_none());
        assert_eq!(state.str("brownout_mode"), Some("lite"));

        // Delay at the exit threshold: restore full service.
        state.set_int("adm_queue_delay_us", 2_000);
        let (t, _) = ctl.tick(&mut state, &mut hub, &bindings).unwrap();
        let t = t.unwrap();
        assert_eq!(
            (t.from.as_str(), t.to.as_str(), t.level),
            ("lite", "full", 0)
        );
        assert_eq!(state.str("svc"), Some("full"));
        assert_eq!(ctl.transitions(), 2);
    }

    #[test]
    fn brownout_shed_trigger_fires_and_window_resets() {
        let mut ctl = BrownoutController {
            modes: vec![lite_mode()],
            transitions: 0,
        };
        let mut state = StateManager::new();
        let mut hub = hub();
        let bindings = BTreeMap::new();
        state.set_int("adm_shed_recent", 6);
        let (t, _) = ctl.tick(&mut state, &mut hub, &bindings).unwrap();
        assert_eq!(t.unwrap().to, "lite");
        // The per-tick shed window was consumed.
        assert_eq!(state.int("adm_shed_recent"), Some(0));
        // Next tick: sheds stopped and delay is zero -> exit.
        let (t, _) = ctl.tick(&mut state, &mut hub, &bindings).unwrap();
        assert_eq!(t.unwrap().to, "full");
    }

    #[test]
    fn brownout_escalates_straight_to_the_deepest_triggered_mode() {
        let audio = BrownoutMode {
            name: "audio-only".into(),
            level: 2,
            enter_delay_us: 50_000,
            exit_delay_us: 10_000,
            enter_shed: 0,
            exit_shed: 0,
            enter_steps: vec![parse_step("set svc audio").unwrap()],
            exit_steps: vec![],
        };
        let mut ctl = BrownoutController {
            modes: vec![lite_mode(), audio],
            transitions: 0,
        };
        let mut state = StateManager::new();
        let mut hub = hub();
        let bindings = BTreeMap::new();
        state.set_int("adm_queue_delay_us", 60_000);
        let (t, _) = ctl.tick(&mut state, &mut hub, &bindings).unwrap();
        let t = t.unwrap();
        assert_eq!((t.to.as_str(), t.level), ("audio-only", 2));
        // Calming to lite territory steps down one declared mode, running
        // the deeper mode's exit steps and the lighter mode's enter steps.
        state.set_int("adm_queue_delay_us", 10_000);
        let (t, _) = ctl.tick(&mut state, &mut hub, &bindings).unwrap();
        let t = t.unwrap();
        assert_eq!((t.from.as_str(), t.to.as_str()), ("audio-only", "lite"));
        assert_eq!(state.str("svc"), Some("lite"));
    }

    #[test]
    fn unbound_resources_fall_back_to_literal_names() {
        let rule = AutonomicRule {
            symptom: "s".into(),
            condition: parse("true").unwrap(),
            steps: vec![parse_step("fail sim.media").unwrap()],
        };
        let mut mgr = AutonomicManager::new(vec![rule]);
        let mut state = StateManager::new();
        let mut hub = hub();
        mgr.tick(&mut state, &mut hub, &BTreeMap::new()).unwrap();
        assert!(!hub.is_healthy("sim.media"));
    }
}
