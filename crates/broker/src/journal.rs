//! Write-ahead journal + periodic snapshots for the Broker runtime model.
//!
//! KMF's lesson is that models@runtime must be cheap to serialize and clone
//! to be usable for recovery; this module applies it to the Fig. 6
//! `StateManager`. Every primitive mutation of the runtime model (an LSN'd
//! [`StateOp`]) and every executed broker command is appended to a
//! [`Journal`] behind a pluggable [`JournalSink`]; every `snapshot_every`
//! appended entries the journal takes a full [`StateSnapshot`]. Recovery
//! ([`replay`]) restores the newest snapshot and replays the tail,
//! refusing with [`BrokerError::RecoveryDiverged`] on LSN gaps or corrupt
//! records.
//!
//! The record format is a dependency-free framed text format: one record
//! per line, fields separated by single spaces, each field percent-escaped
//! so values may contain spaces and newlines.

use crate::state::{SnapValue, StateManager, StateOp, StateSnapshot};
use crate::{BrokerError, Result};

/// Where journal bytes go. The default [`MemorySink`] is `Vec<u8>`-backed;
/// a durable deployment would put a file or replicated log behind this.
/// (`Send + Sync` so journaled brokers still fit the component factory.)
pub trait JournalSink: Send + Sync {
    /// Appends one framed record (including its trailing newline).
    fn append(&mut self, record: &[u8]);
    /// The full journal contents, oldest record first.
    fn bytes(&self) -> &[u8];
    /// Replaces the sink's entire contents (journal compaction). Sinks
    /// that cannot rewrite history return `false` and keep their bytes —
    /// which is what the default does.
    fn replace(&mut self, bytes: Vec<u8>) -> bool {
        let _ = bytes;
        false
    }
}

/// An in-memory, `Vec<u8>`-backed sink.
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    buf: Vec<u8>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// A sink pre-loaded with existing journal bytes (recovery continues
    /// appending to the history it was rebuilt from).
    pub fn with_bytes(bytes: Vec<u8>) -> Self {
        MemorySink { buf: bytes }
    }
}

impl JournalSink for MemorySink {
    fn append(&mut self, record: &[u8]) {
        self.buf.extend_from_slice(record);
    }
    fn bytes(&self) -> &[u8] {
        &self.buf
    }
    fn replace(&mut self, bytes: Vec<u8>) -> bool {
        self.buf = bytes;
        true
    }
}

/// What kind of engine entry point produced a command record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommandKind {
    /// An upper-layer call.
    Call,
    /// A resource event.
    Event,
}

/// One journal record.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// A primitive runtime-model mutation.
    Op(StateOp),
    /// A run of consecutive writes to the *same* key within one command
    /// frame, coalesced to its final value: `op` is the last write of the
    /// run and `first_lsn` the LSN of the first. Only the final value can
    /// be observed (nothing reads the state mid-frame), so replaying just
    /// `op` and advancing the version across the run is exact — and keeps
    /// hot-key journals (admission token buckets under load) from
    /// ballooning.
    OpCoalesced {
        /// LSN of the first write in the coalesced run.
        first_lsn: u64,
        /// The last write of the run (its LSN closes the run).
        op: StateOp,
    },
    /// An executed broker command (call or event) and the virtual clock
    /// after it completed.
    Command {
        /// Virtual clock (µs) after the command.
        clock_us: u64,
        /// Call or event.
        kind: CommandKind,
        /// Operation name / event topic.
        selector: String,
        /// Action that produced the outcome.
        action: String,
        /// Whether the outcome was a success.
        ok: bool,
        /// Resource invocations performed.
        attempts: u32,
        /// Virtual-time cost (µs).
        cost_us: u64,
    },
    /// An explicit virtual-clock advance (idle time between calls).
    Clock {
        /// Virtual clock (µs) after the advance.
        clock_us: u64,
    },
    /// An epoch fence. Appended when a standby is promoted to primary;
    /// replication refuses shipped records carrying an older epoch, so a
    /// healed stale primary cannot split-brain the model state.
    Epoch {
        /// The fencing epoch (monotonically increasing across failovers).
        epoch: u64,
    },
    /// A free-form annotation (static-analysis warnings at deployment,
    /// operator breadcrumbs). Notes carry no state and replay ignores
    /// them; they exist so load-time findings survive in the same durable
    /// stream the commands do.
    Note {
        /// The annotation text.
        text: String,
    },
    /// A full state snapshot plus the engine counters at snapshot time.
    Snapshot {
        /// The state at snapshot time.
        state: StateSnapshot,
        /// Virtual clock (µs).
        clock_us: u64,
        /// Calls handled so far.
        calls: u64,
        /// Events handled so far.
        events: u64,
    },
}

// -- Framing ----------------------------------------------------------------

/// Percent-escapes `%`, space, tab, and newline so a field never breaks
/// record framing.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '%' => out.push_str("%25"),
            ' ' => out.push_str("%20"),
            '\n' => out.push_str("%0A"),
            '\t' => out.push_str("%09"),
            _ => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> Result<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        let hi = chars.next();
        let lo = chars.next();
        match (hi, lo) {
            (Some('2'), Some('5')) => out.push('%'),
            (Some('2'), Some('0')) => out.push(' '),
            (Some('0'), Some('A')) => out.push('\n'),
            (Some('0'), Some('9')) => out.push('\t'),
            _ => {
                return Err(BrokerError::RecoveryDiverged(format!(
                    "corrupt escape in journal field `{s}`"
                )))
            }
        }
    }
    Ok(out)
}

/// Frames an op's LSN + mutation (shared by the `op` and `opc` tags).
fn frame_op_body(op: &StateOp) -> String {
    match op {
        StateOp::SetStr { lsn, key, value } => {
            format!("{lsn} str {} {}", escape(key), escape(value))
        }
        StateOp::SetInt { lsn, key, value } => format!("{lsn} int {} {value}", escape(key)),
        StateOp::Unset { lsn, key } => format!("{lsn} del {}", escape(key)),
    }
}

fn frame(rec: &JournalRecord) -> String {
    let mut line = match rec {
        JournalRecord::Op(op) => format!("op {}", frame_op_body(op)),
        JournalRecord::OpCoalesced { first_lsn, op } => {
            format!("opc {first_lsn} {}", frame_op_body(op))
        }
        JournalRecord::Command {
            clock_us,
            kind,
            selector,
            action,
            ok,
            attempts,
            cost_us,
        } => {
            let k = match kind {
                CommandKind::Call => "call",
                CommandKind::Event => "event",
            };
            format!(
                "cmd {clock_us} {k} {} {} {} {attempts} {cost_us}",
                escape(selector),
                escape(action),
                u8::from(*ok),
            )
        }
        JournalRecord::Clock { clock_us } => format!("clk {clock_us}"),
        JournalRecord::Epoch { epoch } => format!("ep {epoch}"),
        JournalRecord::Note { text } => format!("note {}", escape(text)),
        JournalRecord::Snapshot {
            state,
            clock_us,
            calls,
            events,
        } => {
            let mut s = format!("snap {} {clock_us} {calls} {events}", state.version);
            for (key, value) in &state.vars {
                match value {
                    SnapValue::Str(v) => {
                        s.push_str(&format!(" {} str {}", escape(key), escape(v)));
                    }
                    SnapValue::Int(v) => {
                        s.push_str(&format!(" {} int {v}", escape(key)));
                    }
                }
            }
            s
        }
    };
    line.push('\n');
    line
}

fn bad(line: &str, why: &str) -> BrokerError {
    BrokerError::RecoveryDiverged(format!("corrupt journal record `{line}`: {why}"))
}

fn parse_u64(line: &str, field: Option<&str>, what: &str) -> Result<u64> {
    field
        .and_then(|f| f.parse::<u64>().ok())
        .ok_or_else(|| bad(line, &format!("bad {what}")))
}

/// Parses an op's LSN + mutation (the shared tail of `op` and `opc`).
fn parse_op_body(line: &str, f: &mut std::str::Split<'_, char>) -> Result<StateOp> {
    let lsn = parse_u64(line, f.next(), "lsn")?;
    let ty = f.next().ok_or_else(|| bad(line, "missing op type"))?;
    let key = unescape(f.next().ok_or_else(|| bad(line, "missing key"))?)?;
    match ty {
        "str" => Ok(StateOp::SetStr {
            lsn,
            key,
            value: unescape(f.next().ok_or_else(|| bad(line, "missing value"))?)?,
        }),
        "int" => Ok(StateOp::SetInt {
            lsn,
            key,
            value: f
                .next()
                .and_then(|v| v.parse::<i64>().ok())
                .ok_or_else(|| bad(line, "bad int value"))?,
        }),
        "del" => Ok(StateOp::Unset { lsn, key }),
        other => Err(bad(line, &format!("unknown op type `{other}`"))),
    }
}

fn parse_record(line: &str) -> Result<JournalRecord> {
    let mut f = line.split(' ');
    let tag = f.next().unwrap_or_default();
    match tag {
        "op" => Ok(JournalRecord::Op(parse_op_body(line, &mut f)?)),
        "opc" => {
            let first_lsn = parse_u64(line, f.next(), "first lsn")?;
            let op = parse_op_body(line, &mut f)?;
            Ok(JournalRecord::OpCoalesced { first_lsn, op })
        }
        "cmd" => {
            let clock_us = parse_u64(line, f.next(), "clock")?;
            let kind = match f.next() {
                Some("call") => CommandKind::Call,
                Some("event") => CommandKind::Event,
                _ => return Err(bad(line, "bad command kind")),
            };
            let selector = unescape(f.next().ok_or_else(|| bad(line, "missing selector"))?)?;
            let action = unescape(f.next().ok_or_else(|| bad(line, "missing action"))?)?;
            let ok = match f.next() {
                Some("0") => false,
                Some("1") => true,
                _ => return Err(bad(line, "bad ok flag")),
            };
            let attempts = parse_u64(line, f.next(), "attempts")? as u32;
            let cost_us = parse_u64(line, f.next(), "cost")?;
            Ok(JournalRecord::Command {
                clock_us,
                kind,
                selector,
                action,
                ok,
                attempts,
                cost_us,
            })
        }
        "clk" => Ok(JournalRecord::Clock {
            clock_us: parse_u64(line, f.next(), "clock")?,
        }),
        "ep" => Ok(JournalRecord::Epoch {
            epoch: parse_u64(line, f.next(), "epoch")?,
        }),
        "note" => Ok(JournalRecord::Note {
            text: unescape(f.next().unwrap_or_default())?,
        }),
        "snap" => {
            let version = parse_u64(line, f.next(), "version")?;
            let clock_us = parse_u64(line, f.next(), "clock")?;
            let calls = parse_u64(line, f.next(), "calls")?;
            let events = parse_u64(line, f.next(), "events")?;
            let mut vars = Vec::new();
            while let Some(key) = f.next() {
                let key = unescape(key)?;
                let ty = f.next().ok_or_else(|| bad(line, "missing var type"))?;
                let raw = f.next().ok_or_else(|| bad(line, "missing var value"))?;
                let value = match ty {
                    "str" => SnapValue::Str(unescape(raw)?),
                    "int" => {
                        SnapValue::Int(raw.parse::<i64>().map_err(|_| bad(line, "bad var int"))?)
                    }
                    other => return Err(bad(line, &format!("unknown var type `{other}`"))),
                };
                vars.push((key, value));
            }
            Ok(JournalRecord::Snapshot {
                state: StateSnapshot { version, vars },
                clock_us,
                calls,
                events,
            })
        }
        other => Err(bad(line, &format!("unknown record tag `{other}`"))),
    }
}

/// Frames `rec` as its one-line wire form, trailing newline included —
/// the unit the replication layer ships over the network.
pub fn frame_record(rec: &JournalRecord) -> String {
    frame(rec)
}

/// Parses one framed line (without its trailing newline) back into a
/// [`JournalRecord`]. The inverse of [`frame_record`].
pub fn parse_line(line: &str) -> Result<JournalRecord> {
    parse_record(line)
}

// -- The journal ------------------------------------------------------------

/// A write-ahead journal over a pluggable sink, with automatic periodic
/// snapshots.
pub struct Journal {
    sink: Box<dyn JournalSink>,
    snapshot_every: u64,
    since_snapshot: u64,
    entries: u64,
    snapshots: u64,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("snapshot_every", &self.snapshot_every)
            .field("entries", &self.entries)
            .field("snapshots", &self.snapshots)
            .field("bytes", &self.sink.bytes().len())
            .finish()
    }
}

impl Journal {
    /// A journal over a fresh in-memory sink; a snapshot is taken every
    /// `snapshot_every` appended entries (0 disables periodic snapshots).
    pub fn in_memory(snapshot_every: u64) -> Self {
        Self::over(Box::new(MemorySink::new()), snapshot_every)
    }

    /// A journal over any sink.
    pub fn over(sink: Box<dyn JournalSink>, snapshot_every: u64) -> Self {
        Journal {
            sink,
            snapshot_every,
            since_snapshot: 0,
            entries: 0,
            snapshots: 0,
        }
    }

    /// Appends one record.
    pub fn record(&mut self, rec: &JournalRecord) {
        self.sink.append(frame(rec).as_bytes());
        if matches!(rec, JournalRecord::Snapshot { .. }) {
            self.snapshots += 1;
            self.since_snapshot = 0;
        } else {
            self.entries += 1;
            self.since_snapshot += 1;
        }
    }

    /// Whether the periodic-snapshot policy calls for a snapshot now.
    pub fn snapshot_due(&self) -> bool {
        self.snapshot_every > 0 && self.since_snapshot >= self.snapshot_every
    }

    /// Changes the periodic-snapshot cadence (0 disables it).
    pub fn set_snapshot_every(&mut self, snapshot_every: u64) {
        self.snapshot_every = snapshot_every;
    }

    /// Total non-snapshot records appended.
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// Snapshots taken.
    pub fn snapshots(&self) -> u64 {
        self.snapshots
    }

    /// The full journal bytes (oldest record first).
    pub fn bytes(&self) -> &[u8] {
        self.sink.bytes()
    }

    /// Compacts the journal down to the newest snapshot at or below `lsn`
    /// (typically the replica-acknowledged LSN): every record before that
    /// snapshot is dropped — replay from it still covers every op the
    /// replica has not acknowledged. The newest epoch fence in the dropped
    /// prefix is retained so fencing survives compaction. Returns the
    /// bytes reclaimed (0 when no snapshot qualifies or the sink cannot
    /// rewrite history). `entries()`/`snapshots()` remain lifetime
    /// counters and are not rewound.
    pub fn truncate_to(&mut self, lsn: u64) -> usize {
        let bytes = self.sink.bytes();
        let Ok(text) = std::str::from_utf8(bytes) else {
            return 0;
        };
        let mut cut = 0usize;
        let mut offset = 0usize;
        for line in text.split_inclusive('\n') {
            if let Some(rest) = line.strip_prefix("snap ") {
                let version = rest.split(' ').next().and_then(|v| v.parse::<u64>().ok());
                if version.is_some_and(|v| v <= lsn) {
                    cut = offset;
                }
            }
            offset += line.len();
        }
        if cut == 0 {
            return 0;
        }
        let epoch_line = text[..cut]
            .split_inclusive('\n')
            .rfind(|l| l.starts_with("ep "));
        let mut kept = Vec::with_capacity(bytes.len() - cut + 16);
        if let Some(ep) = epoch_line {
            kept.extend_from_slice(ep.as_bytes());
        }
        kept.extend_from_slice(&bytes[cut..]);
        let reclaimed = bytes.len() - kept.len();
        if self.sink.replace(kept) {
            reclaimed
        } else {
            0
        }
    }
}

// -- Recovery ---------------------------------------------------------------

/// Everything [`replay`] rebuilds from journal bytes.
#[derive(Debug)]
pub struct Recovered {
    /// The rebuilt runtime model.
    pub state: StateManager,
    /// Virtual clock (µs) at the journal head.
    pub clock_us: u64,
    /// Calls handled up to the journal head.
    pub calls: u64,
    /// Events handled up to the journal head.
    pub events: u64,
    /// State ops replayed after the newest snapshot.
    pub ops_replayed: u64,
    /// Command records replayed after the newest snapshot.
    pub commands_replayed: u64,
    /// Version the newest snapshot carried (0 when no snapshot existed).
    pub snapshot_version: u64,
    /// The newest epoch fence in the journal (1 when none was recorded).
    pub epoch: u64,
}

/// Deterministically rebuilds runtime state from journal bytes: restores
/// the newest snapshot, then replays every later record in order. Refuses
/// with [`BrokerError::RecoveryDiverged`] on corrupt records or LSN gaps.
pub fn replay(bytes: &[u8]) -> Result<Recovered> {
    let text = std::str::from_utf8(bytes)
        .map_err(|e| BrokerError::RecoveryDiverged(format!("journal is not UTF-8: {e}")))?;
    let lines: Vec<&str> = text.lines().filter(|l| !l.is_empty()).collect();
    // Find the newest snapshot; recovery replays only the tail after it.
    let start = lines
        .iter()
        .rposition(|l| l.starts_with("snap "))
        .unwrap_or(usize::MAX);

    let mut state = StateManager::new();
    let mut clock_us = 0u64;
    let mut calls = 0u64;
    let mut events = 0u64;
    let mut ops_replayed = 0u64;
    let mut commands_replayed = 0u64;
    let mut snapshot_version = 0u64;
    let mut epoch = 1u64;

    // Epoch fences live outside snapshots; scan the prefix the snapshot
    // cut skips so a fence recorded before the newest snapshot survives.
    if start != usize::MAX {
        for line in &lines[..start] {
            if line.starts_with("ep ") {
                if let JournalRecord::Epoch { epoch: e } = parse_record(line)? {
                    epoch = e;
                }
            }
        }
    }

    let tail: Box<dyn Iterator<Item = &&str>> = if start == usize::MAX {
        Box::new(lines.iter())
    } else {
        Box::new(lines[start..].iter())
    };
    for line in tail {
        match parse_record(line)? {
            JournalRecord::Snapshot {
                state: snap,
                clock_us: c,
                calls: n,
                events: m,
            } => {
                state.restore(&snap);
                clock_us = c;
                calls = n;
                events = m;
                snapshot_version = snap.version;
            }
            JournalRecord::Op(op) => {
                state.apply_op(&op)?;
                ops_replayed += 1;
            }
            JournalRecord::OpCoalesced { first_lsn, op } => {
                // `apply_coalesced` validates first_lsn <= op.lsn().
                state.apply_coalesced(first_lsn, &op)?;
                ops_replayed += op.lsn() - first_lsn + 1;
            }
            JournalRecord::Command {
                clock_us: c, kind, ..
            } => {
                clock_us = c;
                match kind {
                    CommandKind::Call => calls += 1,
                    CommandKind::Event => events += 1,
                }
                commands_replayed += 1;
            }
            JournalRecord::Clock { clock_us: c } => {
                clock_us = c;
            }
            JournalRecord::Epoch { epoch: e } => {
                epoch = e;
            }
            JournalRecord::Note { .. } => {}
        }
    }
    Ok(Recovered {
        state,
        clock_us,
        calls,
        events,
        ops_replayed,
        commands_replayed,
        snapshot_version,
        epoch,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cmd(clock_us: u64) -> JournalRecord {
        JournalRecord::Command {
            clock_us,
            kind: CommandKind::Call,
            selector: "op".into(),
            action: "a".into(),
            ok: true,
            attempts: 1,
            cost_us: 100,
        }
    }

    #[test]
    fn records_roundtrip_through_framing() {
        let mut s = StateManager::new();
        s.set_str("mode", "two words % and\nnewline\ttab");
        s.set_int("n", -3);
        let records = vec![
            JournalRecord::Snapshot {
                state: s.snapshot(),
                clock_us: 5,
                calls: 2,
                events: 1,
            },
            JournalRecord::Op(StateOp::SetStr {
                lsn: 3,
                key: "k e y".into(),
                value: "v%".into(),
            }),
            JournalRecord::Op(StateOp::SetInt {
                lsn: 4,
                key: "n".into(),
                value: 9,
            }),
            JournalRecord::Op(StateOp::Unset {
                lsn: 5,
                key: "mode".into(),
            }),
            cmd(77),
            JournalRecord::Clock { clock_us: 99 },
        ];
        for r in &records {
            let line = frame(r);
            assert!(line.ends_with('\n'));
            let back = parse_record(line.trim_end()).unwrap();
            assert_eq!(&back, r);
        }
    }

    #[test]
    fn journal_counts_and_periodic_snapshots() {
        let mut j = Journal::in_memory(2);
        assert!(!j.snapshot_due());
        j.record(&cmd(1));
        assert!(!j.snapshot_due());
        j.record(&cmd(2));
        assert!(j.snapshot_due());
        j.record(&JournalRecord::Snapshot {
            state: StateManager::new().snapshot(),
            clock_us: 2,
            calls: 2,
            events: 0,
        });
        assert!(!j.snapshot_due());
        assert_eq!(j.entries(), 2);
        assert_eq!(j.snapshots(), 1);
        assert_eq!(j.bytes().iter().filter(|b| **b == b'\n').count(), 3);
    }

    #[test]
    fn replay_restores_snapshot_plus_tail() {
        let mut live = StateManager::new();
        live.record_ops(true);
        let mut j = Journal::in_memory(0);
        live.set_str("mode", "direct");
        live.set_int("opens", 1);
        for op in live.take_ops() {
            j.record(&JournalRecord::Op(op));
        }
        j.record(&JournalRecord::Snapshot {
            state: live.snapshot(),
            clock_us: 10,
            calls: 1,
            events: 0,
        });
        live.bump("opens", 2);
        for op in live.take_ops() {
            j.record(&JournalRecord::Op(op));
        }
        j.record(&cmd(25));

        let r = replay(j.bytes()).unwrap();
        assert_eq!(r.state.int("opens"), Some(3));
        assert_eq!(r.state.str("mode"), Some("direct"));
        assert_eq!(r.state.version(), live.version());
        assert_eq!(r.clock_us, 25);
        assert_eq!(r.calls, 2);
        assert_eq!(r.ops_replayed, 1);
        assert_eq!(r.commands_replayed, 1);
        assert_eq!(r.snapshot_version, 2);
    }

    #[test]
    fn replay_without_snapshot_replays_from_origin() {
        let mut live = StateManager::new();
        live.record_ops(true);
        let mut j = Journal::in_memory(0);
        live.set_int("x", 7);
        for op in live.take_ops() {
            j.record(&JournalRecord::Op(op));
        }
        let r = replay(j.bytes()).unwrap();
        assert_eq!(r.state.int("x"), Some(7));
        assert_eq!(r.snapshot_version, 0);
        assert_eq!(r.ops_replayed, 1);
    }

    #[test]
    fn coalesced_runs_roundtrip_and_replay_exactly() {
        // A hot key written three times in one frame, plus a neighbor.
        let mut live = StateManager::new();
        live.record_ops(true);
        let mut j = Journal::in_memory(0);
        live.set_int("tokens", 10);
        live.set_int("tokens", 7);
        live.set_int("tokens", 3);
        live.set_str("mode", "lite");
        let ops = live.take_ops();
        // Coalesce the run by hand (the engine does the same).
        j.record(&JournalRecord::OpCoalesced {
            first_lsn: ops[0].lsn(),
            op: ops[2].clone(),
        });
        j.record(&JournalRecord::Op(ops[3].clone()));

        let r = replay(j.bytes()).unwrap();
        assert_eq!(r.state.int("tokens"), Some(3));
        assert_eq!(r.state.str("mode"), Some("lite"));
        assert_eq!(r.state.version(), live.version());
        assert_eq!(r.state.snapshot(), live.snapshot());
        assert_eq!(r.ops_replayed, 4);
        // Framing roundtrip of the coalesced record itself.
        let rec = JournalRecord::OpCoalesced {
            first_lsn: 1,
            op: ops[2].clone(),
        };
        assert_eq!(parse_record(frame(&rec).trim_end()).unwrap(), rec);
    }

    #[test]
    fn coalesced_runs_with_gaps_are_refused() {
        // First LSN 2 over a fresh state (version 0) is a lost entry.
        assert!(matches!(
            replay(b"opc 2 4 int x 1\n"),
            Err(BrokerError::RecoveryDiverged(_))
        ));
        // A run that ends before it starts is corrupt.
        assert!(matches!(
            replay(b"opc 1 0 int x 1\n"),
            Err(BrokerError::RecoveryDiverged(_))
        ));
    }

    #[test]
    fn epoch_fences_roundtrip_and_survive_snapshots() {
        let rec = JournalRecord::Epoch { epoch: 3 };
        assert_eq!(parse_record(frame(&rec).trim_end()).unwrap(), rec);
        // No fence recorded: epoch defaults to 1.
        assert_eq!(replay(b"op 1 int x 1\n").unwrap().epoch, 1);
        // A fence after the newest snapshot is replayed from the tail.
        assert_eq!(replay(b"snap 0 0 0 0\nep 2\n").unwrap().epoch, 2);
        // A fence *before* the newest snapshot must survive the cut.
        assert_eq!(replay(b"ep 4\nsnap 0 0 0 0\n").unwrap().epoch, 4);
        assert!(matches!(
            replay(b"ep nope\n"),
            Err(BrokerError::RecoveryDiverged(_))
        ));
    }

    /// Builds a journal with two snapshots and op tails after each; returns
    /// it plus the live state it mirrors.
    fn journal_with_two_snapshots() -> (Journal, StateManager) {
        let mut live = StateManager::new();
        live.record_ops(true);
        let mut j = Journal::in_memory(0);
        live.set_int("x", 1);
        for op in live.take_ops() {
            j.record(&JournalRecord::Op(op));
        }
        j.record(&JournalRecord::Snapshot {
            state: live.snapshot(),
            clock_us: 10,
            calls: 1,
            events: 0,
        });
        live.set_int("y", 2);
        for op in live.take_ops() {
            j.record(&JournalRecord::Op(op));
        }
        j.record(&JournalRecord::Snapshot {
            state: live.snapshot(),
            clock_us: 20,
            calls: 2,
            events: 0,
        });
        live.bump("y", 5);
        for op in live.take_ops() {
            j.record(&JournalRecord::Op(op));
        }
        (j, live)
    }

    #[test]
    fn truncate_to_keeps_a_recoverable_suffix() {
        let (mut j, live) = journal_with_two_snapshots();
        let full = replay(j.bytes()).unwrap();
        let before = j.bytes().len();
        // Nothing at or below LSN 0 qualifies: no-op.
        assert_eq!(j.truncate_to(0), 0);
        // Acknowledged up to the second snapshot's version: the first
        // snapshot and its tail can go.
        let reclaimed = j.truncate_to(live.version());
        assert!(reclaimed > 0);
        assert_eq!(j.bytes().len(), before - reclaimed);
        assert!(!std::str::from_utf8(j.bytes()).unwrap().contains("snap 1 "));
        // Recovery from the retained suffix matches recovery from the
        // full journal exactly.
        let r = replay(j.bytes()).unwrap();
        assert_eq!(r.state.snapshot(), full.state.snapshot());
        assert_eq!(r.state.int("y"), Some(7));
        assert_eq!(r.clock_us, full.clock_us);
        assert_eq!(r.calls, full.calls);
        // And the journal still accepts appends afterwards.
        j.record(&cmd(30));
        assert_eq!(replay(j.bytes()).unwrap().clock_us, 30);
    }

    #[test]
    fn truncate_to_preserves_the_epoch_fence() {
        let (j, live) = journal_with_two_snapshots();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"ep 3\n");
        bytes.extend_from_slice(j.bytes());
        let mut j = Journal::over(Box::new(MemorySink::with_bytes(bytes)), 0);
        assert!(j.truncate_to(live.version()) > 0);
        let r = replay(j.bytes()).unwrap();
        assert_eq!(r.epoch, 3, "fence survives compaction");
        assert_eq!(r.state.int("y"), Some(7));
    }

    #[test]
    fn corrupt_records_and_lsn_gaps_are_typed_errors() {
        assert!(matches!(
            replay(b"nonsense record\n"),
            Err(BrokerError::RecoveryDiverged(_))
        ));
        assert!(matches!(
            replay(&[0xFF, 0xFE]),
            Err(BrokerError::RecoveryDiverged(_))
        ));
        // LSN 2 with no LSN 1 before it: a lost entry.
        assert!(matches!(
            replay(b"op 2 int x 1\n"),
            Err(BrokerError::RecoveryDiverged(_))
        ));
    }
}
