//! Write-ahead journal + periodic snapshots for the Broker runtime model.
//!
//! KMF's lesson is that models@runtime must be cheap to serialize and clone
//! to be usable for recovery; this module applies it to the Fig. 6
//! `StateManager`. Every primitive mutation of the runtime model (an LSN'd
//! [`StateOp`]) and every executed broker command is appended to a
//! [`Journal`] behind a pluggable [`JournalSink`]; every `snapshot_every`
//! appended entries the journal takes a full [`StateSnapshot`]. Recovery
//! ([`replay`]) restores the newest snapshot and replays the tail,
//! refusing with [`BrokerError::RecoveryDiverged`] on LSN gaps or corrupt
//! records.
//!
//! The record format is a dependency-free framed text format: one record
//! per line, fields separated by single spaces, each field percent-escaped
//! so values may contain spaces and newlines.
//!
//! Records are self-verifying: each line carries a versioned frame header
//! and a CRC32 of its payload (`v1 <crc32-hex> <payload>`), so recovery
//! can tell a record the disk gave back wrong from one that was never
//! finished. [`replay`] distinguishes a **torn tail** — unreadable final
//! record(s) with nothing readable after them, the signature of a crash
//! mid-append — which it drops ([`TornTail`]) and continues, from
//! **interior corruption** — an unreadable record (or an LSN gap) with
//! readable records after it, the signature of bit-rot over committed
//! history — which is the typed [`BrokerError::JournalDamaged`] so a
//! caller can run anti-entropy repair from a standby's mirror
//! ([`crate::replication::repair_journal`]). Legacy unframed journals
//! (every record tag is distinguishable from the `v1` header) still
//! replay byte-identically.

use crate::state::{SnapValue, StateManager, StateOp, StateSnapshot};
use crate::{BrokerError, Result};

/// Where journal bytes go. The default [`MemorySink`] is `Vec<u8>`-backed;
/// a durable deployment would put a file or replicated log behind this.
/// (`Send + Sync` so journaled brokers still fit the component factory.)
pub trait JournalSink: Send + Sync {
    /// Appends one framed record (including its trailing newline).
    fn append(&mut self, record: &[u8]);
    /// The full journal contents, oldest record first.
    fn bytes(&self) -> &[u8];
    /// Replaces the sink's entire contents (journal compaction). Sinks
    /// that cannot rewrite history return `false` and keep their bytes —
    /// which is what the default does.
    fn replace(&mut self, bytes: Vec<u8>) -> bool {
        let _ = bytes;
        false
    }
}

/// An in-memory, `Vec<u8>`-backed sink.
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    buf: Vec<u8>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// A sink pre-loaded with existing journal bytes (recovery continues
    /// appending to the history it was rebuilt from).
    pub fn with_bytes(bytes: Vec<u8>) -> Self {
        MemorySink { buf: bytes }
    }
}

impl JournalSink for MemorySink {
    fn append(&mut self, record: &[u8]) {
        self.buf.extend_from_slice(record);
    }
    fn bytes(&self) -> &[u8] {
        &self.buf
    }
    fn replace(&mut self, bytes: Vec<u8>) -> bool {
        self.buf = bytes;
        true
    }
}

/// What kind of engine entry point produced a command record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommandKind {
    /// An upper-layer call.
    Call,
    /// A resource event.
    Event,
}

/// One journal record.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// A primitive runtime-model mutation.
    Op(StateOp),
    /// A run of consecutive writes to the *same* key within one command
    /// frame, coalesced to its final value: `op` is the last write of the
    /// run and `first_lsn` the LSN of the first. Only the final value can
    /// be observed (nothing reads the state mid-frame), so replaying just
    /// `op` and advancing the version across the run is exact — and keeps
    /// hot-key journals (admission token buckets under load) from
    /// ballooning.
    OpCoalesced {
        /// LSN of the first write in the coalesced run.
        first_lsn: u64,
        /// The last write of the run (its LSN closes the run).
        op: StateOp,
    },
    /// An executed broker command (call or event) and the virtual clock
    /// after it completed.
    Command {
        /// Virtual clock (µs) after the command.
        clock_us: u64,
        /// Call or event.
        kind: CommandKind,
        /// Operation name / event topic.
        selector: String,
        /// Action that produced the outcome.
        action: String,
        /// Whether the outcome was a success.
        ok: bool,
        /// Resource invocations performed.
        attempts: u32,
        /// Virtual-time cost (µs).
        cost_us: u64,
    },
    /// An explicit virtual-clock advance (idle time between calls).
    Clock {
        /// Virtual clock (µs) after the advance.
        clock_us: u64,
    },
    /// An epoch fence. Appended when a standby is promoted to primary;
    /// replication refuses shipped records carrying an older epoch, so a
    /// healed stale primary cannot split-brain the model state.
    Epoch {
        /// The fencing epoch (monotonically increasing across failovers).
        epoch: u64,
    },
    /// A free-form annotation (static-analysis warnings at deployment,
    /// operator breadcrumbs). Notes carry no state and replay ignores
    /// them; they exist so load-time findings survive in the same durable
    /// stream the commands do.
    Note {
        /// The annotation text.
        text: String,
    },
    /// An atomic model cutover: the broker switched to runtime-model
    /// version `version`, applying the embedded state-migration ops in the
    /// same record. One line = one cutover — the torn-tail policy either
    /// keeps the whole record (new model, migrations applied) or drops it
    /// wholesale (old model, untouched state), so recovery can never see a
    /// hybrid. Shipped to the standby like any other record so failover
    /// mid-upgrade resolves to one consistent version under epoch fencing.
    Upgrade {
        /// The model version now live (monotone across upgrades; a
        /// rollback re-journals the pre-upgrade version).
        version: u64,
        /// Human-readable provenance (candidate model name / reason).
        tag: String,
        /// Declared state migrations + engine reseeds, applied as
        /// ordinary LSN'd ops inside the cutover record.
        ops: Vec<StateOp>,
    },
    /// A full state snapshot plus the engine counters at snapshot time.
    Snapshot {
        /// The state at snapshot time.
        state: StateSnapshot,
        /// Virtual clock (µs).
        clock_us: u64,
        /// Calls handled so far.
        calls: u64,
        /// Events handled so far.
        events: u64,
    },
}

// -- Framing ----------------------------------------------------------------

/// Percent-escapes `%`, space, tab, and newline so a field never breaks
/// record framing.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '%' => out.push_str("%25"),
            ' ' => out.push_str("%20"),
            '\n' => out.push_str("%0A"),
            '\t' => out.push_str("%09"),
            _ => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> Result<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        let hi = chars.next();
        let lo = chars.next();
        match (hi, lo) {
            (Some('2'), Some('5')) => out.push('%'),
            (Some('2'), Some('0')) => out.push(' '),
            (Some('0'), Some('A')) => out.push('\n'),
            (Some('0'), Some('9')) => out.push('\t'),
            _ => {
                return Err(BrokerError::RecoveryDiverged(format!(
                    "corrupt escape in journal field `{s}`"
                )))
            }
        }
    }
    Ok(out)
}

/// Frames an op's LSN + mutation (shared by the `op` and `opc` tags).
fn frame_op_body(op: &StateOp) -> String {
    match op {
        StateOp::SetStr { lsn, key, value } => {
            format!("{lsn} str {} {}", escape(key), escape(value))
        }
        StateOp::SetInt { lsn, key, value } => format!("{lsn} int {} {value}", escape(key)),
        StateOp::Unset { lsn, key } => format!("{lsn} del {}", escape(key)),
    }
}

/// Appends `rec`'s payload (no frame header, no trailing newline) to
/// `line` — shared by the unframed and CRC-framed wire forms so the framed
/// path never re-copies an already-formatted payload.
fn payload_into(line: &mut String, rec: &JournalRecord) {
    use std::fmt::Write;
    match rec {
        JournalRecord::Op(op) => {
            let _ = write!(line, "op {}", frame_op_body(op));
        }
        JournalRecord::OpCoalesced { first_lsn, op } => {
            let _ = write!(line, "opc {first_lsn} {}", frame_op_body(op));
        }
        JournalRecord::Command {
            clock_us,
            kind,
            selector,
            action,
            ok,
            attempts,
            cost_us,
        } => {
            let k = match kind {
                CommandKind::Call => "call",
                CommandKind::Event => "event",
            };
            let _ = write!(
                line,
                "cmd {clock_us} {k} {} {} {} {attempts} {cost_us}",
                escape(selector),
                escape(action),
                u8::from(*ok),
            );
        }
        JournalRecord::Clock { clock_us } => {
            let _ = write!(line, "clk {clock_us}");
        }
        JournalRecord::Epoch { epoch } => {
            let _ = write!(line, "ep {epoch}");
        }
        JournalRecord::Note { text } => {
            let _ = write!(line, "note {}", escape(text));
        }
        JournalRecord::Upgrade { version, tag, ops } => {
            let _ = write!(line, "up {version} {} {}", escape(tag), ops.len());
            for op in ops {
                let _ = write!(line, " {}", frame_op_body(op));
            }
        }
        JournalRecord::Snapshot {
            state,
            clock_us,
            calls,
            events,
        } => {
            let _ = write!(line, "snap {} {clock_us} {calls} {events}", state.version);
            for (key, value) in &state.vars {
                match value {
                    SnapValue::Str(v) => {
                        let _ = write!(line, " {} str {}", escape(key), escape(v));
                    }
                    SnapValue::Int(v) => {
                        let _ = write!(line, " {} int {v}", escape(key));
                    }
                }
            }
        }
    }
}

fn frame(rec: &JournalRecord) -> String {
    let mut line = String::with_capacity(48);
    payload_into(&mut line, rec);
    line.push('\n');
    line
}

// -- CRC32 record frames -----------------------------------------------------

/// Versioned frame-header tag. Bumped if the frame layout ever changes;
/// parsing keys on the tag, so dialects can coexist in one journal.
const FRAME_TAG: &str = "v1";

/// Slice-by-8 lookup tables: `t[0]` is the classic byte-at-a-time table,
/// `t[j][i]` advances a byte that sits `j` positions deeper in the stream,
/// so eight bytes fold in one step. Built at compile time; the whole set is
/// 8 KiB.
const fn build_crc32_tables() -> [[u32; 256]; 8] {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        t[0][i] = c;
        i += 1;
    }
    let mut j = 1;
    while j < 8 {
        let mut i = 0;
        while i < 256 {
            t[j][i] = (t[j - 1][i] >> 8) ^ t[0][(t[j - 1][i] & 0xFF) as usize];
            i += 1;
        }
        j += 1;
    }
    t
}

static CRC32_TABLES: [[u32; 256]; 8] = build_crc32_tables();

/// CRC-32 (IEEE 802.3, reflected) of `bytes` — hand-rolled slice-by-8 so
/// the journal stays dependency-free while the frame header stays a small
/// fraction of the append hot path.
pub fn crc32(bytes: &[u8]) -> u32 {
    let t = &CRC32_TABLES;
    let mut c = 0xFFFF_FFFFu32;
    let mut chunks = bytes.chunks_exact(8);
    for ch in &mut chunks {
        let lo = u32::from_le_bytes([ch[0], ch[1], ch[2], ch[3]]) ^ c;
        let hi = u32::from_le_bytes([ch[4], ch[5], ch[6], ch[7]]);
        c = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xFF) as usize]
            ^ t[2][((hi >> 8) & 0xFF) as usize]
            ^ t[1][((hi >> 16) & 0xFF) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = t[0][((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

const HEX_DIGITS: &[u8; 16] = b"0123456789abcdef";

/// Appends `v` as exactly eight lowercase hex digits.
fn push_hex8(out: &mut String, v: u32) {
    for i in 0..8 {
        out.push(HEX_DIGITS[((v >> (28 - 4 * i)) & 0xF) as usize] as char);
    }
}

/// Appends the `v1 <crc32-hex> <payload>\n` frame for `payload` to `out`.
fn push_framed(out: &mut String, payload: &str) {
    out.push_str(FRAME_TAG);
    out.push(' ');
    push_hex8(out, crc32(payload.as_bytes()));
    out.push(' ');
    out.push_str(payload);
    out.push('\n');
}

/// Wraps one framed payload line (no trailing newline) in the versioned
/// CRC frame: `v1 <crc32-hex> <payload>`.
fn frame_checked(payload: &str) -> String {
    let mut line = String::with_capacity(payload.len() + 14);
    push_framed(&mut line, payload);
    line
}

/// Splits a line into its record payload, verifying the CRC when the line
/// carries a `v1` frame; legacy (unframed) lines pass through untouched.
/// The error is a human-readable reason, not a [`BrokerError`], so callers
/// can attach position context (LSN, byte offset) before surfacing it.
fn checked_payload(line: &str) -> std::result::Result<&str, String> {
    let Some(rest) = line.strip_prefix("v1 ") else {
        return Ok(line);
    };
    let (Some(crc_hex), Some(sep), Some(payload)) =
        (rest.get(..8), rest.as_bytes().get(8), rest.get(9..))
    else {
        return Err("malformed v1 frame header".to_owned());
    };
    if *sep != b' ' {
        return Err("malformed v1 frame header".to_owned());
    }
    let Ok(stored) = u32::from_str_radix(crc_hex, 16) else {
        return Err(format!("bad v1 frame crc field `{crc_hex}`"));
    };
    let computed = crc32(payload.as_bytes());
    if stored != computed {
        return Err(format!(
            "crc mismatch: stored {stored:08x}, computed {computed:08x}"
        ));
    }
    Ok(payload)
}

/// The record payload of one journal line, stripping a well-formed `v1`
/// frame *without* verifying its CRC — for cheap prefix scans (compaction,
/// snapshot rollback) that only need to know what kind of record a line
/// holds. Legacy lines pass through unchanged.
pub fn line_payload(line: &str) -> &str {
    match line.strip_prefix("v1 ") {
        Some(rest)
            if rest.len() > 9
                && rest.as_bytes()[..8].iter().all(u8::is_ascii_hexdigit)
                && rest.as_bytes()[8] == b' ' =>
        {
            &rest[9..]
        }
        _ => line,
    }
}

/// Whether the journal's first non-empty line is CRC-framed — how
/// recovery decides which dialect to resume appending in, so a resumed
/// journal stays internally consistent with its history.
pub fn is_framed(bytes: &[u8]) -> bool {
    bytes
        .split(|&b| b == b'\n')
        .find(|l| !l.is_empty())
        .is_some_and(|l| l.starts_with(b"v1 "))
}

/// The shortest whole-line byte prefix of `bytes` whose records pin down
/// every LSN at or below `lsn` — the slice of a journal a replication
/// commit point refers to. Used by the quorum-replication layer (E15) to
/// check that a quorum-committed prefix survives byte-identically on an
/// elected primary: two journals agree on everything committed iff their
/// `prefix_through_lsn(commit)` slices are equal. `lsn` 0 yields the
/// empty prefix; a journal that never reaches `lsn` is an error — the
/// claimed commit point is not durable in these bytes.
pub fn prefix_through_lsn(bytes: &[u8], lsn: u64) -> Result<&[u8]> {
    if lsn == 0 {
        return Ok(&bytes[..0]);
    }
    let mut offset = 0usize;
    for raw in bytes.split_inclusive(|&b| b == b'\n') {
        offset += raw.len();
        let body = match raw.last() {
            Some(b'\n') => &raw[..raw.len() - 1],
            _ => raw,
        };
        let reached = std::str::from_utf8(body)
            .ok()
            .and_then(|line| parse_line(line).ok())
            .map_or(0, |rec| match rec {
                JournalRecord::Op(op) => op.lsn(),
                JournalRecord::OpCoalesced { op, .. } => op.lsn(),
                JournalRecord::Upgrade { ops, .. } => ops.last().map_or(0, StateOp::lsn),
                JournalRecord::Snapshot { state, .. } => state.version,
                _ => 0,
            });
        if reached >= lsn {
            return Ok(&bytes[..offset]);
        }
    }
    Err(BrokerError::RecoveryDiverged(format!(
        "journal never reaches LSN {lsn}: the commit point is not durable here"
    )))
}

fn bad(why: &str) -> BrokerError {
    BrokerError::RecoveryDiverged(format!("corrupt journal record: {why}"))
}

fn parse_u64(field: Option<&str>, what: &str) -> Result<u64> {
    field
        .and_then(|f| f.parse::<u64>().ok())
        .ok_or_else(|| bad(&format!("bad {what}")))
}

/// Parses an op's LSN + mutation (the shared tail of `op` and `opc`).
fn parse_op_body(f: &mut std::str::Split<'_, char>) -> Result<StateOp> {
    let lsn = parse_u64(f.next(), "lsn")?;
    let ty = f.next().ok_or_else(|| bad("missing op type"))?;
    let key = unescape(f.next().ok_or_else(|| bad("missing key"))?)?;
    match ty {
        "str" => Ok(StateOp::SetStr {
            lsn,
            key,
            value: unescape(f.next().ok_or_else(|| bad("missing value"))?)?,
        }),
        "int" => Ok(StateOp::SetInt {
            lsn,
            key,
            value: f
                .next()
                .and_then(|v| v.parse::<i64>().ok())
                .ok_or_else(|| bad("bad int value"))?,
        }),
        "del" => Ok(StateOp::Unset { lsn, key }),
        other => Err(bad(&format!("unknown op type `{other}`"))),
    }
}

fn parse_record(line: &str) -> Result<JournalRecord> {
    let mut f = line.split(' ');
    let tag = f.next().unwrap_or_default();
    match tag {
        "op" => Ok(JournalRecord::Op(parse_op_body(&mut f)?)),
        "opc" => {
            let first_lsn = parse_u64(f.next(), "first lsn")?;
            let op = parse_op_body(&mut f)?;
            Ok(JournalRecord::OpCoalesced { first_lsn, op })
        }
        "cmd" => {
            let clock_us = parse_u64(f.next(), "clock")?;
            let kind = match f.next() {
                Some("call") => CommandKind::Call,
                Some("event") => CommandKind::Event,
                _ => return Err(bad("bad command kind")),
            };
            let selector = unescape(f.next().ok_or_else(|| bad("missing selector"))?)?;
            let action = unescape(f.next().ok_or_else(|| bad("missing action"))?)?;
            let ok = match f.next() {
                Some("0") => false,
                Some("1") => true,
                _ => return Err(bad("bad ok flag")),
            };
            let attempts = parse_u64(f.next(), "attempts")? as u32;
            let cost_us = parse_u64(f.next(), "cost")?;
            Ok(JournalRecord::Command {
                clock_us,
                kind,
                selector,
                action,
                ok,
                attempts,
                cost_us,
            })
        }
        "clk" => Ok(JournalRecord::Clock {
            clock_us: parse_u64(f.next(), "clock")?,
        }),
        "ep" => Ok(JournalRecord::Epoch {
            epoch: parse_u64(f.next(), "epoch")?,
        }),
        "note" => Ok(JournalRecord::Note {
            text: unescape(f.next().unwrap_or_default())?,
        }),
        "up" => {
            let version = parse_u64(f.next(), "model version")?;
            let tag = unescape(f.next().ok_or_else(|| bad("missing upgrade tag"))?)?;
            let n = parse_u64(f.next(), "op count")?;
            let mut ops = Vec::with_capacity(n as usize);
            for _ in 0..n {
                ops.push(parse_op_body(&mut f)?);
            }
            Ok(JournalRecord::Upgrade { version, tag, ops })
        }
        "snap" => {
            let version = parse_u64(f.next(), "version")?;
            let clock_us = parse_u64(f.next(), "clock")?;
            let calls = parse_u64(f.next(), "calls")?;
            let events = parse_u64(f.next(), "events")?;
            let mut vars = Vec::new();
            while let Some(key) = f.next() {
                let key = unescape(key)?;
                let ty = f.next().ok_or_else(|| bad("missing var type"))?;
                let raw = f.next().ok_or_else(|| bad("missing var value"))?;
                let value = match ty {
                    "str" => SnapValue::Str(unescape(raw)?),
                    "int" => SnapValue::Int(raw.parse::<i64>().map_err(|_| bad("bad var int"))?),
                    other => return Err(bad(&format!("unknown var type `{other}`"))),
                };
                vars.push((key, value));
            }
            Ok(JournalRecord::Snapshot {
                state: StateSnapshot { version, vars },
                clock_us,
                calls,
                events,
            })
        }
        other => Err(bad(&format!("unknown record tag `{other}`"))),
    }
}

/// Frames `rec` as its one-line legacy (unframed) wire form, trailing
/// newline included — the unit the replication layer ships over the
/// network.
pub fn frame_record(rec: &JournalRecord) -> String {
    frame(rec)
}

/// Frames `rec` under the versioned CRC32 frame (`v1 <crc32-hex>
/// <payload>`), trailing newline included — what a checksummed journal
/// appends, and what a checksummed primary ships.
pub fn frame_record_checked(rec: &JournalRecord) -> String {
    let mut payload = String::with_capacity(48);
    payload_into(&mut payload, rec);
    frame_checked(&payload)
}

/// Parses one line (without its trailing newline) back into a
/// [`JournalRecord`], verifying the CRC when the line is `v1`-framed; the
/// inverse of both [`frame_record`] and [`frame_record_checked`].
pub fn parse_line(line: &str) -> Result<JournalRecord> {
    let payload = checked_payload(line).map_err(|why| bad(&why))?;
    parse_record(payload)
}

// -- The journal ------------------------------------------------------------

/// A write-ahead journal over a pluggable sink, with automatic periodic
/// snapshots.
pub struct Journal {
    sink: Box<dyn JournalSink>,
    snapshot_every: u64,
    since_snapshot: u64,
    entries: u64,
    snapshots: u64,
    /// Whether appended records are wrapped in the `v1` CRC frame
    /// (the default) or written in the legacy unframed dialect.
    framed: bool,
    /// Reused per-append scratch (payload, then the full wire line) so the
    /// hot path allocates nothing in steady state.
    payload_buf: String,
    line_buf: String,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("snapshot_every", &self.snapshot_every)
            .field("entries", &self.entries)
            .field("snapshots", &self.snapshots)
            .field("bytes", &self.sink.bytes().len())
            .finish()
    }
}

impl Journal {
    /// A journal over a fresh in-memory sink; a snapshot is taken every
    /// `snapshot_every` appended entries (0 disables periodic snapshots).
    pub fn in_memory(snapshot_every: u64) -> Self {
        Self::over(Box::new(MemorySink::new()), snapshot_every)
    }

    /// A journal over any sink.
    pub fn over(sink: Box<dyn JournalSink>, snapshot_every: u64) -> Self {
        Journal {
            sink,
            snapshot_every,
            since_snapshot: 0,
            entries: 0,
            snapshots: 0,
            framed: true,
            payload_buf: String::new(),
            line_buf: String::new(),
        }
    }

    /// Chooses the append dialect: `true` (the default) wraps every record
    /// in the versioned CRC32 frame; `false` writes the legacy unframed
    /// format (comparison baselines, downgrade interop). Only affects
    /// records appended from here on — both dialects replay, even mixed.
    pub fn set_framed(&mut self, framed: bool) {
        self.framed = framed;
    }

    /// Whether appended records are CRC-framed.
    pub fn framed(&self) -> bool {
        self.framed
    }

    /// Appends one record.
    pub fn record(&mut self, rec: &JournalRecord) {
        self.payload_buf.clear();
        payload_into(&mut self.payload_buf, rec);
        self.line_buf.clear();
        if self.framed {
            push_framed(&mut self.line_buf, &self.payload_buf);
        } else {
            self.line_buf.push_str(&self.payload_buf);
            self.line_buf.push('\n');
        }
        self.sink.append(self.line_buf.as_bytes());
        if matches!(rec, JournalRecord::Snapshot { .. }) {
            self.snapshots += 1;
            self.since_snapshot = 0;
        } else {
            self.entries += 1;
            self.since_snapshot += 1;
        }
    }

    /// Whether the periodic-snapshot policy calls for a snapshot now.
    pub fn snapshot_due(&self) -> bool {
        self.snapshot_every > 0 && self.since_snapshot >= self.snapshot_every
    }

    /// Changes the periodic-snapshot cadence (0 disables it).
    pub fn set_snapshot_every(&mut self, snapshot_every: u64) {
        self.snapshot_every = snapshot_every;
    }

    /// Total non-snapshot records appended.
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// Snapshots taken.
    pub fn snapshots(&self) -> u64 {
        self.snapshots
    }

    /// The full journal bytes (oldest record first).
    pub fn bytes(&self) -> &[u8] {
        self.sink.bytes()
    }

    /// Compacts the journal down to the newest snapshot at or below `lsn`
    /// (typically the replica-acknowledged LSN): every record before that
    /// snapshot is dropped — replay from it still covers every op the
    /// replica has not acknowledged. The newest epoch fence in the dropped
    /// prefix is retained so fencing survives compaction. Returns the
    /// bytes reclaimed (0 when no snapshot qualifies or the sink cannot
    /// rewrite history). `entries()`/`snapshots()` remain lifetime
    /// counters and are not rewound.
    pub fn truncate_to(&mut self, lsn: u64) -> usize {
        let bytes = self.sink.bytes();
        let Ok(text) = std::str::from_utf8(bytes) else {
            return 0;
        };
        let mut cut = 0usize;
        let mut offset = 0usize;
        for line in text.split_inclusive('\n') {
            if let Some(rest) = line_payload(line.trim_end_matches('\n')).strip_prefix("snap ") {
                let version = rest.split(' ').next().and_then(|v| v.parse::<u64>().ok());
                if version.is_some_and(|v| v <= lsn) {
                    cut = offset;
                }
            }
            offset += line.len();
        }
        if cut == 0 {
            return 0;
        }
        let epoch_line = text[..cut]
            .split_inclusive('\n')
            .rfind(|l| line_payload(l.trim_end_matches('\n')).starts_with("ep "));
        // Likewise the newest upgrade record: its version (not its
        // already-snapshotted migration ops) must survive compaction so
        // replay still knows which model is live.
        let upgrade_line = text[..cut]
            .split_inclusive('\n')
            .rfind(|l| line_payload(l.trim_end_matches('\n')).starts_with("up "));
        let mut kept = Vec::with_capacity(bytes.len() - cut + 16);
        if let Some(ep) = epoch_line {
            kept.extend_from_slice(ep.as_bytes());
        }
        if let Some(up) = upgrade_line {
            kept.extend_from_slice(up.as_bytes());
        }
        kept.extend_from_slice(&bytes[cut..]);
        let reclaimed = bytes.len() - kept.len();
        if self.sink.replace(kept) {
            reclaimed
        } else {
            0
        }
    }
}

// -- Recovery ---------------------------------------------------------------

/// A torn tail [`replay`] dropped: the final record(s) could not be read
/// back — a crash mid-append left them incomplete, or the disk gave them
/// back wrong — and nothing readable followed, so recovery truncated the
/// journal to the last complete record and continued.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornTail {
    /// Byte offset of the cut: everything at and after it is unreadable.
    pub offset: u64,
    /// Unreadable trailing lines dropped.
    pub dropped_lines: u64,
    /// Head LSN of the runtime model rebuilt from the surviving prefix.
    pub last_lsn: u64,
    /// Why the first dropped record could not be read.
    pub why: String,
}

/// Everything [`replay`] rebuilds from journal bytes.
#[derive(Debug)]
pub struct Recovered {
    /// The rebuilt runtime model.
    pub state: StateManager,
    /// Virtual clock (µs) at the journal head.
    pub clock_us: u64,
    /// Calls handled up to the journal head.
    pub calls: u64,
    /// Events handled up to the journal head.
    pub events: u64,
    /// State ops replayed after the newest snapshot.
    pub ops_replayed: u64,
    /// Command records replayed after the newest snapshot.
    pub commands_replayed: u64,
    /// Version the newest snapshot carried (0 when no snapshot existed).
    pub snapshot_version: u64,
    /// The newest epoch fence in the journal (1 when none was recorded).
    pub epoch: u64,
    /// The runtime-model version the newest `Upgrade` record put live
    /// (1 when the journal predates live evolution).
    pub model_version: u64,
    /// The torn tail the tail-scan policy dropped, when the journal ended
    /// in unreadable record(s). The caller must truncate the durable bytes
    /// at `torn.offset` before appending anything.
    pub torn: Option<TornTail>,
}

/// One scanned journal line: its byte offset and either the parsed record
/// or the reason it could not be read (frame damage, bad CRC, bad parse).
struct ScannedLine {
    offset: usize,
    rec: std::result::Result<JournalRecord, String>,
}

fn scan_lines(bytes: &[u8]) -> Vec<ScannedLine> {
    let mut lines = Vec::new();
    let mut offset = 0usize;
    for raw in bytes.split_inclusive(|&b| b == b'\n') {
        let (body, terminated) = match raw.last() {
            Some(b'\n') => (&raw[..raw.len() - 1], true),
            _ => (raw, false),
        };
        if !body.is_empty() {
            // A record without its trailing newline was never fully
            // written — a torn write, even when the surviving prefix
            // happens to parse (a cut inside a trailing numeric field can
            // leave a shorter-but-valid record). Resuming appends after
            // such a line would splice two records together.
            let rec = if !terminated {
                Err("unterminated final record (torn write)".to_owned())
            } else {
                match std::str::from_utf8(body) {
                    Err(_) => Err("record is not UTF-8".to_owned()),
                    Ok(line) => checked_payload(line).and_then(|payload| {
                        parse_record(payload).map_err(|e| match e {
                            BrokerError::RecoveryDiverged(why) => why,
                            other => other.to_string(),
                        })
                    }),
                }
            };
            lines.push(ScannedLine { offset, rec });
        }
        offset += raw.len();
    }
    lines
}

/// The newest LSN any readable record among `lines` pins down.
fn last_lsn_in(lines: &[ScannedLine]) -> u64 {
    lines
        .iter()
        .filter_map(|l| match &l.rec {
            Ok(JournalRecord::Op(op)) => Some(op.lsn()),
            Ok(JournalRecord::OpCoalesced { op, .. }) => Some(op.lsn()),
            Ok(JournalRecord::Upgrade { ops, .. }) => ops.last().map(StateOp::lsn),
            Ok(JournalRecord::Snapshot { state, .. }) => Some(state.version),
            _ => None,
        })
        .next_back()
        .unwrap_or(0)
}

fn damaged(lsn: u64, offset: usize, why: String) -> BrokerError {
    BrokerError::JournalDamaged {
        lsn,
        offset: offset as u64,
        why,
    }
}

/// Deterministically rebuilds runtime state from journal bytes: restores
/// the newest snapshot, then replays every later record in order.
///
/// The tail-scan policy distinguishes two failure shapes. A **torn tail**
/// — unreadable final record(s) with at least one readable record before
/// them and none after — is the signature of a crash mid-append: the tail
/// is dropped ([`Recovered::torn`]) and replay continues from the intact
/// prefix. **Interior corruption** — an unreadable record (or an LSN gap)
/// with readable records after it, or a journal whose very first record
/// is unreadable — means committed history was damaged at rest and is the
/// typed [`BrokerError::JournalDamaged`] carrying the last good LSN and
/// the byte offset of the damage, so a caller can fetch the missing range
/// from a standby's mirror.
pub fn replay(bytes: &[u8]) -> Result<Recovered> {
    let mut lines = scan_lines(bytes);

    let mut torn: Option<TornTail> = None;
    if let Some(first_bad) = lines.iter().position(|l| l.rec.is_err()) {
        let why = match &lines[first_bad].rec {
            Err(w) => w.clone(),
            Ok(_) => String::new(),
        };
        let offset = lines[first_bad].offset;
        let lsn_before = last_lsn_in(&lines[..first_bad]);
        if lines[first_bad + 1..].iter().any(|l| l.rec.is_ok()) {
            return Err(damaged(
                lsn_before,
                offset,
                format!("interior corruption: {why}"),
            ));
        }
        if first_bad == 0 {
            return Err(damaged(
                0,
                offset,
                format!("journal head unreadable: {why}"),
            ));
        }
        torn = Some(TornTail {
            offset: offset as u64,
            dropped_lines: (lines.len() - first_bad) as u64,
            last_lsn: lsn_before,
            why,
        });
        lines.truncate(first_bad);
    }
    let records: Vec<(usize, JournalRecord)> = lines
        .into_iter()
        .filter_map(|l| l.rec.ok().map(|r| (l.offset, r)))
        .collect();

    // Find the newest snapshot; recovery replays only the tail after it.
    let start = records
        .iter()
        .rposition(|(_, r)| matches!(r, JournalRecord::Snapshot { .. }));

    let mut state = StateManager::new();
    let mut clock_us = 0u64;
    let mut calls = 0u64;
    let mut events = 0u64;
    let mut ops_replayed = 0u64;
    let mut commands_replayed = 0u64;
    let mut snapshot_version = 0u64;
    let mut epoch = 1u64;
    let mut model_version = 1u64;

    // Epoch fences and upgrade versions live outside snapshots; scan the
    // prefix the snapshot cut skips so a fence (or cutover) recorded
    // before the newest snapshot survives. Only the version is read here —
    // the embedded migration ops are already baked into the snapshot.
    if let Some(s) = start {
        for (_, rec) in &records[..s] {
            match rec {
                JournalRecord::Epoch { epoch: e } => epoch = *e,
                JournalRecord::Upgrade { version, .. } => model_version = *version,
                _ => {}
            }
        }
    }

    let tail = match start {
        Some(s) => &records[s..],
        None => &records[..],
    };
    for (offset, rec) in tail {
        match rec {
            JournalRecord::Snapshot {
                state: snap,
                clock_us: c,
                calls: n,
                events: m,
            } => {
                state.restore(snap);
                clock_us = *c;
                calls = *n;
                events = *m;
                snapshot_version = snap.version;
            }
            JournalRecord::Op(op) => {
                state
                    .apply_op(op)
                    .map_err(|e| apply_damage(&state, *offset, e))?;
                ops_replayed += 1;
            }
            JournalRecord::OpCoalesced { first_lsn, op } => {
                // `apply_coalesced` validates first_lsn <= op.lsn().
                state
                    .apply_coalesced(*first_lsn, op)
                    .map_err(|e| apply_damage(&state, *offset, e))?;
                ops_replayed += op.lsn() - first_lsn + 1;
            }
            JournalRecord::Command {
                clock_us: c, kind, ..
            } => {
                clock_us = *c;
                match kind {
                    CommandKind::Call => calls += 1,
                    CommandKind::Event => events += 1,
                }
                commands_replayed += 1;
            }
            JournalRecord::Clock { clock_us: c } => {
                clock_us = *c;
            }
            JournalRecord::Epoch { epoch: e } => {
                epoch = *e;
            }
            JournalRecord::Upgrade { version, ops, .. } => {
                for op in ops {
                    state
                        .apply_op(op)
                        .map_err(|e| apply_damage(&state, *offset, e))?;
                    ops_replayed += 1;
                }
                model_version = *version;
            }
            JournalRecord::Note { .. } => {}
        }
    }
    if let Some(t) = &mut torn {
        t.last_lsn = state.version();
    }
    Ok(Recovered {
        state,
        clock_us,
        calls,
        events,
        ops_replayed,
        commands_replayed,
        snapshot_version,
        epoch,
        model_version,
        torn,
    })
}

/// An LSN gap (or other apply-time divergence) at a readable record means
/// committed records *before* it are missing — interior damage, reported
/// with the last good LSN and the offending record's byte offset.
fn apply_damage(state: &StateManager, offset: usize, e: BrokerError) -> BrokerError {
    let why = match e {
        BrokerError::RecoveryDiverged(m) => m,
        other => other.to_string(),
    };
    damaged(state.version(), offset, why)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cmd(clock_us: u64) -> JournalRecord {
        JournalRecord::Command {
            clock_us,
            kind: CommandKind::Call,
            selector: "op".into(),
            action: "a".into(),
            ok: true,
            attempts: 1,
            cost_us: 100,
        }
    }

    #[test]
    fn records_roundtrip_through_framing() {
        let mut s = StateManager::new();
        s.set_str("mode", "two words % and\nnewline\ttab");
        s.set_int("n", -3);
        let records = vec![
            JournalRecord::Snapshot {
                state: s.snapshot(),
                clock_us: 5,
                calls: 2,
                events: 1,
            },
            JournalRecord::Op(StateOp::SetStr {
                lsn: 3,
                key: "k e y".into(),
                value: "v%".into(),
            }),
            JournalRecord::Op(StateOp::SetInt {
                lsn: 4,
                key: "n".into(),
                value: 9,
            }),
            JournalRecord::Op(StateOp::Unset {
                lsn: 5,
                key: "mode".into(),
            }),
            cmd(77),
            JournalRecord::Clock { clock_us: 99 },
            JournalRecord::Upgrade {
                version: 2,
                tag: "candidate v2 (two words)".into(),
                ops: vec![
                    StateOp::SetStr {
                        lsn: 6,
                        key: "svc mode".into(),
                        value: "lite%".into(),
                    },
                    StateOp::SetInt {
                        lsn: 7,
                        key: "adm_bulk_tokens".into(),
                        value: 4_000,
                    },
                    StateOp::Unset {
                        lsn: 8,
                        key: "mon_old_tripped".into(),
                    },
                ],
            },
            JournalRecord::Upgrade {
                version: 3,
                tag: "no-migrations".into(),
                ops: Vec::new(),
            },
        ];
        for r in &records {
            let line = frame(r);
            assert!(line.ends_with('\n'));
            let back = parse_record(line.trim_end()).unwrap();
            assert_eq!(&back, r);
        }
    }

    #[test]
    fn journal_counts_and_periodic_snapshots() {
        let mut j = Journal::in_memory(2);
        assert!(!j.snapshot_due());
        j.record(&cmd(1));
        assert!(!j.snapshot_due());
        j.record(&cmd(2));
        assert!(j.snapshot_due());
        j.record(&JournalRecord::Snapshot {
            state: StateManager::new().snapshot(),
            clock_us: 2,
            calls: 2,
            events: 0,
        });
        assert!(!j.snapshot_due());
        assert_eq!(j.entries(), 2);
        assert_eq!(j.snapshots(), 1);
        assert_eq!(j.bytes().iter().filter(|b| **b == b'\n').count(), 3);
    }

    #[test]
    fn replay_restores_snapshot_plus_tail() {
        let mut live = StateManager::new();
        live.record_ops(true);
        let mut j = Journal::in_memory(0);
        live.set_str("mode", "direct");
        live.set_int("opens", 1);
        for op in live.take_ops() {
            j.record(&JournalRecord::Op(op));
        }
        j.record(&JournalRecord::Snapshot {
            state: live.snapshot(),
            clock_us: 10,
            calls: 1,
            events: 0,
        });
        live.bump("opens", 2);
        for op in live.take_ops() {
            j.record(&JournalRecord::Op(op));
        }
        j.record(&cmd(25));

        let r = replay(j.bytes()).unwrap();
        assert_eq!(r.state.int("opens"), Some(3));
        assert_eq!(r.state.str("mode"), Some("direct"));
        assert_eq!(r.state.version(), live.version());
        assert_eq!(r.clock_us, 25);
        assert_eq!(r.calls, 2);
        assert_eq!(r.ops_replayed, 1);
        assert_eq!(r.commands_replayed, 1);
        assert_eq!(r.snapshot_version, 2);
    }

    #[test]
    fn replay_without_snapshot_replays_from_origin() {
        let mut live = StateManager::new();
        live.record_ops(true);
        let mut j = Journal::in_memory(0);
        live.set_int("x", 7);
        for op in live.take_ops() {
            j.record(&JournalRecord::Op(op));
        }
        let r = replay(j.bytes()).unwrap();
        assert_eq!(r.state.int("x"), Some(7));
        assert_eq!(r.snapshot_version, 0);
        assert_eq!(r.ops_replayed, 1);
    }

    #[test]
    fn coalesced_runs_roundtrip_and_replay_exactly() {
        // A hot key written three times in one frame, plus a neighbor.
        let mut live = StateManager::new();
        live.record_ops(true);
        let mut j = Journal::in_memory(0);
        live.set_int("tokens", 10);
        live.set_int("tokens", 7);
        live.set_int("tokens", 3);
        live.set_str("mode", "lite");
        let ops = live.take_ops();
        // Coalesce the run by hand (the engine does the same).
        j.record(&JournalRecord::OpCoalesced {
            first_lsn: ops[0].lsn(),
            op: ops[2].clone(),
        });
        j.record(&JournalRecord::Op(ops[3].clone()));

        let r = replay(j.bytes()).unwrap();
        assert_eq!(r.state.int("tokens"), Some(3));
        assert_eq!(r.state.str("mode"), Some("lite"));
        assert_eq!(r.state.version(), live.version());
        assert_eq!(r.state.snapshot(), live.snapshot());
        assert_eq!(r.ops_replayed, 4);
        // Framing roundtrip of the coalesced record itself.
        let rec = JournalRecord::OpCoalesced {
            first_lsn: 1,
            op: ops[2].clone(),
        };
        assert_eq!(parse_record(frame(&rec).trim_end()).unwrap(), rec);
    }

    #[test]
    fn coalesced_runs_with_gaps_are_refused() {
        // First LSN 2 over a fresh state (version 0) is a lost entry —
        // interior damage (the record itself reads fine; earlier records
        // are missing), reported with position.
        assert!(matches!(
            replay(b"opc 2 4 int x 1\n"),
            Err(BrokerError::JournalDamaged {
                lsn: 0,
                offset: 0,
                ..
            })
        ));
        // A run that ends before it starts is corrupt.
        assert!(matches!(
            replay(b"opc 1 0 int x 1\n"),
            Err(BrokerError::JournalDamaged { .. })
        ));
    }

    #[test]
    fn epoch_fences_roundtrip_and_survive_snapshots() {
        let rec = JournalRecord::Epoch { epoch: 3 };
        assert_eq!(parse_record(frame(&rec).trim_end()).unwrap(), rec);
        // No fence recorded: epoch defaults to 1.
        assert_eq!(replay(b"op 1 int x 1\n").unwrap().epoch, 1);
        // A fence after the newest snapshot is replayed from the tail.
        assert_eq!(replay(b"snap 0 0 0 0\nep 2\n").unwrap().epoch, 2);
        // A fence *before* the newest snapshot must survive the cut.
        assert_eq!(replay(b"ep 4\nsnap 0 0 0 0\n").unwrap().epoch, 4);
        // A journal whose only record is unreadable has no readable head
        // to fall back to: typed damage, not a silent empty recovery.
        assert!(matches!(
            replay(b"ep nope\n"),
            Err(BrokerError::JournalDamaged { .. })
        ));
    }

    /// Builds a journal with two snapshots and op tails after each; returns
    /// it plus the live state it mirrors.
    fn journal_with_two_snapshots() -> (Journal, StateManager) {
        let mut live = StateManager::new();
        live.record_ops(true);
        let mut j = Journal::in_memory(0);
        live.set_int("x", 1);
        for op in live.take_ops() {
            j.record(&JournalRecord::Op(op));
        }
        j.record(&JournalRecord::Snapshot {
            state: live.snapshot(),
            clock_us: 10,
            calls: 1,
            events: 0,
        });
        live.set_int("y", 2);
        for op in live.take_ops() {
            j.record(&JournalRecord::Op(op));
        }
        j.record(&JournalRecord::Snapshot {
            state: live.snapshot(),
            clock_us: 20,
            calls: 2,
            events: 0,
        });
        live.bump("y", 5);
        for op in live.take_ops() {
            j.record(&JournalRecord::Op(op));
        }
        (j, live)
    }

    #[test]
    fn truncate_to_keeps_a_recoverable_suffix() {
        let (mut j, live) = journal_with_two_snapshots();
        let full = replay(j.bytes()).unwrap();
        let before = j.bytes().len();
        // Nothing at or below LSN 0 qualifies: no-op.
        assert_eq!(j.truncate_to(0), 0);
        // Acknowledged up to the second snapshot's version: the first
        // snapshot and its tail can go.
        let reclaimed = j.truncate_to(live.version());
        assert!(reclaimed > 0);
        assert_eq!(j.bytes().len(), before - reclaimed);
        assert!(!std::str::from_utf8(j.bytes()).unwrap().contains("snap 1 "));
        // Recovery from the retained suffix matches recovery from the
        // full journal exactly.
        let r = replay(j.bytes()).unwrap();
        assert_eq!(r.state.snapshot(), full.state.snapshot());
        assert_eq!(r.state.int("y"), Some(7));
        assert_eq!(r.clock_us, full.clock_us);
        assert_eq!(r.calls, full.calls);
        // And the journal still accepts appends afterwards.
        j.record(&cmd(30));
        assert_eq!(replay(j.bytes()).unwrap().clock_us, 30);
    }

    #[test]
    fn truncate_to_preserves_the_epoch_fence() {
        let (j, live) = journal_with_two_snapshots();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"ep 3\n");
        bytes.extend_from_slice(j.bytes());
        let mut j = Journal::over(Box::new(MemorySink::with_bytes(bytes)), 0);
        assert!(j.truncate_to(live.version()) > 0);
        let r = replay(j.bytes()).unwrap();
        assert_eq!(r.epoch, 3, "fence survives compaction");
        assert_eq!(r.state.int("y"), Some(7));
    }

    #[test]
    fn upgrade_records_replay_and_survive_the_snapshot_cut() {
        // No upgrade recorded: version defaults to 1.
        assert_eq!(replay(b"op 1 int x 1\n").unwrap().model_version, 1);
        // An upgrade in the tail applies its embedded migration ops.
        let r = replay(b"op 1 int x 1\nup 2 cand 2 2 int x 7 3 str mode lite\n").unwrap();
        assert_eq!(r.model_version, 2);
        assert_eq!(r.state.int("x"), Some(7));
        assert_eq!(r.state.str("mode"), Some("lite"));
        assert_eq!(r.state.version(), 3);
        assert_eq!(r.ops_replayed, 3);
        // An upgrade *before* the newest snapshot contributes only its
        // version (the ops are baked into the snapshot).
        let r = replay(b"up 2 cand 1 1 int x 7\nsnap 1 0 0 0 x int 7\n").unwrap();
        assert_eq!(r.model_version, 2);
        assert_eq!(r.state.int("x"), Some(7));
        assert_eq!(r.ops_replayed, 0);
        // A rollback re-journals the pre-upgrade version: latest wins.
        let r = replay(b"up 2 cand 0\nup 1 rollback 0\n").unwrap();
        assert_eq!(r.model_version, 1);
        // An embedded op with an LSN gap is damage like any other op.
        assert!(matches!(
            replay(b"up 2 cand 1 5 int x 1\n"),
            Err(BrokerError::JournalDamaged { .. })
        ));
    }

    #[test]
    fn torn_upgrade_records_drop_wholesale() {
        // A cutover record missing its trailing newline was never
        // committed: the torn-tail policy drops the whole line, so
        // recovery sees the pure pre-upgrade state (never a hybrid with
        // some migrations applied).
        let r = replay(b"op 1 int x 1\nup 2 cand 2 2 int x 7 3 str mode lite").unwrap();
        assert_eq!(r.model_version, 1);
        assert_eq!(r.state.int("x"), Some(1));
        assert_eq!(r.state.str("mode"), None);
        let torn = r.torn.expect("tail was torn");
        assert_eq!(torn.dropped_lines, 1);
        assert_eq!(torn.last_lsn, 1);
    }

    #[test]
    fn truncate_to_preserves_the_upgrade_version() {
        let (j, live) = journal_with_two_snapshots();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"ep 3\nup 2 cand 0\n");
        bytes.extend_from_slice(j.bytes());
        let mut j = Journal::over(Box::new(MemorySink::with_bytes(bytes)), 0);
        assert!(j.truncate_to(live.version()) > 0);
        let r = replay(j.bytes()).unwrap();
        assert_eq!(r.epoch, 3, "fence survives compaction");
        assert_eq!(r.model_version, 2, "live version survives compaction");
        assert_eq!(r.state.int("y"), Some(7));
    }

    #[test]
    fn corrupt_records_and_lsn_gaps_are_typed_errors() {
        // A journal whose very first record is unreadable is damage, not
        // a torn tail: silently recovering an empty state would discard
        // everything the journal might have held.
        assert!(matches!(
            replay(b"nonsense record\n"),
            Err(BrokerError::JournalDamaged {
                lsn: 0,
                offset: 0,
                ..
            })
        ));
        assert!(matches!(
            replay(&[0xFF, 0xFE]),
            Err(BrokerError::JournalDamaged { .. })
        ));
        // LSN 2 with no LSN 1 before it: a lost entry.
        assert!(matches!(
            replay(b"op 2 int x 1\n"),
            Err(BrokerError::JournalDamaged {
                lsn: 0,
                offset: 0,
                ..
            })
        ));
    }

    #[test]
    fn prefix_through_lsn_pins_the_committed_slice() {
        let bytes = b"op 1 int x 1\ncmd 5 call op a 1 1 100\nop 2 int x 2\nop 3 int x 3\n";
        // LSN 0: the empty prefix.
        assert_eq!(prefix_through_lsn(bytes, 0).unwrap(), b"");
        // LSN 2: through the record that reaches it — including the
        // non-LSN command line before it, excluding everything after.
        assert_eq!(
            prefix_through_lsn(bytes, 2).unwrap(),
            &b"op 1 int x 1\ncmd 5 call op a 1 1 100\nop 2 int x 2\n"[..]
        );
        // The full journal covers its head LSN.
        assert_eq!(prefix_through_lsn(bytes, 3).unwrap(), &bytes[..]);
        // A snapshot's version pins LSNs too.
        assert_eq!(
            prefix_through_lsn(b"snap 4 0 0 0\nop 5 int x 9\n", 4).unwrap(),
            &b"snap 4 0 0 0\n"[..]
        );
        // A commit point beyond the journal head is typed refusal.
        assert!(prefix_through_lsn(bytes, 9).is_err());
        // Two mirrors agree on a committed prefix iff the slices match.
        let longer = b"op 1 int x 1\ncmd 5 call op a 1 1 100\nop 2 int x 2\nop 3 int x 7\n";
        assert_eq!(
            prefix_through_lsn(bytes, 2).unwrap(),
            prefix_through_lsn(longer, 2).unwrap()
        );
        assert_ne!(
            prefix_through_lsn(bytes, 3).unwrap(),
            prefix_through_lsn(longer, 3).unwrap()
        );
    }

    #[test]
    fn crc32_matches_the_ieee_check_vector() {
        // The canonical CRC-32 (IEEE 802.3) check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn checked_frames_roundtrip_and_verify() {
        let rec = cmd(42);
        let line = frame_record_checked(&rec);
        assert!(line.starts_with("v1 "));
        assert!(line.ends_with('\n'));
        // parse_line sees through the frame and verifies the CRC.
        assert_eq!(parse_line(line.trim_end()).unwrap(), rec);
        // line_payload strips the frame without verifying.
        assert_eq!(line_payload(line.trim_end()), frame_record(&rec).trim_end());
        // A flipped payload byte fails verification with a CRC message,
        // never an echo of the payload.
        let corrupted = line.trim_end().replace("call", "cakl");
        let err = checked_payload(&corrupted).unwrap_err();
        assert!(err.contains("crc mismatch"), "{err}");
        assert!(!err.contains("cakl"), "{err}");
        // Unframed legacy lines pass through line_payload untouched.
        assert_eq!(line_payload("op 1 int x 1"), "op 1 int x 1");
    }

    #[test]
    fn is_framed_detects_the_journal_dialect() {
        assert!(is_framed(b"v1 deadbeef op 1 int x 1\n"));
        assert!(!is_framed(b"op 1 int x 1\n"));
        assert!(!is_framed(b""));
        // Leading blank lines are skipped when sniffing.
        assert!(is_framed(b"\nv1 deadbeef op 1 int x 1\n"));
    }

    /// Builds a framed journal of `n` int sets and the state it encodes.
    fn framed_journal(n: i64) -> Journal {
        let mut live = StateManager::new();
        live.record_ops(true);
        let mut j = Journal::in_memory(0);
        for i in 1..=n {
            live.set_int("x", i);
        }
        for op in live.take_ops() {
            j.record(&JournalRecord::Op(op));
        }
        j
    }

    #[test]
    fn framed_and_legacy_journals_replay_identically() {
        let j = framed_journal(3);
        assert!(is_framed(j.bytes()));
        // The same records in the legacy dialect.
        let mut legacy = Journal::in_memory(0);
        legacy.set_framed(false);
        let mut live = StateManager::new();
        live.record_ops(true);
        for i in 1..=3 {
            live.set_int("x", i);
        }
        for op in live.take_ops() {
            legacy.record(&JournalRecord::Op(op));
        }
        assert!(!is_framed(legacy.bytes()));
        assert!(!legacy.bytes().starts_with(b"v1 "));
        let a = replay(j.bytes()).unwrap();
        let b = replay(legacy.bytes()).unwrap();
        assert_eq!(a.state.snapshot(), b.state.snapshot());
        assert_eq!(a.ops_replayed, b.ops_replayed);
        // Mixed dialects in one journal replay fine too: a legacy prefix
        // with a framed tail is what an upgraded broker leaves behind.
        let mut mixed = legacy.bytes().to_vec();
        mixed.extend_from_slice(
            frame_record_checked(&JournalRecord::Op(StateOp::SetInt {
                lsn: 4,
                key: "x".into(),
                value: 9,
            }))
            .as_bytes(),
        );
        let m = replay(&mixed).unwrap();
        assert_eq!(m.state.int("x"), Some(9));
        assert_eq!(m.state.version(), 4);
    }

    #[test]
    fn torn_tail_is_truncated_and_reported() {
        let j = framed_journal(3);
        let mut bytes = j.bytes().to_vec();
        let clean_len = bytes.len();
        // A crash mid-append leaves a partial final record: cut the last
        // framed line in half (no trailing newline).
        let next = frame_record_checked(&JournalRecord::Op(StateOp::SetInt {
            lsn: 4,
            key: "x".into(),
            value: 99,
        }));
        bytes.extend_from_slice(&next.as_bytes()[..next.len() / 2]);
        let r = replay(&bytes).unwrap();
        assert_eq!(r.state.int("x"), Some(3), "torn record never applied");
        assert_eq!(r.state.version(), 3);
        let torn = r.torn.expect("torn tail reported");
        assert_eq!(torn.offset as usize, clean_len, "truncation point");
        assert_eq!(torn.dropped_lines, 1);
        assert_eq!(torn.last_lsn, 3);
    }

    #[test]
    fn unterminated_final_record_is_torn_even_when_it_parses() {
        // A tear can cut inside a trailing numeric field and leave a
        // shorter-but-valid record ("count 12" torn to "count 1"). In the
        // legacy dialect no checksum refutes it — but the missing newline
        // proves the write never finished. Treating it as complete would
        // splice the next append onto this line.
        let mut j = Journal::in_memory(0);
        j.set_framed(false);
        j.record(&JournalRecord::Op(StateOp::SetInt {
            lsn: 1,
            key: "count".into(),
            value: 7,
        }));
        let mut bytes = j.bytes().to_vec();
        let clean_len = bytes.len();
        bytes.extend_from_slice(b"op 2 int count 12");
        bytes.truncate(bytes.len() - 1); // torn: "...count 1", no newline
        let r = replay(&bytes).unwrap();
        assert_eq!(r.state.int("count"), Some(7), "torn record never applied");
        let torn = r.torn.expect("unterminated tail reported as torn");
        assert_eq!(torn.offset as usize, clean_len);
        assert_eq!(torn.dropped_lines, 1);
        assert!(torn.why.contains("unterminated"), "{}", torn.why);
    }

    #[test]
    fn interior_crc_damage_is_refused_not_torn() {
        let j = framed_journal(3);
        let text = std::str::from_utf8(j.bytes()).unwrap();
        let lines: Vec<&str> = text.split_inclusive('\n').collect();
        // Flip one payload byte in the *middle* record: readable records
        // follow it, so this is bit-rot, not a crash-torn tail.
        let mut bytes = lines[0].as_bytes().to_vec();
        let damage_at = bytes.len();
        bytes.extend_from_slice(lines[1].replace("int", "imt").as_bytes());
        bytes.extend_from_slice(lines[2].as_bytes());
        match replay(&bytes) {
            Err(BrokerError::JournalDamaged { lsn, offset, why }) => {
                assert_eq!(lsn, 1);
                assert_eq!(offset as usize, damage_at);
                assert!(why.contains("crc mismatch"), "{why}");
            }
            other => panic!("expected JournalDamaged, got {other:?}"),
        }
    }

    #[test]
    fn truncate_to_respects_the_crc_frame() {
        // The two-snapshot compaction scenario, rebuilt in the framed
        // dialect: snap-line detection must see through the frame.
        let mut live = StateManager::new();
        live.record_ops(true);
        let mut j = Journal::in_memory(0);
        j.record(&JournalRecord::Epoch { epoch: 3 });
        live.set_int("x", 1);
        for op in live.take_ops() {
            j.record(&JournalRecord::Op(op));
        }
        j.record(&JournalRecord::Snapshot {
            state: live.snapshot(),
            clock_us: 10,
            calls: 1,
            events: 0,
        });
        live.set_int("y", 2);
        // Monitor memory lives in ordinary `mon_*` variables: a latched
        // trip recorded before the compaction cut must survive it.
        live.set_str("mon_nonneg_tripped", "1");
        for op in live.take_ops() {
            j.record(&JournalRecord::Op(op));
        }
        j.record(&JournalRecord::Snapshot {
            state: live.snapshot(),
            clock_us: 20,
            calls: 2,
            events: 0,
        });
        assert!(is_framed(j.bytes()));
        assert!(j.truncate_to(live.version()) > 0);
        let r = replay(j.bytes()).unwrap();
        assert_eq!(r.epoch, 3, "fence survives framed compaction");
        assert_eq!(r.state.int("y"), Some(2));
        assert_eq!(
            r.state.str("mon_nonneg_tripped"),
            Some("1"),
            "monitor latch survives framed compaction"
        );
        assert_eq!(r.state.version(), live.version());
        // The retained bytes are still CRC-framed and verify cleanly.
        assert!(is_framed(j.bytes()));
        assert!(r.torn.is_none());
    }

    /// xorshift64* — a tiny seeded generator so the property test is
    /// deterministic without external crates.
    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    #[test]
    fn escape_roundtrips_arbitrary_strings() {
        // Property: unescape(escape(s)) == s for strings drawn from a
        // palette that stresses the escaper — the escaped characters
        // themselves, sequences that *look* like escapes (`%25`, `%0A`),
        // multibyte characters, and plain text.
        let palette: &[&str] = &[
            "%", " ", "\n", "\t", "%25", "%20", "%0A", "%09", "%2", "%%", "a", "Z", "0", "é", "∅",
            "日", "_", "-", ".", "op", "v1 ",
        ];
        let mut seed = 0x5EED_0E13_u64;
        for _ in 0..500 {
            let len = (xorshift(&mut seed) % 24) as usize;
            let mut s = String::new();
            for _ in 0..len {
                s.push_str(palette[(xorshift(&mut seed) as usize) % palette.len()]);
            }
            let esc = escape(&s);
            // Framing safety: no raw separator survives escaping.
            assert!(!esc.contains(' ') && !esc.contains('\n') && !esc.contains('\t'));
            assert_eq!(unescape(&esc).unwrap(), s, "roundtrip failed for {s:?}");
        }
        // And truly arbitrary (possibly invalid-escape-looking) strings
        // built from raw chars still roundtrip.
        for _ in 0..200 {
            let len = (xorshift(&mut seed) % 40) as usize;
            let s: String = (0..len)
                .map(|_| char::from_u32((xorshift(&mut seed) % 0xD7FF) as u32).unwrap_or('x'))
                .collect();
            assert_eq!(unescape(&escape(&s)).unwrap(), s);
        }
    }

    #[test]
    fn corruption_diagnostics_carry_lsn_and_byte_offset() {
        // Two good records, then an unreadable one, then a good one:
        // interior corruption located by last-good LSN and byte offset —
        // the raw line is never echoed back.
        let good = b"op 1 int x 1\nop 2 int x 5\n";
        let mut bytes = good.to_vec();
        bytes.extend_from_slice(b"garbage here\n");
        let damage_at = bytes.len() - b"garbage here\n".len();
        bytes.extend_from_slice(b"op 3 int x 9\n");
        match replay(&bytes) {
            Err(BrokerError::JournalDamaged { lsn, offset, why }) => {
                assert_eq!(lsn, 2, "last LSN known good before the damage");
                assert_eq!(offset as usize, damage_at, "byte offset of the bad record");
                assert!(!why.contains("garbage here"), "no raw-line echo: {why}");
            }
            other => panic!("expected JournalDamaged, got {other:?}"),
        }
    }
}
