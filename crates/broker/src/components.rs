//! Manager components: the Broker layer hosted in the generic runtime
//! environment.
//!
//! §V-A: the runtime environment "is used to generate and execute the
//! appropriate middleware components defined in the model. It does so with
//! a component factory that generates each middleware component based on
//! code templates that are parameterized with metadata from the middleware
//! model. It also provides threads (and the underlying concurrency model)
//! to run the middleware components."
//!
//! [`managers_container`] realizes exactly that: for every `Manager` object
//! of a broker model, the matching code template is instantiated with the
//! object's metadata, yielding a [`Container`] whose components expose the
//! broker over the message bus:
//!
//! * `MainManager` — handles `broker.call` / `broker.event` messages and
//!   emits `broker.result`s;
//! * `StateManager` — handles `broker.setState` (`effect` payload);
//! * `AutonomicManager` — handles `broker.tick`, runs the MAPE cycle, and
//!   re-emits autonomic events as `broker.autonomic` messages;
//! * `PolicyManager` / `ResourceManager` — passive bookkeeping components
//!   (their logic lives inside the interpreted model; the components give
//!   them lifecycle presence and introspection).

use crate::engine::GenericBroker;
use crate::{BrokerError, Result};
use mddsm_meta::model::Model;
use mddsm_runtime::{Component, ComponentFactory, Container, Ctx, Message, Metadata};
use std::sync::{Arc, Mutex};

/// Shared handle to a broker driven by components.
pub type SharedBroker = Arc<Mutex<GenericBroker>>;

/// Wraps a broker for component-based hosting.
pub fn share(broker: GenericBroker) -> SharedBroker {
    Arc::new(Mutex::new(broker))
}

/// Locks the shared broker, surfacing mutex poisoning as a component
/// failure instead of a middleware crash.
fn lock_broker<'a>(
    component: &str,
    broker: &'a SharedBroker,
) -> mddsm_runtime::Result<std::sync::MutexGuard<'a, GenericBroker>> {
    broker
        .lock()
        .map_err(|_| mddsm_runtime::RuntimeError::ComponentFailed {
            component: component.to_owned(),
            reason: "broker mutex poisoned".to_owned(),
        })
}

struct MainManagerComponent {
    name: String,
    broker: SharedBroker,
}

impl Component for MainManagerComponent {
    fn subscriptions(&self) -> Vec<String> {
        vec!["broker.call".into(), "broker.event".into()]
    }

    fn handle(&mut self, msg: &Message, ctx: &mut Ctx) -> mddsm_runtime::Result<()> {
        let op = msg.get("op").unwrap_or_default().to_owned();
        let args: Vec<(String, String)> = msg
            .payload
            .iter()
            .filter(|(k, _)| k.as_str() != "op")
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        let mut broker = lock_broker(&self.name, &self.broker)?;
        let result = if msg.topic == "broker.call" {
            broker.call(&op, &args)
        } else {
            broker.event(&op, &args)
        };
        let mut out = Message::new("broker.result").with("op", op);
        match result {
            Ok(r) => {
                out = out
                    .with("ok", r.outcome.is_ok().to_string())
                    .with("action", r.action)
                    .with("cost_us", r.cost.as_micros().to_string());
            }
            Err(e) => {
                out = out.with("ok", "false").with("error", e.to_string());
            }
        }
        ctx.emit(out);
        Ok(())
    }
}

struct StateManagerComponent {
    broker: SharedBroker,
}

impl Component for StateManagerComponent {
    fn subscriptions(&self) -> Vec<String> {
        vec!["broker.setState".into()]
    }

    fn handle(&mut self, msg: &Message, _ctx: &mut Ctx) -> mddsm_runtime::Result<()> {
        if let Some(effect) = msg.get("effect") {
            let mut broker = lock_broker("StateManager", &self.broker)?;
            broker
                .state_mut()
                .apply_effect(effect)
                .map_err(|e| mddsm_runtime::RuntimeError::BadMetadata(e.to_string()))?;
        }
        Ok(())
    }
}

struct AutonomicManagerComponent {
    broker: SharedBroker,
}

impl Component for AutonomicManagerComponent {
    fn subscriptions(&self) -> Vec<String> {
        vec!["broker.tick".into()]
    }

    fn handle(&mut self, _msg: &Message, ctx: &mut Ctx) -> mddsm_runtime::Result<()> {
        let emitted = {
            let mut broker = lock_broker("AutonomicManager", &self.broker)?;
            broker
                .autonomic_tick()
                .map_err(|e| mddsm_runtime::RuntimeError::BadMetadata(e.to_string()))?
        };
        for topic in emitted {
            ctx.emit(Message::new("broker.autonomic").with("event", topic));
        }
        Ok(())
    }
}

/// A passive manager: present for lifecycle and introspection only.
struct PassiveManagerComponent {
    handled: u64,
}

impl Component for PassiveManagerComponent {
    fn subscriptions(&self) -> Vec<String> {
        Vec::new()
    }
    fn handle(&mut self, _msg: &Message, _ctx: &mut Ctx) -> mddsm_runtime::Result<()> {
        self.handled += 1;
        Ok(())
    }
}

/// The code-template registry for broker managers; every template is
/// parameterized with the manager object's metadata (at minimum its
/// `name` and `__class`).
pub fn broker_component_factory(broker: SharedBroker) -> ComponentFactory {
    let mut factory = ComponentFactory::new();
    let b = broker.clone();
    factory.register("mainManager", move |md: &Metadata| {
        Ok(Box::new(MainManagerComponent {
            name: md.require_str("name")?.to_owned(),
            broker: b.clone(),
        }) as Box<dyn Component>)
    });
    let b = broker.clone();
    factory.register("stateManager", move |_md| {
        Ok(Box::new(StateManagerComponent { broker: b.clone() }) as Box<dyn Component>)
    });
    let b = broker.clone();
    factory.register("autonomicManager", move |_md| {
        Ok(Box::new(AutonomicManagerComponent { broker: b.clone() }) as Box<dyn Component>)
    });
    factory.register("passiveManager", |_md| {
        Ok(Box::new(PassiveManagerComponent { handled: 0 }) as Box<dyn Component>)
    });
    factory
}

/// Instantiates one component per `Manager` object of the broker model and
/// starts them in a [`Container`] — the Fig. 2 generation step for the
/// Broker layer's structure.
pub fn managers_container(model: &Model, broker: SharedBroker) -> Result<Container> {
    let factory = broker_component_factory(broker);
    let mut container = Container::new();
    for (id, obj) in model.iter() {
        let template = match obj.class.as_str() {
            "MainManager" => "mainManager",
            "StateManager" => "stateManager",
            "AutonomicManager" => "autonomicManager",
            "PolicyManager" | "ResourceManager" => "passiveManager",
            _ => continue,
        };
        let metadata = Metadata::from_object(model, id)
            .map_err(|e| BrokerError::InvalidModel(e.to_string()))?;
        let name = model.attr_str(id, "name").unwrap_or(template).to_owned();
        let component = factory
            .instantiate(template, &metadata)
            .map_err(|e| BrokerError::InvalidModel(e.to_string()))?;
        container
            .add(&name, component)
            .map_err(|e| BrokerError::InvalidModel(e.to_string()))?;
    }
    container
        .start_all()
        .map_err(|e| BrokerError::InvalidModel(e.to_string()))?;
    Ok(container)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::BrokerModelBuilder;
    use mddsm_sim::resource::Outcome;
    use mddsm_sim::ResourceHub;

    fn shared() -> (SharedBroker, Model) {
        let mut hub = ResourceHub::new(1);
        hub.register_fn("svc", |op, _| {
            if op == "boom" {
                Outcome::Failed("boom".into())
            } else {
                Outcome::ok()
            }
        });
        let model = BrokerModelBuilder::new("b")
            .call_handler("ping", "ping")
            .action(
                "ping",
                "pong",
                "svc",
                "ping",
                &["x=$x"],
                None,
                &["pings=+1"],
            )
            .autonomic_rule(
                "tooMany",
                "self.pings <> null and self.pings > 1",
                &["set pings 0", "emit cooled"],
            )
            .build();
        let broker = GenericBroker::from_model(&model, hub).unwrap();
        (share(broker), model)
    }

    #[test]
    fn managers_are_generated_from_the_model() {
        let (broker, model) = shared();
        let container = managers_container(&model, broker).unwrap();
        // The standard builder declares all five managers.
        assert_eq!(
            container.names(),
            vec!["main", "state", "policy", "autonomic", "resource"]
        );
    }

    #[test]
    fn calls_flow_through_the_main_manager_component() {
        let (broker, model) = shared();
        let mut container = managers_container(&model, broker.clone()).unwrap();
        container
            .dispatch(
                Message::new("broker.call")
                    .with("op", "ping")
                    .with("x", "1"),
            )
            .unwrap();
        assert_eq!(
            broker.lock().unwrap().hub().command_trace(),
            vec!["svc.ping(x=1)"]
        );
        assert_eq!(broker.lock().unwrap().state().int("pings"), Some(1));
    }

    #[test]
    fn autonomic_component_runs_mape_and_reemits_events() {
        let (broker, model) = shared();
        let mut container = managers_container(&model, broker.clone()).unwrap();
        for _ in 0..2 {
            container
                .dispatch(Message::new("broker.call").with("op", "ping"))
                .unwrap();
        }
        assert_eq!(broker.lock().unwrap().state().int("pings"), Some(2));
        container.dispatch(Message::new("broker.tick")).unwrap();
        assert_eq!(broker.lock().unwrap().state().int("pings"), Some(0));
    }

    #[test]
    fn state_manager_component_applies_effects() {
        let (broker, model) = shared();
        let mut container = managers_container(&model, broker.clone()).unwrap();
        container
            .dispatch(Message::new("broker.setState").with("effect", "mode=relay"))
            .unwrap();
        assert_eq!(broker.lock().unwrap().state().str("mode"), Some("relay"));
        // A malformed effect fails the component (isolated by the container).
        let r = container.dispatch(Message::new("broker.setState").with("effect", "broken"));
        assert!(r.is_err());
    }

    #[test]
    fn lean_models_generate_fewer_components() {
        let (broker, _) = shared();
        let lean = BrokerModelBuilder::lean("tiny")
            .call_handler("h", "op")
            .action("h", "a", "svc", "ping", &[], None, &[])
            .build();
        let container = managers_container(&lean, broker).unwrap();
        assert_eq!(container.names(), vec!["main", "state"]);
    }
}
