//! The Broker-layer metamodel (Fig. 6) and a builder for broker models.
//!
//! A *broker model* is an instance of this metamodel: it defines the
//! managers present in a concrete configuration, the handlers exposed by
//! the main manager, the actions available to each handler (with policy
//! guards and argument mappings), and the autonomic rules. The middleware
//! engineer "models a configuration of the Broker layer by instantiating
//! and appropriately initializing the elements of this metamodel" (§V-A).

use mddsm_meta::metamodel::{DataType, Metamodel, MetamodelBuilder, Multiplicity};
use mddsm_meta::model::{Model, ObjectId};
use mddsm_meta::Value;

/// Name under which the broker metamodel registers.
pub const BROKER_METAMODEL: &str = "mddsm.broker";

/// Builds the Fig. 6 metamodel.
///
/// Class inventory: the abstract `Manager` with its six concrete
/// specializations (`MainManager`, `StateManager`, `PolicyManager`,
/// `AutonomicManager`, `ResourceManager`, `AdmissionManager`), the
/// `Handler`/`Action` pair for call/event dispatch, `Policy` guards, the
/// autonomic triple `Symptom`/`ChangeRequest`/`ChangePlan`,
/// `ResourceBinding`, and the overload-control pair
/// `AdmissionClass`/`BrownoutMode`.
pub fn broker_metamodel() -> Metamodel {
    MetamodelBuilder::new(BROKER_METAMODEL)
        .enumeration("HandlerKind", ["Call", "Event"])
        // Journal-shipping discipline of a `ReplicationManager`: `Async`
        // ships best-effort (one attempt per tick, no delivery guarantee);
        // `AckWindowed` keeps an in-flight window and retransmits until the
        // standby acknowledges, so commit implies replicated.
        .enumeration("ShipMode", ["Async", "AckWindowed"])
        .class("BrokerLayer", |c| {
            c.attr("name", DataType::Str)
                .contains("managers", "Manager", Multiplicity::SOME)
        })
        .class("Manager", |c| {
            c.abstract_class().attr("name", DataType::Str)
        })
        .class("MainManager", |c| {
            c.extends("Manager")
                .contains("handlers", "Handler", Multiplicity::MANY)
                .invariant("has-name", "self.name <> \"\"")
        })
        .class("StateManager", |c| {
            c.extends("Manager")
                // Declared state migrations a live upgrade to this model
                // applies atomically inside its journaled cutover record.
                .contains("migrations", "StateMigration", Multiplicity::MANY)
        })
        .class("PolicyManager", |c| {
            c.extends("Manager")
                .contains("policies", "Policy", Multiplicity::MANY)
        })
        .class("AutonomicManager", |c| {
            c.extends("Manager")
                .contains("symptoms", "Symptom", Multiplicity::MANY)
                .contains("requests", "ChangeRequest", Multiplicity::MANY)
                .contains("plans", "ChangePlan", Multiplicity::MANY)
        })
        .class("ResourceManager", |c| {
            c.extends("Manager")
                .contains("bindings", "ResourceBinding", Multiplicity::MANY)
        })
        .class("AdmissionManager", |c| {
            c.extends("Manager")
                .contains("classes", "AdmissionClass", Multiplicity::MANY)
                .contains("modes", "BrownoutMode", Multiplicity::MANY)
        })
        .class("ReplicationManager", |c| {
            c.extends("Manager")
                // Simulated-network node the hot standby listens on.
                .attr("standby", DataType::Str)
                .attr("mode", DataType::Enum("ShipMode".into()))
                // AckWindowed: max unacknowledged journal records in flight.
                .attr_default("windowRecords", DataType::Int, Value::from(32))
                // AckWindowed: virtual time before an unacked batch is
                // retransmitted (go-back-N from the acked cursor).
                .attr_default("ackTimeoutUs", DataType::Int, Value::from(10_000))
                // Lag (records shipped but unacked) at which the standard
                // replication autonomic rule raises `repl_lag_alert`
                // (0 = no alert).
                .attr_default("lagAlertRecords", DataType::Int, Value::from(0))
        })
        // A replica *set*: N independently-shipped peers with a declared
        // quorum. A journal record is durable once the quorum-th largest
        // per-peer acked LSN reaches it (counting the primary's own copy),
        // so any majority of nodes holds every committed update.
        .class("ReplicaSet", |c| {
            c.extends("Manager")
                // Nodes (replicas + primary) that must hold a record before
                // it commits; 0 = computed majority of the total node count.
                .attr_default("quorum", DataType::Int, Value::from(0))
                .contains("replicas", "ReplicaNode", Multiplicity::SOME)
        })
        // One member of a `ReplicaSet`: the simulated-network node it
        // listens on plus its private shipping discipline — peers may mix
        // `Async` and `AckWindowed` lanes in one set.
        .class("ReplicaNode", |c| {
            c.attr("name", DataType::Str)
                .attr("node", DataType::Str)
                .attr("mode", DataType::Enum("ShipMode".into()))
                .attr_default("windowRecords", DataType::Int, Value::from(32))
                .attr_default("ackTimeoutUs", DataType::Int, Value::from(10_000))
        })
        .class("MonitorManager", |c| {
            c.extends("Manager")
                .contains("monitors", "Monitor", Multiplicity::MANY)
        })
        // An online runtime monitor: the property source is a bare OCL-lite
        // invariant, `always <expr>`, `never <expr> during <expr>`, or
        // `at-most-one <key> per <key>`; the engine compiles it into an
        // incremental in-stream journal monitor at `from_model` time.
        .class("Monitor", |c| {
            c.attr("name", DataType::Str)
                .attr("property", DataType::Str)
        })
        // A declared state migration: when a live upgrade cuts over to a
        // model carrying one, `key` is written to `value` (parsed as an
        // integer when it is one, a string otherwise; an empty value
        // unsets the key) as an ordinary LSN'd op *inside* the journaled
        // cutover record, so migrations are exactly as atomic and
        // replayable as the cutover itself.
        .class("StateMigration", |c| {
            c.attr("name", DataType::Str)
                .attr("key", DataType::Str)
                .attr_default("value", DataType::Str, Value::from(""))
        })
        .class("Handler", |c| {
            c.attr("name", DataType::Str)
                .attr("kind", DataType::Enum("HandlerKind".into()))
                // The call operation / event topic this handler accepts.
                .attr("selector", DataType::Str)
                .reference("actions", "Action", Multiplicity::SOME)
        })
        .class("Action", |c| {
            c.attr("name", DataType::Str)
                // Resource the action drives and the operation it invokes.
                .attr("resource", DataType::Str)
                .attr("operation", DataType::Str)
                // `k=v` argument mappings; `$x` pulls call argument `x`.
                .attr_full("argMapping", DataType::Str, Multiplicity::MANY, Vec::new())
                // Optional guard: name of a Policy that must hold.
                .opt_attr("guard", DataType::Str)
                // State bumps applied after a successful run (`k=+1`/`k=v`).
                .attr_full(
                    "stateEffects",
                    DataType::Str,
                    Multiplicity::MANY,
                    Vec::new(),
                )
                // Resilience: retries with deterministic virtual-time
                // exponential backoff, a per-call timeout budget, a circuit
                // breaker, and a fallback action (all disabled at 0/absent).
                .attr_default("maxRetries", DataType::Int, Value::from(0))
                .attr_default("backoffMs", DataType::Int, Value::from(0))
                .attr_default("timeoutMs", DataType::Int, Value::from(0))
                .attr_default("breakerThreshold", DataType::Int, Value::from(0))
                .attr_default("breakerCooldownMs", DataType::Int, Value::from(0))
                // Name of a sibling action dispatched when this one fails.
                .opt_attr("fallback", DataType::Str)
                // Declared virtual-time cost of one execution, charged
                // against the admission class's token bucket (0 = free).
                .attr_default("costUs", DataType::Int, Value::from(0))
                // Admission class this action's calls are accounted to.
                .opt_attr("admissionClass", DataType::Str)
        })
        .class("Policy", |c| {
            c.attr("name", DataType::Str)
                // OCL-lite expression over the state object (`self`).
                .attr("expression", DataType::Str)
        })
        .class("Symptom", |c| {
            c.attr("name", DataType::Str)
                // OCL-lite condition over the state object.
                .attr("condition", DataType::Str)
        })
        .class("ChangeRequest", |c| {
            c.attr("name", DataType::Str).attr("symptom", DataType::Str)
        })
        .class("ChangePlan", |c| {
            c.attr("name", DataType::Str)
                .attr("request", DataType::Str)
                // Steps: `heal <res>` | `fail <res>` | `degrade <res> <ms>` |
                // `set <key> <value>` | `emit <topic>`.
                .attr_full("steps", DataType::Str, Multiplicity::SOME, Vec::new())
        })
        .class("ResourceBinding", |c| {
            c.attr("name", DataType::Str)
                .attr("resource", DataType::Str)
        })
        .class("AdmissionClass", |c| {
            c.attr("name", DataType::Str)
                // Token bucket: `rateUsPerMs` µs of admitted work refilled
                // per virtual millisecond, capped at `burstUs` (0 = the
                // class is not rate-limited).
                .attr_default("rateUsPerMs", DataType::Int, Value::from(0))
                .attr_default("burstUs", DataType::Int, Value::from(0))
                // Bound on the queueing delay a waiting call may absorb
                // before it is shed (0 = unbounded queue).
                .attr_default("queueBoundUs", DataType::Int, Value::from(0))
                // Default relative deadline for calls that carry none.
                .attr_default("deadlineUs", DataType::Int, Value::from(0))
        })
        .class("BrownoutMode", |c| {
            c.attr("name", DataType::Str)
                // Severity order: higher levels are deeper degradations.
                .attr_default("level", DataType::Int, Value::from(1))
                // Enter when queue delay or the per-tick shed count crosses
                // the enter threshold; exit (with hysteresis) only once both
                // metrics fall back to the exit thresholds. A zero enter
                // threshold disables that trigger.
                .attr_default("enterDelayUs", DataType::Int, Value::from(0))
                .attr_default("exitDelayUs", DataType::Int, Value::from(0))
                .attr_default("enterShed", DataType::Int, Value::from(0))
                .attr_default("exitShed", DataType::Int, Value::from(0))
                // Plan steps run on entering / leaving the mode (same verbs
                // as ChangePlan steps).
                .attr_full("enterSteps", DataType::Str, Multiplicity::MANY, Vec::new())
                .attr_full("exitSteps", DataType::Str, Multiplicity::MANY, Vec::new())
        })
        .build()
        .expect("broker metamodel is well-formed")
}

/// Resilience parameters carried by an `Action` (all model-defined; every
/// field disabled by default so plain actions behave exactly as before).
///
/// Retries and backoff run on *virtual* time: the engine charges the
/// deterministic exponential backoff (`backoff_ms << attempt`) to the
/// call's virtual cost instead of sleeping, so fault campaigns replay
/// bit-for-bit. Circuit-breaker state is kept in the broker's
/// `StateManager` under `breaker_<resource>` keys, observable by OCL-lite
/// policies and autonomic symptoms.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Resilience {
    /// Additional attempts after the first failure (0 = no retry).
    pub max_retries: u32,
    /// Base virtual-time backoff before retry `n`, doubled each attempt.
    pub backoff_ms: u64,
    /// Per-attempt virtual-time budget; slower invocations count as failed
    /// and are charged exactly this budget (0 = no timeout).
    pub timeout_ms: u64,
    /// Consecutive failures that trip the circuit breaker (0 = no breaker).
    pub breaker_threshold: u32,
    /// Virtual time an open breaker waits before allowing a half-open
    /// trial invocation.
    pub breaker_cooldown_ms: u64,
    /// Sibling action (same handler) dispatched when this one fails.
    pub fallback: Option<String>,
}

impl Resilience {
    /// Convenience: retry policy only.
    pub fn retries(max_retries: u32, backoff_ms: u64) -> Self {
        Resilience {
            max_retries,
            backoff_ms,
            ..Resilience::default()
        }
    }

    /// Convenience: circuit breaker only.
    pub fn breaker(threshold: u32, cooldown_ms: u64) -> Self {
        Resilience {
            breaker_threshold: threshold,
            breaker_cooldown_ms: cooldown_ms,
            ..Resilience::default()
        }
    }

    /// Adds a circuit breaker to an existing policy.
    pub fn with_breaker(mut self, threshold: u32, cooldown_ms: u64) -> Self {
        self.breaker_threshold = threshold;
        self.breaker_cooldown_ms = cooldown_ms;
        self
    }

    /// Adds a per-attempt timeout budget.
    pub fn with_timeout(mut self, timeout_ms: u64) -> Self {
        self.timeout_ms = timeout_ms;
        self
    }

    /// Adds a fallback action name.
    pub fn with_fallback(mut self, action: &str) -> Self {
        self.fallback = Some(action.to_owned());
        self
    }
}

/// Convenience builder producing broker models (instances of the Fig. 6
/// metamodel) without manual object wiring.
#[derive(Debug)]
pub struct BrokerModelBuilder {
    model: Model,
    layer: ObjectId,
    main: ObjectId,
    policy_mgr: ObjectId,
    autonomic_mgr: ObjectId,
    resource_mgr: ObjectId,
    state_mgr: ObjectId,
    // Created lazily on the first admission-class or brownout-mode
    // declaration, so models without overload control stay lean.
    admission_mgr: Option<ObjectId>,
    // Created lazily by `replication`, so unreplicated models stay lean.
    replication_mgr: Option<ObjectId>,
    // Created lazily by `replica_set`.
    replica_set_mgr: Option<ObjectId>,
    // Created lazily by `monitor`, so unmonitored models stay lean.
    monitor_mgr: Option<ObjectId>,
}

impl BrokerModelBuilder {
    /// Starts a broker model with the five standard managers.
    pub fn new(name: &str) -> Self {
        let mut model = Model::new(BROKER_METAMODEL);
        let layer = model.create("BrokerLayer");
        model.set_attr(layer, "name", Value::from(name));
        let main = model.create("MainManager");
        model.set_attr(main, "name", Value::from("main"));
        let state = model.create("StateManager");
        model.set_attr(state, "name", Value::from("state"));
        let policy_mgr = model.create("PolicyManager");
        model.set_attr(policy_mgr, "name", Value::from("policy"));
        let autonomic_mgr = model.create("AutonomicManager");
        model.set_attr(autonomic_mgr, "name", Value::from("autonomic"));
        let resource_mgr = model.create("ResourceManager");
        model.set_attr(resource_mgr, "name", Value::from("resource"));
        for m in [main, state, policy_mgr, autonomic_mgr, resource_mgr] {
            model.add_ref(layer, "managers", m);
        }
        BrokerModelBuilder {
            model,
            layer,
            main,
            policy_mgr,
            autonomic_mgr,
            resource_mgr,
            state_mgr: state,
            admission_mgr: None,
            replication_mgr: None,
            replica_set_mgr: None,
            monitor_mgr: None,
        }
    }

    /// Starts a *lean* broker model: main manager only (the Fig. 8 remark
    /// that "leaner configurations … featuring only the strictly required
    /// components" compensate model-interpretation overhead).
    pub fn lean(name: &str) -> Self {
        let mut b = Self::new(name);
        // Drop the optional managers from the layer.
        for mgr in [b.policy_mgr, b.autonomic_mgr, b.resource_mgr] {
            b.model.remove_ref(b.layer, "managers", mgr);
            // `new` created the manager a moment ago; destroying an
            // already-absent object is a no-op rather than a crash.
            let _ = b.model.destroy(mgr, None);
        }
        b
    }

    /// Declares a handler for a call operation; returns `self` for
    /// chaining. Actions are attached by [`BrokerModelBuilder::action`]
    /// using the handler name.
    pub fn call_handler(self, name: &str, selector: &str) -> Self {
        self.handler(name, selector, "Call")
    }

    /// Declares a handler for an event topic.
    pub fn event_handler(self, name: &str, selector: &str) -> Self {
        self.handler(name, selector, "Event")
    }

    fn handler(mut self, name: &str, selector: &str, kind: &str) -> Self {
        let h = self.model.create("Handler");
        self.model.set_attr(h, "name", Value::from(name));
        self.model.set_attr(h, "selector", Value::from(selector));
        self.model
            .set_attr(h, "kind", Value::enumeration("HandlerKind", kind));
        self.model.add_ref(self.main, "handlers", h);
        self
    }

    /// Attaches an action to a handler (by handler name). `arg_mapping`
    /// entries are `k=v` with `$x` reading call argument `x`; `guard`
    /// optionally names a policy; `state_effects` are applied on success.
    #[allow(clippy::too_many_arguments)]
    pub fn action(
        mut self,
        handler: &str,
        name: &str,
        resource: &str,
        operation: &str,
        arg_mapping: &[&str],
        guard: Option<&str>,
        state_effects: &[&str],
    ) -> Self {
        let a = self.model.create("Action");
        self.model.set_attr(a, "name", Value::from(name));
        self.model.set_attr(a, "resource", Value::from(resource));
        self.model.set_attr(a, "operation", Value::from(operation));
        self.model.set_attr_many(
            a,
            "argMapping",
            arg_mapping.iter().map(|s| Value::from(*s)).collect(),
        );
        if let Some(g) = guard {
            self.model.set_attr(a, "guard", Value::from(g));
        }
        self.model.set_attr_many(
            a,
            "stateEffects",
            state_effects.iter().map(|s| Value::from(*s)).collect(),
        );
        let h = self.find_handler(handler);
        self.model.add_ref(h, "actions", a);
        self
    }

    /// Attaches a resilient action: like [`BrokerModelBuilder::action`]
    /// but with model-defined retry/timeout/breaker/fallback parameters.
    #[allow(clippy::too_many_arguments)]
    pub fn resilient_action(
        self,
        handler: &str,
        name: &str,
        resource: &str,
        operation: &str,
        arg_mapping: &[&str],
        guard: Option<&str>,
        state_effects: &[&str],
        resilience: &Resilience,
    ) -> Self {
        let mut b = self.action(
            handler,
            name,
            resource,
            operation,
            arg_mapping,
            guard,
            state_effects,
        );
        let h = b.find_handler(handler);
        // `action` appended the new action to this handler a moment ago.
        if let Some(a) = b.model.refs(h, "actions").last().copied() {
            b.model.set_attr(
                a,
                "maxRetries",
                Value::from(i64::from(resilience.max_retries)),
            );
            b.model
                .set_attr(a, "backoffMs", Value::from(resilience.backoff_ms as i64));
            b.model
                .set_attr(a, "timeoutMs", Value::from(resilience.timeout_ms as i64));
            b.model.set_attr(
                a,
                "breakerThreshold",
                Value::from(i64::from(resilience.breaker_threshold)),
            );
            b.model.set_attr(
                a,
                "breakerCooldownMs",
                Value::from(resilience.breaker_cooldown_ms as i64),
            );
            if let Some(f) = &resilience.fallback {
                b.model.set_attr(a, "fallback", Value::from(f.as_str()));
            }
        }
        b
    }

    /// Declares a policy (OCL-lite expression over the state object).
    pub fn policy(mut self, name: &str, expression: &str) -> Self {
        let p = self.model.create("Policy");
        self.model.set_attr(p, "name", Value::from(name));
        self.model
            .set_attr(p, "expression", Value::from(expression));
        self.model.add_ref(self.policy_mgr, "policies", p);
        self
    }

    /// Declares an autonomic rule: symptom condition → change request →
    /// plan steps.
    pub fn autonomic_rule(mut self, name: &str, condition: &str, steps: &[&str]) -> Self {
        let s = self.model.create("Symptom");
        self.model.set_attr(s, "name", Value::from(name));
        self.model.set_attr(s, "condition", Value::from(condition));
        self.model.add_ref(self.autonomic_mgr, "symptoms", s);
        let r = self.model.create("ChangeRequest");
        self.model
            .set_attr(r, "name", Value::from(format!("{name}-request")));
        self.model.set_attr(r, "symptom", Value::from(name));
        self.model.add_ref(self.autonomic_mgr, "requests", r);
        let p = self.model.create("ChangePlan");
        self.model
            .set_attr(p, "name", Value::from(format!("{name}-plan")));
        self.model
            .set_attr(p, "request", Value::from(format!("{name}-request")));
        self.model
            .set_attr_many(p, "steps", steps.iter().map(|s| Value::from(*s)).collect());
        self.model.add_ref(self.autonomic_mgr, "plans", p);
        self
    }

    fn ensure_admission_mgr(&mut self) -> ObjectId {
        if let Some(m) = self.admission_mgr {
            return m;
        }
        let m = self.model.create("AdmissionManager");
        self.model.set_attr(m, "name", Value::from("admission"));
        self.model.add_ref(self.layer, "managers", m);
        self.admission_mgr = Some(m);
        m
    }

    /// Declares an admission class: a token bucket of `rate_us_per_ms` µs
    /// of work per virtual millisecond (burst `burst_us`), a queueing-delay
    /// bound, and a default relative deadline. All limits live in the
    /// broker's `StateManager` under `adm_<class>_*` keys at runtime, so
    /// autonomic plans can retune them with `set` steps.
    pub fn admission_class(
        mut self,
        name: &str,
        rate_us_per_ms: u64,
        burst_us: u64,
        queue_bound_us: u64,
        deadline_us: u64,
    ) -> Self {
        let mgr = self.ensure_admission_mgr();
        let c = self.model.create("AdmissionClass");
        self.model.set_attr(c, "name", Value::from(name));
        self.model
            .set_attr(c, "rateUsPerMs", Value::from(rate_us_per_ms as i64));
        self.model
            .set_attr(c, "burstUs", Value::from(burst_us as i64));
        self.model
            .set_attr(c, "queueBoundUs", Value::from(queue_bound_us as i64));
        self.model
            .set_attr(c, "deadlineUs", Value::from(deadline_us as i64));
        self.model.add_ref(mgr, "classes", c);
        self
    }

    /// Declares a brownout (degraded-service) mode. The broker enters the
    /// mode when `adm_queue_delay_us >= enter_delay_us` or the per-tick
    /// shed count reaches `enter_shed` (zero thresholds never trigger),
    /// runs `enter_steps`, and — with hysteresis — leaves it only once the
    /// delay is back at or below `exit_delay_us` *and* the tick sheds at or
    /// below `exit_shed`, running `exit_steps`.
    #[allow(clippy::too_many_arguments)]
    pub fn brownout_mode(
        mut self,
        name: &str,
        level: i64,
        enter_delay_us: u64,
        exit_delay_us: u64,
        enter_shed: u64,
        exit_shed: u64,
        enter_steps: &[&str],
        exit_steps: &[&str],
    ) -> Self {
        let mgr = self.ensure_admission_mgr();
        let m = self.model.create("BrownoutMode");
        self.model.set_attr(m, "name", Value::from(name));
        self.model.set_attr(m, "level", Value::from(level));
        self.model
            .set_attr(m, "enterDelayUs", Value::from(enter_delay_us as i64));
        self.model
            .set_attr(m, "exitDelayUs", Value::from(exit_delay_us as i64));
        self.model
            .set_attr(m, "enterShed", Value::from(enter_shed as i64));
        self.model
            .set_attr(m, "exitShed", Value::from(exit_shed as i64));
        self.model.set_attr_many(
            m,
            "enterSteps",
            enter_steps.iter().map(|s| Value::from(*s)).collect(),
        );
        self.model.set_attr_many(
            m,
            "exitSteps",
            exit_steps.iter().map(|s| Value::from(*s)).collect(),
        );
        self.model.add_ref(mgr, "modes", m);
        self
    }

    /// Annotates the most recently attached action of `handler` with a
    /// declared per-execution cost (µs of work) and the admission class it
    /// is accounted to.
    pub fn with_admission(mut self, handler: &str, cost_us: u64, class: &str) -> Self {
        let h = self.find_handler(handler);
        if let Some(a) = self.model.refs(h, "actions").last().copied() {
            self.model
                .set_attr(a, "costUs", Value::from(cost_us as i64));
            self.model.set_attr(a, "admissionClass", Value::from(class));
        }
        self
    }

    /// Declares journal replication to a hot standby: the engine's journal
    /// is shipped over the simulated network to node `standby` and applied
    /// there record-by-record. `mode` is `"Async"` (best-effort) or
    /// `"AckWindowed"` (at most `window_records` unacked records in flight,
    /// retransmitted after `ack_timeout_us` of virtual time).
    /// `lag_alert_records` arms the standard `repl_lag_alert` autonomic
    /// symptom (0 disables it).
    pub fn replication(
        mut self,
        standby: &str,
        mode: &str,
        window_records: u64,
        ack_timeout_us: u64,
        lag_alert_records: u64,
    ) -> Self {
        let m = match self.replication_mgr {
            Some(m) => m,
            None => {
                let m = self.model.create("ReplicationManager");
                self.model.set_attr(m, "name", Value::from("replication"));
                self.model.add_ref(self.layer, "managers", m);
                self.replication_mgr = Some(m);
                m
            }
        };
        self.model.set_attr(m, "standby", Value::from(standby));
        self.model
            .set_attr(m, "mode", Value::enumeration("ShipMode", mode));
        self.model
            .set_attr(m, "windowRecords", Value::from(window_records as i64));
        self.model
            .set_attr(m, "ackTimeoutUs", Value::from(ack_timeout_us as i64));
        self.model
            .set_attr(m, "lagAlertRecords", Value::from(lag_alert_records as i64));
        self
    }

    /// Declares a quorum-replicated replica set: each `(node, mode,
    /// window_records, ack_timeout_us)` entry adds one peer with its own
    /// shipping lane (`mode` is `"Async"` or `"AckWindowed"`, per-lane
    /// window and retransmit timeout). `quorum` is the number of nodes —
    /// counting the primary itself — that must hold a journal record before
    /// it commits; 0 asks the interpreter to compute a majority of the
    /// total node count. Re-declaring replaces the membership wholesale on
    /// the same manager instead of adding a second set.
    pub fn replica_set(mut self, quorum: u64, peers: &[(&str, &str, u64, u64)]) -> Self {
        let m = match self.replica_set_mgr {
            Some(m) => m,
            None => {
                let m = self.model.create("ReplicaSet");
                self.model.set_attr(m, "name", Value::from("replicaset"));
                self.model.add_ref(self.layer, "managers", m);
                self.replica_set_mgr = Some(m);
                m
            }
        };
        self.model.set_attr(m, "quorum", Value::from(quorum as i64));
        for old in self.model.refs(m, "replicas").to_vec() {
            self.model.remove_ref(m, "replicas", old);
            let _ = self.model.destroy(old, None);
        }
        for (node, mode, window_records, ack_timeout_us) in peers {
            let r = self.model.create("ReplicaNode");
            self.model.set_attr(r, "name", Value::from(*node));
            self.model.set_attr(r, "node", Value::from(*node));
            self.model
                .set_attr(r, "mode", Value::enumeration("ShipMode", *mode));
            self.model
                .set_attr(r, "windowRecords", Value::from(*window_records as i64));
            self.model
                .set_attr(r, "ackTimeoutUs", Value::from(*ack_timeout_us as i64));
            self.model.add_ref(m, "replicas", r);
        }
        self
    }

    /// Declares an online runtime monitor. `property` is a bare OCL-lite
    /// invariant (`self.opens >= 0`), an `always <expr>`, a
    /// `never <expr> during <expr>`, or an `at-most-one <key> per <key>`
    /// temporal property; the engine compiles it at `from_model` time into
    /// an incremental in-stream journal monitor that trips *before* a
    /// violating command becomes externally visible.
    pub fn monitor(mut self, name: &str, property: &str) -> Self {
        let mgr = match self.monitor_mgr {
            Some(m) => m,
            None => {
                let m = self.model.create("MonitorManager");
                self.model.set_attr(m, "name", Value::from("monitor"));
                self.model.add_ref(self.layer, "managers", m);
                self.monitor_mgr = Some(m);
                m
            }
        };
        let mon = self.model.create("Monitor");
        self.model.set_attr(mon, "name", Value::from(name));
        self.model.set_attr(mon, "property", Value::from(property));
        self.model.add_ref(mgr, "monitors", mon);
        self
    }

    /// Declares a state migration a live upgrade to this model applies
    /// atomically at cutover: `key` is written to `value` (parsed as an
    /// integer when it is one; an empty value unsets the key) inside the
    /// journaled `Upgrade` record.
    pub fn migration(mut self, name: &str, key: &str, value: &str) -> Self {
        let m = self.model.create("StateMigration");
        self.model.set_attr(m, "name", Value::from(name));
        self.model.set_attr(m, "key", Value::from(key));
        self.model.set_attr(m, "value", Value::from(value));
        self.model.add_ref(self.state_mgr, "migrations", m);
        self
    }

    /// Binds a logical resource name used by actions to a hub resource.
    pub fn bind_resource(mut self, name: &str, resource: &str) -> Self {
        let b = self.model.create("ResourceBinding");
        self.model.set_attr(b, "name", Value::from(name));
        self.model.set_attr(b, "resource", Value::from(resource));
        self.model.add_ref(self.resource_mgr, "bindings", b);
        self
    }

    fn find_handler(&self, name: &str) -> ObjectId {
        self.model
            .refs(self.main, "handlers")
            .iter()
            .copied()
            .find(|h| self.model.attr_str(*h, "name") == Some(name))
            .unwrap_or_else(|| panic!("handler `{name}` not declared"))
    }

    /// Finishes and returns the broker model, enforcing build-time
    /// hygiene: duplicate component/monitor names and domain state
    /// effects writing the reserved `mon_*` monitor memory are refused
    /// with a typed [`BrokerError::InvalidModel`](crate::BrokerError).
    /// (Historically both were accepted silently and only surfaced as
    /// runtime misbehavior.)
    pub fn try_build(self) -> crate::Result<Model> {
        let report = crate::analysis::hygiene(&self.model);
        if let Some(first) = report.errors().next() {
            return Err(crate::BrokerError::InvalidModel(format!(
                "build hygiene: {first}"
            )));
        }
        Ok(self.model)
    }

    /// Finishes and returns the broker model.
    ///
    /// # Panics
    ///
    /// Panics on the hygiene defects [`BrokerModelBuilder::try_build`]
    /// reports — a duplicate name or a reserved-`mon_*` state effect in a
    /// hand-built model is a programming error at the construction site.
    pub fn build(self) -> Model {
        match self.try_build() {
            Ok(m) => m,
            Err(e) => panic!("{e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mddsm_meta::conformance;

    #[test]
    fn metamodel_is_well_formed() {
        let mm = broker_metamodel();
        assert_eq!(mm.name(), BROKER_METAMODEL);
        assert!(mm.class("MainManager").is_some());
        assert!(mm.is_subclass_of("AutonomicManager", "Manager"));
        assert!(mm.class("Manager").unwrap().is_abstract);
    }

    #[test]
    fn built_models_conform() {
        let mm = broker_metamodel();
        let model = BrokerModelBuilder::new("ncb")
            .call_handler("open", "openSession")
            .action(
                "open",
                "openDirect",
                "media",
                "open",
                &["peer=$peer"],
                None,
                &["opens=+1"],
            )
            .policy("preferDirect", "self.mode = \"direct\"")
            .autonomic_rule(
                "mediaFlaky",
                "self.failures_media > 2",
                &["heal media", "set mode direct"],
            )
            .bind_resource("media", "sim.media")
            .build();
        conformance::check(&model, &mm).unwrap();
    }

    #[test]
    fn try_build_refuses_duplicate_names() {
        // Regression: duplicate handler names used to build silently and
        // only misbehave at dispatch time (the second handler shadowed).
        let err = BrokerModelBuilder::new("dup")
            .call_handler("open", "openSession")
            .call_handler("open", "openOther")
            .try_build()
            .unwrap_err();
        assert!(matches!(err, crate::BrokerError::InvalidModel(_)));
        assert!(err.to_string().contains("duplicate-name"), "{err}");

        let err = BrokerModelBuilder::new("dup")
            .monitor("m", "self.a >= 0")
            .monitor("m", "self.b >= 0")
            .try_build()
            .unwrap_err();
        assert!(err.to_string().contains("duplicate-name"), "{err}");
    }

    #[test]
    fn try_build_refuses_reserved_monitor_keys() {
        // Regression: a domain state effect writing `mon_*` could forge or
        // clear runtime-monitor trip latches.
        let err = BrokerModelBuilder::new("forge")
            .call_handler("h", "op")
            .action("h", "a", "r", "o", &[], None, &["mon_trips=+1"])
            .try_build()
            .unwrap_err();
        assert!(matches!(err, crate::BrokerError::InvalidModel(_)));
        assert!(err.to_string().contains("reserved-key"), "{err}");

        let err = BrokerModelBuilder::new("forge2")
            .autonomic_rule("s", "self.x > 0", &["set mon_trips 0"])
            .try_build()
            .unwrap_err();
        assert!(err.to_string().contains("reserved-key"), "{err}");
    }

    #[test]
    #[should_panic(expected = "duplicate-name")]
    fn build_panics_on_hygiene_defects() {
        let _ = BrokerModelBuilder::new("dup")
            .call_handler("open", "a")
            .call_handler("open", "b")
            .build();
    }

    #[test]
    fn lean_models_conform_with_fewer_managers() {
        let mm = broker_metamodel();
        let model = BrokerModelBuilder::lean("tiny")
            .call_handler("h", "op")
            .action("h", "a", "r", "o", &[], None, &[])
            .build();
        conformance::check(&model, &mm).unwrap();
        assert_eq!(model.all_of_class("PolicyManager").len(), 0);
        assert_eq!(model.all_of_class("MainManager").len(), 1);
    }

    #[test]
    fn admission_models_conform_and_the_manager_is_lazy() {
        let mm = broker_metamodel();
        // No admission declarations -> no AdmissionManager instance.
        let plain = BrokerModelBuilder::new("p").build();
        assert_eq!(plain.all_of_class("AdmissionManager").len(), 0);

        let model = BrokerModelBuilder::new("ac")
            .call_handler("h", "op")
            .action("h", "a", "r", "o", &[], None, &[])
            .with_admission("h", 700, "interactive")
            .admission_class("interactive", 800, 4_000, 50_000, 100_000)
            .brownout_mode(
                "lite",
                1,
                20_000,
                5_000,
                3,
                0,
                &["set svc_mode lite"],
                &["set svc_mode full"],
            )
            .build();
        conformance::check(&model, &mm).unwrap();
        assert_eq!(model.all_of_class("AdmissionManager").len(), 1);
        assert_eq!(model.all_of_class("AdmissionClass").len(), 1);
        assert_eq!(model.all_of_class("BrownoutMode").len(), 1);
    }

    #[test]
    fn replicated_models_conform_and_the_manager_is_lazy() {
        let mm = broker_metamodel();
        let plain = BrokerModelBuilder::new("p").build();
        assert_eq!(plain.all_of_class("ReplicationManager").len(), 0);

        let model = BrokerModelBuilder::new("rep")
            .replication("b", "AckWindowed", 16, 8_000, 24)
            .build();
        conformance::check(&model, &mm).unwrap();
        let mgrs = model.all_of_class("ReplicationManager");
        assert_eq!(mgrs.len(), 1);
        assert_eq!(model.attr_str(mgrs[0], "standby"), Some("b"));

        // Re-declaring retunes the same manager instead of adding another.
        let retuned = BrokerModelBuilder::new("rep2")
            .replication("b", "Async", 16, 8_000, 0)
            .replication("c", "AckWindowed", 8, 4_000, 12)
            .build();
        conformance::check(&retuned, &mm).unwrap();
        let mgrs = retuned.all_of_class("ReplicationManager");
        assert_eq!(mgrs.len(), 1);
        assert_eq!(retuned.attr_str(mgrs[0], "standby"), Some("c"));
    }

    #[test]
    fn replica_set_models_conform_and_redeclaring_replaces_membership() {
        let mm = broker_metamodel();
        let plain = BrokerModelBuilder::new("p").build();
        assert_eq!(plain.all_of_class("ReplicaSet").len(), 0);

        let model = BrokerModelBuilder::new("rs")
            .replica_set(
                2,
                &[
                    ("b", "AckWindowed", 16, 8_000),
                    ("c", "Async", 32, 10_000),
                ],
            )
            .build();
        conformance::check(&model, &mm).unwrap();
        let sets = model.all_of_class("ReplicaSet");
        assert_eq!(sets.len(), 1);
        assert_eq!(model.attr_int(sets[0], "quorum"), Some(2));
        assert_eq!(model.refs(sets[0], "replicas").len(), 2);

        // Re-declaring replaces the membership on the same manager; no
        // orphaned ReplicaNode objects survive the swap.
        let retuned = BrokerModelBuilder::new("rs2")
            .replica_set(0, &[("b", "Async", 32, 10_000)])
            .replica_set(
                3,
                &[
                    ("b", "AckWindowed", 16, 8_000),
                    ("c", "AckWindowed", 16, 8_000),
                    ("d", "AckWindowed", 16, 8_000),
                    ("e", "AckWindowed", 16, 8_000),
                ],
            )
            .build();
        conformance::check(&retuned, &mm).unwrap();
        assert_eq!(retuned.all_of_class("ReplicaSet").len(), 1);
        assert_eq!(retuned.all_of_class("ReplicaNode").len(), 4);
        let set = retuned.all_of_class("ReplicaSet")[0];
        assert_eq!(retuned.attr_int(set, "quorum"), Some(3));
        let nodes: Vec<&str> = retuned
            .refs(set, "replicas")
            .iter()
            .filter_map(|&r| retuned.attr_str(r, "node"))
            .collect();
        assert_eq!(nodes, ["b", "c", "d", "e"]);
    }

    #[test]
    fn monitor_builder_declares_conforming_monitors() {
        let mm = broker_metamodel();
        let plain = BrokerModelBuilder::new("p").build();
        assert_eq!(plain.all_of_class("Monitor").len(), 0);

        let model = BrokerModelBuilder::new("mon")
            .monitor("nonneg", "always self.opens >= 0")
            .monitor("onePrimary", "at-most-one primary per epoch")
            .build();
        conformance::check(&model, &mm).unwrap();
        let monitors = model.all_of_class("Monitor");
        assert_eq!(monitors.len(), 2);
        let mut pairs: Vec<(String, String)> = monitors
            .iter()
            .map(|&m| {
                (
                    model.attr_str(m, "name").unwrap().to_owned(),
                    model.attr_str(m, "property").unwrap().to_owned(),
                )
            })
            .collect();
        pairs.sort();
        assert_eq!(pairs[0].0, "nonneg");
        assert_eq!(pairs[0].1, "always self.opens >= 0");
        assert_eq!(
            pairs[1],
            ("onePrimary".into(), "at-most-one primary per epoch".into())
        );
        // One MonitorManager holds both.
        assert_eq!(model.all_of_class("MonitorManager").len(), 1);
    }

    #[test]
    #[should_panic(expected = "handler `nope` not declared")]
    fn action_on_unknown_handler_panics() {
        let _ = BrokerModelBuilder::new("x").action("nope", "a", "r", "o", &[], None, &[]);
    }

    #[test]
    fn nonconforming_model_detected() {
        let mm = broker_metamodel();
        let mut model = BrokerModelBuilder::new("x").build();
        // Handler with a bogus enum literal.
        let h = model.create("Handler");
        model.set_attr(h, "name", Value::from("h"));
        model.set_attr(h, "selector", Value::from("s"));
        model.set_attr(h, "kind", Value::enumeration("HandlerKind", "Bogus"));
        assert!(conformance::check(&model, &mm).is_err());
    }
}
