//! Replicated models@runtime: journal shipping to a hot standby.
//!
//! The primary's write-ahead journal (see [`crate::journal`]) already
//! captures every runtime-model mutation, so replication is journal
//! shipping: a [`Replicator`] on the primary streams journal lines over
//! the simulated [`Network`] to a [`Standby`] on another node, which
//! applies each record into its own [`StateManager`] *and* keeps a
//! byte-for-byte mirror of the journal — promotion is then just the
//! normal crash-recovery path ([`GenericBroker::recover`]) run over the
//! mirrored bytes.
//!
//! Shipping is go-back-N with a cumulative ack: the standby acknowledges
//! the count of contiguous lines received, the primary retransmits from
//! that cursor after an ack timeout. Two model-declared disciplines
//! ([`ShipMode`]) share the machinery:
//!
//! * `Async` — ship everything pending each tick, best effort. The
//!   primary commits locally without waiting, so records not yet
//!   acknowledged at failover are lost.
//! * `AckWindowed` — at most `window_records` unacknowledged lines in
//!   flight; the caller gates commit on [`Replicator::synced`], so a
//!   committed update is by construction on the standby.
//!
//! Split brain is prevented by *epoch fencing*: promotion appends a
//! journaled epoch record, and the standby (or the promoted primary)
//! refuses shipped records from an older epoch with the typed
//! [`BrokerError::StaleEpoch`]. A healed stale primary is reconciled by
//! diffing the two journals and replaying the authoritative suffix
//! through recovery ([`reconcile`]).

use crate::engine::{GenericBroker, RecoveryReport};
use crate::journal::{self, CommandKind, JournalRecord};
use crate::monitor::{MonitorSet, MonitorTrip};
use crate::state::StateManager;
use crate::{BrokerError, Result};
use mddsm_meta::model::Model;
use mddsm_sim::net::{Network, SendOutcome};
use mddsm_sim::resource::ResourceHub;
use mddsm_sim::{SimDuration, SimTime};
use std::collections::{BTreeMap, VecDeque};

/// Journal-shipping discipline (the `ShipMode` enumeration of the
/// Fig. 6 metamodel extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShipMode {
    /// Best-effort: ship everything pending, commit without waiting.
    Async,
    /// Windowed with retransmission: commit implies replicated.
    AckWindowed,
}

/// Compiled replication parameters of a broker model's
/// `ReplicationManager` (all model-defined).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicationConfig {
    /// Simulated-network node the standby listens on.
    pub standby_node: String,
    /// Shipping discipline.
    pub mode: ShipMode,
    /// `AckWindowed`: max unacknowledged journal lines in flight.
    pub window_records: u64,
    /// Virtual time before an unacked batch is retransmitted.
    pub ack_timeout: SimDuration,
    /// Lag at which the standard autonomic rule alerts (0 = off).
    pub lag_alert_records: u64,
}

impl ReplicationConfig {
    /// Compiles the `ReplicationManager` of a broker model; `None` when
    /// the model declares no replication.
    pub fn from_model(model: &Model) -> Result<Option<Self>> {
        let Some(&mgr) = model.all_of_class("ReplicationManager").first() else {
            return Ok(None);
        };
        let standby_node = model
            .attr_str(mgr, "standby")
            .ok_or_else(|| {
                BrokerError::InvalidModel("ReplicationManager needs a standby node".into())
            })?
            .to_owned();
        let mode = match model.attr(mgr, "mode").and_then(|v| v.as_enum_literal()) {
            Some("Async") => ShipMode::Async,
            Some("AckWindowed") => ShipMode::AckWindowed,
            other => {
                return Err(BrokerError::InvalidModel(format!(
                    "ReplicationManager has bad mode {other:?}"
                )))
            }
        };
        let int = |name: &str, default: i64| model.attr_int(mgr, name).unwrap_or(default).max(0);
        Ok(Some(ReplicationConfig {
            standby_node,
            mode,
            window_records: int("windowRecords", 32) as u64,
            ack_timeout: SimDuration::from_micros(int("ackTimeoutUs", 10_000) as u64),
            lag_alert_records: int("lagAlertRecords", 0) as u64,
        }))
    }
}

/// What one [`Replicator::tick`] did.
#[derive(Debug, Clone, Default)]
pub struct ShipReport {
    /// Journal lines attempted on the wire this tick.
    pub shipped: u64,
    /// Lines newly covered by the standby's cumulative ack.
    pub newly_acked: u64,
    /// Attempts that re-sent a line already shipped before (go-back-N).
    pub retransmitted: u64,
    /// Virtual link time both legs consumed (the caller charges it).
    pub latency: SimDuration,
    /// Set when the receiver fenced us: we shipped under a stale epoch.
    pub fenced: Option<BrokerError>,
}

/// The primary-side shipping engine. Reads new lines from the primary's
/// journal bytes, keeps the in-flight window, retransmits on ack
/// timeout, and exposes its health OCL-addressably through a small
/// (non-journaled) metrics [`StateManager`]:
///
/// | key | meaning |
/// |---|---|
/// | `repl_lag` | journal lines enqueued but not yet acked |
/// | `repl_acked_lsn` | newest state LSN known applied on the standby |
/// | `repl_epoch` | epoch the replicator currently ships under |
/// | `repl_retransmits` | ack-timeout go-backs so far |
/// | `repl_fenced` | times a receiver refused us as stale |
///
/// [`crate::autonomic::replication_rules`] are written over these keys.
#[derive(Debug)]
pub struct Replicator {
    cfg: ReplicationConfig,
    node: String,
    epoch: u64,
    /// Bytes of the primary journal already ingested into the outbox.
    read_offset: usize,
    /// Unacked lines: `(seq, state LSN the line commits, framed line)`.
    outbox: VecDeque<(u64, Option<u64>, String)>,
    next_seq: u64,
    acked_seq: u64,
    /// Lines below this were attempted since the last go-back.
    shipped_high: u64,
    /// High-water mark of every attempt ever (detects retransmissions).
    ever_shipped: u64,
    last_ship: Option<SimTime>,
    acked_lsn: u64,
    retransmit_events: u64,
    fenced_count: u64,
    metrics: StateManager,
}

impl Replicator {
    /// Creates a replicator for a primary living on network node `node`.
    pub fn new(cfg: ReplicationConfig, node: &str) -> Self {
        let mut metrics = StateManager::new();
        metrics.set_int("repl_lag", 0);
        metrics.set_int("repl_acked_lsn", 0);
        metrics.set_int("repl_epoch", 1);
        metrics.set_int("repl_retransmits", 0);
        metrics.set_int("repl_fenced", 0);
        Replicator {
            cfg,
            node: node.to_owned(),
            epoch: 1,
            read_offset: 0,
            outbox: VecDeque::new(),
            next_seq: 0,
            acked_seq: 0,
            shipped_high: 0,
            ever_shipped: 0,
            last_ship: None,
            acked_lsn: 0,
            retransmit_events: 0,
            fenced_count: 0,
            metrics,
        }
    }

    /// Compiles the model's `ReplicationManager` and builds the
    /// replicator; `None` when the model declares no replication.
    pub fn from_model(model: &Model, node: &str) -> Result<Option<Self>> {
        Ok(ReplicationConfig::from_model(model)?.map(|cfg| Self::new(cfg, node)))
    }

    /// The compiled configuration.
    pub fn config(&self) -> &ReplicationConfig {
        &self.cfg
    }

    /// Journal lines enqueued but not yet acknowledged.
    pub fn lag(&self) -> u64 {
        self.next_seq - self.acked_seq
    }

    /// `true` once every ingested journal line is acknowledged.
    pub fn synced(&self) -> bool {
        self.lag() == 0
    }

    /// Newest state LSN known applied on the standby.
    pub fn acked_lsn(&self) -> u64 {
        self.acked_lsn
    }

    /// Ack-timeout go-back events so far.
    pub fn retransmits(&self) -> u64 {
        self.retransmit_events
    }

    /// The OCL-addressable metrics model (see the type docs for keys).
    pub fn metrics(&self) -> &StateManager {
        &self.metrics
    }

    /// Mutable metrics access — the autonomic manager ticks its
    /// replication rules against this state.
    pub fn metrics_mut(&mut self) -> &mut StateManager {
        &mut self.metrics
    }

    /// One shipping cycle at virtual instant `now`, under fencing epoch
    /// `epoch` (the primary's [`GenericBroker::epoch`]): ingests new
    /// journal bytes, goes back to the acked cursor when the ack timeout
    /// expired, ships the window, and processes synchronous acks.
    ///
    /// Corrupt journal lines surface as errors; being *fenced* by the
    /// receiver is reported in-band ([`ShipReport::fenced`]) because the
    /// replicator itself is healthy — its primary is just stale.
    pub fn tick(
        &mut self,
        now: SimTime,
        epoch: u64,
        net: &Network,
        journal_bytes: &[u8],
        standby: &mut Standby,
    ) -> Result<ShipReport> {
        self.epoch = epoch;
        self.ingest(journal_bytes)?;
        let mut report = ShipReport::default();

        // Ack timeout: go back to the cumulative-ack cursor.
        if self.acked_seq < self.shipped_high {
            if let Some(t) = self.last_ship {
                if now.since(t) >= self.cfg.ack_timeout {
                    self.shipped_high = self.acked_seq;
                    self.retransmit_events += 1;
                    self.metrics
                        .set_int("repl_retransmits", self.retransmit_events as i64);
                }
            }
        }

        let window_end = match self.cfg.mode {
            ShipMode::Async => self.next_seq,
            ShipMode::AckWindowed => self.acked_seq + self.cfg.window_records,
        }
        .min(self.next_seq);

        let batch: Vec<(u64, String)> = self
            .outbox
            .iter()
            .filter(|(seq, _, _)| *seq >= self.shipped_high && *seq < window_end)
            .map(|(seq, _, line)| (*seq, line.clone()))
            .collect();

        for (seq, line) in batch {
            if seq < self.ever_shipped {
                report.retransmitted += 1;
            }
            self.shipped_high = seq + 1;
            self.ever_shipped = self.ever_shipped.max(self.shipped_high);
            self.last_ship = Some(now);
            report.shipped += 1;
            let SendOutcome::Scheduled(out) = net.transmit(&self.node, &self.cfg.standby_node)
            else {
                // Data leg dropped: the rest of the batch would arrive as
                // a gap and be refused anyway — wait for the ack timeout.
                break;
            };
            report.latency = report.latency.saturating_add(out);
            match standby.receive(seq, &line, self.epoch) {
                Err(e @ BrokerError::StaleEpoch { .. }) => {
                    self.fenced_count += 1;
                    self.metrics
                        .set_int("repl_fenced", self.fenced_count as i64);
                    report.fenced = Some(e);
                    break;
                }
                Err(e) => return Err(e),
                Ok(received) => {
                    // Ack leg: the cumulative ack only counts when it
                    // makes it back.
                    if let SendOutcome::Scheduled(back) =
                        net.transmit(&self.cfg.standby_node, &self.node)
                    {
                        report.latency = report.latency.saturating_add(back);
                        if received > self.acked_seq {
                            report.newly_acked += received - self.acked_seq;
                            self.advance_ack(received);
                        }
                    }
                }
            }
        }

        self.metrics.set_int("repl_lag", self.lag() as i64);
        self.metrics
            .set_int("repl_acked_lsn", self.acked_lsn as i64);
        self.metrics.set_int("repl_epoch", self.epoch as i64);
        Ok(report)
    }

    /// Drops journal history the standby has acknowledged:
    /// [`GenericBroker::truncate_journal_to`] at the acked LSN, with the
    /// replicator's read cursor shifted to match the rewritten bytes.
    /// Returns the bytes reclaimed.
    pub fn truncate_primary(&mut self, broker: &mut GenericBroker) -> usize {
        let reclaimed = broker.truncate_journal_to(self.acked_lsn);
        // The cut prefix was fully ingested (it is acked), so the cursor
        // shifts left by exactly the reclaimed byte count.
        self.read_offset = self.read_offset.saturating_sub(reclaimed);
        reclaimed
    }

    fn advance_ack(&mut self, received: u64) {
        while let Some((seq, lsn, _)) = self.outbox.front() {
            if *seq >= received {
                break;
            }
            if let Some(lsn) = lsn {
                self.acked_lsn = self.acked_lsn.max(*lsn);
            }
            self.outbox.pop_front();
        }
        self.acked_seq = received;
    }

    /// Ingests complete journal lines appended since the last tick.
    fn ingest(&mut self, journal_bytes: &[u8]) -> Result<()> {
        while let Some(nl) = journal_bytes[self.read_offset..]
            .iter()
            .position(|&b| b == b'\n')
        {
            let end = self.read_offset + nl;
            let line = std::str::from_utf8(&journal_bytes[self.read_offset..end])
                .map_err(|e| BrokerError::RecoveryDiverged(format!("journal is not UTF-8: {e}")))?
                .to_owned();
            self.read_offset = end + 1;
            if line.is_empty() {
                continue;
            }
            let lsn = match journal::parse_line(&line)? {
                JournalRecord::Op(op) => Some(op.lsn()),
                JournalRecord::OpCoalesced { op, .. } => Some(op.lsn()),
                JournalRecord::Upgrade { ops, .. } => ops.last().map(|op| op.lsn()),
                JournalRecord::Snapshot { state, .. } => Some(state.version),
                _ => None,
            };
            self.outbox.push_back((self.next_seq, lsn, line));
            self.next_seq += 1;
        }
        Ok(())
    }
}

/// One member of a model-defined replica set: the node it listens on and
/// its private shipping lane parameters (peers may mix disciplines).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaPeer {
    /// Simulated-network node the replica listens on.
    pub node: String,
    /// Shipping discipline of this peer's lane.
    pub mode: ShipMode,
    /// `AckWindowed`: max unacknowledged journal lines in flight.
    pub window_records: u64,
    /// Virtual time before this lane's unacked batch is retransmitted.
    pub ack_timeout: SimDuration,
}

/// Compiled parameters of a broker model's `ReplicaSet` component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaSetConfig {
    /// Nodes — counting the primary itself — that must hold a journal
    /// record before it is quorum-committed.
    pub quorum: u64,
    /// The peers, in model order.
    pub peers: Vec<ReplicaPeer>,
}

impl ReplicaSetConfig {
    /// Compiles the `ReplicaSet` of a broker model; `None` when the model
    /// declares no replica set. A declared quorum of 0 computes a
    /// majority of the total node count (peers + primary); an explicit
    /// quorum outside `1..=total` or a duplicate peer node is refused as
    /// an invalid model.
    pub fn from_model(model: &Model) -> Result<Option<Self>> {
        let Some(&mgr) = model.all_of_class("ReplicaSet").first() else {
            return Ok(None);
        };
        let mut peers = Vec::new();
        let mut seen = std::collections::BTreeSet::new();
        for &r in model.refs(mgr, "replicas") {
            let node = model
                .attr_str(r, "node")
                .ok_or_else(|| {
                    BrokerError::InvalidModel("ReplicaNode needs a node name".into())
                })?
                .to_owned();
            if !seen.insert(node.clone()) {
                return Err(BrokerError::InvalidModel(format!(
                    "ReplicaSet declares node `{node}` twice"
                )));
            }
            let mode = match model.attr(r, "mode").and_then(|v| v.as_enum_literal()) {
                Some("Async") => ShipMode::Async,
                Some("AckWindowed") => ShipMode::AckWindowed,
                other => {
                    return Err(BrokerError::InvalidModel(format!(
                        "ReplicaNode `{node}` has bad mode {other:?}"
                    )))
                }
            };
            let int = |name: &str, default: i64| model.attr_int(r, name).unwrap_or(default).max(0);
            peers.push(ReplicaPeer {
                node,
                mode,
                window_records: int("windowRecords", 32) as u64,
                ack_timeout: SimDuration::from_micros(int("ackTimeoutUs", 10_000) as u64),
            });
        }
        if peers.is_empty() {
            return Err(BrokerError::InvalidModel(
                "ReplicaSet needs at least one replica".into(),
            ));
        }
        let total = peers.len() as u64 + 1;
        let declared = model.attr_int(mgr, "quorum").unwrap_or(0).max(0) as u64;
        let quorum = if declared == 0 { total / 2 + 1 } else { declared };
        if quorum < 1 || quorum > total {
            return Err(BrokerError::InvalidModel(format!(
                "ReplicaSet quorum {quorum} is outside 1..={total}"
            )));
        }
        Ok(Some(ReplicaSetConfig { quorum, peers }))
    }
}

/// Per-peer shipping lane of a [`QuorumReplicator`]: the go-back-N
/// cursors of one peer, independent of every other lane.
#[derive(Debug)]
struct PeerLane {
    cfg: ReplicaPeer,
    acked_seq: u64,
    shipped_high: u64,
    ever_shipped: u64,
    last_ship: Option<SimTime>,
    acked_lsn: u64,
    retransmit_events: u64,
    fenced_count: u64,
}

impl PeerLane {
    fn new(cfg: ReplicaPeer) -> Self {
        PeerLane {
            cfg,
            acked_seq: 0,
            shipped_high: 0,
            ever_shipped: 0,
            last_ship: None,
            acked_lsn: 0,
            retransmit_events: 0,
            fenced_count: 0,
        }
    }
}

/// What one [`QuorumReplicator::tick`] did, summed over every lane.
#[derive(Debug, Clone, Default)]
pub struct QuorumShipReport {
    /// Journal lines attempted on any wire this tick.
    pub shipped: u64,
    /// Lines newly covered by some peer's cumulative ack.
    pub newly_acked: u64,
    /// Attempts that re-sent a line a lane had shipped before.
    pub retransmitted: u64,
    /// Virtual link time all legs consumed (the caller charges it).
    pub latency: SimDuration,
    /// Lanes whose receiver fenced us this tick (stale epoch).
    pub fenced: u64,
    /// Quorum commit LSN after the tick.
    pub commit_lsn: u64,
}

/// The primary-side engine of a model-defined replica *set*: ships the
/// journal go-back-N to each peer over its own independent lane and
/// advances a **quorum commit LSN** — the quorum-th largest of the
/// per-node durable LSNs, counting the primary's own journal head. A
/// record at or below the commit LSN is held by at least `quorum` nodes,
/// so it survives any minority failure.
///
/// Unlike [`Replicator`], the outbox keeps the *full* shipped history
/// (lines are never popped on ack), so a peer that lost its mirror can be
/// re-shipped from sequence 0 with [`QuorumReplicator::reset_peer`].
///
/// Health is OCL-addressable through the metrics [`StateManager`]:
///
/// | key | meaning |
/// |---|---|
/// | `repl_commit_lsn` | quorum commit LSN |
/// | `repl_quorum` | declared quorum (nodes, counting the primary) |
/// | `repl_peers` | peer count |
/// | `repl_lag` | journal lines enqueued but unacked, summed over lanes |
/// | `repl_epoch` | epoch the replicator currently ships under |
/// | `repl_retransmits` | ack-timeout go-backs, summed over lanes |
/// | `repl_fenced` | times any receiver refused us as stale |
#[derive(Debug)]
pub struct QuorumReplicator {
    cfg: ReplicaSetConfig,
    node: String,
    epoch: u64,
    /// Bytes of the primary journal already ingested into the outbox.
    read_offset: usize,
    /// Full shipped history: `outbox[seq] = (seq, state LSN, framed
    /// line)` — indexed by sequence number, never trimmed.
    outbox: Vec<(u64, Option<u64>, String)>,
    next_seq: u64,
    /// Newest state LSN the primary's own journal holds.
    head_lsn: u64,
    lanes: Vec<PeerLane>,
    /// Monotone quorum commit point.
    commit_lsn: u64,
    metrics: StateManager,
}

impl QuorumReplicator {
    /// Creates a quorum replicator for a primary on network node `node`.
    pub fn new(cfg: ReplicaSetConfig, node: &str) -> Self {
        let mut metrics = StateManager::new();
        metrics.set_int("repl_commit_lsn", 0);
        metrics.set_int("repl_quorum", cfg.quorum as i64);
        metrics.set_int("repl_peers", cfg.peers.len() as i64);
        metrics.set_int("repl_lag", 0);
        metrics.set_int("repl_epoch", 1);
        metrics.set_int("repl_retransmits", 0);
        metrics.set_int("repl_fenced", 0);
        let lanes = cfg.peers.iter().cloned().map(PeerLane::new).collect();
        QuorumReplicator {
            cfg,
            node: node.to_owned(),
            epoch: 1,
            read_offset: 0,
            outbox: Vec::new(),
            next_seq: 0,
            head_lsn: 0,
            lanes,
            commit_lsn: 0,
            metrics,
        }
    }

    /// Compiles the model's `ReplicaSet` and builds the replicator;
    /// `None` when the model declares no replica set.
    pub fn from_model(model: &Model, node: &str) -> Result<Option<Self>> {
        Ok(ReplicaSetConfig::from_model(model)?.map(|cfg| Self::new(cfg, node)))
    }

    /// The compiled configuration.
    pub fn config(&self) -> &ReplicaSetConfig {
        &self.cfg
    }

    /// Declared quorum (nodes, counting the primary).
    pub fn quorum(&self) -> u64 {
        self.cfg.quorum
    }

    /// The quorum commit LSN: every state mutation at or below it is held
    /// by at least `quorum` nodes. Monotone.
    pub fn commit_lsn(&self) -> u64 {
        self.commit_lsn
    }

    /// Journal lines enqueued but unacked, summed over every lane.
    pub fn lag(&self) -> u64 {
        self.lanes
            .iter()
            .map(|l| self.next_seq.saturating_sub(l.acked_seq))
            .sum()
    }

    /// `true` once *every* peer acknowledged every ingested line.
    pub fn synced(&self) -> bool {
        self.lanes.iter().all(|l| l.acked_seq >= self.next_seq)
    }

    /// `true` once enough peers acknowledged everything that the whole
    /// journal is quorum-committed (the primary counts as one holder).
    pub fn quorum_synced(&self) -> bool {
        let holders = 1 + self
            .lanes
            .iter()
            .filter(|l| l.acked_seq >= self.next_seq)
            .count() as u64;
        holders >= self.cfg.quorum
    }

    /// Newest state LSN known applied on `node` (0 for unknown peers).
    pub fn acked_lsn(&self, node: &str) -> u64 {
        self.lanes
            .iter()
            .find(|l| l.cfg.node == node)
            .map_or(0, |l| l.acked_lsn)
    }

    /// Ack-timeout go-back events, summed over every lane.
    pub fn retransmits(&self) -> u64 {
        self.lanes.iter().map(|l| l.retransmit_events).sum()
    }

    /// Times any receiver refused this primary as stale.
    pub fn fenced(&self) -> u64 {
        self.lanes.iter().map(|l| l.fenced_count).sum()
    }

    /// Peer nodes, in model order.
    pub fn peer_nodes(&self) -> Vec<&str> {
        self.lanes.iter().map(|l| l.cfg.node.as_str()).collect()
    }

    /// The OCL-addressable metrics model (see the type docs for keys).
    pub fn metrics(&self) -> &StateManager {
        &self.metrics
    }

    /// Mutable metrics access — the autonomic manager ticks its
    /// replication rules against this state.
    pub fn metrics_mut(&mut self) -> &mut StateManager {
        &mut self.metrics
    }

    /// Rewinds a peer's lane to sequence 0 so the full retained history
    /// is re-shipped — the revival path for a replica that lost its
    /// mirror. Returns `false` for an unknown node. The commit LSN is
    /// monotone and unaffected by the rewind.
    pub fn reset_peer(&mut self, node: &str) -> bool {
        match self.lanes.iter_mut().find(|l| l.cfg.node == node) {
            Some(lane) => {
                lane.acked_seq = 0;
                lane.shipped_high = 0;
                lane.last_ship = None;
                lane.acked_lsn = 0;
                true
            }
            None => false,
        }
    }

    /// Adds (or replaces) a peer lane — the rejoin path for a healed
    /// ex-primary entering the set as a replica. The new lane starts at
    /// sequence 0; pair with a standby rebuilt from a current mirror
    /// ([`Standby::from_mirror`]) or let the re-ack sync the cursor.
    pub fn add_peer(&mut self, cfg: ReplicaPeer) {
        self.lanes.retain(|l| l.cfg.node != cfg.node);
        self.cfg.peers.retain(|p| p.node != cfg.node);
        self.cfg.peers.push(cfg.clone());
        self.lanes.push(PeerLane::new(cfg));
        self.metrics
            .set_int("repl_peers", self.cfg.peers.len() as i64);
    }

    /// One shipping cycle at virtual instant `now` under fencing epoch
    /// `epoch`: ingests new journal bytes, then runs each lane's
    /// go-back-N independently — ack timeout, window, wire legs, and
    /// cumulative ack per peer — and advances the quorum commit LSN.
    ///
    /// `peers` holds the standbys currently reachable *in-process*; a
    /// lane whose node has no standby in the slice is simply skipped
    /// (the node is down — its lane retries next tick). A lane fenced by
    /// its receiver is counted and **does not** stop the other lanes.
    pub fn tick(
        &mut self,
        now: SimTime,
        epoch: u64,
        net: &Network,
        journal_bytes: &[u8],
        peers: &mut [&mut Standby],
    ) -> Result<QuorumShipReport> {
        self.epoch = epoch;
        self.ingest(journal_bytes)?;
        let mut report = QuorumShipReport::default();

        for i in 0..self.lanes.len() {
            let peer_node = self.lanes[i].cfg.node.clone();
            let Some(standby) = peers.iter_mut().find(|s| s.node() == peer_node) else {
                continue;
            };

            let (from, window_end) = {
                let lane = &mut self.lanes[i];
                // Ack timeout: go back to this lane's cumulative cursor.
                if lane.acked_seq < lane.shipped_high {
                    if let Some(t) = lane.last_ship {
                        if now.since(t) >= lane.cfg.ack_timeout {
                            lane.shipped_high = lane.acked_seq;
                            lane.retransmit_events += 1;
                        }
                    }
                }
                let end = match lane.cfg.mode {
                    ShipMode::Async => self.next_seq,
                    ShipMode::AckWindowed => lane.acked_seq + lane.cfg.window_records,
                }
                .min(self.next_seq);
                (lane.shipped_high, end)
            };

            let batch: Vec<(u64, String)> = self
                .outbox
                .iter()
                .filter(|(seq, _, _)| *seq >= from && *seq < window_end)
                .map(|(seq, _, line)| (*seq, line.clone()))
                .collect();

            for (seq, line) in batch {
                {
                    let lane = &mut self.lanes[i];
                    if seq < lane.ever_shipped {
                        report.retransmitted += 1;
                    }
                    lane.shipped_high = seq + 1;
                    lane.ever_shipped = lane.ever_shipped.max(lane.shipped_high);
                    lane.last_ship = Some(now);
                }
                report.shipped += 1;
                let SendOutcome::Scheduled(out) = net.transmit(&self.node, &peer_node) else {
                    // Data leg dropped: the rest of this lane's batch
                    // would arrive as a gap — wait for the ack timeout.
                    break;
                };
                report.latency = report.latency.saturating_add(out);
                match standby.receive(seq, &line, self.epoch) {
                    Err(BrokerError::StaleEpoch { .. }) => {
                        self.lanes[i].fenced_count += 1;
                        report.fenced += 1;
                        break;
                    }
                    Err(e) => return Err(e),
                    Ok(received) => {
                        if let SendOutcome::Scheduled(back) =
                            net.transmit(&peer_node, &self.node)
                        {
                            report.latency = report.latency.saturating_add(back);
                            // A survivor of an earlier primary can re-ack
                            // a cursor past this stream's head; cap it.
                            let received = received.min(self.next_seq);
                            let prev = self.lanes[i].acked_seq;
                            if received > prev {
                                report.newly_acked += received - prev;
                                let mut lsn_max = self.lanes[i].acked_lsn;
                                for s in prev..received {
                                    if let Some(lsn) = self.outbox[s as usize].1 {
                                        lsn_max = lsn_max.max(lsn);
                                    }
                                }
                                let lane = &mut self.lanes[i];
                                lane.acked_lsn = lsn_max;
                                lane.acked_seq = received;
                            }
                        }
                    }
                }
            }
        }

        self.update_commit();
        report.commit_lsn = self.commit_lsn;
        self.metrics.set_int("repl_lag", self.lag() as i64);
        self.metrics
            .set_int("repl_commit_lsn", self.commit_lsn as i64);
        self.metrics.set_int("repl_epoch", self.epoch as i64);
        self.metrics
            .set_int("repl_retransmits", self.retransmits() as i64);
        self.metrics.set_int("repl_fenced", self.fenced() as i64);
        Ok(report)
    }

    /// Drops journal history below the **quorum commit point** — never
    /// below merely-acked LSNs a minority holds:
    /// [`GenericBroker::truncate_journal_to`] at the commit LSN, with the
    /// read cursor shifted to match the rewritten bytes. Returns the
    /// bytes reclaimed.
    pub fn truncate_primary(&mut self, broker: &mut GenericBroker) -> usize {
        let reclaimed = broker.truncate_journal_to(self.commit_lsn);
        self.read_offset = self.read_offset.saturating_sub(reclaimed);
        reclaimed
    }

    /// Recomputes the commit LSN: the quorum-th largest of the per-node
    /// durable LSNs (each lane's acked LSN, plus the primary's own
    /// journal head), kept monotone.
    fn update_commit(&mut self) {
        let mut lsns: Vec<u64> = self.lanes.iter().map(|l| l.acked_lsn).collect();
        lsns.push(self.head_lsn);
        lsns.sort_unstable_by(|a, b| b.cmp(a));
        let q = self.cfg.quorum as usize;
        if q >= 1 && q <= lsns.len() {
            self.commit_lsn = self.commit_lsn.max(lsns[q - 1]);
        }
    }

    /// Ingests complete journal lines appended since the last tick.
    fn ingest(&mut self, journal_bytes: &[u8]) -> Result<()> {
        while let Some(nl) = journal_bytes[self.read_offset..]
            .iter()
            .position(|&b| b == b'\n')
        {
            let end = self.read_offset + nl;
            let line = std::str::from_utf8(&journal_bytes[self.read_offset..end])
                .map_err(|e| BrokerError::RecoveryDiverged(format!("journal is not UTF-8: {e}")))?
                .to_owned();
            self.read_offset = end + 1;
            if line.is_empty() {
                continue;
            }
            let lsn = match journal::parse_line(&line)? {
                JournalRecord::Op(op) => Some(op.lsn()),
                JournalRecord::OpCoalesced { op, .. } => Some(op.lsn()),
                JournalRecord::Upgrade { ops, .. } => ops.last().map(|op| op.lsn()),
                JournalRecord::Snapshot { state, .. } => Some(state.version),
                _ => None,
            };
            if let Some(lsn) = lsn {
                self.head_lsn = self.head_lsn.max(lsn);
            }
            self.outbox.push((self.next_seq, lsn, line));
            self.next_seq += 1;
        }
        Ok(())
    }
}

/// The hot standby: applies shipped journal records into its own runtime
/// model as they arrive and mirrors the journal bytes, so promotion is
/// the ordinary recovery path over the mirror. Tracks the fencing epoch
/// and refuses records shipped under an older one.
#[derive(Debug)]
pub struct Standby {
    node: String,
    bytes: Vec<u8>,
    received: u64,
    epoch: u64,
    state: StateManager,
    clock_us: u64,
    calls: u64,
    events: u64,
    /// Monitors evaluated against every applied record; `None` until
    /// [`Standby::arm_monitors`].
    monitors: Option<MonitorSet>,
    /// Observer-side monitor memory. The mirror must stay byte-identical
    /// to the primary's journal, so observation writes its latches and
    /// `at-most-one` cells here, never into the mirrored state.
    monitor_memory: BTreeMap<String, String>,
    monitor_trips: Vec<MonitorTrip>,
    /// Runtime-model version the newest shipped `Upgrade` record put
    /// live on the primary (1 until one arrives) — so failover
    /// mid-upgrade promotes under one consistent version.
    model_version: u64,
}

impl Standby {
    /// Creates an empty standby on network node `node` (epoch 1, like a
    /// fresh primary).
    pub fn new(node: &str) -> Self {
        Standby {
            node: node.to_owned(),
            bytes: Vec::new(),
            received: 0,
            epoch: 1,
            state: StateManager::new(),
            clock_us: 0,
            calls: 0,
            events: 0,
            monitors: None,
            monitor_memory: BTreeMap::new(),
            monitor_trips: Vec::new(),
            model_version: 1,
        }
    }

    /// Rebuilds a standby on node `node` by replaying a journal mirror
    /// line-by-line through the ordinary [`Standby::receive`] path, then
    /// fencing it at `epoch`. This is how a revived replica, a
    /// re-parented survivor, or a healed ex-primary re-enters a replica
    /// set: the rebuilt standby's mirror is byte-identical to `bytes` and
    /// its applied state matches a recovery over them.
    pub fn from_mirror(node: &str, bytes: &[u8], epoch: u64) -> Result<Self> {
        let mut sb = Standby::new(node);
        for raw in bytes.split_inclusive(|&b| b == b'\n') {
            let body = match raw.last() {
                Some(b'\n') => &raw[..raw.len() - 1],
                _ => raw,
            };
            if body.is_empty() {
                continue;
            }
            let line = std::str::from_utf8(body).map_err(|e| {
                BrokerError::RecoveryDiverged(format!("mirror is not UTF-8: {e}"))
            })?;
            // Pass the standby's *current* epoch so embedded Epoch
            // records (which raise it) keep the replay admissible.
            let (seq, e) = (sb.received, sb.epoch);
            sb.receive(seq, line, e)?;
        }
        sb.fence(epoch);
        Ok(sb)
    }

    /// Runtime-model version the primary most recently shipped a cutover
    /// for (1 until any upgrade arrives).
    pub fn model_version(&self) -> u64 {
        self.model_version
    }

    /// Arms in-stream monitors over the apply path: from here on every
    /// shipped record is checked as it is applied, with the same compiled
    /// monitors (and therefore the same verdicts) as the primary — an
    /// independent observer that catches a divergent primary even when
    /// the primary's own monitoring is off or compromised.
    pub fn arm_monitors(&mut self, monitors: MonitorSet) {
        self.monitors = Some(monitors);
    }

    /// Trips this standby observed while applying shipped records.
    pub fn monitor_trips(&self) -> &[MonitorTrip] {
        &self.monitor_trips
    }

    /// Clears the observer's tripped latches (after the primary repaired
    /// or rolled back the violation) so monitoring resumes.
    pub fn clear_monitor_trips(&mut self) {
        if let Some(m) = &self.monitors {
            m.clear_observed_trips(&mut self.monitor_memory);
        }
        self.monitor_trips.clear();
    }

    /// The network node this standby listens on.
    pub fn node(&self) -> &str {
        &self.node
    }

    /// Contiguous journal lines received so far (the cumulative ack).
    pub fn received(&self) -> u64 {
        self.received
    }

    /// Fencing epoch this standby currently honors.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The mirrored journal bytes.
    pub fn journal_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The standby's live runtime model (continuously applied).
    pub fn state(&self) -> &StateManager {
        &self.state
    }

    /// Newest state LSN applied into the standby's runtime model.
    pub fn applied_lsn(&self) -> u64 {
        self.state.version()
    }

    /// Raises the standby's fencing epoch without promoting it — used by
    /// a promoted broker that keeps its `Standby` shell around purely to
    /// fence reconnecting stale primaries.
    pub fn fence(&mut self, epoch: u64) {
        self.epoch = self.epoch.max(epoch);
    }

    /// Receives one shipped journal line. Enforces, in order:
    ///
    /// 1. **Epoch fence** — a line shipped under `epoch` older than ours
    ///    is refused with [`BrokerError::StaleEpoch`] (split-brain
    ///    protection); a *newer* epoch is adopted.
    /// 2. **Sequencing** — a duplicate (`seq` below the cursor) is
    ///    dropped, a gap (`seq` above it) is not applied; both just
    ///    re-ack the cursor so the primary goes back.
    /// 3. **Application** — the record is parsed and applied into the
    ///    standby's runtime model (LSN-checked like recovery), and the
    ///    line is appended to the journal mirror.
    ///
    /// Returns the cumulative ack: the contiguous line count received.
    pub fn receive(&mut self, seq: u64, line: &str, epoch: u64) -> Result<u64> {
        if epoch < self.epoch {
            return Err(BrokerError::StaleEpoch {
                got: epoch,
                current: self.epoch,
            });
        }
        self.epoch = epoch;
        if seq != self.received {
            return Ok(self.received);
        }
        // The key the record wrote, for the in-stream monitor check below
        // (`None` = nothing watched changed; a snapshot restore can change
        // anything, so it re-checks the full watched set).
        let mut dirty_key: Option<String> = None;
        let mut dirty_all = false;
        match journal::parse_line(line)? {
            JournalRecord::Op(op) => {
                self.state.apply_op(&op)?;
                dirty_key = Some(op.key().to_owned());
            }
            JournalRecord::OpCoalesced { first_lsn, op } => {
                self.state.apply_coalesced(first_lsn, &op)?;
                dirty_key = Some(op.key().to_owned());
            }
            JournalRecord::Command { clock_us, kind, .. } => {
                self.clock_us = clock_us;
                match kind {
                    CommandKind::Call => self.calls += 1,
                    CommandKind::Event => self.events += 1,
                }
            }
            JournalRecord::Clock { clock_us } => self.clock_us = clock_us,
            JournalRecord::Epoch { epoch } => self.epoch = self.epoch.max(epoch),
            JournalRecord::Snapshot {
                state,
                clock_us,
                calls,
                events,
            } => {
                self.state.restore(&state);
                self.clock_us = clock_us;
                self.calls = calls;
                self.events = events;
                dirty_all = true;
            }
            JournalRecord::Upgrade { version, ops, .. } => {
                // A cutover: apply the embedded migration ops (LSN-checked
                // like any op) and adopt the shipped model version, so a
                // promotion after this point serves the new model. The
                // migrations may touch any watched key, so the monitor
                // check below re-scans the full watched set.
                for op in &ops {
                    self.state.apply_op(op)?;
                }
                self.model_version = version;
                dirty_all = true;
            }
            JournalRecord::Note { .. } => {}
        }
        if let Some(monitors) = &self.monitors {
            if dirty_key.is_some() || dirty_all {
                let watched;
                let dirty: Vec<&str> = match &dirty_key {
                    Some(k) => vec![k.as_str()],
                    None => {
                        watched = monitors.watched_keys();
                        watched.iter().map(String::as_str).collect()
                    }
                };
                let trips = monitors.check_observed(&self.state, &dirty, &mut self.monitor_memory);
                self.monitor_trips.extend(trips);
            }
        }
        self.bytes.extend_from_slice(line.as_bytes());
        self.bytes.push(b'\n');
        self.received += 1;
        Ok(self.received)
    }

    /// Promotes the standby to primary under fencing epoch `epoch`: runs
    /// the ordinary recovery path over the journal mirror, then journals
    /// the epoch fence on the new primary so stale-epoch refusal survives
    /// *its* crashes too. The standby keeps its raised epoch and can stay
    /// behind as a fence for reconnecting stale primaries.
    pub fn promote(
        &mut self,
        epoch: u64,
        model: &Model,
        hub: ResourceHub,
        invariants: &[&str],
    ) -> Result<(GenericBroker, RecoveryReport)> {
        let (mut broker, report) = GenericBroker::recover(model, hub, &self.bytes, invariants)?;
        self.epoch = self.epoch.max(epoch);
        broker.adopt_epoch(self.epoch);
        Ok((broker, report))
    }
}

/// What [`reconcile`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReconcileReport {
    /// Journal lines the two histories share (longest common prefix).
    pub common_lines: usize,
    /// Stale-side suffix lines discarded (writes a fenced primary made
    /// after the histories diverged — the "committed but lost" set when
    /// the stale side had acked them to clients).
    pub discarded_stale_lines: usize,
    /// Authoritative-side suffix lines replayed past the common prefix.
    pub replayed_lines: usize,
    /// Node whose journal served as the authoritative history.
    pub source_node: String,
}

/// Reconciles a healed stale primary with the authoritative history: the
/// journals are diffed line-by-line to find the divergence point, the
/// stale suffix is discarded, and a fresh broker is rebuilt from the
/// *authoritative* journal through the normal recovery path (snapshot +
/// LSN-checked replay + invariants). The rebuilt runtime model is
/// cross-checked against an independent replay with
/// [`StateManager::first_divergence`] before it is handed back.
/// `source_node` names the node the authoritative journal came from and
/// is reported verbatim in [`ReconcileReport::source_node`].
pub fn reconcile(
    authoritative: &[u8],
    stale: &[u8],
    source_node: &str,
    model: &Model,
    hub: ResourceHub,
    invariants: &[&str],
) -> Result<(GenericBroker, ReconcileReport)> {
    let a_lines: Vec<&[u8]> = authoritative.split_inclusive(|&b| b == b'\n').collect();
    let s_lines: Vec<&[u8]> = stale.split_inclusive(|&b| b == b'\n').collect();
    let common = a_lines
        .iter()
        .zip(&s_lines)
        .take_while(|(a, s)| a == s)
        .count();
    let (broker, _report) = GenericBroker::recover(model, hub, authoritative, invariants)?;
    let independent = journal::replay(authoritative)?;
    if let Some(d) = broker.state().first_divergence(&independent.state) {
        return Err(BrokerError::RecoveryDiverged(format!(
            "reconciled model disagrees with journal replay: {d}"
        )));
    }
    Ok((
        broker,
        ReconcileReport {
            common_lines: common,
            discarded_stale_lines: s_lines.len() - common,
            replayed_lines: a_lines.len() - common,
            source_node: source_node.to_owned(),
        },
    ))
}

/// What [`repair_journal`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalRepair {
    /// Journal lines the damaged local copy and the mirror share (longest
    /// common prefix).
    pub common_lines: usize,
    /// Mirror lines fetched past the common prefix — the anti-entropy
    /// transfer that replaced the damaged region.
    pub fetched_lines: usize,
    /// Readable local lines past the mirror's head that were kept (writes
    /// appended after the last ship, which the mirror never saw).
    pub kept_tail_lines: usize,
    /// Size of the healed journal (bytes).
    pub healed_bytes: usize,
    /// Node whose mirror served as the repair source.
    pub source_node: String,
}

/// Anti-entropy repair of a damaged journal from a standby's mirror.
///
/// The mirror is a byte-for-byte copy of every shipped line, so healing
/// is the [`reconcile`] diff run the other way around: the damaged local
/// journal and the mirror are diffed line-by-line to the divergence
/// point, the mirror is taken as authoritative from there (it holds the
/// records the disk gave back wrong — the missing LSN range), and any
/// *readable* local lines beyond the mirror's head (appends the primary
/// made after its last ship) are kept, stopping at the first unreadable
/// one — that suffix is the torn garbage the tail policy would drop
/// anyway. The healed journal must then replay cleanly end-to-end
/// ([`journal::replay`]); if it does not — the damage extends past what
/// the mirror covers — the error propagates and the caller falls back to
/// quarantine.
pub fn repair_journal(local: &[u8], standby: &Standby) -> Result<(Vec<u8>, JournalRepair)> {
    let mirror = standby.journal_bytes();
    if mirror.is_empty() {
        return Err(BrokerError::RecoveryDiverged(
            "anti-entropy repair needs a standby mirror, but the mirror is empty".to_owned(),
        ));
    }
    let l_lines: Vec<&[u8]> = local.split_inclusive(|&b| b == b'\n').collect();
    let m_lines: Vec<&[u8]> = mirror.split_inclusive(|&b| b == b'\n').collect();
    let common = m_lines
        .iter()
        .zip(&l_lines)
        .take_while(|(m, l)| m == l)
        .count();
    let mut healed = mirror.to_vec();
    let mut kept_tail_lines = 0usize;
    for raw in l_lines.iter().skip(m_lines.len()) {
        let Some(line) = raw
            .strip_suffix(b"\n")
            .and_then(|b| std::str::from_utf8(b).ok())
        else {
            break;
        };
        if journal::parse_line(line).is_err() {
            break;
        }
        healed.extend_from_slice(raw);
        kept_tail_lines += 1;
    }
    let replayed = journal::replay(&healed)?;
    if replayed.torn.is_some() {
        return Err(BrokerError::RecoveryDiverged(
            "anti-entropy repair left a torn tail — mirror does not cover the damage".to_owned(),
        ));
    }
    let report = JournalRepair {
        common_lines: common,
        fetched_lines: m_lines.len() - common,
        kept_tail_lines,
        healed_bytes: healed.len(),
        source_node: standby.node().to_owned(),
    };
    Ok((healed, report))
}

/// Recovery with the anti-entropy fallback: ordinary
/// [`GenericBroker::recover`] when the journal is clean or merely torn
/// *and* the standby holds nothing beyond it; otherwise the journal is
/// first healed from the mirror with [`repair_journal`] and recovery runs
/// over the healed bytes. Repair triggers on:
///
/// * interior [`BrokerError::JournalDamaged`] — bit-rot the mirror can
///   replace;
/// * a torn tail that cut below what the standby already applied
///   (acknowledged records must never be lost);
/// * a mirror that extends past the local journal's intact prefix — a
///   *clean* tail loss (unsynced writes dropped by a power cut) leaves no
///   torn marker and may drop only command records (which carry no LSN),
///   so it is only visible by comparing against the mirror.
///
/// The repair provenance is journaled as a `Note` on the recovered
/// instance.
pub fn recover_with_anti_entropy(
    model: &Model,
    hub: ResourceHub,
    journal_bytes: &[u8],
    invariants: &[&str],
    standby: &Standby,
) -> Result<(GenericBroker, RecoveryReport, Option<JournalRepair>)> {
    let mirror = standby.journal_bytes();
    let needs_repair = match journal::replay(journal_bytes) {
        Err(BrokerError::JournalDamaged { .. }) => true,
        Err(e) => return Err(e),
        Ok(r) => {
            let intact = match &r.torn {
                Some(t) => &journal_bytes[..t.offset as usize],
                None => journal_bytes,
            };
            (mirror.len() > intact.len() && mirror.starts_with(intact))
                || r.state.version() < standby.applied_lsn()
        }
    };
    if !needs_repair {
        let (broker, report) = GenericBroker::recover(model, hub, journal_bytes, invariants)?;
        return Ok((broker, report, None));
    }
    let (healed, repair) = repair_journal(journal_bytes, standby)?;
    let (mut broker, report) = GenericBroker::recover(model, hub, &healed, invariants)?;
    broker.journal_note(&format!(
        "anti-entropy repair from standby {}: {} common line(s), {} fetched, {} kept from tail",
        standby.node(),
        repair.common_lines,
        repair.fetched_lines,
        repair.kept_tail_lines
    ));
    Ok((broker, report, Some(repair)))
}

/// Picks the freshest anti-entropy source from a replica set: the
/// standby with the largest applied LSN, ties broken by the longest
/// mirror (most lines received), then by slice order — deterministic, so
/// every node polls the same schedule to the same answer. `None` for an
/// empty candidate slice.
pub fn select_repair_source<'a>(candidates: &[&'a Standby]) -> Option<&'a Standby> {
    let mut best: Option<&'a Standby> = None;
    for &c in candidates {
        let better = match best {
            None => true,
            Some(b) => {
                c.applied_lsn() > b.applied_lsn()
                    || (c.applied_lsn() == b.applied_lsn() && c.received() > b.received())
            }
        };
        if better {
            best = Some(c);
        }
    }
    best
}

/// [`recover_with_anti_entropy`] generalized to a replica set: the
/// freshest reachable peer ([`select_repair_source`]) serves as the
/// repair source instead of "the standby". Errs when `peers` is empty —
/// with no mirror in reach, the caller falls back to plain recovery or
/// quarantine.
pub fn recover_with_quorum(
    model: &Model,
    hub: ResourceHub,
    journal_bytes: &[u8],
    invariants: &[&str],
    peers: &[&Standby],
) -> Result<(GenericBroker, RecoveryReport, Option<JournalRepair>)> {
    let source = select_repair_source(peers).ok_or_else(|| {
        BrokerError::RecoveryDiverged(
            "quorum recovery needs at least one reachable replica mirror".to_owned(),
        )
    })?;
    recover_with_anti_entropy(model, hub, journal_bytes, invariants, source)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::BrokerModelBuilder;
    use mddsm_sim::net::Link;
    use mddsm_sim::resource::{args, Outcome};

    const SNAPSHOT_EVERY: u64 = 8;

    fn hub() -> ResourceHub {
        let mut h = ResourceHub::new(7);
        h.register_fn("sim.ctr", |_, _| Outcome::ok());
        h
    }

    fn model() -> Model {
        BrokerModelBuilder::new("rep")
            .call_handler("inc", "inc")
            .action("inc", "doInc", "ctr", "inc", &[], None, &["count=+1"])
            .bind_resource("ctr", "sim.ctr")
            .replication("b", "AckWindowed", 4, 5_000, 8)
            .build()
    }

    fn net() -> Network {
        Network::new(Link::default(), 99)
    }

    fn primary() -> GenericBroker {
        let mut b = GenericBroker::from_model(&model(), hub()).unwrap();
        b.enable_journal(SNAPSHOT_EVERY);
        b
    }

    /// Ships until synced or `rounds` timeouts elapse; returns the tick
    /// count used.
    fn drain(
        rep: &mut Replicator,
        net: &Network,
        broker: &GenericBroker,
        standby: &mut Standby,
        rounds: u32,
    ) -> u32 {
        let step = rep.config().ack_timeout;
        let mut now = SimTime::ZERO;
        for tick in 0..rounds {
            let bytes = broker.journal_bytes().unwrap();
            rep.tick(now, broker.epoch(), net, bytes, standby).unwrap();
            if rep.synced() {
                return tick + 1;
            }
            now = now + step;
        }
        rounds
    }

    #[test]
    fn config_compiles_from_the_model() {
        assert!(
            ReplicationConfig::from_model(&BrokerModelBuilder::new("p").build())
                .unwrap()
                .is_none()
        );
        let cfg = ReplicationConfig::from_model(&model()).unwrap().unwrap();
        assert_eq!(
            cfg,
            ReplicationConfig {
                standby_node: "b".into(),
                mode: ShipMode::AckWindowed,
                window_records: 4,
                ack_timeout: SimDuration::from_micros(5_000),
                lag_alert_records: 8,
            }
        );
        // A ReplicationManager without a standby node is an invalid model.
        let mut broken = Model::new(crate::model::BROKER_METAMODEL);
        broken.create("ReplicationManager");
        match ReplicationConfig::from_model(&broken) {
            Err(BrokerError::InvalidModel(m)) => assert!(m.contains("standby"), "{m}"),
            other => panic!("expected InvalidModel, got {other:?}"),
        }
    }

    #[test]
    fn journal_ships_and_the_standby_tracks_the_primary() {
        let mut broker = primary();
        let mut rep = Replicator::from_model(&model(), "a").unwrap().unwrap();
        let mut standby = Standby::new("b");
        let net = net();

        for _ in 0..10 {
            broker.call("inc", &args(&[])).unwrap();
            drain(&mut rep, &net, &broker, &mut standby, 4);
        }
        assert!(rep.synced());
        assert_eq!(rep.lag(), 0);
        assert_eq!(rep.metrics().int("repl_lag"), Some(0));
        // The standby's live model matches the primary's, and the mirror
        // is byte-identical — promotion would recover exactly this state.
        assert_eq!(
            broker.state().first_divergence(standby.state()),
            None,
            "standby diverged"
        );
        assert_eq!(standby.journal_bytes(), broker.journal_bytes().unwrap());
        assert_eq!(rep.acked_lsn(), broker.state().version());
        assert_eq!(standby.state().int("count"), Some(10));
    }

    #[test]
    fn lossy_links_retransmit_until_the_standby_converges() {
        let mut broker = primary();
        let mut rep = Replicator::from_model(&model(), "a").unwrap().unwrap();
        let mut standby = Standby::new("b");
        let net = net();
        net.set_link_loss("a", "b", 0.5);
        net.set_link_loss("b", "a", 0.5);

        for _ in 0..20 {
            broker.call("inc", &args(&[])).unwrap();
        }
        drain(&mut rep, &net, &broker, &mut standby, 400);
        assert!(rep.synced(), "never converged under loss");
        assert!(rep.retransmits() > 0, "0.5 loss must force retransmission");
        assert_eq!(
            rep.metrics().int("repl_retransmits"),
            Some(rep.retransmits() as i64)
        );
        assert_eq!(broker.state().first_divergence(standby.state()), None);
        assert_eq!(standby.journal_bytes(), broker.journal_bytes().unwrap());
    }

    #[test]
    fn the_ack_window_bounds_what_goes_on_the_wire() {
        let mut broker = primary();
        let mut rep = Replicator::from_model(&model(), "a").unwrap().unwrap();
        let mut standby = Standby::new("b");
        let net = net();
        net.partition_node("b");

        for _ in 0..20 {
            broker.call("inc", &args(&[])).unwrap();
        }
        let bytes = broker.journal_bytes().unwrap().to_vec();
        let r = rep
            .tick(SimTime::ZERO, 1, &net, &bytes, &mut standby)
            .unwrap();
        // Go-back-N stops a batch on the first dropped leg, so at most
        // one line hits a partitioned wire — and never more than the
        // window even on healthy ones.
        assert!(r.shipped <= rep.config().window_records);
        assert!(rep.lag() > rep.config().window_records);
        assert_eq!(standby.received(), 0);
    }

    #[test]
    fn promotion_fences_the_stale_primary() {
        let m = model();
        let mut broker = primary();
        let mut rep = Replicator::from_model(&m, "a").unwrap().unwrap();
        let mut standby = Standby::new("b");
        let net = net();

        // Healthy replication, then a partition strands the primary.
        for _ in 0..5 {
            broker.call("inc", &args(&[])).unwrap();
        }
        drain(&mut rep, &net, &broker, &mut standby, 4);
        net.partition_node("a");
        // The stranded primary keeps serving (split brain in the making).
        broker.call("inc", &args(&[])).unwrap();

        // Supervisor-side: promote the standby under epoch 2.
        let (promoted, report) = standby.promote(2, &m, hub(), &[]).unwrap();
        assert_eq!(promoted.epoch(), 2);
        assert_eq!(promoted.state().int("count"), Some(5));
        assert!(report.ops_replayed > 0 || report.snapshot_version > 0);

        // The old primary heals and tries to ship its stale writes.
        net.heal_node("a");
        let bytes = broker.journal_bytes().unwrap().to_vec();
        let r = rep
            .tick(
                SimTime::from_millis(100),
                broker.epoch(),
                &net,
                &bytes,
                &mut standby,
            )
            .unwrap();
        match r.fenced {
            Some(BrokerError::StaleEpoch { got, current }) => {
                assert_eq!((got, current), (1, 2));
            }
            other => panic!("stale primary must be fenced, got {other:?}"),
        }
        assert_eq!(rep.metrics().int("repl_fenced"), Some(1));
        // Direct receive refuses with the typed error too, and applies
        // nothing.
        let applied_before = standby.applied_lsn();
        match standby.receive(standby.received(), "op 99 set x i 1", 1) {
            Err(BrokerError::StaleEpoch { got: 1, current: 2 }) => {}
            other => panic!("expected StaleEpoch, got {other:?}"),
        }
        assert_eq!(standby.applied_lsn(), applied_before);

        // The fence itself is journaled: even after the *promoted*
        // broker crashes and recovers, the epoch holds.
        let (recovered, _) =
            GenericBroker::recover(&m, hub(), promoted.journal_bytes().unwrap(), &[]).unwrap();
        assert_eq!(recovered.epoch(), 2);
    }

    #[test]
    fn reconcile_discards_the_stale_suffix_and_rebuilds() {
        let m = model();
        let mut broker = primary();
        let mut rep = Replicator::from_model(&m, "a").unwrap().unwrap();
        let mut standby = Standby::new("b");
        let net = net();

        for _ in 0..4 {
            broker.call("inc", &args(&[])).unwrap();
        }
        drain(&mut rep, &net, &broker, &mut standby, 4);
        // Partition; both sides write: the primary's writes are doomed.
        net.partition_node("a");
        broker.call("inc", &args(&[])).unwrap();
        broker.call("inc", &args(&[])).unwrap();
        let (mut promoted, _) = standby.promote(2, &m, hub(), &[]).unwrap();
        promoted.call("inc", &args(&[])).unwrap();

        let (rebuilt, rr) = reconcile(
            promoted.journal_bytes().unwrap(),
            broker.journal_bytes().unwrap(),
            "b",
            &m,
            hub(),
            &[],
        )
        .unwrap();
        assert!(rr.common_lines > 0);
        // Satellite regression: the report names the node whose journal
        // won, as a typed field.
        assert_eq!(rr.source_node, "b");
        // Each call journals two lines (the state op and the command
        // record), so the two doomed calls discard four.
        assert_eq!(rr.discarded_stale_lines, 4, "two doomed calls: {rr:?}");
        assert!(rr.replayed_lines > 0);
        // The reconciled broker carries the authoritative history: the
        // promoted side's count and epoch, not the stale writes.
        assert_eq!(rebuilt.state().int("count"), Some(5));
        assert_eq!(rebuilt.epoch(), 2);
    }

    #[test]
    fn truncation_keeps_the_ship_cursor_consistent() {
        let mut broker = primary();
        let mut rep = Replicator::from_model(&model(), "a").unwrap().unwrap();
        let mut standby = Standby::new("b");
        let net = net();

        for _ in 0..SNAPSHOT_EVERY + 2 {
            broker.call("inc", &args(&[])).unwrap();
        }
        drain(&mut rep, &net, &broker, &mut standby, 8);
        assert!(rep.synced());
        let reclaimed = rep.truncate_primary(&mut broker);
        assert!(
            reclaimed > 0,
            "acked history behind a snapshot must free bytes"
        );

        // Shipping continues seamlessly over the rewritten journal.
        for _ in 0..3 {
            broker.call("inc", &args(&[])).unwrap();
        }
        drain(&mut rep, &net, &broker, &mut standby, 8);
        assert!(rep.synced());
        assert_eq!(broker.state().first_divergence(standby.state()), None);
        assert_eq!(
            standby.state().int("count"),
            Some(SNAPSHOT_EVERY as i64 + 5)
        );
    }

    /// First index at or after `from` whose byte is not a newline — a safe
    /// place to flip a bit without merging journal lines.
    fn non_newline_at(bytes: &[u8], from: usize) -> usize {
        (from..bytes.len())
            .find(|&i| bytes[i] != b'\n')
            .expect("a non-newline byte past the midpoint")
    }

    /// A fully-synced primary/standby pair plus a pristine copy of the
    /// primary's journal bytes, after `calls` increments.
    fn synced_pair(calls: u32) -> (GenericBroker, Standby, Vec<u8>) {
        let mut broker = primary();
        let mut rep = Replicator::from_model(&model(), "a").unwrap().unwrap();
        let mut standby = Standby::new("b");
        let net = net();
        for _ in 0..calls {
            broker.call("inc", &args(&[])).unwrap();
            drain(&mut rep, &net, &broker, &mut standby, 4);
        }
        assert!(rep.synced());
        let pristine = broker.journal_bytes().unwrap().to_vec();
        (broker, standby, pristine)
    }

    #[test]
    fn anti_entropy_heals_interior_damage_byte_identically() {
        let m = model();
        let (_broker, standby, pristine) = synced_pair(6);
        // Bit-rot an interior line: flip one payload byte in the middle of
        // the journal. The CRC frame catches it; replay refuses.
        let mid = non_newline_at(&pristine, pristine.len() / 2);
        let mut damaged = pristine.clone();
        damaged[mid] ^= 0x01;
        assert!(matches!(
            journal::replay(&damaged),
            Err(BrokerError::JournalDamaged { .. })
        ));
        // The standby's mirror covers the damage: the healed journal is
        // byte-identical to the pristine one.
        let (healed, repair) = repair_journal(&damaged, &standby).unwrap();
        assert_eq!(
            healed, pristine,
            "healed journal must match the undamaged one"
        );
        assert!(repair.fetched_lines > 0);
        assert_eq!(
            repair.kept_tail_lines, 0,
            "fully synced: no local-only tail"
        );
        // End-to-end: recovery with the anti-entropy fallback rebuilds the
        // exact pre-damage state and journals the repair provenance.
        let (recovered, _report, rep) =
            recover_with_anti_entropy(&m, hub(), &damaged, &[], &standby).unwrap();
        assert_eq!(rep.as_ref(), Some(&repair));
        assert_eq!(recovered.state().int("count"), Some(6));
        assert_eq!(recovered.state().first_divergence(standby.state()), None);
        let text = std::str::from_utf8(recovered.journal_bytes().unwrap()).unwrap();
        assert!(
            text.lines()
                .map(journal::line_payload)
                .any(|p| p.starts_with("note ") && p.contains("anti-entropy")),
            "repair provenance must be journaled"
        );
    }

    #[test]
    fn torn_tail_below_the_ack_point_is_healed_not_dropped() {
        // Satellite guarantee: torn-tail truncation never loses a record
        // the standby already acknowledged. Tear into the journal's final
        // line — which the standby HAS applied — and recover.
        let m = model();
        let (_broker, standby, pristine) = synced_pair(5);
        // Tear into the last *op* line (the record that carries an LSN);
        // everything after it goes with the tear.
        let text = std::str::from_utf8(&pristine).unwrap();
        let mut op_start = 0;
        let mut offset = 0;
        for raw in text.split_inclusive('\n') {
            if journal::line_payload(raw.trim_end_matches('\n')).starts_with("op ") {
                op_start = offset;
            }
            offset += raw.len();
        }
        let cut = op_start + 5; // mid-record: the line is unreadable
        let torn = &pristine[..cut];
        // Plain replay shrugs: torn tail, drop the partial record. But the
        // ack window says that record was committed — plain recovery would
        // silently lose it.
        let r = journal::replay(torn).unwrap();
        let t = r.torn.as_ref().expect("tail is torn");
        assert!(standby.applied_lsn() > t.last_lsn, "acked past the tear");
        // The anti-entropy path refuses to lose it: heal from the mirror.
        let (recovered, report, rep) =
            recover_with_anti_entropy(&m, hub(), torn, &[], &standby).unwrap();
        assert!(rep.is_some(), "ack-window check must force a repair");
        assert_eq!(report.torn_records_dropped, 0);
        assert_eq!(recovered.state().int("count"), Some(5), "no committed loss");
        assert_eq!(recovered.state().version(), standby.applied_lsn());
    }

    #[test]
    fn unacked_torn_tail_recovers_locally_without_repair() {
        // A tear in records the standby never acknowledged is the normal
        // crash-torn-tail case: truncate and continue, no repair needed.
        let m = model();
        let (mut broker, standby, _) = synced_pair(4);
        let net = net();
        net.partition_node("b");
        // One more call that never ships: its records are unacked.
        broker.call("inc", &args(&[])).unwrap();
        let bytes = broker.journal_bytes().unwrap();
        let last_line_start = bytes[..bytes.len() - 1]
            .iter()
            .rposition(|&b| b == b'\n')
            .map_or(0, |i| i + 1);
        let torn = &bytes[..last_line_start + 3];
        let (recovered, report, rep) =
            recover_with_anti_entropy(&m, hub(), torn, &[], &standby).unwrap();
        assert!(rep.is_none(), "unacked tear needs no standby round-trip");
        assert_eq!(report.torn_records_dropped, 1);
        // The unacked in-flight record is (correctly) gone; everything
        // acknowledged survives.
        assert!(recovered.state().version() >= standby.applied_lsn());
    }

    #[test]
    fn clean_tail_loss_is_caught_by_the_mirror_not_the_checksum() {
        // A power cut that drops not-yet-synced writes leaves a journal
        // ending on a clean record boundary: every surviving line passes
        // its CRC and the lost tail may hold only command records, which
        // carry no LSN. Checksums and the ack window are both blind —
        // only the mirror comparison sees the loss.
        let m = model();
        let (_broker, standby, pristine) = synced_pair(4);
        let lines: Vec<&[u8]> = pristine.split_inclusive(|&b| b == b'\n').collect();
        let cut: usize = lines[..lines.len() - 1].iter().map(|l| l.len()).sum();
        let clipped = &pristine[..cut];
        let r = journal::replay(clipped).unwrap();
        assert!(r.torn.is_none(), "a clean cut leaves no torn marker");
        let (recovered, _report, rep) =
            recover_with_anti_entropy(&m, hub(), clipped, &[], &standby).unwrap();
        assert!(rep.is_some(), "the mirror comparison must force a repair");
        assert_eq!(recovered.state().int("count"), Some(4));
        let jb = recovered.journal_bytes().unwrap();
        assert!(
            jb.starts_with(&pristine),
            "the healed journal restores the dropped tail byte-identically"
        );
    }

    #[test]
    fn repair_keeps_readable_local_writes_past_the_mirror() {
        // Writes appended after the last ship exist only locally; a repair
        // triggered by interior damage must keep them.
        let m = model();
        let (mut broker, standby, _) = synced_pair(3);
        let net = net();
        net.partition_node("b");
        broker.call("inc", &args(&[])).unwrap(); // local-only, readable
        let pristine = broker.journal_bytes().unwrap().to_vec();
        let local_only_lines = pristine
            .split_inclusive(|&b| b == b'\n')
            .count()
            .saturating_sub(
                standby
                    .journal_bytes()
                    .split_inclusive(|&b| b == b'\n')
                    .count(),
            );
        assert!(
            local_only_lines >= 2,
            "the unshipped call left lines behind"
        );
        let mut damaged = pristine.clone();
        // Interior damage inside the mirror-covered prefix.
        let flip_at = non_newline_at(&damaged, standby.journal_bytes().len() / 2);
        damaged[flip_at] ^= 0x01;
        let (healed, repair) = repair_journal(&damaged, &standby).unwrap();
        assert_eq!(healed, pristine);
        assert_eq!(
            repair.kept_tail_lines, local_only_lines,
            "every readable local-only line survives the repair"
        );
        let (recovered, _report, rep) =
            recover_with_anti_entropy(&m, hub(), &damaged, &[], &standby).unwrap();
        assert!(rep.is_some());
        assert_eq!(recovered.state().int("count"), Some(4));
    }

    #[test]
    fn repair_refuses_an_empty_mirror_and_drops_unreadable_local_tails() {
        // Empty mirror: nothing to heal from.
        let empty = Standby::new("b");
        let damaged = b"v1 00000000 op 1 int x 1\n";
        match repair_journal(damaged, &empty) {
            Err(BrokerError::RecoveryDiverged(msg)) => assert!(msg.contains("empty"), "{msg}"),
            other => panic!("expected RecoveryDiverged, got {other:?}"),
        }
        // Corruption in a local-only (never-shipped, unacked) tail line:
        // the mirror cannot vouch for it, so the repair keeps readable
        // local lines up to the damage and drops the rest — the healed
        // journal replays clean with no torn tail.
        let (mut broker, standby, _) = synced_pair(2);
        let net = net();
        net.partition_node("b");
        broker.call("inc", &args(&[])).unwrap();
        let mut damaged = broker.journal_bytes().unwrap().to_vec();
        let n = damaged.len();
        damaged[n - 4] ^= 0x01; // corrupt the final local-only line
        let (healed, repair) = repair_journal(&damaged, &standby).unwrap();
        let r = journal::replay(&healed).unwrap();
        assert!(r.torn.is_none(), "healed journal must not be torn");
        assert_eq!(
            repair.kept_tail_lines, 1,
            "the readable op line survives; the corrupt cmd line is dropped"
        );
        assert_eq!(r.state.int("count"), Some(3), "readable local write kept");
    }

    #[test]
    fn repair_report_names_its_source_node() {
        // Satellite regression: anti-entropy provenance is a typed field,
        // not a string buried in a journal note.
        let (_broker, standby, pristine) = synced_pair(4);
        let mid = non_newline_at(&pristine, pristine.len() / 2);
        let mut damaged = pristine.clone();
        damaged[mid] ^= 0x01;
        let (_healed, repair) = repair_journal(&damaged, &standby).unwrap();
        assert_eq!(repair.source_node, "b");
    }

    // ----- quorum replica sets -----

    fn quorum_model(quorum: u64, peers: &[&str]) -> Model {
        let lanes: Vec<(&str, &str, u64, u64)> = peers
            .iter()
            .map(|n| (*n, "AckWindowed", 4, 5_000))
            .collect();
        BrokerModelBuilder::new("qrep")
            .call_handler("inc", "inc")
            .action("inc", "doInc", "ctr", "inc", &[], None, &["count=+1"])
            .bind_resource("ctr", "sim.ctr")
            .replica_set(quorum, &lanes)
            .build()
    }

    fn quorum_primary(m: &Model) -> GenericBroker {
        let mut b = GenericBroker::from_model(m, hub()).unwrap();
        b.enable_journal(SNAPSHOT_EVERY);
        b
    }

    /// Ships until every peer is synced or `rounds` timeouts elapse.
    fn qdrain(
        rep: &mut QuorumReplicator,
        net: &Network,
        broker: &GenericBroker,
        peers: &mut [&mut Standby],
        rounds: u32,
    ) {
        let step = SimDuration::from_micros(5_000);
        let mut now = SimTime::ZERO;
        for _ in 0..rounds {
            let bytes = broker.journal_bytes().unwrap();
            rep.tick(now, broker.epoch(), net, bytes, peers).unwrap();
            if rep.synced() {
                return;
            }
            now = now + step;
        }
    }

    #[test]
    fn replica_set_config_compiles_and_validates() {
        assert!(
            ReplicaSetConfig::from_model(&BrokerModelBuilder::new("p").build())
                .unwrap()
                .is_none()
        );
        // quorum 0 computes the majority of (peers + primary).
        let cfg = ReplicaSetConfig::from_model(&quorum_model(0, &["b", "c"]))
            .unwrap()
            .unwrap();
        assert_eq!(cfg.quorum, 2, "majority of 3 nodes");
        assert_eq!(cfg.peers.len(), 2);
        assert_eq!(cfg.peers[0].mode, ShipMode::AckWindowed);
        // An explicit quorum above the node count is an invalid model.
        match ReplicaSetConfig::from_model(&quorum_model(4, &["b", "c"])) {
            Err(BrokerError::InvalidModel(msg)) => assert!(msg.contains("quorum"), "{msg}"),
            other => panic!("expected InvalidModel, got {other:?}"),
        }
    }

    #[test]
    fn commit_lsn_is_the_quorum_th_largest_acked() {
        let m = quorum_model(2, &["b", "c"]);
        let mut broker = quorum_primary(&m);
        let mut rep = QuorumReplicator::from_model(&m, "a").unwrap().unwrap();
        let mut b = Standby::new("b");
        let mut c = Standby::new("c");
        let net = net();
        // c is unreachable the whole time: the primary + b still form a
        // quorum of 2, so commit advances to the head.
        net.partition_node("c");
        for _ in 0..6 {
            broker.call("inc", &args(&[])).unwrap();
        }
        qdrain(&mut rep, &net, &broker, &mut [&mut b, &mut c], 40);
        assert!(!rep.synced(), "c can never ack through a partition");
        assert!(rep.quorum_synced(), "primary + b are a quorum");
        assert_eq!(rep.commit_lsn(), broker.state().version());
        assert_eq!(rep.acked_lsn("b"), broker.state().version());
        assert_eq!(rep.acked_lsn("c"), 0);
        assert_eq!(rep.metrics().int("repl_quorum"), Some(2));
        assert_eq!(
            rep.metrics().int("repl_commit_lsn"),
            Some(rep.commit_lsn() as i64)
        );
        // Every committed LSN is on b byte-for-byte (the safety claim).
        let committed =
            journal::prefix_through_lsn(broker.journal_bytes().unwrap(), rep.commit_lsn())
                .unwrap();
        assert!(b.journal_bytes().starts_with(committed));
    }

    #[test]
    fn a_minority_ack_does_not_commit_and_truncation_respects_it() {
        // Quorum 3 of 3 nodes: with c partitioned, b's acks alone must
        // not advance the commit point — and truncation must not drop
        // history below what the quorum holds.
        let m = quorum_model(3, &["b", "c"]);
        let mut broker = quorum_primary(&m);
        let mut rep = QuorumReplicator::from_model(&m, "a").unwrap().unwrap();
        let mut b = Standby::new("b");
        let mut c = Standby::new("c");
        let net = net();
        net.partition_node("c");
        for _ in 0..SNAPSHOT_EVERY + 2 {
            broker.call("inc", &args(&[])).unwrap();
        }
        qdrain(&mut rep, &net, &broker, &mut [&mut b, &mut c], 40);
        assert_eq!(rep.acked_lsn("b"), broker.state().version());
        assert_eq!(rep.commit_lsn(), 0, "2 holders < quorum 3: nothing commits");
        assert_eq!(
            rep.truncate_primary(&mut broker),
            0,
            "nothing quorum-committed, nothing reclaimable"
        );
        // Heal c: the full set converges and the commit point catches up.
        net.heal_node("c");
        qdrain(&mut rep, &net, &broker, &mut [&mut b, &mut c], 40);
        assert!(rep.synced());
        assert_eq!(rep.commit_lsn(), broker.state().version());
        assert!(
            rep.truncate_primary(&mut broker) > 0,
            "committed history behind a snapshot is reclaimable now"
        );
        // Shipping continues seamlessly over the rewritten journal.
        broker.call("inc", &args(&[])).unwrap();
        qdrain(&mut rep, &net, &broker, &mut [&mut b, &mut c], 40);
        assert!(rep.synced());
        assert_eq!(broker.state().first_divergence(b.state()), None);
        assert_eq!(broker.state().first_divergence(c.state()), None);
    }

    #[test]
    fn reset_peer_reships_the_full_history_to_a_fresh_mirror() {
        let m = quorum_model(2, &["b", "c"]);
        let mut broker = quorum_primary(&m);
        let mut rep = QuorumReplicator::from_model(&m, "a").unwrap().unwrap();
        let mut b = Standby::new("b");
        let mut c = Standby::new("c");
        let net = net();
        for _ in 0..5 {
            broker.call("inc", &args(&[])).unwrap();
        }
        qdrain(&mut rep, &net, &broker, &mut [&mut b, &mut c], 40);
        assert!(rep.synced());
        let commit_before = rep.commit_lsn();
        // c loses its disk: revive it empty and rewind its lane.
        let mut c = Standby::new("c");
        assert!(rep.reset_peer("c"));
        assert!(!rep.reset_peer("zz"), "unknown nodes are refused");
        assert_eq!(
            rep.commit_lsn(),
            commit_before,
            "the commit point is monotone across a rewind"
        );
        qdrain(&mut rep, &net, &broker, &mut [&mut b, &mut c], 40);
        assert!(rep.synced());
        assert_eq!(c.journal_bytes(), broker.journal_bytes().unwrap());
        assert_eq!(broker.state().first_divergence(c.state()), None);
    }

    #[test]
    fn one_fenced_lane_does_not_stop_the_others() {
        let m = quorum_model(2, &["b", "c"]);
        let mut broker = quorum_primary(&m);
        let mut rep = QuorumReplicator::from_model(&m, "a").unwrap().unwrap();
        let mut b = Standby::new("b");
        let mut c = Standby::new("c");
        // c has seen a newer epoch (a promotion happened elsewhere): it
        // fences this primary, but b's lane keeps shipping.
        c.fence(5);
        let net = net();
        for _ in 0..4 {
            broker.call("inc", &args(&[])).unwrap();
        }
        let bytes = broker.journal_bytes().unwrap().to_vec();
        let r = rep
            .tick(SimTime::ZERO, broker.epoch(), &net, &bytes, &mut [&mut b, &mut c])
            .unwrap();
        assert!(r.fenced >= 1, "c must fence the stale primary");
        assert!(b.received() > 0, "b's lane is unaffected");
        assert_eq!(c.received(), 0);
        assert_eq!(rep.fenced(), r.fenced);
    }

    #[test]
    fn from_mirror_rebuilds_a_standby_byte_identically() {
        let (_broker, standby, pristine) = synced_pair(6);
        let rebuilt = Standby::from_mirror("d", &pristine, 3).unwrap();
        assert_eq!(rebuilt.journal_bytes(), standby.journal_bytes());
        assert_eq!(rebuilt.applied_lsn(), standby.applied_lsn());
        assert_eq!(rebuilt.received(), standby.received());
        assert_eq!(rebuilt.state().first_divergence(standby.state()), None);
        assert_eq!(rebuilt.epoch(), 3, "rebuilt standby honors the fence");
        assert_eq!(rebuilt.node(), "d");
    }

    #[test]
    fn the_freshest_replica_serves_as_the_quorum_repair_source() {
        let m = quorum_model(2, &["b", "c"]);
        let mut broker = quorum_primary(&m);
        let mut rep = QuorumReplicator::from_model(&m, "a").unwrap().unwrap();
        let mut b = Standby::new("b");
        let mut c = Standby::new("c");
        let net = net();
        for _ in 0..4 {
            broker.call("inc", &args(&[])).unwrap();
        }
        qdrain(&mut rep, &net, &broker, &mut [&mut b, &mut c], 40);
        // c falls behind: two more calls ship to b only.
        net.partition_node("c");
        for _ in 0..2 {
            broker.call("inc", &args(&[])).unwrap();
        }
        qdrain(&mut rep, &net, &broker, &mut [&mut b, &mut c], 40);
        assert!(b.applied_lsn() > c.applied_lsn());
        let src = select_repair_source(&[&c, &b]).expect("two candidates");
        assert_eq!(src.node(), "b", "the freshest mirror wins");
        assert!(select_repair_source(&[]).is_none());

        // The primary's journal rots: quorum recovery heals it from b,
        // and the repair provenance names b as the typed source.
        let pristine = broker.journal_bytes().unwrap().to_vec();
        let mid = non_newline_at(&pristine, b.journal_bytes().len() / 2);
        let mut damaged = pristine.clone();
        damaged[mid] ^= 0x01;
        let (recovered, _report, repair) =
            recover_with_quorum(&m, hub(), &damaged, &[], &[&c, &b]).unwrap();
        let repair = repair.expect("interior damage forces a repair");
        assert_eq!(repair.source_node, "b");
        assert_eq!(recovered.state().int("count"), Some(6));
        match recover_with_quorum(&m, hub(), &damaged, &[], &[]) {
            Err(BrokerError::RecoveryDiverged(msg)) => {
                assert!(msg.contains("reachable"), "{msg}")
            }
            other => panic!("expected RecoveryDiverged, got {other:?}"),
        }
    }
}
