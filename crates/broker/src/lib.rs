//! Broker layer of the MD-DSM reference architecture.
//!
//! "The Broker layer is responsible for interacting with the underlying
//! resources and services for the actual execution of commands, considering
//! systems issues such as heterogeneity and concurrency" (§III). The layer
//! is *model-defined*: its structure — managers, handlers, actions,
//! policies, autonomic rules — is an instance of the Fig. 6 metamodel, and
//! a single generic engine ([`engine::GenericBroker`]) interprets any such
//! model.
//!
//! * [`model`] — the Broker-layer metamodel (Fig. 6) and a builder for
//!   broker models: the main `Manager` exposing the
//!   layer interface, plus specialized managers for state, policy,
//!   autonomic, and resource management, with `Handler`s selecting
//!   `Action`s for calls and events.
//! * [`state`] — the state manager: the layer's runtime model, stored as a
//!   (what else) model, so policies can be evaluated against it with the
//!   OCL-lite engine.
//! * [`engine`] — the generic broker: dispatches calls/events to handlers,
//!   selects actions by policy guard, executes them against the simulated
//!   [`ResourceHub`](mddsm_sim::ResourceHub), and tracks failures.
//! * [`autonomic`] — the autonomic manager: a MAPE-K loop over model-defined
//!   symptoms → change requests → change plans, plus the brownout
//!   controller that moves the platform through model-declared degraded
//!   modes under overload.
//! * [`admission`] — model-defined overload control: per-class token-bucket
//!   admission with deadline-aware shedding, limits stored OCL-addressably
//!   in the state manager so change plans can retune them at runtime.
//! * [`monitor`] — online runtime verification: the model's OCL-lite
//!   invariants and temporal properties compiled into incremental
//!   in-stream monitors with pre-resolved state paths, evaluated as
//!   journal records are produced (primary) or applied (standby), tripping
//!   *before* a violating command becomes externally visible.
//! * [`replication`] — replicated models@runtime: the primary ships its
//!   journal over the simulated network to a hot standby that replays it
//!   into its own state manager; promotion fences the old primary behind a
//!   journaled epoch number, and reconciliation replays the divergent
//!   journal suffix through the normal recovery path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// A crashed middleware is the opposite of graceful degradation: library
// code must surface failures as typed `BrokerError`s, never panic. Tests
// are exempt (the test harness is the right place for unwrap).
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod admission;
pub mod analysis;
pub mod autonomic;
pub mod components;
pub mod engine;
pub mod evolution;
pub mod journal;
pub mod model;
pub mod monitor;
pub mod replication;
pub mod state;
pub mod supervisor;

pub use admission::{AdmissionController, AdmissionDecision, CallMeta, ShedReason};
pub use analysis::{analyze, op_footprint};
pub use autonomic::{BrownoutController, BrownoutMode, BrownoutTransition};
pub use engine::{AdmittedOutcome, BrokerCallResult, GenericBroker, RecoveryReport};
pub use evolution::{
    classify_changes, recover_versioned, DeltaClass, LiveUpgrade, UpgradeOutcome, UpgradePhase,
};
pub use journal::{Journal, JournalSink, MemorySink, TornTail};
pub use model::{broker_metamodel, BrokerModelBuilder, Resilience};
pub use monitor::{CompiledMonitor, MonitorSet, MonitorTrip};
pub use replication::{
    recover_with_anti_entropy, recover_with_quorum, repair_journal, select_repair_source,
    JournalRepair, QuorumReplicator, QuorumShipReport, ReplicaPeer, ReplicaSetConfig,
    ReplicationConfig, Replicator, ShipMode, Standby,
};
pub use state::StateManager;
pub use supervisor::{RestartPolicy, Supervisor, SupervisorDecision};

/// Errors produced by the Broker layer.
#[derive(Debug, Clone, PartialEq)]
pub enum BrokerError {
    /// The broker model does not conform to the Fig. 6 metamodel.
    InvalidModel(String),
    /// Load-time static analysis found error-level defects: the model is
    /// refused before it ever executes. Carries every error-level
    /// diagnostic (with model-path provenance), not just the first.
    AnalysisRejected(Vec<mddsm_meta::analysis::Diagnostic>),
    /// No handler accepts the given call/event.
    NoHandler(String),
    /// A handler matched but no action's guard was satisfied.
    NoAction(String),
    /// A policy guard failed to evaluate.
    PolicyFailed(String),
    /// A change-plan step could not be parsed or applied.
    BadPlanStep(String),
    /// Crash recovery found the journal and the rebuilt runtime model in
    /// disagreement (LSN gap, corrupt record, or a violated invariant).
    RecoveryDiverged(String),
    /// The durable journal failed verification *inside* committed history:
    /// a record whose CRC or parse failed (or an LSN gap) with readable
    /// records after it — bit-rot or a lying disk, not a crash-torn tail.
    /// Recovery refuses to guess; the journal must be healed (anti-entropy
    /// from a standby's mirror, [`replication::repair_journal`]) or the
    /// component quarantined.
    JournalDamaged {
        /// Last LSN known good before the damaged region.
        lsn: u64,
        /// Byte offset of the first unreadable (or gap-revealing) record.
        offset: u64,
        /// What failed verification.
        why: String,
    },
    /// Split-brain fence: a journal record arrived from an epoch older
    /// than the receiver's — a stale primary kept writing after a standby
    /// was promoted, and its writes are refused.
    StaleEpoch {
        /// Epoch the rejected record was shipped under.
        got: u64,
        /// Epoch the receiver currently serves under.
        current: u64,
    },
    /// A runtime monitor's property source failed to compile — distinct
    /// from [`BrokerError::MonitorTripped`] so callers can tell a broken
    /// property from a violated one.
    MonitorParse {
        /// The monitor whose source is broken.
        monitor: String,
        /// The underlying parse error.
        error: String,
    },
    /// An online runtime monitor tripped: the runtime model violates a
    /// compiled invariant or temporal property. The violating call is
    /// refused before its command record becomes externally visible.
    MonitorTripped {
        /// The tripped monitor's name.
        monitor: String,
        /// What the monitor saw.
        detail: String,
    },
    /// A live model upgrade was refused at a named stage of the evolution
    /// protocol (gate, shadow, cutover) before any state changed — the
    /// running broker keeps serving under its current model.
    UpgradeRefused {
        /// The protocol stage that refused (`gate`, `shadow`, `cutover`).
        stage: String,
        /// Every reason for the refusal, not just the first.
        reasons: Vec<String>,
    },
    /// An error bubbled up from the modeling substrate.
    Meta(String),
}

impl std::fmt::Display for BrokerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BrokerError::InvalidModel(m) => write!(f, "invalid broker model: {m}"),
            BrokerError::AnalysisRejected(diags) => {
                write!(
                    f,
                    "static analysis rejected the model ({} error(s))",
                    diags.len()
                )?;
                for d in diags {
                    write!(f, "; {d}")?;
                }
                Ok(())
            }
            BrokerError::NoHandler(m) => write!(f, "no handler for `{m}`"),
            BrokerError::NoAction(m) => write!(f, "no applicable action for `{m}`"),
            BrokerError::PolicyFailed(m) => write!(f, "policy evaluation failed: {m}"),
            BrokerError::BadPlanStep(m) => write!(f, "bad change-plan step: {m}"),
            BrokerError::RecoveryDiverged(m) => write!(f, "recovery diverged: {m}"),
            BrokerError::JournalDamaged { lsn, offset, why } => write!(
                f,
                "journal damaged after lsn {lsn} (byte offset {offset}): {why}"
            ),
            BrokerError::StaleEpoch { got, current } => write!(
                f,
                "stale epoch: record from epoch {got} refused by epoch {current}"
            ),
            BrokerError::MonitorParse { monitor, error } => {
                write!(f, "monitor `{monitor}` failed to parse: {error}")
            }
            BrokerError::MonitorTripped { monitor, detail } => {
                write!(f, "runtime monitor `{monitor}` tripped: {detail}")
            }
            BrokerError::UpgradeRefused { stage, reasons } => {
                write!(
                    f,
                    "live upgrade refused at stage `{stage}` ({} reason(s))",
                    reasons.len()
                )?;
                for r in reasons {
                    write!(f, "; {r}")?;
                }
                Ok(())
            }
            BrokerError::Meta(m) => write!(f, "model error: {m}"),
        }
    }
}

impl std::error::Error for BrokerError {}

impl From<mddsm_meta::MetaError> for BrokerError {
    fn from(e: mddsm_meta::MetaError) -> Self {
        BrokerError::Meta(e.to_string())
    }
}

/// Result alias for broker operations.
pub type Result<T> = std::result::Result<T, BrokerError>;
