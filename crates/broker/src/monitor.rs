//! Online runtime verification: invariants and temporal properties
//! compiled into in-stream journal monitors.
//!
//! Before this module, OCL-lite invariants were checked only at recovery
//! time — a corrupted or buggy mutation could drive divergent commands
//! long before anyone re-parsed the invariant strings. Here the model's
//! invariants plus the temporal properties of
//! [`mddsm_meta::constraint::temporal`] are *compiled once* into
//! [`CompiledMonitor`]s and evaluated incrementally, in-stream, as journal
//! records are produced (on the primary, inside the journaled commit path)
//! or applied (on the standby, inside [`crate::replication::Standby`]'s
//! apply path).
//!
//! Two compilation steps keep monitoring off the hot path, following
//! KMF's pre-resolved-access lesson:
//!
//! * **Pre-resolved watched keys.** Each property's `self.<key>`
//!   navigations are extracted at compile time; a monitor is re-evaluated
//!   only when a journaled op touches one of its watched keys.
//! * **Pre-resolved predicates.** Comparisons of `self.<key>` against
//!   literals (the overwhelmingly common invariant shape) compile to a
//!   direct-read predicate over the [`StateManager`] — no evaluation
//!   environment, no expression walk. Anything richer falls back to the
//!   full OCL-lite evaluator, and so does any fast predicate whose
//!   operand types do not match the live value, keeping verdicts exactly
//!   those of [`StateManager::eval`].
//!
//! Monitor *memory* (the period/owner cells of `at-most-one`, the tripped
//! latches) lives in ordinary `mon_*` state variables, so it is journaled,
//! snapshotted, truncated, and replicated like every other part of the
//! runtime model — recovery and failover resume monitoring byte-identically
//! for free. A standby evaluating replicated records keeps its memory in a
//! local shadow map instead ([`MonitorSet::check_observed`]): the mirror
//! must stay byte-identical to the primary's journal, so observation must
//! not write.

use std::collections::BTreeMap;

use crate::state::StateManager;
use crate::{BrokerError, Result};
use mddsm_meta::constraint::temporal::{parse_property, Property};
use mddsm_meta::constraint::{BinOp, Expr, UnOp};

/// State variable counting monitor trips; non-zero latches the broker
/// into refusing calls until the violation is repaired or rolled back.
pub const TRIP_COUNTER_KEY: &str = "mon_trips";

/// The tripped-latch state variable of one monitor.
pub fn trip_key(monitor: &str) -> String {
    format!("mon_{monitor}_tripped")
}

pub(crate) fn period_key(monitor: &str) -> String {
    format!("mon_{monitor}_per")
}

pub(crate) fn owner_key(monitor: &str) -> String {
    format!("mon_{monitor}_owner")
}

/// A monitor verdict: which monitor tripped, and why.
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorTrip {
    /// The tripped monitor's name.
    pub monitor: String,
    /// Human-readable description of the violation.
    pub detail: String,
}

/// A predicate pre-resolved against the flat state model. The fast forms
/// read state variables directly; [`Pred::General`] is the full-evaluator
/// fallback for everything else.
#[derive(Debug, Clone)]
enum Pred {
    /// `self.<key> <cmp> <int literal>`.
    CmpInt {
        key: String,
        op: BinOp,
        rhs: i64,
    },
    /// `self.<key> = "<lit>"` (`eq: false` for `<>`).
    CmpStr {
        key: String,
        eq: bool,
        rhs: String,
    },
    /// `self.<key> = null` (`eq: false` for `<> null`).
    IsNull {
        key: String,
        eq: bool,
    },
    Not(Box<Pred>),
    All(Vec<Pred>),
    Any(Vec<Pred>),
    /// Fallback marker: evaluate with the full OCL-lite engine.
    General,
}

/// Compiles an expression into a pre-resolved predicate; falls back to
/// [`Pred::General`] wherever the shape is not a literal comparison.
fn compile_pred(e: &Expr) -> Pred {
    match e {
        Expr::Binary(BinOp::And, a, b) => Pred::All(vec![compile_pred(a), compile_pred(b)]),
        Expr::Binary(BinOp::Or, a, b) => Pred::Any(vec![compile_pred(a), compile_pred(b)]),
        Expr::Binary(BinOp::Implies, a, b) => {
            Pred::Any(vec![Pred::Not(Box::new(compile_pred(a))), compile_pred(b)])
        }
        Expr::Unary(UnOp::Not, inner) => Pred::Not(Box::new(compile_pred(inner))),
        Expr::Binary(op, a, b) => compile_cmp(*op, a, b).unwrap_or(Pred::General),
        _ => Pred::General,
    }
}

/// The `self.<key>` navigated by a one-step navigation expression.
fn self_key(e: &Expr) -> Option<&str> {
    match e {
        Expr::Prop(recv, name) if matches!(recv.as_ref(), Expr::Var(v) if v == "self") => {
            Some(name)
        }
        _ => None,
    }
}

/// Mirrors a comparison operator so `lit <op> self.k` becomes
/// `self.k <mirror(op)> lit`.
fn mirror(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

fn compile_cmp(op: BinOp, a: &Expr, b: &Expr) -> Option<Pred> {
    let (key, op, lit) = match (self_key(a), self_key(b)) {
        (Some(k), None) => (k.to_owned(), op, b),
        (None, Some(k)) => (k.to_owned(), mirror(op), a),
        _ => return None,
    };
    match lit {
        Expr::Null if op == BinOp::Eq => Some(Pred::IsNull { key, eq: true }),
        Expr::Null if op == BinOp::Neq => Some(Pred::IsNull { key, eq: false }),
        Expr::Lit(v) => {
            if let Some(i) = v.as_int() {
                matches!(
                    op,
                    BinOp::Eq | BinOp::Neq | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
                )
                .then_some(Pred::CmpInt { key, op, rhs: i })
            } else if let Some(s) = v.as_str() {
                match op {
                    BinOp::Eq => Some(Pred::CmpStr {
                        key,
                        eq: true,
                        rhs: s.to_owned(),
                    }),
                    BinOp::Neq => Some(Pred::CmpStr {
                        key,
                        eq: false,
                        rhs: s.to_owned(),
                    }),
                    _ => None,
                }
            } else {
                None
            }
        }
        _ => None,
    }
}

impl Pred {
    /// Evaluates the predicate against the live state. `fallback` is the
    /// whole property expression, used whenever a fast form cannot decide
    /// exactly (missing variable, type mismatch): the full evaluator is
    /// the semantic authority, the fast path only a shortcut.
    fn eval(&self, state: &StateManager, fallback: &Expr) -> Result<bool> {
        match self.try_eval(state) {
            Some(v) => Ok(v),
            None => state.eval(fallback),
        }
    }

    /// Fast evaluation; `None` means "defer to the full evaluator".
    fn try_eval(&self, state: &StateManager) -> Option<bool> {
        match self {
            Pred::CmpInt { key, op, rhs } => {
                let v = state.int(key)?;
                Some(match op {
                    BinOp::Eq => v == *rhs,
                    BinOp::Neq => v != *rhs,
                    BinOp::Lt => v < *rhs,
                    BinOp::Le => v <= *rhs,
                    BinOp::Gt => v > *rhs,
                    BinOp::Ge => v >= *rhs,
                    _ => return None,
                })
            }
            Pred::CmpStr { key, eq, rhs } => {
                let v = state.str(key)?;
                Some((v == rhs) == *eq)
            }
            Pred::IsNull { key, eq } => {
                let present = state.str(key).is_some() || state.int(key).is_some();
                Some(present != *eq)
            }
            Pred::Not(p) => p.try_eval(state).map(|v| !v),
            Pred::All(ps) => {
                let mut all = true;
                for p in ps {
                    match p.try_eval(state) {
                        Some(true) => {}
                        Some(false) => all = false,
                        None => return None,
                    }
                }
                Some(all)
            }
            Pred::Any(ps) => {
                let mut any = false;
                for p in ps {
                    match p.try_eval(state) {
                        Some(true) => any = true,
                        Some(false) => {}
                        None => return None,
                    }
                }
                Some(any)
            }
            Pred::General => None,
        }
    }
}

/// The compiled (pre-resolved) form of one property.
#[derive(Debug, Clone)]
enum CompiledProperty {
    Always {
        pred: Pred,
        expr: Expr,
    },
    NeverDuring {
        never: Pred,
        never_expr: Expr,
        during: Pred,
        during_expr: Expr,
    },
    AtMostOnePer {
        key: String,
        per: String,
        period_key: String,
        owner_key: String,
    },
}

/// One compiled monitor: a named property plus its pre-resolved watched
/// keys and predicates.
#[derive(Debug, Clone)]
pub struct CompiledMonitor {
    name: String,
    source: String,
    property: CompiledProperty,
    watched: Vec<String>,
    /// Pre-rendered tripped-latch key — the hot path must not `format!`.
    trip_key: String,
}

impl CompiledMonitor {
    /// Compiles one property source. Parse failures are the typed
    /// [`BrokerError::MonitorParse`], never a generic recovery error.
    pub fn compile(name: &str, source: &str) -> Result<CompiledMonitor> {
        let property = parse_property(source).map_err(|e| BrokerError::MonitorParse {
            monitor: name.to_owned(),
            error: e.to_string(),
        })?;
        let watched = property.watched_keys();
        let property = match property {
            Property::Always(expr) => CompiledProperty::Always {
                pred: compile_pred(&expr),
                expr,
            },
            Property::NeverDuring { never, during } => CompiledProperty::NeverDuring {
                never: compile_pred(&never),
                during: compile_pred(&during),
                never_expr: never,
                during_expr: during,
            },
            Property::AtMostOnePer { key, per } => CompiledProperty::AtMostOnePer {
                period_key: period_key(name),
                owner_key: owner_key(name),
                key,
                per,
            },
        };
        Ok(CompiledMonitor {
            name: name.to_owned(),
            source: source.to_owned(),
            property,
            watched,
            trip_key: trip_key(name),
        })
    }

    /// The monitor's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The property source the monitor was compiled from.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The pre-resolved state variables the monitor watches.
    pub fn watched_keys(&self) -> &[String] {
        &self.watched
    }

    /// The journaled tripped-latch state variable of this monitor
    /// (pre-rendered at compile time).
    pub fn trip_key(&self) -> &str {
        &self.trip_key
    }

    fn watches_any(&self, dirty: &[&str]) -> bool {
        dirty.iter().any(|d| self.watched.iter().any(|w| w == d))
    }

    /// Evaluates the stateless part of the property against `state`;
    /// `memory` resolves the monitor's journaled (or shadowed) cells.
    /// Returns a violation description, and for `at-most-one` the memory
    /// writes that bring its cells up to date.
    fn evaluate(
        &self,
        state: &StateManager,
        memory: &dyn Fn(&str) -> Option<String>,
    ) -> (Option<String>, Vec<(String, String)>) {
        match &self.property {
            CompiledProperty::Always { pred, expr } => match pred.eval(state, expr) {
                Ok(true) => (None, Vec::new()),
                Ok(false) => (
                    Some(format!("invariant `{}` does not hold", self.source)),
                    Vec::new(),
                ),
                Err(e) => (
                    Some(format!(
                        "invariant `{}` failed to evaluate: {e}",
                        self.source
                    )),
                    Vec::new(),
                ),
            },
            CompiledProperty::NeverDuring {
                never,
                never_expr,
                during,
                during_expr,
            } => {
                let d = match during.eval(state, during_expr) {
                    Ok(v) => v,
                    Err(e) => {
                        return (
                            Some(format!(
                                "property `{}` failed to evaluate: {e}",
                                self.source
                            )),
                            Vec::new(),
                        )
                    }
                };
                if !d {
                    return (None, Vec::new());
                }
                match never.eval(state, never_expr) {
                    Ok(false) => (None, Vec::new()),
                    Ok(true) => (
                        Some(format!("property `{}` is violated", self.source)),
                        Vec::new(),
                    ),
                    Err(e) => (
                        Some(format!(
                            "property `{}` failed to evaluate: {e}",
                            self.source
                        )),
                        Vec::new(),
                    ),
                }
            }
            CompiledProperty::AtMostOnePer {
                key,
                per,
                period_key,
                owner_key,
            } => {
                let cur_per = render(state, per);
                let cur_key = render(state, key);
                let mem_per = memory(period_key);
                if mem_per.as_deref() != Some(cur_per.as_str()) {
                    // A new period: remember it and its first owner.
                    return (
                        None,
                        vec![(period_key.clone(), cur_per), (owner_key.clone(), cur_key)],
                    );
                }
                let owner = memory(owner_key).unwrap_or_else(|| NULL_RENDER.to_owned());
                if owner == NULL_RENDER && cur_key != NULL_RENDER {
                    return (None, vec![(owner_key.clone(), cur_key)]);
                }
                if owner != NULL_RENDER && cur_key != NULL_RENDER && cur_key != owner {
                    let detail = format!(
                        "property `{}` is violated: `{key}` changed from {owner} to {cur_key} \
                         within one `{per}` period ({cur_per})",
                        self.source
                    );
                    return (Some(detail), Vec::new());
                }
                (None, Vec::new())
            }
        }
    }
}

/// Rendering of a state variable's value for monitor memory cells:
/// tagged so `1` and `"1"` stay distinct, `-` for unset.
const NULL_RENDER: &str = "-";

fn render(state: &StateManager, key: &str) -> String {
    if let Some(s) = state.str(key) {
        format!("s:{s}")
    } else if let Some(i) = state.int(key) {
        format!("i:{i}")
    } else {
        NULL_RENDER.to_owned()
    }
}

/// An ordered set of compiled monitors sharing one stream of states.
#[derive(Debug, Clone, Default)]
pub struct MonitorSet {
    monitors: Vec<CompiledMonitor>,
}

impl MonitorSet {
    /// Compiles named `(name, property-source)` pairs.
    pub fn compile<N: AsRef<str>, S: AsRef<str>>(specs: &[(N, S)]) -> Result<MonitorSet> {
        let monitors = specs
            .iter()
            .map(|(n, s)| CompiledMonitor::compile(n.as_ref(), s.as_ref()))
            .collect::<Result<Vec<_>>>()?;
        Ok(MonitorSet { monitors })
    }

    /// Compiles bare invariant strings; each monitor is named by its
    /// source, so violation reports read like the invariant.
    pub fn from_invariants(invariants: &[&str]) -> Result<MonitorSet> {
        let monitors = invariants
            .iter()
            .map(|inv| CompiledMonitor::compile(inv, inv))
            .collect::<Result<Vec<_>>>()?;
        Ok(MonitorSet { monitors })
    }

    /// No monitors compiled.
    pub fn is_empty(&self) -> bool {
        self.monitors.is_empty()
    }

    /// Number of compiled monitors.
    pub fn len(&self) -> usize {
        self.monitors.len()
    }

    /// The compiled monitors.
    pub fn monitors(&self) -> &[CompiledMonitor] {
        &self.monitors
    }

    /// In-stream check on the **primary**: evaluates every monitor whose
    /// watched keys intersect `dirty` and records verdicts *into the
    /// runtime model* — `at-most-one` memory cells, tripped latches and
    /// the [`TRIP_COUNTER_KEY`] counter are ordinary journaled state
    /// writes, which is what makes monitoring survive recovery and
    /// failover byte-identically. Already-tripped monitors stay silent
    /// until their latch is cleared (by repair or rollback).
    pub fn check_live(&self, state: &mut StateManager, dirty: &[&str]) -> Vec<MonitorTrip> {
        let mut trips = Vec::new();
        let any_latched = state.int(TRIP_COUNTER_KEY).unwrap_or(0) != 0;
        for m in &self.monitors {
            if !m.watches_any(dirty) {
                continue;
            }
            if let Some(trip) = live_step(m, state, any_latched) {
                trips.push(trip);
            }
        }
        trips
    }

    /// [`MonitorSet::check_live`] with the dirty-key set derived directly
    /// from the state manager's own pending journal ops — the zero-copy
    /// form the broker's per-call commit path uses. A monitor evaluated
    /// by an earlier monitor's own `mon_*` writes sees unchanged watched
    /// variables, so verdicts are identical to [`MonitorSet::check_live`]
    /// over the pre-existing dirty set.
    pub fn check_live_pending(&self, state: &mut StateManager) -> Vec<MonitorTrip> {
        let mut trips = Vec::new();
        let any_latched = state.int(TRIP_COUNTER_KEY).unwrap_or(0) != 0;
        for m in &self.monitors {
            let hit = state
                .pending_ops()
                .iter()
                .any(|o| m.watched.iter().any(|w| w == o.key()));
            if !hit {
                continue;
            }
            if let Some(trip) = live_step(m, state, any_latched) {
                trips.push(trip);
            }
        }
        trips
    }

    /// In-stream check on a **standby** (or any pure observer): identical
    /// verdicts, but memory lives in the caller's `shadow` map and the
    /// observed state is never written — the standby's mirror must stay
    /// byte-identical to what the primary shipped.
    pub fn check_observed(
        &self,
        state: &StateManager,
        dirty: &[&str],
        shadow: &mut BTreeMap<String, String>,
    ) -> Vec<MonitorTrip> {
        let mut trips = Vec::new();
        for m in &self.monitors {
            if !m.watches_any(dirty) {
                continue;
            }
            if shadow.contains_key(&m.trip_key) {
                continue;
            }
            let (violation, writes) = m.evaluate(state, &|k| shadow.get(k).cloned());
            for (k, v) in writes {
                shadow.insert(k, v);
            }
            if let Some(detail) = violation {
                shadow.insert(m.trip_key.clone(), "1".to_owned());
                trips.push(MonitorTrip {
                    monitor: m.name.clone(),
                    detail,
                });
            }
        }
        trips
    }

    /// Clears an observer's tripped latches (after the primary repaired
    /// or rolled back the violation) so monitoring resumes.
    pub fn clear_observed_trips(&self, shadow: &mut BTreeMap<String, String>) {
        for m in &self.monitors {
            shadow.remove(&m.trip_key);
        }
    }

    /// Full (non-incremental) sweep, used at recovery time and when
    /// monitors are first armed: every monitor is evaluated against
    /// `state`, memory cells are read from the journaled `mon_*`
    /// variables, and nothing is written. The first violation is
    /// returned as the typed [`BrokerError::MonitorTripped`].
    pub fn check_full(&self, state: &StateManager) -> Result<()> {
        for m in &self.monitors {
            if state.str(&m.trip_key).is_some() {
                // An already-journaled trip is a finding, not a failure:
                // recovery must resume exactly where the live run was.
                continue;
            }
            let (violation, _writes) = m.evaluate(state, &|k| state.str(k).map(str::to_owned));
            if let Some(detail) = violation {
                return Err(BrokerError::MonitorTripped {
                    monitor: m.name.clone(),
                    detail,
                });
            }
        }
        Ok(())
    }

    /// The union of every monitor's watched keys, sorted.
    pub fn watched_keys(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .monitors
            .iter()
            .flat_map(|m| m.watched.iter().cloned())
            .collect();
        out.sort();
        out.dedup();
        out
    }
}

/// One monitor's live evaluation step: skip if latched, evaluate against
/// the runtime model, persist `at-most-one` memory and (on violation) the
/// tripped latch plus [`TRIP_COUNTER_KEY`] as ordinary journaled writes.
/// `any_latched` is the caller's one [`TRIP_COUNTER_KEY`] read: when zero,
/// no per-monitor latch can be set and its lookup is skipped. A monitor
/// tripping earlier in the same pass only sets its *own* latch, so the
/// snapshot stays exact for the remaining monitors.
fn live_step(
    m: &CompiledMonitor,
    state: &mut StateManager,
    any_latched: bool,
) -> Option<MonitorTrip> {
    if any_latched && state.str(&m.trip_key).is_some() {
        return None;
    }
    let (violation, writes) = {
        let s: &StateManager = state;
        m.evaluate(s, &|k| s.str(k).map(str::to_owned))
    };
    for (k, v) in writes {
        state.set_str(&k, &v);
    }
    violation.map(|detail| {
        state.set_str(&m.trip_key, "1");
        state.bump(TRIP_COUNTER_KEY, 1);
        MonitorTrip {
            monitor: m.name.clone(),
            detail,
        }
    })
}

/// The temporal properties every replicated deployment ships with: the
/// E9 failover guarantee "at most one primary is promoted per epoch",
/// previously only a property test, now monitored online against the
/// supervisor's runtime model during failover campaigns.
pub fn failover_properties() -> MonitorSet {
    // The sources are compile-time constants; a failure here would be a
    // defect in this module, caught by the test right below.
    MonitorSet::compile(&[("onePrimaryPerEpoch", "at-most-one primary per epoch")])
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dirty<'a>(keys: &'a [&'a str]) -> &'a [&'a str] {
        keys
    }

    #[test]
    fn always_monitors_trip_on_violation_and_latch() {
        let set = MonitorSet::compile(&[("nonneg", "always self.opens >= 0")]).unwrap();
        let mut s = StateManager::new();
        s.set_int("opens", 2);
        assert!(set.check_live(&mut s, dirty(&["opens"])).is_empty());
        s.set_int("opens", -1);
        let trips = set.check_live(&mut s, dirty(&["opens"]));
        assert_eq!(trips.len(), 1);
        assert_eq!(trips[0].monitor, "nonneg");
        assert!(
            trips[0].detail.contains("does not hold"),
            "{}",
            trips[0].detail
        );
        assert_eq!(s.str("mon_nonneg_tripped"), Some("1"));
        assert_eq!(s.int(TRIP_COUNTER_KEY), Some(1));
        // Latched: no second trip for the same violation.
        assert!(set.check_live(&mut s, dirty(&["opens"])).is_empty());
    }

    #[test]
    fn monitors_skip_unwatched_keys() {
        let set = MonitorSet::compile(&[("nonneg", "self.opens >= 0")]).unwrap();
        let mut s = StateManager::new();
        s.set_int("opens", -5);
        // `other` is not watched: the violation goes unexamined.
        assert!(set.check_live(&mut s, dirty(&["other"])).is_empty());
        assert_eq!(set.check_live(&mut s, dirty(&["opens", "other"])).len(), 1);
    }

    #[test]
    fn never_during_requires_both_conditions() {
        let set = MonitorSet::compile(&[(
            "frozenBeta",
            "never self.frozen = 1 during self.tier = \"beta\"",
        )])
        .unwrap();
        let mut s = StateManager::new();
        s.set_str("tier", "beta");
        assert!(set.check_live(&mut s, dirty(&["tier"])).is_empty());
        s.set_int("frozen", 1);
        assert_eq!(set.check_live(&mut s, dirty(&["frozen"])).len(), 1);
        let mut s2 = StateManager::new();
        s2.set_str("tier", "alpha");
        s2.set_int("frozen", 1);
        assert!(set
            .check_live(&mut s2, dirty(&["frozen", "tier"]))
            .is_empty());
    }

    #[test]
    fn at_most_one_per_trips_on_a_second_owner() {
        let set = failover_properties();
        let mut s = StateManager::new();
        s.set_int("epoch", 1);
        s.set_str("primary", "a");
        assert!(set
            .check_live(&mut s, dirty(&["epoch", "primary"]))
            .is_empty());
        // Same epoch, new primary: violation.
        s.set_str("primary", "b");
        let trips = set.check_live(&mut s, dirty(&["primary"]));
        assert_eq!(trips.len(), 1);
        assert!(trips[0].detail.contains("primary"), "{}", trips[0].detail);

        // A fresh epoch resets the period: promotion is legal again.
        let mut s = StateManager::new();
        s.set_int("epoch", 1);
        s.set_str("primary", "a");
        set.check_live(&mut s, dirty(&["epoch", "primary"]));
        s.set_int("epoch", 2);
        s.set_str("primary", "b");
        assert!(set
            .check_live(&mut s, dirty(&["epoch", "primary"]))
            .is_empty());
    }

    #[test]
    fn observed_checks_match_live_checks_without_writing() {
        let set = MonitorSet::compile(&[
            ("nonneg", "self.opens >= 0"),
            ("onePer", "at-most-one primary per epoch"),
        ])
        .unwrap();
        let mut live = StateManager::new();
        let mut observed = StateManager::new();
        let mut shadow = BTreeMap::new();
        let script: &[(&str, Option<i64>, Option<&str>)] = &[
            ("epoch", Some(1), None),
            ("primary", None, Some("a")),
            ("opens", Some(3), None),
            ("opens", Some(-2), None),
            ("primary", None, Some("b")),
        ];
        for (key, int, strv) in script {
            match (int, strv) {
                (Some(i), _) => {
                    live.set_int(key, *i);
                    observed.set_int(key, *i);
                }
                (_, Some(v)) => {
                    live.set_str(key, v);
                    observed.set_str(key, v);
                }
                _ => unreachable!(),
            }
            let lt = set.check_live(&mut live, dirty(&[key]));
            let ot = set.check_observed(&observed, dirty(&[key]), &mut shadow);
            assert_eq!(
                lt.iter().map(|t| &t.monitor).collect::<Vec<_>>(),
                ot.iter().map(|t| &t.monitor).collect::<Vec<_>>(),
                "live and observed verdicts diverge at {key}"
            );
        }
        let ver = observed.version();
        set.check_observed(&observed, dirty(&["opens"]), &mut shadow);
        assert_eq!(observed.version(), ver, "observation must not write");
    }

    #[test]
    fn check_full_reports_the_typed_violation() {
        let set = MonitorSet::from_invariants(&["self.opens >= 0"]).unwrap();
        let mut s = StateManager::new();
        s.set_int("opens", 1);
        assert!(set.check_full(&s).is_ok());
        s.set_int("opens", -1);
        match set.check_full(&s) {
            Err(BrokerError::MonitorTripped { monitor, detail }) => {
                assert_eq!(monitor, "self.opens >= 0");
                assert!(detail.contains("does not hold"), "{detail}");
            }
            other => panic!("expected MonitorTripped, got {other:?}"),
        }
    }

    #[test]
    fn parse_failures_are_typed_and_name_the_monitor() {
        match MonitorSet::compile(&[("broken", "self.")]) {
            Err(BrokerError::MonitorParse { monitor, error }) => {
                assert_eq!(monitor, "broken");
                assert!(!error.is_empty());
            }
            other => panic!("expected MonitorParse, got {other:?}"),
        }
        assert!(MonitorSet::compile(&[("bad", "never self.x = 1")]).is_err());
    }

    #[test]
    fn fast_predicates_agree_with_the_full_evaluator() {
        // Shapes the fast path handles, evaluated both ways.
        let cases = [
            "self.n >= 0",
            "self.n < 10",
            "0 <= self.n",
            "self.mode = \"direct\"",
            "self.mode <> \"relay\"",
            "self.gone = null",
            "self.n <> null",
            "self.n >= 0 and self.mode = \"direct\"",
            "self.n < 0 or self.mode = \"direct\"",
            "self.n > 100 implies self.mode = \"relay\"",
            "not (self.n > 100)",
            // And one the fast path cannot handle (falls back).
            "self.n + 1 > self.m",
        ];
        let mut s = StateManager::new();
        s.set_int("n", 5);
        s.set_int("m", 3);
        s.set_str("mode", "direct");
        for src in cases {
            let expr = mddsm_meta::constraint::parse(src).unwrap();
            let pred = compile_pred(&expr);
            let slow = s.eval(&expr).unwrap();
            let fast = pred.eval(&s, &expr).unwrap();
            assert_eq!(fast, slow, "fast/slow disagree on `{src}`");
        }
        // Missing variable: fast path must defer, not guess.
        let expr = mddsm_meta::constraint::parse("self.absent >= 0").unwrap();
        let pred = compile_pred(&expr);
        assert!(pred.try_eval(&s).is_none());
        assert_eq!(pred.eval(&s, &expr).ok(), s.eval(&expr).ok());
    }

    #[test]
    fn watched_keys_are_the_union() {
        let set = MonitorSet::compile(&[
            ("a", "self.x >= 0 and self.y = null"),
            ("b", "at-most-one primary per epoch"),
        ])
        .unwrap();
        assert_eq!(
            set.watched_keys(),
            vec![
                "epoch".to_string(),
                "primary".to_string(),
                "x".to_string(),
                "y".to_string()
            ]
        );
    }
}
