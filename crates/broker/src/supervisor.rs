//! An OTP-style supervisor for middleware components, built on the
//! autonomic-manager machinery.
//!
//! The paper's autonomic manager reacts to *application* symptoms
//! (resource failures, breaker trips). This module points the same MAPE-K
//! idea at the *middleware itself*: each supervised component (a broker
//! instance, a controller) emits heartbeats into the supervisor's own
//! runtime model — a [`StateManager`], so liveness symptoms are genuine
//! OCL-lite expressions over it — and the supervisor detects dead
//! (crashed) or wedged (stalled) components and decides between restarting
//! from the last checkpoint and escalating, under a bounded
//! restart-intensity policy (one-for-one restarts, escalate after
//! `max_restarts` within `window`).
//!
//! Crash vs stall mirrors OTP practice: a crash is detected immediately
//! (the supervisor holds the equivalent of a process link), while a stall
//! only shows up as heartbeat staleness and is detected on the first tick
//! after `stall_after` of silence.

use crate::state::StateManager;
use crate::{BrokerError, Result};
use mddsm_meta::constraint;
use mddsm_sim::fault::ComponentTarget;
use mddsm_sim::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Bounded-escalation restart policy (OTP "restart intensity").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestartPolicy {
    /// Restarts tolerated within [`RestartPolicy::window`] before the
    /// supervisor gives up on the component and escalates. Exactly
    /// `max_restarts` restarts are *performed*; the next unhealthy event
    /// while all of them are still inside the window (count `>=`
    /// `max_restarts`) escalates instead of restarting.
    pub max_restarts: u32,
    /// Sliding window for counting restarts. The window edge is
    /// *inclusive*: a restart that happened exactly `window` ago (its
    /// timestamp `>= now - window`) still counts against
    /// [`RestartPolicy::max_restarts`]; one virtual microsecond older and
    /// it ages out.
    pub window: SimDuration,
    /// Heartbeat staleness after which a silent component counts as
    /// wedged.
    pub stall_after: SimDuration,
}

impl Default for RestartPolicy {
    fn default() -> Self {
        RestartPolicy {
            max_restarts: 3,
            window: SimDuration::from_millis(5_000),
            stall_after: SimDuration::from_millis(300),
        }
    }
}

/// What the supervisor decided about one unhealthy component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SupervisorDecision {
    /// Restart the component from its last checkpoint (one-for-one).
    Restart {
        /// The unhealthy component.
        component: String,
        /// Which liveness symptom fired.
        reason: String,
        /// Restarts of this component inside the current window,
        /// counting this one.
        restarts_in_window: u32,
    },
    /// Too many restarts inside the window: give up and hand the failure
    /// to the next tier.
    Escalate {
        /// The component the supervisor gave up on.
        component: String,
    },
}

impl SupervisorDecision {
    /// The component the decision is about.
    pub fn component(&self) -> &str {
        match self {
            SupervisorDecision::Restart { component, .. }
            | SupervisorDecision::Escalate { component } => component,
        }
    }
}

/// A heartbeat-driven supervisor over named middleware components.
#[derive(Debug)]
pub struct Supervisor {
    /// The supervisor's own runtime model: `hb_<c>` (last heartbeat, µs),
    /// `crashed_<c>` / `wedged_<c>` flags, `restarts_<c>` counters — all
    /// OCL-addressable.
    state: StateManager,
    policy: RestartPolicy,
    components: Vec<String>,
    /// Virtual-time stamps of past restarts, per component (for the
    /// sliding restart-intensity window).
    restart_log: BTreeMap<String, Vec<u64>>,
    escalated: Vec<String>,
}

fn key(prefix: &str, component: &str) -> String {
    // State keys are OCL identifiers: dots in component names would split
    // attribute navigation, so they are flattened.
    format!("{prefix}_{}", component.replace('.', "_"))
}

impl Supervisor {
    /// A supervisor over `components`, all initially healthy with a
    /// heartbeat at time zero.
    pub fn new(components: &[&str], policy: RestartPolicy) -> Self {
        let mut state = StateManager::new();
        for c in components {
            state.set_int(&key("hb", c), 0);
            state.set_int(&key("crashed", c), 0);
            state.set_int(&key("wedged", c), 0);
        }
        Supervisor {
            state,
            policy,
            components: components.iter().map(|c| (*c).to_owned()).collect(),
            restart_log: BTreeMap::new(),
            escalated: Vec::new(),
        }
    }

    /// Records a heartbeat from a live component. A wedged component's
    /// heartbeats are suppressed — that is what being wedged means.
    pub fn heartbeat(&mut self, component: &str, now: SimTime) {
        if self.state.int(&key("wedged", component)) == Some(1)
            || self.state.int(&key("crashed", component)) == Some(1)
        {
            return;
        }
        self.state
            .set_int(&key("hb", component), now.as_micros() as i64);
    }

    /// The supervisor's runtime model (for symptom inspection in tests and
    /// experiments).
    pub fn state(&self) -> &StateManager {
        &self.state
    }

    /// Whether the supervisor has given up on the component.
    pub fn escalated(&self, component: &str) -> bool {
        self.escalated.iter().any(|c| c == component)
    }

    /// Total restarts performed for a component.
    pub fn restarts(&self, component: &str) -> u32 {
        self.restart_log
            .get(component)
            .map_or(0, |l| l.len() as u32)
    }

    /// The liveness symptom for one component, as an OCL-lite condition
    /// over the supervisor's runtime model. `deadline_us` is
    /// `now - stall_after`: a heartbeat older than it means wedged.
    fn symptom(&self, component: &str, deadline_us: i64) -> String {
        format!(
            "self.{crashed} = 1 or self.{wedged} = 1 or self.{hb} < {deadline_us}",
            crashed = key("crashed", component),
            wedged = key("wedged", component),
            hb = key("hb", component),
        )
    }

    /// One monitoring cycle at virtual time `now`: evaluates every
    /// component's liveness symptom and returns a decision per unhealthy
    /// component. A `Restart` decision resets the component's flags and
    /// heartbeat (the caller performs the actual recovery); an `Escalate`
    /// removes it from supervision.
    pub fn tick(&mut self, now: SimTime) -> Result<Vec<SupervisorDecision>> {
        let now_us = now.as_micros();
        let deadline_us = now_us.saturating_sub(self.policy.stall_after.as_micros()) as i64;
        let mut decisions = Vec::new();
        for component in self.components.clone() {
            if self.escalated(&component) {
                continue;
            }
            let src = self.symptom(&component, deadline_us);
            let expr = constraint::parse(&src)
                .map_err(|e| BrokerError::PolicyFailed(format!("symptom `{src}`: {e}")))?;
            if !self.state.eval(&expr)? {
                continue;
            }
            let reason = if self.state.int(&key("crashed", &component)) == Some(1) {
                "crashed"
            } else if self.state.int(&key("wedged", &component)) == Some(1) {
                "wedged"
            } else {
                "heartbeat-stale"
            };

            // Restart-intensity check over the sliding window. Both
            // comparisons are deliberate about their edges: a restart
            // stamped exactly at `now - window` still counts (`>=`,
            // inclusive edge), and the supervisor escalates as soon as the
            // in-window count has *reached* `max_restarts` (`>=`) — i.e.
            // it performs at most `max_restarts` restarts per window and
            // the (max_restarts + 1)-th unhealthy event escalates.
            let log = self.restart_log.entry(component.clone()).or_default();
            let window_start = now_us.saturating_sub(self.policy.window.as_micros());
            log.retain(|t| *t >= window_start);
            if log.len() as u32 >= self.policy.max_restarts {
                self.escalated.push(component.clone());
                decisions.push(SupervisorDecision::Escalate {
                    component: component.clone(),
                });
                continue;
            }
            log.push(now_us);
            let restarts_in_window = log.len() as u32;
            self.state.set_int(&key("crashed", &component), 0);
            self.state.set_int(&key("wedged", &component), 0);
            self.state.set_int(&key("hb", &component), now_us as i64);
            self.state.bump(&key("restarts", &component), 1);
            decisions.push(SupervisorDecision::Restart {
                component,
                reason: reason.to_owned(),
                restarts_in_window,
            });
        }
        Ok(decisions)
    }
}

impl ComponentTarget for Supervisor {
    fn crash_component(&mut self, component: &str) {
        if self.components.iter().any(|c| c == component) {
            self.state.set_int(&key("crashed", component), 1);
        }
    }

    fn stall_component(&mut self, component: &str) {
        if self.components.iter().any(|c| c == component) {
            self.state.set_int(&key("wedged", component), 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> RestartPolicy {
        RestartPolicy {
            max_restarts: 2,
            window: SimDuration::from_millis(1_000),
            stall_after: SimDuration::from_millis(100),
        }
    }

    #[test]
    fn healthy_components_produce_no_decisions() {
        let mut s = Supervisor::new(&["broker"], policy());
        s.heartbeat("broker", SimTime::from_millis(50));
        assert!(s.tick(SimTime::from_millis(60)).unwrap().is_empty());
    }

    #[test]
    fn crash_is_detected_immediately_and_restarted() {
        let mut s = Supervisor::new(&["broker"], policy());
        s.heartbeat("broker", SimTime::from_millis(10));
        s.crash_component("broker");
        // Crashed components stop heartbeating.
        s.heartbeat("broker", SimTime::from_millis(11));
        let d = s.tick(SimTime::from_millis(12)).unwrap();
        assert_eq!(
            d,
            vec![SupervisorDecision::Restart {
                component: "broker".into(),
                reason: "crashed".into(),
                restarts_in_window: 1,
            }]
        );
        // Restart resets the flags: next tick is quiet.
        assert!(s.tick(SimTime::from_millis(13)).unwrap().is_empty());
        assert_eq!(s.restarts("broker"), 1);
        assert_eq!(s.state().int("restarts_broker"), Some(1));
    }

    #[test]
    fn stall_is_detected_by_heartbeat_staleness() {
        let mut s = Supervisor::new(&["ctl"], policy());
        s.heartbeat("ctl", SimTime::from_millis(10));
        s.stall_component("ctl");
        // Wedged: heartbeats are suppressed from now on.
        s.heartbeat("ctl", SimTime::from_millis(20));
        assert_eq!(s.state().int("hb_ctl"), Some(10_000));
        let d = s.tick(SimTime::from_millis(50)).unwrap();
        assert_eq!(d.len(), 1);
        assert!(matches!(&d[0], SupervisorDecision::Restart { reason, .. } if reason == "wedged"));
    }

    #[test]
    fn silent_component_goes_stale_without_a_fault_event() {
        let mut s = Supervisor::new(&["b"], policy());
        s.heartbeat("b", SimTime::from_millis(10));
        // Quiet for longer than stall_after without any injected fault.
        let d = s.tick(SimTime::from_millis(500)).unwrap();
        assert!(
            matches!(&d[0], SupervisorDecision::Restart { reason, .. } if reason == "heartbeat-stale")
        );
    }

    #[test]
    fn restart_intensity_escalates_then_stays_escalated() {
        let mut s = Supervisor::new(&["b"], policy());
        for i in 0..2u64 {
            s.crash_component("b");
            let d = s.tick(SimTime::from_millis(10 + i)).unwrap();
            assert!(matches!(&d[0], SupervisorDecision::Restart { .. }));
        }
        // Third crash inside the 1s window: escalate.
        s.crash_component("b");
        let d = s.tick(SimTime::from_millis(20)).unwrap();
        assert_eq!(
            d,
            vec![SupervisorDecision::Escalate {
                component: "b".into()
            }]
        );
        assert!(s.escalated("b"));
        // Escalated components are no longer supervised.
        assert!(s.tick(SimTime::from_millis(21)).unwrap().is_empty());
    }

    #[test]
    fn restart_window_slides() {
        let mut s = Supervisor::new(&["b"], policy());
        for t in [0u64, 500] {
            s.crash_component("b");
            assert_eq!(s.tick(SimTime::from_millis(10 + t)).unwrap().len(), 1);
        }
        // 1.6s later, both prior restarts fell out of the 1s window.
        s.crash_component("b");
        let d = s.tick(SimTime::from_millis(1_600)).unwrap();
        assert!(
            matches!(&d[0], SupervisorDecision::Restart { restarts_in_window, .. } if *restarts_in_window == 1)
        );
        assert_eq!(s.restarts("b"), 1); // pruned log only counts the window
    }

    /// Drives two restarts at t=0 and t=500ms (filling the 1s window of
    /// [`policy`]) and leaves a third crash pending.
    fn filled_window() -> Supervisor {
        let mut s = Supervisor::new(&["b"], policy());
        for t in [0u64, 500] {
            s.crash_component("b");
            assert_eq!(s.tick(SimTime::from_millis(t)).unwrap().len(), 1);
        }
        s.crash_component("b");
        s
    }

    #[test]
    fn restart_exactly_at_the_window_edge_still_counts() {
        // now - window == 0 == the first restart's stamp: the inclusive
        // edge keeps it in the window, so the count is 2 >= max 2 and the
        // third crash escalates.
        let mut s = filled_window();
        let d = s.tick(SimTime::from_millis(1_000)).unwrap();
        assert_eq!(
            d,
            vec![SupervisorDecision::Escalate {
                component: "b".into()
            }]
        );
    }

    #[test]
    fn restart_one_microsecond_past_the_edge_ages_out() {
        // One µs later the t=0 restart is strictly older than the window:
        // only the t=500ms restart remains, 1 < max 2, so the component
        // is restarted (and the new restart makes 2 in-window).
        let mut s = filled_window();
        let d = s.tick(SimTime::from_micros(1_000_001)).unwrap();
        assert!(
            matches!(
                &d[0],
                SupervisorDecision::Restart {
                    restarts_in_window, ..
                } if *restarts_in_window == 2
            ),
            "{d:?}"
        );
    }

    #[test]
    fn unknown_components_are_ignored() {
        let mut s = Supervisor::new(&["b"], policy());
        s.crash_component("ghost");
        s.stall_component("ghost");
        s.heartbeat("b", SimTime::from_millis(1));
        assert!(s.tick(SimTime::from_millis(2)).unwrap().is_empty());
    }
}
