//! An OTP-style supervisor for middleware components, built on the
//! autonomic-manager machinery.
//!
//! The paper's autonomic manager reacts to *application* symptoms
//! (resource failures, breaker trips). This module points the same MAPE-K
//! idea at the *middleware itself*: each supervised component (a broker
//! instance, a controller) emits heartbeats into the supervisor's own
//! runtime model — a [`StateManager`], so liveness symptoms are genuine
//! OCL-lite expressions over it — and the supervisor detects dead
//! (crashed) or wedged (stalled) components and decides between restarting
//! from the last checkpoint and escalating, under a bounded
//! restart-intensity policy (one-for-one restarts, escalate after
//! `max_restarts` within `window`).
//!
//! Crash vs stall mirrors OTP practice: a crash is detected immediately
//! (the supervisor holds the equivalent of a process link), while a stall
//! only shows up as heartbeat staleness and is detected on the first tick
//! after `stall_after` of silence.

use crate::state::StateManager;
use crate::{BrokerError, Result};
use mddsm_meta::constraint;
use mddsm_sim::fault::ComponentTarget;
use mddsm_sim::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Bounded-escalation restart policy (OTP "restart intensity").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestartPolicy {
    /// Restarts tolerated within [`RestartPolicy::window`] before the
    /// supervisor gives up on the component and escalates. Exactly
    /// `max_restarts` restarts are *performed*; the next unhealthy event
    /// while all of them are still inside the window (count `>=`
    /// `max_restarts`) escalates instead of restarting.
    pub max_restarts: u32,
    /// Sliding window for counting restarts. The window edge is
    /// *inclusive*: a restart that happened exactly `window` ago (its
    /// timestamp `>= now - window`) still counts against
    /// [`RestartPolicy::max_restarts`]; one virtual microsecond older and
    /// it ages out.
    pub window: SimDuration,
    /// Heartbeat staleness after which a silent component counts as
    /// wedged.
    pub stall_after: SimDuration,
}

impl Default for RestartPolicy {
    fn default() -> Self {
        RestartPolicy {
            max_restarts: 3,
            window: SimDuration::from_millis(5_000),
            stall_after: SimDuration::from_millis(300),
        }
    }
}

/// What the supervisor decided about one unhealthy component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SupervisorDecision {
    /// Restart the component from its last checkpoint (one-for-one).
    Restart {
        /// The unhealthy component.
        component: String,
        /// Which liveness symptom fired.
        reason: String,
        /// Restarts of this component inside the current window,
        /// counting this one.
        restarts_in_window: u32,
    },
    /// Too many restarts inside the window: give up and hand the failure
    /// to the next tier.
    Escalate {
        /// The component the supervisor gave up on.
        component: String,
    },
    /// The component has a designated reachable standby: promote the
    /// standby instead of restarting. The failed component leaves
    /// supervision until [`Supervisor::rejoin`].
    Failover {
        /// The failed (or force-failed-over) primary.
        component: String,
        /// The standby being promoted.
        standby: String,
        /// Which liveness symptom fired (`forced` for drills).
        reason: String,
        /// The new fencing epoch the promoted standby must journal.
        epoch: u64,
    },
    /// A runtime monitor tripped on the component: its model diverged
    /// from its own invariants while the process is still alive, so
    /// neither restart nor failover fits — the caller must stop trusting
    /// its outputs and repair the model (typically
    /// [`crate::engine::GenericBroker::rollback_to_snapshot`]) before the
    /// component rejoins service.
    Quarantine {
        /// The component whose monitor tripped.
        component: String,
        /// The tripped monitor's name.
        monitor: String,
    },
    /// The component's durable journal failed verification
    /// ([`crate::BrokerError::JournalDamaged`]) and it has a designated
    /// reachable standby: heal the journal from the standby's mirror
    /// (anti-entropy, [`crate::replication::repair_journal`]) and resume
    /// ordinary recovery. When no standby exists the symptom degrades to
    /// [`SupervisorDecision::Quarantine`] instead — there is nothing to
    /// repair from, so the component must not serve from a lying disk.
    RepairJournal {
        /// The component whose journal is damaged.
        component: String,
        /// The standby whose mirror the journal is healed from.
        standby: String,
        /// What recovery reported (the `JournalDamaged` rendering).
        reason: String,
    },
    /// The component regressed during a live-upgrade probation window —
    /// a runtime monitor tripped or brownout deepened under the candidate
    /// model — so the upgrade must be rolled back to the pre-upgrade
    /// verified snapshot and old model
    /// ([`crate::evolution::LiveUpgrade::rollback`]).
    RollbackUpgrade {
        /// The component serving under the regressing candidate.
        component: String,
        /// What regressed (monitor name or brownout signal).
        reason: String,
    },
}

impl SupervisorDecision {
    /// The component the decision is about.
    pub fn component(&self) -> &str {
        match self {
            SupervisorDecision::Restart { component, .. }
            | SupervisorDecision::Escalate { component }
            | SupervisorDecision::Failover { component, .. }
            | SupervisorDecision::Quarantine { component, .. }
            | SupervisorDecision::RepairJournal { component, .. }
            | SupervisorDecision::RollbackUpgrade { component, .. } => component,
        }
    }
}

/// A heartbeat-driven supervisor over named middleware components.
#[derive(Debug)]
pub struct Supervisor {
    /// The supervisor's own runtime model: `hb_<c>` (last heartbeat, µs),
    /// `crashed_<c>` / `wedged_<c>` flags, `restarts_<c>` counters — all
    /// OCL-addressable.
    state: StateManager,
    policy: RestartPolicy,
    components: Vec<String>,
    /// Virtual-time stamps of past restarts, per component (for the
    /// sliding restart-intensity window).
    restart_log: BTreeMap<String, Vec<u64>>,
    escalated: Vec<String>,
    /// primary -> designated hot standby.
    standbys: BTreeMap<String, String>,
    /// primary -> its replica set (quorum failover: on primary loss the
    /// reachable member with the longest quorum-committed prefix is
    /// elected and the survivors are re-parented under it).
    replica_sets: BTreeMap<String, Vec<String>>,
    /// Components failed over and awaiting [`Supervisor::rejoin`].
    awaiting_rejoin: Vec<String>,
    /// Forced failovers queued by [`ComponentTarget::failover_to`].
    forced: Vec<(String, String)>,
    /// Fencing epoch; bumped by every promotion.
    epoch: u64,
    /// `(epoch, promoted component)` per promotion, in order.
    promotions: Vec<(u64, String)>,
}

fn key(prefix: &str, component: &str) -> String {
    // State keys are OCL identifiers: dots in component names would split
    // attribute navigation, so they are flattened.
    format!("{prefix}_{}", component.replace('.', "_"))
}

impl Supervisor {
    /// A supervisor over `components`, all initially healthy with a
    /// heartbeat at time zero.
    pub fn new(components: &[&str], policy: RestartPolicy) -> Self {
        let mut state = StateManager::new();
        for c in components {
            state.set_int(&key("hb", c), 0);
            state.set_int(&key("crashed", c), 0);
            state.set_int(&key("wedged", c), 0);
            state.set_int(&key("partitioned", c), 0);
        }
        state.set_int("epoch", 1);
        Supervisor {
            state,
            policy,
            components: components.iter().map(|c| (*c).to_owned()).collect(),
            restart_log: BTreeMap::new(),
            escalated: Vec::new(),
            standbys: BTreeMap::new(),
            replica_sets: BTreeMap::new(),
            awaiting_rejoin: Vec::new(),
            forced: Vec::new(),
            epoch: 1,
            promotions: Vec::new(),
        }
    }

    /// Records a heartbeat from a live component. A wedged component's
    /// heartbeats are suppressed — that is what being wedged means — and
    /// so are a partitioned component's: it may be alive, but its
    /// heartbeats cannot reach the supervisor.
    pub fn heartbeat(&mut self, component: &str, now: SimTime) {
        if self.state.int(&key("wedged", component)) == Some(1)
            || self.state.int(&key("crashed", component)) == Some(1)
            || self.state.int(&key("partitioned", component)) == Some(1)
        {
            return;
        }
        self.state
            .set_int(&key("hb", component), now.as_micros() as i64);
    }

    /// Designates `standby` as the hot standby of `primary`: as long as
    /// the standby is reachable, an unhealthy primary is failed over to
    /// it instead of restarted. Unknown components are ignored.
    pub fn designate_standby(&mut self, primary: &str, standby: &str) {
        if self.known(primary) && self.known(standby) && primary != standby {
            self.standbys.insert(primary.to_owned(), standby.to_owned());
            self.state.set_str(&key("standby", primary), standby);
        }
    }

    /// Designates the replica set of `primary`: on primary loss the
    /// supervisor polls the members, elects the reachable one with the
    /// longest quorum-committed prefix (see
    /// [`Supervisor::note_replica_lsn`]) under a bumped epoch, and
    /// re-parents the survivors under it. Unknown members and the
    /// primary itself are dropped from the set; an all-unknown set is
    /// ignored.
    pub fn designate_replica_set(&mut self, primary: &str, replicas: &[&str]) {
        if !self.known(primary) {
            return;
        }
        let set: Vec<String> = replicas
            .iter()
            .filter(|r| self.known(r) && **r != primary)
            .map(|r| (*r).to_owned())
            .collect();
        if !set.is_empty() {
            self.replica_sets.insert(primary.to_owned(), set);
        }
    }

    /// Adds one member to `primary`'s replica set (the rejoin path for a
    /// healed ex-primary re-entering as a replica). Idempotent; unknown
    /// components are ignored.
    pub fn add_replica(&mut self, primary: &str, node: &str) {
        if self.known(primary) && self.known(node) && primary != node {
            let set = self.replica_sets.entry(primary.to_owned()).or_default();
            if !set.iter().any(|n| n == node) {
                set.push(node.to_owned());
            }
        }
    }

    /// The designated replica set of `primary`, if any.
    pub fn replica_set(&self, primary: &str) -> Option<&[String]> {
        self.replica_sets.get(primary).map(Vec::as_slice)
    }

    /// Reports the newest state LSN applied on a replica — the
    /// supervisor's poll result, kept OCL-addressable under `lsn_<c>` so
    /// the election is a query over the supervisor's own runtime model.
    /// Unknown components are ignored.
    pub fn note_replica_lsn(&mut self, component: &str, lsn: u64) {
        if self.known(component) {
            self.state.set_int(&key("lsn", component), lsn as i64);
        }
    }

    /// Elects the failover target from `candidates`: the reachable member
    /// with the largest reported LSN, ties broken by slice order — every
    /// poller reaches the same answer deterministically. `None` when no
    /// member is reachable.
    fn elect(&self, candidates: &[String]) -> Option<String> {
        let mut best: Option<(&String, i64)> = None;
        for c in candidates {
            if !self.known(c) || !self.reachable(c) {
                continue;
            }
            let lsn = self.state.int(&key("lsn", c)).unwrap_or(0);
            match best {
                Some((_, b)) if lsn <= b => {}
                _ => best = Some((c, lsn)),
            }
        }
        best.map(|(c, _)| c.clone())
    }

    /// After promoting `new_primary` out of `old_primary`'s replica set,
    /// re-parents the surviving members under the new primary.
    fn reparent_after_promotion(&mut self, old_primary: &str, new_primary: &str) {
        if let Some(mut set) = self.replica_sets.remove(old_primary) {
            set.retain(|n| n != new_primary);
            if !set.is_empty() {
                self.replica_sets.insert(new_primary.to_owned(), set);
            }
        }
    }

    /// Marks a component (un)reachable over the network. Set by whoever
    /// watches the [`mddsm_sim::net::Network`] — a partitioned component
    /// stops being heard from and its symptom fires on the next tick.
    pub fn note_partitioned(&mut self, component: &str, partitioned: bool) {
        if self.known(component) {
            self.state
                .set_int(&key("partitioned", component), i64::from(partitioned));
        }
    }

    /// Feeds a runtime-monitor trip into the supervisor's runtime model
    /// as a symptom: the next [`Supervisor::tick`] emits a
    /// [`SupervisorDecision::Quarantine`] for the component. Unknown
    /// components are ignored.
    pub fn note_monitor_trip(&mut self, component: &str, monitor: &str) {
        if self.known(component) {
            self.state.set_int(&key("montrip", component), 1);
            self.state
                .set_str(&key("montrip_monitor", component), monitor);
        }
    }

    /// Feeds a journal-damage report
    /// ([`crate::BrokerError::JournalDamaged`]) into the supervisor's
    /// runtime model as a symptom: the next [`Supervisor::tick`] emits
    /// [`SupervisorDecision::RepairJournal`] when the component has a
    /// reachable designated standby (whose mirror can heal the journal),
    /// falling back to [`SupervisorDecision::Quarantine`] when none
    /// exists. Unknown components are ignored.
    pub fn note_journal_damage(&mut self, component: &str, detail: &str) {
        if self.known(component) {
            self.state.set_int(&key("jdamage", component), 1);
            self.state.set_str(&key("jdamage_why", component), detail);
        }
    }

    /// Feeds a probation-window regression (monitor trip or brownout
    /// signal under a freshly cut-over candidate model) into the
    /// supervisor's runtime model as a symptom: the next
    /// [`Supervisor::tick`] emits
    /// [`SupervisorDecision::RollbackUpgrade`] for the component. Unknown
    /// components are ignored.
    pub fn note_upgrade_regression(&mut self, component: &str, reason: &str) {
        if self.known(component) {
            self.state.set_int(&key("upreg", component), 1);
            self.state.set_str(&key("upreg_why", component), reason);
        }
    }

    /// Readmits a failed-over (or healed) component to supervision with
    /// clean flags and a fresh heartbeat. The caller re-registers it as a
    /// standby via [`Supervisor::designate_standby`] once it has been
    /// fenced and reconciled.
    pub fn rejoin(&mut self, component: &str, now: SimTime) {
        if !self.known(component) {
            return;
        }
        self.awaiting_rejoin.retain(|c| c != component);
        self.state.set_int(&key("crashed", component), 0);
        self.state.set_int(&key("wedged", component), 0);
        self.state.set_int(&key("partitioned", component), 0);
        self.state
            .set_int(&key("hb", component), now.as_micros() as i64);
    }

    fn known(&self, component: &str) -> bool {
        self.components.iter().any(|c| c == component)
    }

    /// Whether the standby is fit to take over right now.
    fn reachable(&self, component: &str) -> bool {
        self.state.int(&key("crashed", component)) != Some(1)
            && self.state.int(&key("wedged", component)) != Some(1)
            && self.state.int(&key("partitioned", component)) != Some(1)
            && !self.awaiting_rejoin.iter().any(|c| c == component)
            && !self.escalated(component)
    }

    /// Current fencing epoch (1 until the first promotion).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// `(epoch, promoted component)` per promotion, oldest first.
    pub fn promotions(&self) -> &[(u64, String)] {
        &self.promotions
    }

    /// Whether the component was failed over and has not rejoined yet.
    pub fn awaiting_rejoin(&self, component: &str) -> bool {
        self.awaiting_rejoin.iter().any(|c| c == component)
    }

    fn promote(&mut self, component: String, standby: String, reason: &str) -> SupervisorDecision {
        self.epoch += 1;
        self.standbys.remove(&component);
        self.awaiting_rejoin.push(component.clone());
        self.promotions.push((self.epoch, standby.clone()));
        self.state.set_int("epoch", self.epoch as i64);
        self.state.set_str("primary", &standby);
        SupervisorDecision::Failover {
            component,
            standby,
            reason: reason.to_owned(),
            epoch: self.epoch,
        }
    }

    /// The supervisor's runtime model (for symptom inspection in tests and
    /// experiments).
    pub fn state(&self) -> &StateManager {
        &self.state
    }

    /// Whether the supervisor has given up on the component.
    pub fn escalated(&self, component: &str) -> bool {
        self.escalated.iter().any(|c| c == component)
    }

    /// Total restarts performed for a component.
    pub fn restarts(&self, component: &str) -> u32 {
        self.restart_log
            .get(component)
            .map_or(0, |l| l.len() as u32)
    }

    /// The liveness symptom for one component, as an OCL-lite condition
    /// over the supervisor's runtime model. `deadline_us` is
    /// `now - stall_after`: a heartbeat older than it means wedged.
    fn symptom(&self, component: &str, deadline_us: i64) -> String {
        format!(
            "self.{crashed} = 1 or self.{wedged} = 1 or self.{part} = 1 or self.{hb} < {deadline_us}",
            crashed = key("crashed", component),
            wedged = key("wedged", component),
            part = key("partitioned", component),
            hb = key("hb", component),
        )
    }

    /// One monitoring cycle at virtual time `now`: evaluates every
    /// component's liveness symptom and returns a decision per unhealthy
    /// component. A `Restart` decision resets the component's flags and
    /// heartbeat (the caller performs the actual recovery); an `Escalate`
    /// removes it from supervision.
    pub fn tick(&mut self, now: SimTime) -> Result<Vec<SupervisorDecision>> {
        let now_us = now.as_micros();
        let deadline_us = now_us.saturating_sub(self.policy.stall_after.as_micros()) as i64;
        let mut decisions = Vec::new();
        // Forced failovers (drills) first: promote even a healthy primary,
        // as long as the standby could actually take over.
        for (component, standby) in std::mem::take(&mut self.forced) {
            if self.known(&component)
                && !self.escalated(&component)
                && !self.awaiting_rejoin(&component)
                && self.reachable(&standby)
            {
                self.reparent_after_promotion(&component, &standby);
                decisions.push(self.promote(component, standby, "forced"));
            }
        }
        // Monitor-trip symptoms: the component's process is alive but its
        // runtime model diverged — quarantine, don't restart. The flag is
        // consumed (one decision per trip); the tripped instance itself
        // stays latched until the caller repairs it.
        for component in self.components.clone() {
            if self.escalated(&component) || self.awaiting_rejoin(&component) {
                continue;
            }
            if self.state.int(&key("montrip", &component)) == Some(1) {
                self.state.set_int(&key("montrip", &component), 0);
                let monitor = self
                    .state
                    .str(&key("montrip_monitor", &component))
                    .unwrap_or_default()
                    .to_owned();
                decisions.push(SupervisorDecision::Quarantine { component, monitor });
            }
        }
        // Journal-damage symptoms: the component's durable store failed
        // verification. With a reachable standby the mirror can heal the
        // journal (anti-entropy); without one, the component must not
        // serve from a lying disk — quarantine. The flag is consumed (one
        // decision per report), like monitor trips.
        for component in self.components.clone() {
            if self.escalated(&component) || self.awaiting_rejoin(&component) {
                continue;
            }
            if self.state.int(&key("jdamage", &component)) == Some(1) {
                self.state.set_int(&key("jdamage", &component), 0);
                let reason = self
                    .state
                    .str(&key("jdamage_why", &component))
                    .unwrap_or_default()
                    .to_owned();
                // A single designated standby wins; otherwise the replica
                // set supplies the freshest reachable member as the
                // anti-entropy source.
                let standby = self
                    .standbys
                    .get(&component)
                    .filter(|s| self.reachable(s))
                    .cloned()
                    .or_else(|| {
                        self.replica_sets
                            .get(&component)
                            .and_then(|set| self.elect(set))
                    });
                decisions.push(match standby {
                    Some(standby) => SupervisorDecision::RepairJournal {
                        component,
                        standby,
                        reason,
                    },
                    None => SupervisorDecision::Quarantine {
                        component,
                        monitor: "journal".to_owned(),
                    },
                });
            }
        }
        // Upgrade-regression symptoms: a probation-window monitor trip or
        // brownout signal under a freshly cut-over candidate model. The
        // component is alive and its journal intact — the *model* is the
        // regression — so the decision is a rollback, not a restart. The
        // flag is consumed (one decision per regression).
        for component in self.components.clone() {
            if self.escalated(&component) || self.awaiting_rejoin(&component) {
                continue;
            }
            if self.state.int(&key("upreg", &component)) == Some(1) {
                self.state.set_int(&key("upreg", &component), 0);
                let reason = self
                    .state
                    .str(&key("upreg_why", &component))
                    .unwrap_or_default()
                    .to_owned();
                decisions.push(SupervisorDecision::RollbackUpgrade { component, reason });
            }
        }
        for component in self.components.clone() {
            if self.escalated(&component) || self.awaiting_rejoin(&component) {
                continue;
            }
            let src = self.symptom(&component, deadline_us);
            let expr = constraint::parse(&src)
                .map_err(|e| BrokerError::PolicyFailed(format!("symptom `{src}`: {e}")))?;
            if !self.state.eval(&expr)? {
                continue;
            }
            let reason = if self.state.int(&key("crashed", &component)) == Some(1) {
                "crashed"
            } else if self.state.int(&key("wedged", &component)) == Some(1) {
                "wedged"
            } else if self.state.int(&key("partitioned", &component)) == Some(1) {
                "partitioned"
            } else {
                "heartbeat-stale"
            };

            // A primary with a reachable hot standby fails over instead of
            // restarting; restart intensity is not charged (the standby is
            // fresh, not a restart of the failed component).
            if let Some(standby) = self.standbys.get(&component).cloned() {
                if self.reachable(&standby) {
                    decisions.push(self.promote(component, standby, reason));
                    continue;
                }
            }

            // A primary with a replica set holds a quorum election: the
            // reachable member with the longest reported prefix is
            // promoted under a bumped epoch and the survivors re-parent.
            if let Some(set) = self.replica_sets.get(&component).cloned() {
                if let Some(elected) = self.elect(&set) {
                    self.reparent_after_promotion(&component, &elected);
                    decisions.push(self.promote(component, elected, reason));
                    continue;
                }
            }

            // Restart-intensity check over the sliding window. Both
            // comparisons are deliberate about their edges: a restart
            // stamped exactly at `now - window` still counts (`>=`,
            // inclusive edge), and the supervisor escalates as soon as the
            // in-window count has *reached* `max_restarts` (`>=`) — i.e.
            // it performs at most `max_restarts` restarts per window and
            // the (max_restarts + 1)-th unhealthy event escalates.
            let log = self.restart_log.entry(component.clone()).or_default();
            let window_start = now_us.saturating_sub(self.policy.window.as_micros());
            log.retain(|t| *t >= window_start);
            if log.len() as u32 >= self.policy.max_restarts {
                self.escalated.push(component.clone());
                decisions.push(SupervisorDecision::Escalate {
                    component: component.clone(),
                });
                continue;
            }
            log.push(now_us);
            let restarts_in_window = log.len() as u32;
            self.state.set_int(&key("crashed", &component), 0);
            self.state.set_int(&key("wedged", &component), 0);
            self.state.set_int(&key("partitioned", &component), 0);
            self.state.set_int(&key("hb", &component), now_us as i64);
            self.state.bump(&key("restarts", &component), 1);
            decisions.push(SupervisorDecision::Restart {
                component,
                reason: reason.to_owned(),
                restarts_in_window,
            });
        }
        Ok(decisions)
    }
}

impl ComponentTarget for Supervisor {
    fn crash_component(&mut self, component: &str) {
        if self.components.iter().any(|c| c == component) {
            self.state.set_int(&key("crashed", component), 1);
        }
    }

    fn stall_component(&mut self, component: &str) {
        if self.components.iter().any(|c| c == component) {
            self.state.set_int(&key("wedged", component), 1);
        }
    }

    fn failover_to(&mut self, component: &str, standby: &str) {
        if self.known(component) && self.known(standby) && component != standby {
            self.forced.push((component.to_owned(), standby.to_owned()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> RestartPolicy {
        RestartPolicy {
            max_restarts: 2,
            window: SimDuration::from_millis(1_000),
            stall_after: SimDuration::from_millis(100),
        }
    }

    #[test]
    fn healthy_components_produce_no_decisions() {
        let mut s = Supervisor::new(&["broker"], policy());
        s.heartbeat("broker", SimTime::from_millis(50));
        assert!(s.tick(SimTime::from_millis(60)).unwrap().is_empty());
    }

    #[test]
    fn crash_is_detected_immediately_and_restarted() {
        let mut s = Supervisor::new(&["broker"], policy());
        s.heartbeat("broker", SimTime::from_millis(10));
        s.crash_component("broker");
        // Crashed components stop heartbeating.
        s.heartbeat("broker", SimTime::from_millis(11));
        let d = s.tick(SimTime::from_millis(12)).unwrap();
        assert_eq!(
            d,
            vec![SupervisorDecision::Restart {
                component: "broker".into(),
                reason: "crashed".into(),
                restarts_in_window: 1,
            }]
        );
        // Restart resets the flags: next tick is quiet.
        assert!(s.tick(SimTime::from_millis(13)).unwrap().is_empty());
        assert_eq!(s.restarts("broker"), 1);
        assert_eq!(s.state().int("restarts_broker"), Some(1));
    }

    #[test]
    fn stall_is_detected_by_heartbeat_staleness() {
        let mut s = Supervisor::new(&["ctl"], policy());
        s.heartbeat("ctl", SimTime::from_millis(10));
        s.stall_component("ctl");
        // Wedged: heartbeats are suppressed from now on.
        s.heartbeat("ctl", SimTime::from_millis(20));
        assert_eq!(s.state().int("hb_ctl"), Some(10_000));
        let d = s.tick(SimTime::from_millis(50)).unwrap();
        assert_eq!(d.len(), 1);
        assert!(matches!(&d[0], SupervisorDecision::Restart { reason, .. } if reason == "wedged"));
    }

    #[test]
    fn silent_component_goes_stale_without_a_fault_event() {
        let mut s = Supervisor::new(&["b"], policy());
        s.heartbeat("b", SimTime::from_millis(10));
        // Quiet for longer than stall_after without any injected fault.
        let d = s.tick(SimTime::from_millis(500)).unwrap();
        assert!(
            matches!(&d[0], SupervisorDecision::Restart { reason, .. } if reason == "heartbeat-stale")
        );
    }

    #[test]
    fn restart_intensity_escalates_then_stays_escalated() {
        let mut s = Supervisor::new(&["b"], policy());
        for i in 0..2u64 {
            s.crash_component("b");
            let d = s.tick(SimTime::from_millis(10 + i)).unwrap();
            assert!(matches!(&d[0], SupervisorDecision::Restart { .. }));
        }
        // Third crash inside the 1s window: escalate.
        s.crash_component("b");
        let d = s.tick(SimTime::from_millis(20)).unwrap();
        assert_eq!(
            d,
            vec![SupervisorDecision::Escalate {
                component: "b".into()
            }]
        );
        assert!(s.escalated("b"));
        // Escalated components are no longer supervised.
        assert!(s.tick(SimTime::from_millis(21)).unwrap().is_empty());
    }

    #[test]
    fn restart_window_slides() {
        let mut s = Supervisor::new(&["b"], policy());
        for t in [0u64, 500] {
            s.crash_component("b");
            assert_eq!(s.tick(SimTime::from_millis(10 + t)).unwrap().len(), 1);
        }
        // 1.6s later, both prior restarts fell out of the 1s window.
        s.crash_component("b");
        let d = s.tick(SimTime::from_millis(1_600)).unwrap();
        assert!(
            matches!(&d[0], SupervisorDecision::Restart { restarts_in_window, .. } if *restarts_in_window == 1)
        );
        assert_eq!(s.restarts("b"), 1); // pruned log only counts the window
    }

    /// Drives two restarts at t=0 and t=500ms (filling the 1s window of
    /// [`policy`]) and leaves a third crash pending.
    fn filled_window() -> Supervisor {
        let mut s = Supervisor::new(&["b"], policy());
        for t in [0u64, 500] {
            s.crash_component("b");
            assert_eq!(s.tick(SimTime::from_millis(t)).unwrap().len(), 1);
        }
        s.crash_component("b");
        s
    }

    #[test]
    fn restart_exactly_at_the_window_edge_still_counts() {
        // now - window == 0 == the first restart's stamp: the inclusive
        // edge keeps it in the window, so the count is 2 >= max 2 and the
        // third crash escalates.
        let mut s = filled_window();
        let d = s.tick(SimTime::from_millis(1_000)).unwrap();
        assert_eq!(
            d,
            vec![SupervisorDecision::Escalate {
                component: "b".into()
            }]
        );
    }

    #[test]
    fn restart_one_microsecond_past_the_edge_ages_out() {
        // One µs later the t=0 restart is strictly older than the window:
        // only the t=500ms restart remains, 1 < max 2, so the component
        // is restarted (and the new restart makes 2 in-window).
        let mut s = filled_window();
        let d = s.tick(SimTime::from_micros(1_000_001)).unwrap();
        assert!(
            matches!(
                &d[0],
                SupervisorDecision::Restart {
                    restarts_in_window, ..
                } if *restarts_in_window == 2
            ),
            "{d:?}"
        );
    }

    #[test]
    fn unknown_components_are_ignored() {
        let mut s = Supervisor::new(&["b"], policy());
        s.crash_component("ghost");
        s.stall_component("ghost");
        s.heartbeat("b", SimTime::from_millis(1));
        assert!(s.tick(SimTime::from_millis(2)).unwrap().is_empty());
    }

    #[test]
    fn crashed_primary_fails_over_to_its_standby() {
        let mut s = Supervisor::new(&["a", "b"], policy());
        s.designate_standby("a", "b");
        s.heartbeat("b", SimTime::from_millis(9));
        s.crash_component("a");
        let d = s.tick(SimTime::from_millis(10)).unwrap();
        assert_eq!(
            d,
            vec![SupervisorDecision::Failover {
                component: "a".into(),
                standby: "b".into(),
                reason: "crashed".into(),
                epoch: 2,
            }]
        );
        assert_eq!(s.epoch(), 2);
        assert_eq!(s.promotions(), &[(2, "b".to_string())]);
        assert!(s.awaiting_rejoin("a"));
        assert_eq!(s.state().int("epoch"), Some(2));
        assert_eq!(s.state().str("primary"), Some("b"));
        // The failed-over primary is out of supervision: no more decisions
        // about it, even though its crashed flag is still set.
        s.heartbeat("b", SimTime::from_millis(11));
        assert!(s.tick(SimTime::from_millis(12)).unwrap().is_empty());
        // After fencing + reconcile the old primary rejoins as standby.
        s.rejoin("a", SimTime::from_millis(20));
        s.designate_standby("b", "a");
        s.crash_component("b");
        let d = s.tick(SimTime::from_millis(21)).unwrap();
        assert!(matches!(
            &d[0],
            SupervisorDecision::Failover { standby, epoch: 3, .. } if standby == "a"
        ));
    }

    #[test]
    fn partition_fires_the_symptom_and_fails_over() {
        let mut s = Supervisor::new(&["a", "b"], policy());
        s.designate_standby("a", "b");
        s.heartbeat("b", SimTime::from_millis(9));
        s.note_partitioned("a", true);
        // A partitioned node's heartbeats never arrive.
        s.heartbeat("a", SimTime::from_millis(9));
        assert_eq!(s.state().int("hb_a"), Some(0));
        let d = s.tick(SimTime::from_millis(10)).unwrap();
        assert!(matches!(
            &d[0],
            SupervisorDecision::Failover { reason, .. } if reason == "partitioned"
        ));
    }

    #[test]
    fn unreachable_standby_falls_back_to_restart() {
        let mut s = Supervisor::new(&["a", "b"], policy());
        s.designate_standby("a", "b");
        // Simultaneous crash + partition: the standby cannot take over.
        s.crash_component("a");
        s.note_partitioned("b", true);
        let d = s.tick(SimTime::from_millis(10)).unwrap();
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(matches!(&d[0], SupervisorDecision::Restart { component, .. } if component == "a"));
        assert!(
            matches!(&d[1], SupervisorDecision::Restart { component, reason, .. }
                if component == "b" && reason == "partitioned")
        );
        assert_eq!(s.epoch(), 1, "no promotion happened");
    }

    #[test]
    fn monitor_trips_quarantine_without_charging_restart_intensity() {
        let mut s = Supervisor::new(&["b"], policy());
        s.heartbeat("b", SimTime::from_millis(9));
        s.note_monitor_trip("b", "nonneg");
        s.note_monitor_trip("ghost", "nonneg"); // unknown: ignored
        let d = s.tick(SimTime::from_millis(10)).unwrap();
        assert_eq!(
            d,
            vec![SupervisorDecision::Quarantine {
                component: "b".into(),
                monitor: "nonneg".into(),
            }]
        );
        assert_eq!(s.restarts("b"), 0, "quarantine is not a restart");
        // The symptom was consumed: quiet until the next trip.
        s.heartbeat("b", SimTime::from_millis(11));
        assert!(s.tick(SimTime::from_millis(12)).unwrap().is_empty());
    }

    #[test]
    fn journal_damage_repairs_from_a_reachable_standby() {
        let mut s = Supervisor::new(&["a", "b"], policy());
        s.designate_standby("a", "b");
        s.heartbeat("a", SimTime::from_millis(9));
        s.heartbeat("b", SimTime::from_millis(9));
        s.note_journal_damage("a", "crc mismatch at lsn 7");
        s.note_journal_damage("ghost", "ignored"); // unknown: ignored
        let d = s.tick(SimTime::from_millis(10)).unwrap();
        assert_eq!(
            d,
            vec![SupervisorDecision::RepairJournal {
                component: "a".into(),
                standby: "b".into(),
                reason: "crc mismatch at lsn 7".into(),
            }]
        );
        assert_eq!(s.restarts("a"), 0, "repair is not a restart");
        // The symptom was consumed: quiet until the next report.
        s.heartbeat("a", SimTime::from_millis(11));
        s.heartbeat("b", SimTime::from_millis(11));
        assert!(s.tick(SimTime::from_millis(12)).unwrap().is_empty());
    }

    #[test]
    fn journal_damage_without_a_usable_standby_quarantines() {
        // No standby designated: nothing can heal the journal, and the
        // component must not serve from a lying disk.
        let mut s = Supervisor::new(&["a", "b"], policy());
        s.heartbeat("a", SimTime::from_millis(9));
        s.heartbeat("b", SimTime::from_millis(9));
        s.note_journal_damage("a", "bit rot");
        let d = s.tick(SimTime::from_millis(10)).unwrap();
        assert_eq!(
            d,
            vec![SupervisorDecision::Quarantine {
                component: "a".into(),
                monitor: "journal".into(),
            }]
        );
        // A designated but unreachable standby is no better.
        let mut s = Supervisor::new(&["a", "b"], policy());
        s.designate_standby("a", "b");
        s.heartbeat("a", SimTime::from_millis(9));
        s.note_partitioned("b", true);
        s.note_journal_damage("a", "bit rot");
        let d = s.tick(SimTime::from_millis(10)).unwrap();
        assert!(
            d.iter().any(|x| matches!(
                x,
                SupervisorDecision::Quarantine { component, monitor }
                    if component == "a" && monitor == "journal"
            )),
            "{d:?}"
        );
    }

    #[test]
    fn quorum_election_promotes_the_longest_prefix_and_reparents() {
        let mut s = Supervisor::new(&["a", "b", "c", "d"], policy());
        s.designate_replica_set("a", &["b", "c", "d", "ghost"]);
        assert_eq!(
            s.replica_set("a").unwrap(),
            &["b", "c", "d"],
            "unknown members are dropped"
        );
        for n in ["b", "c", "d"] {
            s.heartbeat(n, SimTime::from_millis(9));
        }
        // Polled prefixes: c holds the longest quorum-committed prefix.
        s.note_replica_lsn("b", 7);
        s.note_replica_lsn("c", 9);
        s.note_replica_lsn("d", 9); // tie with c: slice order wins
        s.crash_component("a");
        let d = s.tick(SimTime::from_millis(10)).unwrap();
        assert_eq!(
            d,
            vec![SupervisorDecision::Failover {
                component: "a".into(),
                standby: "c".into(),
                reason: "crashed".into(),
                epoch: 2,
            }]
        );
        // Survivors re-parented under the elected primary; the shipped
        // one_primary_per_epoch keys update exactly as in the 2-node path.
        assert_eq!(s.replica_set("c").unwrap(), &["b", "d"]);
        assert!(s.replica_set("a").is_none());
        assert_eq!(s.state().str("primary"), Some("c"));
        assert_eq!(s.state().int("epoch"), Some(2));
        // The healed ex-primary rejoins the set as a replica.
        s.rejoin("a", SimTime::from_millis(20));
        s.add_replica("c", "a");
        assert_eq!(s.replica_set("c").unwrap(), &["b", "d", "a"]);
    }

    #[test]
    fn election_skips_unreachable_members_and_falls_back_to_restart() {
        let mut s = Supervisor::new(&["a", "b", "c"], policy());
        s.designate_replica_set("a", &["b", "c"]);
        for n in ["b", "c"] {
            s.heartbeat(n, SimTime::from_millis(9));
        }
        s.note_replica_lsn("b", 12);
        s.note_replica_lsn("c", 3);
        // The freshest member is partitioned: the election must pick the
        // reachable laggard, never the unreachable leader.
        s.note_partitioned("b", true);
        s.crash_component("a");
        let d = s.tick(SimTime::from_millis(10)).unwrap();
        assert!(
            d.iter().any(|x| matches!(
                x,
                SupervisorDecision::Failover { standby, .. } if standby == "c"
            )),
            "{d:?}"
        );
        // Whole set unreachable: the primary falls back to plain restart.
        let mut s = Supervisor::new(&["a", "b", "c"], policy());
        s.designate_replica_set("a", &["b", "c"]);
        s.note_partitioned("b", true);
        s.note_partitioned("c", true);
        s.crash_component("a");
        let d = s.tick(SimTime::from_millis(10)).unwrap();
        assert!(
            d.iter().any(|x| matches!(
                x,
                SupervisorDecision::Restart { component, .. } if component == "a"
            )),
            "{d:?}"
        );
        assert_eq!(s.epoch(), 1, "no promotion happened");
    }

    #[test]
    fn journal_damage_elects_a_repair_source_from_the_replica_set() {
        let mut s = Supervisor::new(&["a", "b", "c"], policy());
        s.designate_replica_set("a", &["b", "c"]);
        for n in ["a", "b", "c"] {
            s.heartbeat(n, SimTime::from_millis(9));
        }
        s.note_replica_lsn("b", 4);
        s.note_replica_lsn("c", 8);
        s.note_journal_damage("a", "crc mismatch");
        let d = s.tick(SimTime::from_millis(10)).unwrap();
        assert_eq!(
            d,
            vec![SupervisorDecision::RepairJournal {
                component: "a".into(),
                standby: "c".into(),
                reason: "crc mismatch".into(),
            }],
            "the freshest set member serves as the anti-entropy source"
        );
    }

    #[test]
    fn forced_failover_promotes_a_healthy_primary() {
        let mut s = Supervisor::new(&["a", "b"], policy());
        s.heartbeat("a", SimTime::from_millis(9));
        s.heartbeat("b", SimTime::from_millis(9));
        s.failover_to("a", "b");
        let d = s.tick(SimTime::from_millis(10)).unwrap();
        assert_eq!(
            d,
            vec![SupervisorDecision::Failover {
                component: "a".into(),
                standby: "b".into(),
                reason: "forced".into(),
                epoch: 2,
            }]
        );
        // The queue drains: no repeat on the next tick.
        s.heartbeat("b", SimTime::from_millis(11));
        assert!(s.tick(SimTime::from_millis(12)).unwrap().is_empty());
    }
}
