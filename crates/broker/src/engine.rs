//! The generic broker engine: interprets a broker model.
//!
//! "Calls and events are handled by selecting and dispatching appropriate
//! actions" (§V-A): the main manager's handlers match the incoming call
//! operation or event topic; each handler's actions are tried in order and
//! the first whose policy guard holds is dispatched against the underlying
//! (simulated) resource.

use crate::admission::adm_key;
use crate::admission::{AdmissionController, AdmissionDecision, CallMeta, ShedReason};
use crate::autonomic::{
    parse_step, AutonomicManager, AutonomicRule, BrownoutController, BrownoutTransition,
};
use crate::journal::{self, CommandKind, Journal, JournalRecord, MemorySink};
use crate::model::{broker_metamodel, Resilience, BROKER_METAMODEL};
use crate::monitor::{MonitorSet, MonitorTrip, TRIP_COUNTER_KEY};
use crate::state::StateManager;
use crate::{BrokerError, Result};
use mddsm_meta::constraint::{self, Expr};
use mddsm_meta::model::Model;
use mddsm_sim::resource::{Args, Outcome};
use mddsm_sim::{ResourceHub, SimDuration, SimTime};
use std::collections::BTreeMap;

/// Maximum fallback chain length (fallback of fallback of …).
const MAX_FALLBACK_DEPTH: usize = 4;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HandlerKind {
    Call,
    Event,
}

/// State-manager key for a breaker variable of a logical resource:
/// `breaker_<res>` (state), `breaker_<res>_failures`,
/// `breaker_<res>_opened_at_us`. Using the logical name keeps the keys
/// OCL-addressable (`self.breaker_media = "open"`).
pub(crate) fn breaker_key(resource: &str, suffix: &str) -> String {
    if suffix.is_empty() {
        format!("breaker_{resource}")
    } else {
        format!("breaker_{resource}_{suffix}")
    }
}

#[derive(Debug, Clone)]
struct ActionSpec {
    name: String,
    resource: String,
    operation: String,
    arg_mapping: Vec<(String, String)>,
    guard: Option<String>,
    state_effects: Vec<String>,
    resilience: Resilience,
    /// Model-declared work cost in virtual µs (`costUs`), consumed from the
    /// action's admission class's token bucket; 0 = uncontrolled.
    cost_us: u64,
    /// Admission class this action bills against (`admissionClass`); when
    /// absent, the caller's [`CallMeta`] class is used.
    admission_class: Option<String>,
}

#[derive(Debug, Clone)]
struct HandlerSpec {
    name: String,
    kind: HandlerKind,
    selector: String,
    actions: Vec<ActionSpec>,
}

/// Result of a brokered call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BrokerCallResult {
    /// Resource outcome.
    pub outcome: Outcome,
    /// Virtual-time cost of the whole call, including retries, backoff,
    /// and any fallback dispatch.
    pub cost: SimDuration,
    /// Name of the action that produced the outcome (the fallback's name
    /// when escalation happened).
    pub action: String,
    /// Resource invocations performed (0 when a breaker short-circuited).
    pub attempts: u32,
}

/// Typed outcome of an admission-gated call
/// ([`GenericBroker::call_admitted`]).
///
/// Shedding and deferral are *expected* overload responses, not faults, so
/// they are first-class variants rather than `BrokerError`s — the circuit
/// breaker and failure counters never see them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmittedOutcome {
    /// The call was admitted and dispatched.
    Executed {
        /// The underlying brokered-call result.
        result: BrokerCallResult,
        /// Time the call spent queued before admission (virtual µs).
        queue_delay_us: u64,
        /// Absolute deadline that governed admission (virtual µs; 0 when
        /// the call's class declares none).
        deadline_us: u64,
    },
    /// The call's class token bucket is empty; retry after `wait`.
    Deferred {
        /// Virtual time until the bucket refills enough to cover the cost.
        wait: SimDuration,
    },
    /// The call was rejected outright.
    Shed {
        /// Why admission rejected it.
        reason: ShedReason,
        /// The admission class that shed it.
        class: String,
    },
}

impl AdmittedOutcome {
    /// `true` when the call actually executed.
    pub fn is_executed(&self) -> bool {
        matches!(self, AdmittedOutcome::Executed { .. })
    }
}

/// What [`GenericBroker::recover`] did to rebuild the engine: how far the
/// journal reached and how much work replay had to redo.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// State ops replayed after the newest snapshot.
    pub ops_replayed: u64,
    /// Command records replayed after the newest snapshot.
    pub commands_replayed: u64,
    /// Version the newest snapshot carried.
    pub snapshot_version: u64,
    /// State version after recovery.
    pub recovered_version: u64,
    /// Virtual clock (µs) after recovery.
    pub clock_us: u64,
    /// Invariants checked on the recovered model.
    pub invariants_checked: u64,
    /// Unreadable trailing records the torn-tail policy dropped (0 for a
    /// clean journal). When nonzero, the truncation was journaled as a
    /// `Note` so the repair is itself durable.
    pub torn_records_dropped: u64,
}

/// A broker engine configured entirely by a broker model.
pub struct GenericBroker {
    name: String,
    handlers: Vec<HandlerSpec>,
    policies: BTreeMap<String, Expr>,
    bindings: BTreeMap<String, String>,
    state: StateManager,
    autonomic: AutonomicManager,
    /// Token-bucket admission control; `None` when the model declares no
    /// `AdmissionClass` objects (every call is then admitted untouched).
    admission: Option<AdmissionController>,
    /// Model-defined brownout (degraded-mode) controller; empty when the
    /// model declares no `BrownoutMode` objects.
    brownout: BrownoutController,
    hub: ResourceHub,
    calls: u64,
    events: u64,
    /// Virtual clock, advanced by invocation costs and retry backoff.
    clock_us: u64,
    /// Write-ahead journal; `None` until [`GenericBroker::enable_journal`].
    journal: Option<Journal>,
    /// Fencing epoch this engine serves under (1 until a promotion).
    epoch: u64,
    /// Runtime-model version this engine interprets (1 until a live
    /// upgrade cuts over; each cutover journals the new version).
    model_version: u64,
    /// Compiled in-stream runtime monitors; `None` when the model declares
    /// no `Monitor` objects.
    monitors: Option<MonitorSet>,
    /// Trips this instance observed, in order. The latches themselves live
    /// in the (journaled) runtime model; this is only the lifetime log.
    monitor_trips: Vec<MonitorTrip>,
    /// The load-time static-analysis report for the model this engine
    /// interprets. Always accepted (error-level findings refuse the model
    /// in [`GenericBroker::from_model`]); warnings and the
    /// footprint/conflict tables stay queryable here.
    analysis: mddsm_meta::analysis::AnalysisReport,
}

impl GenericBroker {
    /// Builds a broker from a broker model and the resource hub it will
    /// orchestrate. The model is conformance-checked against the Fig. 6
    /// metamodel, and all embedded expressions are parsed eagerly.
    pub fn from_model(model: &Model, hub: ResourceHub) -> Result<Self> {
        if model.metamodel_name() != BROKER_METAMODEL {
            return Err(BrokerError::InvalidModel(format!(
                "expected metamodel `{BROKER_METAMODEL}`, got `{}`",
                model.metamodel_name()
            )));
        }
        let mm = broker_metamodel();
        mddsm_meta::conformance::check(model, &mm)
            .map_err(|e| BrokerError::InvalidModel(e.to_string()))?;

        let name = model
            .all_of_class("BrokerLayer")
            .first()
            .and_then(|l| model.attr_str(*l, "name"))
            .unwrap_or("broker")
            .to_owned();

        // Handlers + actions.
        let mut handlers = Vec::new();
        for h in model.all_of_class("Handler") {
            let kind = match model.attr(h, "kind").and_then(|v| v.as_enum_literal()) {
                Some("Call") => HandlerKind::Call,
                Some("Event") => HandlerKind::Event,
                other => {
                    return Err(BrokerError::InvalidModel(format!(
                        "handler has bad kind {other:?}"
                    )))
                }
            };
            let mut actions = Vec::new();
            for a in model.refs(h, "actions") {
                let int_attr = |name: &str| model.attr_int(*a, name).unwrap_or(0).max(0) as u64;
                actions.push(ActionSpec {
                    name: model.attr_str(*a, "name").unwrap_or_default().to_owned(),
                    resource: model
                        .attr_str(*a, "resource")
                        .unwrap_or_default()
                        .to_owned(),
                    operation: model
                        .attr_str(*a, "operation")
                        .unwrap_or_default()
                        .to_owned(),
                    arg_mapping: model
                        .attr_all(*a, "argMapping")
                        .iter()
                        .filter_map(|v| v.as_str())
                        .filter_map(|s| {
                            s.split_once('=').map(|(k, v)| (k.to_owned(), v.to_owned()))
                        })
                        .collect(),
                    guard: model.attr_str(*a, "guard").map(str::to_owned),
                    cost_us: int_attr("costUs"),
                    admission_class: model.attr_str(*a, "admissionClass").map(str::to_owned),
                    state_effects: model
                        .attr_all(*a, "stateEffects")
                        .iter()
                        .filter_map(|v| v.as_str())
                        .map(str::to_owned)
                        .collect(),
                    resilience: Resilience {
                        max_retries: int_attr("maxRetries") as u32,
                        backoff_ms: int_attr("backoffMs"),
                        timeout_ms: int_attr("timeoutMs"),
                        breaker_threshold: int_attr("breakerThreshold") as u32,
                        breaker_cooldown_ms: int_attr("breakerCooldownMs"),
                        fallback: model.attr_str(*a, "fallback").map(str::to_owned),
                    },
                });
            }
            // Fallbacks must name a *different* sibling action.
            for action in &actions {
                if let Some(f) = &action.resilience.fallback {
                    if f == &action.name {
                        return Err(BrokerError::InvalidModel(format!(
                            "action `{}` falls back to itself",
                            action.name
                        )));
                    }
                    if !actions.iter().any(|s| &s.name == f) {
                        return Err(BrokerError::InvalidModel(format!(
                            "action `{}` falls back to unknown action `{f}`",
                            action.name
                        )));
                    }
                }
            }
            handlers.push(HandlerSpec {
                name: model.attr_str(h, "name").unwrap_or_default().to_owned(),
                kind,
                selector: model.attr_str(h, "selector").unwrap_or_default().to_owned(),
                actions,
            });
        }

        // Policies.
        let mut policies = BTreeMap::new();
        for p in model.all_of_class("Policy") {
            let pname = model.attr_str(p, "name").unwrap_or_default().to_owned();
            let src = model.attr_str(p, "expression").unwrap_or_default();
            let expr = constraint::parse(src).map_err(|e| {
                BrokerError::InvalidModel(format!("policy `{pname}` failed to parse: {e}"))
            })?;
            policies.insert(pname, expr);
        }

        // Resource bindings.
        let bindings = model
            .all_of_class("ResourceBinding")
            .into_iter()
            .filter_map(|b| {
                Some((
                    model.attr_str(b, "name")?.to_owned(),
                    model.attr_str(b, "resource")?.to_owned(),
                ))
            })
            .collect();

        // Autonomic rules: join symptom -> request -> plan by name.
        let mut rules = Vec::new();
        for s in model.all_of_class("Symptom") {
            let sname = model.attr_str(s, "name").unwrap_or_default().to_owned();
            let cond_src = model.attr_str(s, "condition").unwrap_or_default();
            let condition = constraint::parse(cond_src).map_err(|e| {
                BrokerError::InvalidModel(format!("symptom `{sname}` condition: {e}"))
            })?;
            // Find the request referencing the symptom, then its plan.
            let request = model
                .all_of_class("ChangeRequest")
                .into_iter()
                .find(|r| model.attr_str(*r, "symptom") == Some(&sname));
            let mut steps = Vec::new();
            if let Some(r) = request {
                let rname = model.attr_str(r, "name").unwrap_or_default().to_owned();
                if let Some(plan) = model
                    .all_of_class("ChangePlan")
                    .into_iter()
                    .find(|p| model.attr_str(*p, "request") == Some(&rname))
                {
                    for step in model.attr_all(plan, "steps") {
                        if let Some(s) = step.as_str() {
                            steps.push(parse_step(s)?);
                        }
                    }
                }
            }
            rules.push(AutonomicRule {
                symptom: sname,
                condition,
                steps,
            });
        }

        // Overload control: admission classes and brownout modes are part
        // of the model too. Class limits are seeded into the state manager
        // so change plans can retune them through the same OCL-addressable
        // keys recovery replays.
        let mut state = StateManager::new();
        let admission = AdmissionController::from_model(model);
        if let Some(ctrl) = &admission {
            ctrl.seed_state(&mut state);
        }
        let brownout = BrownoutController::from_model(model)?;

        // Runtime monitors: every model-declared `Monitor` is compiled
        // once, up front — a broken property surfaces as a deployment-time
        // `MonitorParse`, not a latent recovery surprise.
        let monitor_specs: Vec<(String, String)> = model
            .all_of_class("Monitor")
            .into_iter()
            .map(|mo| {
                (
                    model.attr_str(mo, "name").unwrap_or_default().to_owned(),
                    model
                        .attr_str(mo, "property")
                        .unwrap_or_default()
                        .to_owned(),
                )
            })
            .collect();
        let monitors = if monitor_specs.is_empty() {
            None
        } else {
            Some(MonitorSet::compile(&monitor_specs)?)
        };

        // Load-time static analysis (after the legacy checks above, so
        // their more specific typed errors keep precedence): error-level
        // findings refuse the model with the typed `AnalysisRejected`;
        // warnings ride along on the engine and are journaled once
        // journaling is enabled.
        let analysis = crate::analysis::analyze(model);
        if !analysis.is_accepted() {
            return Err(BrokerError::AnalysisRejected(
                analysis.errors().cloned().collect(),
            ));
        }

        let mut broker = GenericBroker {
            name,
            handlers,
            policies,
            bindings,
            state,
            autonomic: AutonomicManager::new(rules),
            admission,
            brownout,
            hub,
            calls: 0,
            events: 0,
            clock_us: 0,
            journal: None,
            epoch: 1,
            model_version: 1,
            monitors,
            monitor_trips: Vec::new(),
            analysis,
        };
        // In-stream monitoring derives its dirty-key set from the same
        // recorded ops the journal frames, so recording must be on even
        // before (or without) `enable_journal`.
        if broker.monitors.is_some() {
            broker.state.record_ops(true);
        }
        Ok(broker)
    }

    /// The layer name from the model.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Handles a call from the upper layer: selects a handler by operation
    /// name, the first guard-passing action, and dispatches it.
    pub fn call(&mut self, op: &str, args: &Args) -> Result<BrokerCallResult> {
        self.calls += 1;
        if let Err(e) = self.monitor_gate() {
            let result: Result<BrokerCallResult> = Err(e);
            self.journal_command(CommandKind::Call, op, &result);
            return result;
        }
        let result = self.dispatch(HandlerKind::Call, op, args);
        let result = self.monitor_commit(result);
        self.journal_command(CommandKind::Call, op, &result);
        result
    }

    /// Handles a call through model-defined admission control: the chosen
    /// action's declared `costUs` is billed against its admission class's
    /// token bucket *before* anything touches a resource, so shed and
    /// deferred calls never perturb breaker or failure accounting. Every
    /// decision is journaled as a command record (`<shed:…>` /
    /// `<deferred>`), making overload behavior crash-replayable.
    pub fn call_admitted(
        &mut self,
        op: &str,
        args: &Args,
        meta: &CallMeta,
    ) -> Result<AdmittedOutcome> {
        self.calls += 1;
        if let Err(e) = self.monitor_gate() {
            let result: Result<BrokerCallResult> = Err(e.clone());
            self.journal_command(CommandKind::Call, op, &result);
            return Err(e);
        }
        let (handler, action) = match self.select_action(HandlerKind::Call, op) {
            Ok(sel) => sel,
            Err(e) => {
                let result: Result<BrokerCallResult> = Err(e.clone());
                self.journal_command(CommandKind::Call, op, &result);
                return Err(e);
            }
        };
        // The action's model-declared class wins over the caller's claim.
        let class = action
            .admission_class
            .clone()
            .unwrap_or_else(|| meta.class.clone());
        let controlled = self.admission.as_ref().is_some_and(|c| c.has_class(&class));
        let eff = CallMeta {
            class: class.clone(),
            ..meta.clone()
        };
        let decision = match &self.admission {
            Some(ctrl) => ctrl.decide(&mut self.state, self.clock_us, &eff, action.cost_us),
            None => AdmissionDecision::Admit {
                queue_delay_us: self.clock_us.saturating_sub(meta.arrival_us),
                deadline_us: meta.deadline_us,
            },
        };
        match decision {
            AdmissionDecision::Admit {
                queue_delay_us,
                deadline_us,
            } => {
                if controlled {
                    self.state.bump(&adm_key(&class, "admitted"), 1);
                }
                let result = self.execute_action(&handler, &action, args, 0);
                let result = self.monitor_commit(result);
                self.journal_command(CommandKind::Call, op, &result);
                result.map(|r| AdmittedOutcome::Executed {
                    result: r,
                    queue_delay_us,
                    deadline_us,
                })
            }
            AdmissionDecision::Defer { wait } => {
                self.state.bump(&adm_key(&class, "deferred"), 1);
                self.journal_admission(op, "<deferred>");
                Ok(AdmittedOutcome::Deferred { wait })
            }
            AdmissionDecision::Shed { reason } => {
                self.state.bump(&adm_key(&class, "shed"), 1);
                self.state.bump("adm_shed_recent", 1);
                self.journal_admission(op, &format!("<shed:{reason}>"));
                Ok(AdmittedOutcome::Shed { reason, class })
            }
        }
    }

    /// Journals a shed/deferred admission decision as a synthetic command
    /// record: not ok, zero attempts, zero cost — replay counts it exactly
    /// like the live run did.
    fn journal_admission(&mut self, selector: &str, action: &str) {
        let synthetic: Result<BrokerCallResult> = Ok(BrokerCallResult {
            outcome: Outcome::Failed(action.to_owned()),
            cost: SimDuration::ZERO,
            action: action.to_owned(),
            attempts: 0,
        });
        self.journal_command(CommandKind::Call, selector, &synthetic);
    }

    /// Handles an event from the underlying resources.
    pub fn event(&mut self, topic: &str, payload: &Args) -> Result<BrokerCallResult> {
        self.events += 1;
        if let Err(e) = self.monitor_gate() {
            let result: Result<BrokerCallResult> = Err(e);
            self.journal_command(CommandKind::Event, topic, &result);
            return result;
        }
        let result = self.dispatch(HandlerKind::Event, topic, payload);
        let result = self.monitor_commit(result);
        self.journal_command(CommandKind::Event, topic, &result);
        result
    }

    fn dispatch(
        &mut self,
        kind: HandlerKind,
        selector: &str,
        args: &Args,
    ) -> Result<BrokerCallResult> {
        let (handler, action) = self.select_action(kind, selector)?;
        self.execute_action(&handler, &action, args, 0)
    }

    /// Finds the handler for `selector` and the first action whose policy
    /// guard holds against the current state — the selection half of
    /// dispatch, shared by [`GenericBroker::call`] and
    /// [`GenericBroker::call_admitted`] (which must know the chosen
    /// action's declared cost *before* deciding to execute it).
    fn select_action(
        &self,
        kind: HandlerKind,
        selector: &str,
    ) -> Result<(HandlerSpec, ActionSpec)> {
        let handler = self
            .handlers
            .iter()
            .find(|h| h.kind == kind && h.selector == selector)
            .cloned()
            .ok_or_else(|| BrokerError::NoHandler(selector.to_owned()))?;

        // Select the first action whose guard holds.
        let mut chosen = None;
        for action in &handler.actions {
            let passes = match &action.guard {
                None => true,
                Some(g) => {
                    let expr = self.policies.get(g).ok_or_else(|| {
                        BrokerError::PolicyFailed(format!(
                            "action `{}` guards on unknown policy `{g}`",
                            action.name
                        ))
                    })?;
                    self.state.eval(expr)?
                }
            };
            if passes {
                chosen = Some(action.clone());
                break;
            }
        }
        let action = chosen.ok_or_else(|| {
            BrokerError::NoAction(format!("{selector} (handler `{}`)", handler.name))
        })?;
        Ok((handler, action))
    }

    /// Executes one action under its model-defined resilience spec:
    /// circuit-breaker gate, attempt loop with per-attempt timeout budget
    /// and deterministic virtual-time exponential backoff, then fallback
    /// escalation. All waiting is charged to the virtual clock — nothing
    /// sleeps — so runs replay bit-for-bit.
    fn execute_action(
        &mut self,
        handler: &HandlerSpec,
        action: &ActionSpec,
        args: &Args,
        depth: usize,
    ) -> Result<BrokerCallResult> {
        let spec = action.resilience.clone();

        // -- Circuit-breaker gate ------------------------------------------
        if spec.breaker_threshold > 0 && self.breaker_state(&action.resource) == "open" {
            let opened = self
                .state
                .int(&breaker_key(&action.resource, "opened_at_us"))
                .unwrap_or(0);
            if self.clock_us >= opened.max(0) as u64 + spec.breaker_cooldown_ms * 1_000 {
                // Cooldown elapsed: allow one half-open trial.
                self.state
                    .set_str(&breaker_key(&action.resource, ""), "half-open");
            } else {
                // Fast-fail without touching the resource.
                let failed = BrokerCallResult {
                    outcome: Outcome::Failed(format!("circuit open for `{}`", action.resource)),
                    cost: SimDuration::ZERO,
                    action: action.name.clone(),
                    attempts: 0,
                };
                return self.escalate(handler, action, args, depth, failed);
            }
        }

        // -- Attempt loop ---------------------------------------------------
        // Map arguments: `$x` reads call argument x; literals pass through.
        let mapped: Args = action
            .arg_mapping
            .iter()
            .map(|(k, v)| {
                let value = match v.strip_prefix('$') {
                    Some(arg) => args
                        .iter()
                        .find(|(ak, _)| ak == arg)
                        .map(|(_, av)| av.clone())
                        .unwrap_or_default(),
                    None => v.clone(),
                };
                (k.clone(), value)
            })
            .collect();
        let resource = self
            .bindings
            .get(&action.resource)
            .cloned()
            .unwrap_or_else(|| action.resource.clone());

        let mut attempts = 0u32;
        let mut total = SimDuration::ZERO;
        let last_outcome = loop {
            attempts += 1;
            let (mut outcome, mut cost) = self.hub.invoke(&resource, &action.operation, &mapped);
            if spec.timeout_ms > 0 && cost > SimDuration::from_millis(spec.timeout_ms) {
                // The caller stops waiting at the budget: a slow success is
                // a failure, and only the budget is charged.
                outcome = Outcome::Failed(format!(
                    "`{}` exceeded its {}ms budget",
                    action.resource, spec.timeout_ms
                ));
                cost = SimDuration::from_millis(spec.timeout_ms);
            }
            total = total.saturating_add(cost);
            self.clock_us += cost.as_micros();

            if outcome.is_ok() {
                if spec.breaker_threshold > 0 {
                    self.state
                        .set_str(&breaker_key(&action.resource, ""), "closed");
                    self.state
                        .set_int(&breaker_key(&action.resource, "failures"), 0);
                }
                for effect in &action.state_effects {
                    self.state.apply_effect(effect)?;
                }
                return Ok(BrokerCallResult {
                    outcome,
                    cost: total,
                    action: action.name.clone(),
                    attempts,
                });
            }

            // Monitoring for the autonomic loop: every failed attempt is a
            // real failed invocation (it is in the hub log too).
            self.state.bump(&format!("failures_{}", action.resource), 1);

            let mut opened = false;
            if spec.breaker_threshold > 0 {
                let was_half_open = self.breaker_state(&action.resource) == "half-open";
                let fails = self
                    .state
                    .int(&breaker_key(&action.resource, "failures"))
                    .unwrap_or(0)
                    + 1;
                self.state
                    .set_int(&breaker_key(&action.resource, "failures"), fails);
                if was_half_open || fails >= i64::from(spec.breaker_threshold) {
                    self.state
                        .set_str(&breaker_key(&action.resource, ""), "open");
                    self.state.set_int(
                        &breaker_key(&action.resource, "opened_at_us"),
                        self.clock_us as i64,
                    );
                    opened = true;
                }
            }
            if opened || attempts > spec.max_retries {
                break outcome;
            }
            if spec.backoff_ms > 0 {
                // Deterministic exponential backoff, charged as virtual time.
                let backoff = SimDuration::from_millis(spec.backoff_ms << (attempts - 1).min(16));
                total = total.saturating_add(backoff);
                self.clock_us += backoff.as_micros();
            }
        };

        let failed = BrokerCallResult {
            outcome: last_outcome,
            cost: total,
            action: action.name.clone(),
            attempts,
        };
        self.escalate(handler, action, args, depth, failed)
    }

    /// Dispatches the action's fallback (if any) after `failed`; the failed
    /// attempts' cost and count carry over into the fallback's result.
    fn escalate(
        &mut self,
        handler: &HandlerSpec,
        action: &ActionSpec,
        args: &Args,
        depth: usize,
        failed: BrokerCallResult,
    ) -> Result<BrokerCallResult> {
        let Some(fb) = &action.resilience.fallback else {
            return Ok(failed);
        };
        if depth >= MAX_FALLBACK_DEPTH {
            return Ok(failed);
        }
        let fb_action = handler
            .actions
            .iter()
            .find(|a| &a.name == fb)
            .cloned()
            .ok_or_else(|| {
                BrokerError::NoAction(format!(
                    "fallback `{fb}` of action `{}` not found",
                    action.name
                ))
            })?;
        let mut result = self.execute_action(handler, &fb_action, args, depth + 1)?;
        result.cost = failed.cost.saturating_add(result.cost);
        result.attempts += failed.attempts;
        Ok(result)
    }

    /// Current circuit-breaker state for a logical resource ("closed"
    /// until the breaker has ever tripped).
    fn breaker_state(&self, resource: &str) -> String {
        self.state
            .str(&breaker_key(resource, ""))
            .unwrap_or("closed")
            .to_owned()
    }

    /// Runs one autonomic MAPE cycle; returns emitted event topics.
    pub fn autonomic_tick(&mut self) -> Result<Vec<String>> {
        let r = self
            .autonomic
            .tick(&mut self.state, &mut self.hub, &self.bindings);
        self.journal_state_ops();
        self.maybe_snapshot();
        r
    }

    /// Runs one brownout-control cycle: reads the admission metrics from
    /// state, enters/exits model-declared degraded modes with hysteresis,
    /// and journals the resulting state writes so recovery resumes in the
    /// same mode. Returns the transition taken (if any) and the event
    /// topics its change-plan steps emitted.
    pub fn brownout_tick(&mut self) -> Result<(Option<BrownoutTransition>, Vec<String>)> {
        let r = self
            .brownout
            .tick(&mut self.state, &mut self.hub, &self.bindings);
        self.journal_state_ops();
        self.maybe_snapshot();
        r
    }

    /// Mode-change transitions taken by the brownout controller so far
    /// (in this instance's lifetime — a recovered broker starts at 0 but
    /// resumes in the journaled mode).
    pub fn brownout_transitions(&self) -> u64 {
        self.brownout.transitions()
    }

    /// The current brownout mode name (`"full"` when not degraded).
    pub fn brownout_mode(&self) -> String {
        self.state.str("brownout_mode").unwrap_or("full").to_owned()
    }

    // -- Online runtime verification ---------------------------------------

    /// Pre-dispatch gate: once any monitor's trip is latched in the
    /// runtime model, every further command is refused (typed) until the
    /// violation is repaired or rolled back — a tripped deployment must
    /// not keep executing commands against a divergent model.
    fn monitor_gate(&self) -> Result<()> {
        if self.monitors.is_none() || self.state.int(TRIP_COUNTER_KEY).unwrap_or(0) == 0 {
            return Ok(());
        }
        let (monitor, detail) = self
            .monitors
            .iter()
            .flat_map(MonitorSet::monitors)
            .find(|m| self.state.str(m.trip_key()).is_some())
            .map(|m| {
                (
                    m.name().to_owned(),
                    format!("latched violation of `{}`", m.source()),
                )
            })
            .unwrap_or_else(|| ("mon".to_owned(), "latched violation".to_owned()));
        Err(BrokerError::MonitorTripped { monitor, detail })
    }

    /// Post-dispatch, pre-journal check: evaluates every monitor watching
    /// a key the command just wrote (the pending journal ops *are* the
    /// dirty set — no extra tracking), records verdicts into the runtime
    /// model, and turns a trip into a typed refusal of the violating call
    /// — before its command record is framed, so nothing externally
    /// visible ever rests on an unverified state.
    fn monitor_commit(&mut self, result: Result<BrokerCallResult>) -> Result<BrokerCallResult> {
        let Some(monitors) = &self.monitors else {
            return result;
        };
        let trips = monitors.check_live_pending(&mut self.state);
        if self.journal.is_none() {
            // Without a journal nothing drains the recorded ops; drop them
            // so monitoring alone cannot grow memory without bound.
            let _ = self.state.take_ops();
        }
        match trips.first() {
            Some(t) => {
                let err = BrokerError::MonitorTripped {
                    monitor: t.monitor.clone(),
                    detail: t.detail.clone(),
                };
                self.monitor_trips.extend(trips);
                Err(err)
            }
            None => result,
        }
    }

    /// Applies one raw (faulty) write straight into the runtime model —
    /// the injection point of the E10 invariant-violating-mutation
    /// campaign, standing in for a buggy change plan or a corrupted
    /// mutation. The write goes through the state manager like any other
    /// mutation (journaled, shipped to replicas) and the monitors see it
    /// in-stream, immediately: the returned trips are what the online
    /// verifier caught before any later command could act on the
    /// divergent model.
    pub fn corrupt_state(&mut self, key: &str, value: &str) -> Vec<MonitorTrip> {
        match value.parse::<i64>() {
            Ok(i) => self.state.set_int(key, i),
            Err(_) => self.state.set_str(key, value),
        }
        let trips = match &self.monitors {
            Some(m) => m.check_live(&mut self.state, &[key]),
            None => Vec::new(),
        };
        self.monitor_trips.extend(trips.iter().cloned());
        self.journal_state_ops();
        self.maybe_snapshot();
        if self.journal.is_none() {
            let _ = self.state.take_ops();
        }
        trips
    }

    /// Rolls the runtime model back to the newest **verified** journaled
    /// snapshot — the autonomic repair for a tripped monitor. A snapshot
    /// whose captured state carries a tripped latch (the periodic cadence
    /// can fire right after a violating write, trip latches included) is
    /// skipped: rolling back to it would restore the violation. The
    /// violating mutation and everything after it (including the trip
    /// latches, which were written after the chosen snapshot) are
    /// discarded, and a fresh snapshot of the restored state is appended
    /// under the *current* call/event counters, so replaying the journal
    /// reproduces the rolled-back state byte-identically. Returns the
    /// state version rolled back to.
    pub fn rollback_to_snapshot(&mut self) -> Result<u64> {
        let Some(j) = self.journal.as_ref() else {
            return Err(BrokerError::RecoveryDiverged(
                "rollback requires journaling".to_owned(),
            ));
        };
        let text = std::str::from_utf8(j.bytes())
            .map_err(|e| BrokerError::RecoveryDiverged(format!("journal is not UTF-8: {e}")))?;
        let mut clean = None;
        for line in text
            .lines()
            .rev()
            .filter(|l| journal::line_payload(l).starts_with("snap "))
        {
            let JournalRecord::Snapshot { state, .. } = journal::parse_line(line)? else {
                return Err(BrokerError::RecoveryDiverged(
                    "snapshot record is corrupt".to_owned(),
                ));
            };
            let mut probe = StateManager::new();
            probe.restore(&state);
            if probe.int(TRIP_COUNTER_KEY).unwrap_or(0) == 0 {
                clean = Some(state);
                break;
            }
        }
        let state = clean.ok_or_else(|| {
            BrokerError::RecoveryDiverged("no verified snapshot to roll back to".to_owned())
        })?;
        let _ = self.state.take_ops();
        self.state.restore(&state);
        let version = self.state.version();
        let rec = JournalRecord::Snapshot {
            state: self.state.snapshot(),
            clock_us: self.clock_us,
            calls: self.calls,
            events: self.events,
        };
        if let Some(j) = self.journal.as_mut() {
            j.record(&rec);
        }
        Ok(version)
    }

    /// The compiled monitor set, when the model declares monitors.
    pub fn monitors(&self) -> Option<&MonitorSet> {
        self.monitors.as_ref()
    }

    /// Trips this instance observed, in order.
    pub fn monitor_trips(&self) -> &[MonitorTrip] {
        &self.monitor_trips
    }

    /// `true` while a latched monitor trip is refusing commands.
    pub fn monitor_latched(&self) -> bool {
        self.state.int(TRIP_COUNTER_KEY).unwrap_or(0) != 0
    }

    /// The broker's virtual clock: total virtual time charged to calls
    /// handled so far (invocation costs, retry backoff, timeout budgets).
    pub fn now(&self) -> SimTime {
        SimTime::from_micros(self.clock_us)
    }

    /// Advances the virtual clock by `d` (idle time between calls — lets a
    /// fault driver or experiment align external events with breaker
    /// cooldowns).
    pub fn advance_clock(&mut self, d: SimDuration) {
        self.clock_us += d.as_micros();
        let clock_us = self.clock_us;
        if let Some(j) = self.journal.as_mut() {
            j.record(&JournalRecord::Clock { clock_us });
        }
    }

    // -- Write-ahead journaling + crash recovery ---------------------------

    /// Turns on write-ahead journaling over a fresh in-memory sink, taking
    /// an initial full snapshot (so replay always has a base even when the
    /// state was already mutated) and then a new snapshot every
    /// `snapshot_every` journal entries. Records are CRC-framed.
    pub fn enable_journal(&mut self, snapshot_every: u64) {
        self.enable_journal_with(snapshot_every, true);
    }

    /// Like [`GenericBroker::enable_journal`] but choosing the journal
    /// dialect: `framed` wraps every record in the versioned CRC32 frame
    /// (the default elsewhere), `false` writes the legacy unframed format
    /// — the naive baseline E13 measures against.
    pub fn enable_journal_with(&mut self, snapshot_every: u64, framed: bool) {
        let mut j = Journal::over(Box::new(MemorySink::new()), snapshot_every);
        j.set_framed(framed);
        // Deployment-time analysis warnings go into the durable stream
        // first, so a post-mortem always sees what the analyzer flagged.
        for w in self.analysis.warnings() {
            j.record(&JournalRecord::Note {
                text: format!("analysis {w}"),
            });
        }
        j.record(&JournalRecord::Snapshot {
            state: self.state.snapshot(),
            clock_us: self.clock_us,
            calls: self.calls,
            events: self.events,
        });
        self.state.record_ops(true);
        self.journal = Some(j);
    }

    /// The journal's full byte contents — what survives a crash. `None`
    /// when journaling was never enabled.
    pub fn journal_bytes(&self) -> Option<&[u8]> {
        self.journal.as_ref().map(Journal::bytes)
    }

    /// Appends a free-form `Note` to the journal (operator breadcrumbs,
    /// repair provenance). A no-op when journaling is off; replay ignores
    /// notes, so this never perturbs recovery.
    pub fn journal_note(&mut self, text: &str) {
        if let Some(j) = self.journal.as_mut() {
            j.record(&JournalRecord::Note {
                text: text.to_owned(),
            });
        }
    }

    /// `(entries, snapshots)` appended so far, when journaling is on.
    pub fn journal_stats(&self) -> Option<(u64, u64)> {
        self.journal.as_ref().map(|j| (j.entries(), j.snapshots()))
    }

    /// The fencing epoch this engine serves under (1 until a failover
    /// promotes it).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Adopts a new fencing epoch (a promotion), journaling the fence so
    /// recovery — and any replication peer — refuses records from older
    /// epochs from here on.
    pub fn adopt_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
        if let Some(j) = self.journal.as_mut() {
            j.record(&JournalRecord::Epoch { epoch });
        }
    }

    /// The runtime-model version this engine currently interprets (1
    /// until a live upgrade cuts over).
    pub fn model_version(&self) -> u64 {
        self.model_version
    }

    /// Swaps the compiled interpretation of this engine for `model`'s —
    /// handlers, policies, bindings, autonomic rules, admission classes,
    /// brownout modes, monitors, and the analysis report — while keeping
    /// the live runtime state, journal, virtual clock, epoch, counters,
    /// and resource hub untouched. The candidate passes the full
    /// `from_model` validation pipeline (conformance, eager expression
    /// parsing, monitor compilation, static analysis) before anything is
    /// grafted, so a bad candidate leaves the engine exactly as it was.
    ///
    /// This changes only the in-memory interpretation; it journals
    /// nothing. Callers drive the durable protocol through
    /// [`GenericBroker::commit_upgrade`] (see [`crate::evolution`]).
    pub fn adopt_model(&mut self, model: &Model) -> Result<()> {
        // Compile into a throwaway engine first: all-or-nothing.
        let compiled = Self::from_model(model, ResourceHub::new(0))?;
        self.name = compiled.name;
        self.handlers = compiled.handlers;
        self.policies = compiled.policies;
        self.bindings = compiled.bindings;
        self.autonomic = compiled.autonomic;
        // The throwaway's freshly seeded state is discarded: the live
        // state already holds the old model's admission cells, and the
        // evolution protocol journals seeds for *new* classes as
        // migration ops inside the cutover record.
        self.admission = compiled.admission;
        self.brownout = compiled.brownout;
        self.monitors = compiled.monitors;
        self.analysis = compiled.analysis;
        if self.monitors.is_some() {
            self.state.record_ops(true);
        }
        Ok(())
    }

    /// Durably commits a model cutover: flushes pending state ops,
    /// checkpoints the pre-upgrade state, applies the migration writes
    /// `mutate` performs, and journals them *inside* a single versioned
    /// [`JournalRecord::Upgrade`] line — the torn-tail policy keeps or
    /// drops that line wholesale, so a crash anywhere in the protocol
    /// recovers to pure pre-upgrade or pure post-upgrade state, never a
    /// hybrid. A fresh post-upgrade snapshot follows. Returns the state
    /// version at the commit point.
    ///
    /// `model_version` is the version the engine serves from here on (a
    /// rollback passes the pre-upgrade version again); `tag` is
    /// human-readable provenance journaled with the record.
    pub fn commit_upgrade(
        &mut self,
        model_version: u64,
        tag: &str,
        mutate: &mut dyn FnMut(&mut StateManager),
    ) -> Result<u64> {
        if self.journal.is_none() {
            return Err(BrokerError::UpgradeRefused {
                stage: "cutover".into(),
                reasons: vec!["journaling is off: a cutover must be durable".into()],
            });
        }
        // WAL order: everything the old model wrote lands before the
        // pre-upgrade checkpoint.
        self.journal_state_ops();
        let pre = JournalRecord::Snapshot {
            state: self.state.snapshot(),
            clock_us: self.clock_us,
            calls: self.calls,
            events: self.events,
        };
        if let Some(j) = self.journal.as_mut() {
            j.record(&pre);
        }
        self.state.record_ops(true);
        mutate(&mut self.state);
        let ops = self.state.take_ops();
        let up = JournalRecord::Upgrade {
            version: model_version,
            tag: tag.to_owned(),
            ops,
        };
        if let Some(j) = self.journal.as_mut() {
            j.record(&up);
        }
        self.model_version = model_version;
        let post = JournalRecord::Snapshot {
            state: self.state.snapshot(),
            clock_us: self.clock_us,
            calls: self.calls,
            events: self.events,
        };
        if let Some(j) = self.journal.as_mut() {
            j.record(&post);
        }
        Ok(self.state.version())
    }

    /// Compacts the journal down to the newest snapshot at or below `lsn`
    /// (typically the replica-acknowledged LSN). Returns bytes reclaimed;
    /// 0 when journaling is off or no snapshot qualifies.
    pub fn truncate_journal_to(&mut self, lsn: u64) -> usize {
        self.journal.as_mut().map_or(0, |j| j.truncate_to(lsn))
    }

    /// Drains pending state ops into the journal (WAL order: state ops
    /// precede the command record that caused them). Runs of consecutive
    /// writes to the same key within the frame are coalesced into one
    /// [`JournalRecord::OpCoalesced`] carrying only the final value —
    /// exact, because nothing can observe the state between the ops of
    /// one frame — which keeps hot keys (token buckets, shed counters)
    /// from ballooning the journal under load.
    fn journal_state_ops(&mut self) {
        if self.journal.is_none() {
            return;
        }
        let ops = self.state.take_ops();
        if let Some(j) = self.journal.as_mut() {
            let mut i = 0;
            while i < ops.len() {
                let mut end = i;
                while end + 1 < ops.len() && ops[end + 1].key() == ops[i].key() {
                    end += 1;
                }
                if end == i {
                    j.record(&JournalRecord::Op(ops[i].clone()));
                } else {
                    j.record(&JournalRecord::OpCoalesced {
                        first_lsn: ops[i].lsn(),
                        op: ops[end].clone(),
                    });
                }
                i = end + 1;
            }
        }
    }

    /// Journals one executed command (even a failed dispatch — the
    /// call/event counters bumped, and recovery must agree with them).
    fn journal_command(
        &mut self,
        kind: CommandKind,
        selector: &str,
        result: &Result<BrokerCallResult>,
    ) {
        if self.journal.is_none() {
            return;
        }
        self.journal_state_ops();
        let clock_us = self.clock_us;
        let rec = match result {
            Ok(r) => JournalRecord::Command {
                clock_us,
                kind,
                selector: selector.to_owned(),
                action: r.action.clone(),
                ok: r.outcome.is_ok(),
                attempts: r.attempts,
                cost_us: r.cost.as_micros(),
            },
            Err(e) => JournalRecord::Command {
                clock_us,
                kind,
                selector: selector.to_owned(),
                action: format!("<{e}>"),
                ok: false,
                attempts: 0,
                cost_us: 0,
            },
        };
        if let Some(j) = self.journal.as_mut() {
            j.record(&rec);
        }
        self.maybe_snapshot();
    }

    /// Takes a periodic snapshot when the journal's policy says one is due,
    /// bounding how much tail the next recovery has to replay.
    fn maybe_snapshot(&mut self) {
        let due = self.journal.as_ref().is_some_and(Journal::snapshot_due);
        if !due {
            return;
        }
        let snap = JournalRecord::Snapshot {
            state: self.state.snapshot(),
            clock_us: self.clock_us,
            calls: self.calls,
            events: self.events,
        };
        if let Some(j) = self.journal.as_mut() {
            j.record(&snap);
        }
    }

    /// Rebuilds a broker deterministically from its model, the surviving
    /// resource hub, and the journal bytes of the crashed instance:
    /// restores the newest snapshot, replays the tail (LSN-checked), then
    /// verifies each OCL-lite `invariant` against the recovered runtime
    /// model through compiled monitors — refusing with the typed
    /// [`BrokerError::MonitorParse`] when one fails to parse and
    /// [`BrokerError::MonitorTripped`] when one fails to evaluate or
    /// evaluates to `false` (journal-level divergence — LSN gaps, corrupt
    /// records — is still [`BrokerError::RecoveryDiverged`]).
    ///
    /// The recovered broker journals into a sink pre-loaded with the old
    /// bytes and appends a fresh snapshot, so a later crash replays only a
    /// short tail.
    ///
    /// A torn tail (crash mid-append left the final record(s) unreadable)
    /// is self-healing: the journal is truncated to the last complete
    /// record, the truncation is journaled as a `Note`, and recovery
    /// continues — the report carries `torn_records_dropped`. Interior
    /// damage is the typed [`BrokerError::JournalDamaged`]; see
    /// [`crate::replication::recover_with_anti_entropy`] for the standby
    /// repair path.
    pub fn recover(
        model: &Model,
        hub: ResourceHub,
        journal_bytes: &[u8],
        invariants: &[&str],
    ) -> Result<(Self, RecoveryReport)> {
        let mut broker = Self::from_model(model, hub)?;
        let recovered = journal::replay(journal_bytes)?;

        // Recovery-time invariant checking goes through the same compiled
        // monitors as the online path (one compile, pre-resolved state
        // paths) instead of re-parsing every string on every recover. A
        // broken invariant is the typed [`BrokerError::MonitorParse`], a
        // violated one the typed [`BrokerError::MonitorTripped`] — callers
        // can finally tell them apart. Already-latched trips pass: the
        // recovered instance resumes exactly where the live run was,
        // refusing commands until repaired.
        MonitorSet::from_invariants(invariants)?.check_full(&recovered.state)?;

        broker.state = recovered.state;
        broker.clock_us = recovered.clock_us;
        broker.calls = recovered.calls;
        broker.events = recovered.events;
        broker.epoch = recovered.epoch;
        broker.model_version = recovered.model_version;

        // Resume journaling over the inherited history — cut at the torn
        // tail first, so the unreadable garbage never survives into the
        // resumed journal — and checkpoint the recovered state
        // immediately. The resumed journal keeps its history's dialect
        // (framed vs legacy) so the byte stream stays self-consistent.
        let mut inherited = journal_bytes.to_vec();
        if let Some(t) = &recovered.torn {
            inherited.truncate(t.offset as usize);
        }
        let framed = inherited.is_empty() || journal::is_framed(&inherited);
        let mut j = Journal::over(Box::new(MemorySink::with_bytes(inherited)), 0);
        j.set_framed(framed);
        if let Some(t) = &recovered.torn {
            j.record(&JournalRecord::Note {
                text: format!(
                    "torn tail: dropped {} unreadable record(s) at offset {} after lsn {}: {}",
                    t.dropped_lines, t.offset, t.last_lsn, t.why
                ),
            });
        }
        j.record(&JournalRecord::Snapshot {
            state: broker.state.snapshot(),
            clock_us: broker.clock_us,
            calls: broker.calls,
            events: broker.events,
        });
        broker.state.record_ops(true);
        broker.journal = Some(j);

        let report = RecoveryReport {
            ops_replayed: recovered.ops_replayed,
            commands_replayed: recovered.commands_replayed,
            snapshot_version: recovered.snapshot_version,
            recovered_version: broker.state.version(),
            clock_us: broker.clock_us,
            invariants_checked: invariants.len() as u64,
            torn_records_dropped: recovered.torn.as_ref().map_or(0, |t| t.dropped_lines),
        };
        Ok((broker, report))
    }

    /// Recovers journaling cadence after [`GenericBroker::recover`] (which
    /// resumes with periodic snapshots off): a snapshot every
    /// `snapshot_every` entries.
    pub fn set_snapshot_every(&mut self, snapshot_every: u64) {
        if let Some(j) = self.journal.as_mut() {
            j.set_snapshot_every(snapshot_every);
        }
    }

    /// Consumes the broker and returns its resource hub — the resources
    /// outlive a middleware crash, so a supervisor extracts the hub from
    /// the dead instance and hands it to the recovered one.
    pub fn into_hub(self) -> ResourceHub {
        self.hub
    }

    /// The state manager (monitoring data and mode variables).
    pub fn state(&self) -> &StateManager {
        &self.state
    }

    /// Mutable state access (reflective tuning, tests).
    pub fn state_mut(&mut self) -> &mut StateManager {
        &mut self.state
    }

    /// The resource hub (health toggles, command trace).
    pub fn hub(&self) -> &ResourceHub {
        &self.hub
    }

    /// Mutable hub access (failure injection).
    pub fn hub_mut(&mut self) -> &mut ResourceHub {
        &mut self.hub
    }

    /// `(calls, events)` handled so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.calls, self.events)
    }

    /// How many times an autonomic symptom fired.
    pub fn symptom_fired(&self, symptom: &str) -> u64 {
        self.autonomic.fired(symptom)
    }

    /// The load-time static-analysis report for this engine's model:
    /// warnings (errors would have refused the model), the per-unit
    /// read/write footprint table, and the conflict graph.
    pub fn analysis_report(&self) -> &mddsm_meta::analysis::AnalysisReport {
        &self.analysis
    }
}

impl std::fmt::Debug for GenericBroker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GenericBroker")
            .field("name", &self.name)
            .field("handlers", &self.handlers.len())
            .field("policies", &self.policies.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::BrokerModelBuilder;
    use mddsm_sim::resource::args;
    use mddsm_sim::LatencyModel;

    fn hub() -> ResourceHub {
        let mut h = ResourceHub::new(7);
        h.register(
            "sim.media",
            LatencyModel::fixed_ms(2),
            SimDuration::from_millis(100),
            Box::new(|op: &str, a: &Args| Outcome::ok_with("echo", format!("{op}:{}", a.len()))),
        );
        h.register_fn("sim.relay", |_, _| Outcome::ok());
        h
    }

    fn model() -> Model {
        BrokerModelBuilder::new("ncb")
            .call_handler("open", "openSession")
            .policy("direct", "self.mode = null or self.mode = \"direct\"")
            .action(
                "open",
                "openDirect",
                "media",
                "open",
                &["peer=$peer", "codec=h264"],
                Some("direct"),
                &["opens=+1"],
            )
            .action(
                "open",
                "openRelay",
                "relay",
                "open",
                &["peer=$peer"],
                None,
                &[],
            )
            .event_handler("onLoss", "packetLoss")
            .action("onLoss", "report", "media", "report", &[], None, &[])
            .autonomic_rule(
                "mediaFlaky",
                "self.failures_media <> null and self.failures_media > 1",
                &[
                    "heal media",
                    "set failures_media 0",
                    "set mode relay",
                    "emit recovered",
                ],
            )
            .bind_resource("media", "sim.media")
            .bind_resource("relay", "sim.relay")
            .build()
    }

    fn broker() -> GenericBroker {
        GenericBroker::from_model(&model(), hub()).unwrap()
    }

    /// Tight admission: burst covers one 1000µs call, trickle refill.
    fn overload_model() -> Model {
        BrokerModelBuilder::new("olb")
            .call_handler("req", "serve")
            .resilient_action(
                "req",
                "serveFull",
                "media",
                "serve",
                &[],
                None,
                &[],
                &Resilience {
                    max_retries: 0,
                    backoff_ms: 0,
                    timeout_ms: 0,
                    breaker_threshold: 2,
                    breaker_cooldown_ms: 50,
                    fallback: None,
                },
            )
            .with_admission("req", 1_000, "interactive")
            .admission_class("interactive", 100, 1_000, 20_000, 50_000)
            .bind_resource("media", "sim.media")
            .build()
    }

    #[test]
    fn shed_and_deferred_outcomes_never_touch_the_breaker() {
        let mut b = GenericBroker::from_model(&overload_model(), hub()).unwrap();
        // One admitted call drains the bucket (burst 1000 = one cost).
        let r = b
            .call_admitted("serve", &args(&[]), &CallMeta::new("interactive", 0))
            .unwrap();
        assert!(r.is_executed());
        // Bucket empty, refill is slow: the next call is deferred.
        let now = b.now().as_micros();
        let r2 = b
            .call_admitted("serve", &args(&[]), &CallMeta::new("interactive", now))
            .unwrap();
        assert!(matches!(r2, AdmittedOutcome::Deferred { .. }));
        // A call whose deadline already passed is shed.
        let r3 = b
            .call_admitted(
                "serve",
                &args(&[]),
                &CallMeta::new("interactive", 0).with_deadline(1),
            )
            .unwrap();
        assert!(matches!(
            r3,
            AdmittedOutcome::Shed {
                reason: ShedReason::DeadlineExpired,
                ..
            }
        ));
        // Satellite regression: neither defer nor shed is a *failure* —
        // the breaker stays closed with zero recorded failures (the one
        // admitted success reset it), and the resource saw exactly the
        // one admitted call.
        assert_eq!(b.state().str("breaker_media"), Some("closed"));
        assert_eq!(b.state().int("breaker_media_failures"), Some(0));
        assert_eq!(b.state().int("failures_media"), None);
        assert_eq!(b.hub().command_trace().len(), 1);
        // But the overload ledger saw all three decisions.
        assert_eq!(b.state().int("adm_interactive_admitted"), Some(1));
        assert_eq!(b.state().int("adm_interactive_deferred"), Some(1));
        assert_eq!(b.state().int("adm_interactive_shed"), Some(1));
        assert_eq!(b.state().int("adm_shed_recent"), Some(1));
        assert_eq!(b.stats(), (3, 0));
    }

    #[test]
    fn breaker_still_trips_on_real_failures_under_admission() {
        // Rate 0 = unlimited: admission passes everything through, so the
        // only failure signal left is the resource genuinely failing.
        let model = BrokerModelBuilder::new("olb")
            .call_handler("req", "serve")
            .resilient_action(
                "req",
                "serveFull",
                "media",
                "serve",
                &[],
                None,
                &[],
                &Resilience {
                    max_retries: 0,
                    backoff_ms: 0,
                    timeout_ms: 0,
                    breaker_threshold: 2,
                    breaker_cooldown_ms: 50,
                    fallback: None,
                },
            )
            .with_admission("req", 1_000, "interactive")
            .admission_class("interactive", 0, 0, 0, 0)
            .bind_resource("media", "sim.media")
            .build();
        let mut b = GenericBroker::from_model(&model, hub()).unwrap();
        b.hub_mut().set_healthy("sim.media", false);
        for _ in 0..2 {
            let now = b.now().as_micros();
            let r = b
                .call_admitted("serve", &args(&[]), &CallMeta::new("interactive", now))
                .unwrap();
            assert!(r.is_executed());
        }
        assert_eq!(b.state().str("breaker_media"), Some("open"));
        assert_eq!(b.state().int("failures_media"), Some(2));
    }

    #[test]
    fn brownout_mode_survives_crash_recovery() {
        let model = BrokerModelBuilder::new("bb")
            .call_handler("req", "serve")
            .policy("lite", "self.svc_mode = \"lite\"")
            .action("req", "serveLite", "relay", "serve", &[], Some("lite"), &[])
            .action("req", "serveFull", "media", "serve", &[], None, &[])
            .with_admission("req", 1_000, "interactive")
            .admission_class("interactive", 100, 1_000, 20_000, 50_000)
            .brownout_mode(
                "lite",
                1,
                1_000_000,
                2_000,
                2,
                0,
                &["set svc_mode lite"],
                &["set svc_mode full"],
            )
            .bind_resource("media", "sim.media")
            .bind_resource("relay", "sim.relay")
            .build();
        let mut b = GenericBroker::from_model(&model, hub()).unwrap();
        b.enable_journal(0);
        b.advance_clock(SimDuration::from_millis(1));
        // Two expired-deadline calls shed -> the shed trigger fires.
        for _ in 0..2 {
            let r = b
                .call_admitted(
                    "serve",
                    &args(&[]),
                    &CallMeta::new("interactive", 0).with_deadline(1),
                )
                .unwrap();
            assert!(matches!(r, AdmittedOutcome::Shed { .. }));
        }
        let (t, _) = b.brownout_tick().unwrap();
        assert_eq!(t.map(|t| t.to), Some("lite".to_owned()));
        assert_eq!(b.brownout_mode(), "lite");
        // Degraded mode steers dispatch to the lite action.
        let r = b
            .call_admitted("serve", &args(&[]), &CallMeta::new("interactive", 1_000))
            .unwrap();
        let AdmittedOutcome::Executed { result, .. } = r else {
            panic!("expected execution, got {r:?}");
        };
        assert_eq!(result.action, "serveLite");
        // Crash mid-brownout; recovery must resume in the same mode.
        let bytes = b.journal_bytes().expect("journaling on").to_vec();
        let hub = b.into_hub();
        let (recovered, _) = GenericBroker::recover(&model, hub, &bytes, &[]).unwrap();
        assert_eq!(recovered.brownout_mode(), "lite");
        assert_eq!(recovered.state().str("svc_mode"), Some("lite"));
    }

    #[test]
    fn journal_coalesces_hot_keys_and_replays_exactly() {
        let model = BrokerModelBuilder::new("cj")
            .call_handler("do", "doIt")
            .action(
                "do",
                "act",
                "relay",
                "go",
                &[],
                None,
                &["hot=+1", "hot=+1", "hot=+1", "cold=1"],
            )
            .bind_resource("relay", "sim.relay")
            .build();
        let mut b = GenericBroker::from_model(&model, hub()).unwrap();
        b.enable_journal(0);
        b.call("doIt", &args(&[])).unwrap();
        let text = String::from_utf8(b.journal_bytes().unwrap().to_vec()).unwrap();
        let opc = text
            .lines()
            .filter(|l| journal::line_payload(l).starts_with("opc "))
            .count();
        let op = text
            .lines()
            .filter(|l| journal::line_payload(l).starts_with("op "))
            .count();
        assert_eq!((opc, op), (1, 1), "journal:\n{text}");
        assert_eq!(b.state().int("hot"), Some(3));
        let snap = b.state().snapshot();
        let bytes = b.journal_bytes().expect("journaling on").to_vec();
        let (rec, _) = GenericBroker::recover(&model, b.into_hub(), &bytes, &[]).unwrap();
        assert_eq!(rec.state().snapshot(), snap);
    }

    #[test]
    fn call_selects_guarded_action_and_maps_args() {
        let mut b = broker();
        let r = b.call("openSession", &args(&[("peer", "bob")])).unwrap();
        assert_eq!(r.action, "openDirect");
        assert!(r.outcome.is_ok());
        assert_eq!(r.cost, SimDuration::from_millis(2));
        assert_eq!(b.state().int("opens"), Some(1));
        let trace = b.hub().command_trace();
        assert_eq!(trace, vec!["sim.media.open(peer=bob, codec=h264)"]);
        assert_eq!(b.stats(), (1, 0));
    }

    #[test]
    fn guard_failure_falls_through_to_next_action() {
        let mut b = broker();
        b.state_mut().set_str("mode", "relay");
        let r = b.call("openSession", &args(&[("peer", "bob")])).unwrap();
        assert_eq!(r.action, "openRelay");
        assert!(b.hub().command_trace()[0].starts_with("sim.relay.open"));
    }

    #[test]
    fn events_are_dispatched_too() {
        let mut b = broker();
        let r = b.event("packetLoss", &Args::new()).unwrap();
        assert_eq!(r.action, "report");
        assert_eq!(b.stats(), (0, 1));
        // Call handler does not match events and vice versa.
        assert!(matches!(
            b.call("packetLoss", &Args::new()),
            Err(BrokerError::NoHandler(_))
        ));
        assert!(matches!(
            b.event("openSession", &Args::new()),
            Err(BrokerError::NoHandler(_))
        ));
    }

    #[test]
    fn failures_feed_autonomic_loop_which_recovers() {
        let mut b = broker();
        b.hub_mut().set_healthy("sim.media", false);
        // Two failed calls trip the symptom threshold.
        for _ in 0..2 {
            let r = b.call("openSession", &args(&[("peer", "bob")])).unwrap();
            assert!(!r.outcome.is_ok());
            assert_eq!(r.cost, SimDuration::from_millis(100)); // timeout
        }
        assert_eq!(b.state().int("failures_media"), Some(2));
        let emitted = b.autonomic_tick().unwrap();
        assert_eq!(emitted, vec!["recovered".to_string()]);
        assert_eq!(b.symptom_fired("mediaFlaky"), 1);
        assert!(b.hub().is_healthy("sim.media"));
        assert_eq!(b.state().int("failures_media"), Some(0));
        // The plan also switched mode to relay: next open goes via relay.
        let r = b.call("openSession", &args(&[("peer", "bob")])).unwrap();
        assert_eq!(r.action, "openRelay");
    }

    #[test]
    fn unknown_policy_guard_is_rejected_at_load_time() {
        // Historically this only failed at dispatch time (PolicyFailed);
        // the static analyzer now refuses the model before it runs.
        let m = BrokerModelBuilder::new("x")
            .call_handler("h", "op")
            .action("h", "a", "r", "o", &[], Some("ghost"), &[])
            .build();
        let err = GenericBroker::from_model(&m, ResourceHub::new(1))
            .map(|_| ())
            .unwrap_err();
        match err {
            BrokerError::AnalysisRejected(diags) => {
                assert!(
                    diags.iter().any(|d| d.code == "unknown-policy"),
                    "{diags:?}"
                );
            }
            other => panic!("expected AnalysisRejected, got {other}"),
        }
    }

    #[test]
    fn bad_models_rejected() {
        // Wrong metamodel name.
        let m = Model::new("other");
        assert!(matches!(
            GenericBroker::from_model(&m, ResourceHub::new(1)).map(|_| ()),
            Err(BrokerError::InvalidModel(_))
        ));
        // Unparsable policy expression.
        let m = BrokerModelBuilder::new("x")
            .call_handler("h", "op")
            .action("h", "a", "r", "o", &[], None, &[])
            .policy("bad", "self.")
            .build();
        assert!(matches!(
            GenericBroker::from_model(&m, ResourceHub::new(1)).map(|_| ()),
            Err(BrokerError::InvalidModel(_))
        ));
    }

    #[test]
    fn missing_call_argument_maps_to_empty() {
        let mut b = broker();
        let r = b.call("openSession", &Args::new()).unwrap();
        assert!(r.outcome.is_ok());
        assert_eq!(
            b.hub().command_trace()[0],
            "sim.media.open(peer=, codec=h264)"
        );
    }

    /// A hub whose `sim.flaky` resource fails the first `n` invocations of
    /// any operation, then succeeds.
    fn flaky_hub(n: u32) -> ResourceHub {
        let mut h = ResourceHub::new(7);
        let mut left = n;
        h.register(
            "sim.flaky",
            LatencyModel::fixed_ms(10),
            SimDuration::from_millis(500),
            Box::new(move |_: &str, _: &Args| {
                if left > 0 {
                    left -= 1;
                    Outcome::Failed("transient".into())
                } else {
                    Outcome::ok()
                }
            }),
        );
        h.register_fn("sim.backup", |_, _| Outcome::ok());
        h
    }

    #[test]
    fn retry_with_backoff_recovers_and_charges_virtual_time() {
        use crate::model::Resilience;
        let m = BrokerModelBuilder::lean("r")
            .call_handler("h", "op")
            .resilient_action(
                "h",
                "try",
                "sim.flaky",
                "go",
                &[],
                None,
                &[],
                &Resilience::retries(3, 20),
            )
            .build();
        let mut b = GenericBroker::from_model(&m, flaky_hub(2)).unwrap();
        let r = b.call("op", &Args::new()).unwrap();
        assert!(r.outcome.is_ok());
        assert_eq!(r.attempts, 3);
        // 3 invocations à 10ms + backoffs 20ms and 40ms.
        assert_eq!(r.cost, SimDuration::from_millis(10 + 20 + 10 + 40 + 10));
        assert_eq!(b.now(), SimTime::from_millis(90));
        // Both failed attempts were monitored.
        assert_eq!(b.state().int("failures_sim.flaky"), Some(2));
    }

    #[test]
    fn retries_exhaust_into_failure() {
        use crate::model::Resilience;
        let m = BrokerModelBuilder::lean("r")
            .call_handler("h", "op")
            .resilient_action(
                "h",
                "try",
                "sim.flaky",
                "go",
                &[],
                None,
                &[],
                &Resilience::retries(1, 0),
            )
            .build();
        let mut b = GenericBroker::from_model(&m, flaky_hub(5)).unwrap();
        let r = b.call("op", &Args::new()).unwrap();
        assert!(!r.outcome.is_ok());
        assert_eq!(r.attempts, 2);
    }

    #[test]
    fn timeout_budget_converts_slow_calls_into_failures() {
        use crate::model::Resilience;
        let m = BrokerModelBuilder::lean("t")
            .call_handler("h", "op")
            .resilient_action(
                "h",
                "slow",
                "sim.media",
                "open",
                &[],
                None,
                &[],
                &Resilience::default().with_timeout(1),
            )
            .build();
        // sim.media costs a fixed 2ms > the 1ms budget.
        let mut b = GenericBroker::from_model(&m, hub()).unwrap();
        let r = b.call("op", &Args::new()).unwrap();
        assert!(!r.outcome.is_ok());
        assert_eq!(r.cost, SimDuration::from_millis(1)); // charged the budget only
        assert!(matches!(&r.outcome, Outcome::Failed(m) if m.contains("budget")));
    }

    #[test]
    fn breaker_opens_half_opens_and_closes() {
        use crate::model::Resilience;
        let m = BrokerModelBuilder::lean("cb")
            .call_handler("h", "op")
            .resilient_action(
                "h",
                "guarded",
                "sim.flaky",
                "go",
                &[],
                None,
                &[],
                &Resilience::breaker(2, 100),
            )
            .build();
        let mut b = GenericBroker::from_model(&m, flaky_hub(3)).unwrap();
        // Two failures trip the breaker (threshold 2).
        for _ in 0..2 {
            assert!(!b.call("op", &Args::new()).unwrap().outcome.is_ok());
        }
        assert_eq!(b.state().str("breaker_sim.flaky"), Some("open"));
        // While open: fast-fail, no hub invocation, zero cost.
        let log_len = b.hub().log().len();
        let r = b.call("op", &Args::new()).unwrap();
        assert_eq!(r.attempts, 0);
        assert_eq!(r.cost, SimDuration::ZERO);
        assert!(matches!(&r.outcome, Outcome::Failed(m) if m.contains("circuit open")));
        assert_eq!(b.hub().log().len(), log_len);
        // After the cooldown: half-open trial; it fails -> reopens.
        b.advance_clock(SimDuration::from_millis(100));
        let r = b.call("op", &Args::new()).unwrap();
        assert!(!r.outcome.is_ok());
        assert_eq!(r.attempts, 1);
        assert_eq!(b.state().str("breaker_sim.flaky"), Some("open"));
        // Next cooldown: the resource has healed; trial succeeds -> closed.
        b.advance_clock(SimDuration::from_millis(100));
        let r = b.call("op", &Args::new()).unwrap();
        assert!(r.outcome.is_ok());
        assert_eq!(b.state().str("breaker_sim.flaky"), Some("closed"));
        assert_eq!(b.state().int("breaker_sim.flaky_failures"), Some(0));
    }

    #[test]
    fn fallback_escalates_and_accumulates_cost() {
        use crate::model::Resilience;
        let m = BrokerModelBuilder::lean("fb")
            .call_handler("h", "op")
            .resilient_action(
                "h",
                "primary",
                "sim.flaky",
                "go",
                &[],
                None,
                &[],
                &Resilience::retries(1, 5).with_fallback("backup"),
            )
            .action("h", "backup", "sim.backup", "go", &[], None, &[])
            .build();
        let mut b = GenericBroker::from_model(&m, flaky_hub(10)).unwrap();
        let r = b.call("op", &Args::new()).unwrap();
        assert!(r.outcome.is_ok());
        assert_eq!(r.action, "backup");
        // 2 failed attempts à 10ms + 5ms backoff + 0ms backup call.
        assert_eq!(r.cost, SimDuration::from_millis(25));
        assert_eq!(r.attempts, 3);
    }

    #[test]
    fn fallback_to_unknown_or_self_rejected_at_load() {
        use crate::model::Resilience;
        let m = BrokerModelBuilder::lean("bad")
            .call_handler("h", "op")
            .resilient_action(
                "h",
                "a",
                "r",
                "o",
                &[],
                None,
                &[],
                &Resilience::default().with_fallback("ghost"),
            )
            .build();
        assert!(matches!(
            GenericBroker::from_model(&m, ResourceHub::new(1)).map(|_| ()),
            Err(BrokerError::InvalidModel(msg)) if msg.contains("ghost")
        ));
        let m = BrokerModelBuilder::lean("bad2")
            .call_handler("h", "op")
            .resilient_action(
                "h",
                "a",
                "r",
                "o",
                &[],
                None,
                &[],
                &Resilience::default().with_fallback("a"),
            )
            .build();
        assert!(matches!(
            GenericBroker::from_model(&m, ResourceHub::new(1)).map(|_| ()),
            Err(BrokerError::InvalidModel(msg)) if msg.contains("itself")
        ));
    }

    #[test]
    fn autonomic_plan_can_reset_a_breaker() {
        use crate::model::Resilience;
        let m = BrokerModelBuilder::new("ar")
            .call_handler("h", "op")
            .resilient_action(
                "h",
                "guarded",
                "flaky",
                "go",
                &[],
                None,
                &[],
                &Resilience::breaker(1, 1_000_000),
            )
            .autonomic_rule(
                "breakerStuck",
                "self.breaker_flaky = \"open\"",
                &["heal flaky", "reset_breaker flaky"],
            )
            .bind_resource("flaky", "sim.flaky")
            .build();
        let mut b = GenericBroker::from_model(&m, flaky_hub(1)).unwrap();
        assert!(!b.call("op", &Args::new()).unwrap().outcome.is_ok());
        assert_eq!(b.state().str("breaker_flaky"), Some("open"));
        b.autonomic_tick().unwrap();
        assert_eq!(b.symptom_fired("breakerStuck"), 1);
        assert_eq!(b.state().str("breaker_flaky"), Some("closed"));
        // Breaker closed again: the next call goes through to the resource.
        let r = b.call("op", &Args::new()).unwrap();
        assert!(r.outcome.is_ok());
    }

    #[test]
    fn breaker_half_open_transitions_interleaved_with_autonomic_resets() {
        use crate::model::Resilience;
        // Breaker threshold 2, 100ms cooldown, plus an autonomic rule that
        // force-closes the breaker when too many total failures pile up.
        let m = BrokerModelBuilder::new("cbx")
            .call_handler("h", "op")
            .resilient_action(
                "h",
                "guarded",
                "flaky",
                "go",
                &[],
                None,
                &[],
                &Resilience::breaker(2, 100),
            )
            .autonomic_rule(
                "stuckOpen",
                "self.breaker_flaky = \"open\" and self.failures_flaky > 2",
                &["heal flaky", "reset_breaker flaky", "set failures_flaky 0"],
            )
            .bind_resource("flaky", "sim.flaky")
            .build();
        // First 3 invocations fail: 2 to trip the breaker + 1 failed
        // half-open trial; everything after succeeds.
        let mut b = GenericBroker::from_model(&m, flaky_hub(3)).unwrap();

        // Trip the breaker (2 failures >= threshold).
        for _ in 0..2 {
            assert!(!b.call("op", &Args::new()).unwrap().outcome.is_ok());
        }
        assert_eq!(b.state().str("breaker_flaky"), Some("open"));

        // Cooldown elapses -> half-open trial; resource still down -> the
        // trial fails and the breaker reopens from half-open.
        b.advance_clock(SimDuration::from_millis(100));
        let r = b.call("op", &Args::new()).unwrap();
        assert_eq!(r.attempts, 1);
        assert_eq!(b.state().str("breaker_flaky"), Some("open"));
        assert_eq!(b.state().int("failures_flaky"), Some(3));

        // Autonomic tick: symptom fires, heals the resource and closes the
        // breaker *without* waiting for another cooldown.
        b.autonomic_tick().unwrap();
        assert_eq!(b.symptom_fired("stuckOpen"), 1);
        assert_eq!(b.state().str("breaker_flaky"), Some("closed"));

        // Closed again: next call reaches the (now healed) resource, and
        // the success path resets the failure counter.
        let r = b.call("op", &Args::new()).unwrap();
        assert!(r.outcome.is_ok());
        assert_eq!(r.attempts, 1);
        assert_eq!(b.state().str("breaker_flaky"), Some("closed"));
        assert_eq!(b.state().int("breaker_flaky_failures"), Some(0));

        // Interleave the other direction: trip it again, then let the
        // half-open trial *succeed* -> closed (no autonomic help needed).
        b.hub_mut().set_healthy("sim.flaky", false);
        for _ in 0..2 {
            assert!(!b.call("op", &Args::new()).unwrap().outcome.is_ok());
        }
        assert_eq!(b.state().str("breaker_flaky"), Some("open"));
        b.hub_mut().set_healthy("sim.flaky", true);
        b.advance_clock(SimDuration::from_millis(100));
        let r = b.call("op", &Args::new()).unwrap();
        assert!(r.outcome.is_ok());
        assert_eq!(b.state().str("breaker_flaky"), Some("closed"));
    }

    #[test]
    fn journaled_broker_recovers_with_identical_state_and_counters() {
        let mut b = broker();
        b.enable_journal(4);
        for i in 0..5 {
            let peer = format!("p{i}");
            b.call("openSession", &args(&[("peer", &peer)])).unwrap();
        }
        b.event("packetLoss", &Args::new()).unwrap();
        b.advance_clock(SimDuration::from_millis(7));
        b.autonomic_tick().unwrap();
        let (entries, snapshots) = b.journal_stats().unwrap();
        assert!(entries > 0);
        assert!(snapshots >= 2, "initial + at least one periodic");

        let pre_state = b.state().snapshot();
        let pre_now = b.now();
        let pre_stats = b.stats();
        let bytes = b.journal_bytes().unwrap().to_vec();
        let hub = b.into_hub(); // the crash: the engine is gone, resources survive

        let (r, report) = GenericBroker::recover(
            &model(),
            hub,
            &bytes,
            &["self.opens >= 0", "self.opens <= 5"],
        )
        .unwrap();
        assert_eq!(r.state().snapshot(), pre_state);
        assert_eq!(r.now(), pre_now);
        assert_eq!(r.stats(), pre_stats);
        assert_eq!(report.invariants_checked, 2);
        assert!(report.snapshot_version > 0);
        assert_eq!(report.recovered_version, pre_state.version);

        // The recovered broker keeps journaling: it can crash and recover
        // again, and the second recovery replays only the post-crash tail.
        let mut r = r;
        r.call("openSession", &args(&[("peer", "pz")])).unwrap();
        let bytes2 = r.journal_bytes().unwrap().to_vec();
        let hub2 = r.into_hub();
        let (r2, report2) = GenericBroker::recover(&model(), hub2, &bytes2, &[]).unwrap();
        assert_eq!(r2.state().int("opens"), Some(6));
        assert!(report2.commands_replayed <= 1 + report2.ops_replayed);
    }

    #[test]
    fn recovery_refuses_violated_or_broken_invariants() {
        let mut b = broker();
        b.enable_journal(0);
        b.call("openSession", &args(&[("peer", "a")])).unwrap();
        let bytes = b.journal_bytes().unwrap().to_vec();

        // A violated invariant is a typed refusal, distinct from a broken
        // one: callers can tell "the model diverged" from "the property
        // source is wrong".
        let err = GenericBroker::recover(&model(), hub(), &bytes, &["self.opens > 99"])
            .expect_err("must refuse");
        assert!(
            matches!(err, BrokerError::MonitorTripped { ref detail, .. } if detail.contains("does not hold"))
        );

        // An unparsable one is a compile error, not a violation.
        let err =
            GenericBroker::recover(&model(), hub(), &bytes, &["self."]).expect_err("must refuse");
        assert!(matches!(err, BrokerError::MonitorParse { ref monitor, .. } if monitor == "self."));

        // And corrupt journal bytes: an appended record whose LSN gaps
        // means committed history is missing — the typed damage error,
        // carrying position (the gap is discovered at the appended line).
        let mut corrupt = bytes.clone();
        corrupt.extend_from_slice(b"op 99 int x 1\n");
        let err = GenericBroker::recover(&model(), hub(), &corrupt, &[]).expect_err("must refuse");
        assert!(
            matches!(err, BrokerError::JournalDamaged { offset, .. } if offset == bytes.len() as u64)
        );
    }

    #[test]
    fn unjournaled_broker_pays_nothing_and_recovers_nothing() {
        let mut b = broker();
        b.call("openSession", &args(&[("peer", "a")])).unwrap();
        assert!(b.journal_bytes().is_none());
        assert!(b.journal_stats().is_none());
    }

    #[test]
    fn lean_model_builds_and_serves() {
        let m = BrokerModelBuilder::lean("tiny")
            .call_handler("h", "ping")
            .action("h", "a", "sim.media", "ping", &[], None, &[])
            .build();
        let mut b = GenericBroker::from_model(&m, hub()).unwrap();
        let r = b.call("ping", &Args::new()).unwrap();
        assert!(r.outcome.is_ok());
        assert_eq!(b.name(), "tiny");
    }

    // -- Online runtime verification ---------------------------------------

    /// The standard model plus one capacity monitor on `opens`.
    fn monitored_model(property: &str) -> Model {
        BrokerModelBuilder::new("ncb")
            .call_handler("open", "openSession")
            .action(
                "open",
                "openDirect",
                "media",
                "open",
                &["peer=$peer"],
                None,
                &["opens=+1"],
            )
            .monitor("cap", property)
            .bind_resource("media", "sim.media")
            .build()
    }

    #[test]
    fn violating_call_is_refused_in_stream_and_latches() {
        let mut b =
            GenericBroker::from_model(&monitored_model("always self.opens <= 2"), hub()).unwrap();
        b.enable_journal(0);
        for _ in 0..2 {
            b.call("openSession", &args(&[("peer", "a")])).unwrap();
        }
        // The third call's state effect drives opens to 3: the monitor
        // sees it before the command record is framed and refuses.
        let err = b
            .call("openSession", &args(&[("peer", "a")]))
            .expect_err("monitor must trip");
        assert!(
            matches!(err, BrokerError::MonitorTripped { ref monitor, .. } if monitor == "cap"),
            "{err}"
        );
        assert!(b.monitor_latched());
        assert_eq!(b.monitor_trips().len(), 1);
        assert_eq!(b.state().int("mon_trips"), Some(1));
        // Latched: the next call is refused before dispatch (no resource
        // invocation, no state effect).
        let trace_len = b.hub().command_trace().len();
        let err = b
            .call("openSession", &args(&[("peer", "a")]))
            .expect_err("latched");
        assert!(
            matches!(err, BrokerError::MonitorTripped { ref detail, .. } if detail.contains("latched"))
        );
        assert_eq!(b.hub().command_trace().len(), trace_len);
        assert_eq!(b.state().int("opens"), Some(3), "no further effects");

        // The trip is journaled state: recovery resumes latched, still
        // refusing commands — byte-identical monitoring.
        let bytes = b.journal_bytes().unwrap().to_vec();
        let live_snap = b.state().snapshot();
        let (mut r, _) = GenericBroker::recover(
            &monitored_model("always self.opens <= 2"),
            b.into_hub(),
            &bytes,
            &[],
        )
        .unwrap();
        assert_eq!(r.state().snapshot(), live_snap);
        assert!(r.monitor_latched());
        assert!(r.call("openSession", &args(&[("peer", "a")])).is_err());
    }

    #[test]
    fn corruption_is_caught_in_stream_and_rolled_back() {
        let mut b = GenericBroker::from_model(&monitored_model("self.opens >= 0"), hub()).unwrap();
        b.enable_journal(0);
        b.call("openSession", &args(&[("peer", "a")])).unwrap();

        // An invariant-violating mutation is caught as it is journaled —
        // before any subsequent command could act on the divergent model.
        let trips = b.corrupt_state("opens", "-5");
        assert_eq!(trips.len(), 1);
        assert!(b.monitor_latched());
        assert!(b.call("openSession", &args(&[("peer", "x")])).is_err());

        // Rollback to the last snapshot discards the corrupt write and
        // the latches (both are post-snapshot), and service resumes.
        b.rollback_to_snapshot().unwrap();
        assert!(!b.monitor_latched());
        assert_eq!(b.state().int("opens"), None, "back to the snapshot");
        b.call("openSession", &args(&[("peer", "b")])).unwrap();
        assert_eq!(b.state().int("opens"), Some(1));

        // The whole history — trip, rollback, resumption — replays
        // byte-identically from the journal.
        let replayed = journal::replay(b.journal_bytes().unwrap()).unwrap();
        assert_eq!(replayed.state.snapshot(), b.state().snapshot());
        assert_eq!(
            b.state().first_divergence(&replayed.state),
            None,
            "live and replayed models agree"
        );
    }

    #[test]
    fn clean_calls_journal_identically_with_and_without_monitors() {
        // Monitor memory is written only on transitions, so a clean run's
        // journal is byte-for-byte what an unmonitored broker writes —
        // the in-stream checks add zero journal lines and zero state ops.
        let unmonitored = BrokerModelBuilder::new("ncb")
            .call_handler("open", "openSession")
            .action(
                "open",
                "openDirect",
                "media",
                "open",
                &["peer=$peer"],
                None,
                &["opens=+1"],
            )
            .bind_resource("media", "sim.media")
            .build();
        let mut plain = GenericBroker::from_model(&unmonitored, hub()).unwrap();
        let mut monitored =
            GenericBroker::from_model(&monitored_model("always self.opens <= 99"), hub()).unwrap();
        plain.enable_journal(0);
        monitored.enable_journal(0);
        for _ in 0..5 {
            plain.call("openSession", &args(&[("peer", "a")])).unwrap();
            monitored
                .call("openSession", &args(&[("peer", "a")]))
                .unwrap();
        }
        assert_eq!(plain.journal_bytes(), monitored.journal_bytes());
    }

    #[test]
    fn rollback_skips_snapshots_that_captured_a_violation() {
        let mut b = GenericBroker::from_model(&monitored_model("self.opens >= 0"), hub()).unwrap();
        // Snapshot after every journal entry: the corrupt write's batch is
        // immediately followed by a snapshot of the *violated* state.
        b.enable_journal(1);
        b.call("openSession", &args(&[("peer", "a")])).unwrap();
        assert_eq!(b.corrupt_state("opens", "-3").len(), 1);
        let text = String::from_utf8(b.journal_bytes().unwrap().to_vec()).unwrap();
        let last_snap = text
            .lines()
            .rev()
            .find(|l| journal::line_payload(l).starts_with("snap "))
            .unwrap();
        assert!(
            last_snap.contains("mon_trips"),
            "newest snapshot must hold the latched violation: {last_snap}"
        );
        // Rollback must reach past it to the last verified snapshot.
        b.rollback_to_snapshot().unwrap();
        assert!(!b.monitor_latched());
        assert!(b.state().int("opens").unwrap_or(0) >= 0);
        b.call("openSession", &args(&[("peer", "b")])).unwrap();
    }

    #[test]
    fn unjournaled_monitored_broker_still_trips_without_growing_ops() {
        let mut b =
            GenericBroker::from_model(&monitored_model("always self.opens <= 1"), hub()).unwrap();
        b.call("openSession", &args(&[("peer", "a")])).unwrap();
        assert!(b.state().pending_ops().is_empty(), "ops drained per call");
        let err = b
            .call("openSession", &args(&[("peer", "a")]))
            .expect_err("trips without a journal too");
        assert!(matches!(err, BrokerError::MonitorTripped { .. }));
        assert!(b.state().pending_ops().is_empty());
        // But rollback needs a journal.
        assert!(b.rollback_to_snapshot().is_err());
    }
}
