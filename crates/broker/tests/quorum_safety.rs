//! Quorum-commit safety, property-style: across seeded random
//! minority-failure schedules over 3- and 5-node replica sets, every
//! journal record at or below the quorum commit point survives — byte
//! for byte — on whichever replica a post-crash election would promote.
//!
//! The schedule generator is the simulator's [`SimRng`] over fixed
//! seeds, keeping the suite deterministic without an external
//! property-testing dependency. Each round the schedule may crash or
//! partition replicas (never more than a strict minority at once),
//! heal them again, and interleave client calls with shipping ticks; at
//! every step the committed prefix pinned by
//! [`journal::prefix_through_lsn`] at the replicator's commit LSN must
//! be a byte-prefix of the election winner's mirror.

use std::collections::BTreeMap;

use mddsm_broker::journal;
use mddsm_broker::{
    BrokerModelBuilder, GenericBroker, QuorumReplicator, ReplicaPeer, ReplicaSetConfig, ShipMode,
    Standby,
};
use mddsm_sim::net::{Link, Network};
use mddsm_sim::resource::{args, Args, Outcome};
use mddsm_sim::{LatencyModel, ResourceHub, SimDuration, SimRng, SimTime};

const ACK_TIMEOUT_US: u64 = 5_000;

fn hub(seed: u64) -> ResourceHub {
    let mut h = ResourceHub::new(seed);
    h.register(
        "svc",
        LatencyModel::fixed_ms(2),
        SimDuration::from_millis(250),
        Box::new(|_: &str, _: &Args| Outcome::ok()),
    );
    h
}

/// A counter model whose journal grows by an op + command per call.
fn counter_model(members: &[String], quorum: u64) -> mddsm_meta::Model {
    let peers: Vec<(&str, &str, u64, u64)> = members[1..]
        .iter()
        .map(|n| (n.as_str(), "AckWindowed", 16, ACK_TIMEOUT_US))
        .collect();
    BrokerModelBuilder::new("qsafe")
        .call_handler("h", "bump")
        .action("h", "doBump", "svc", "bump", &["n=$n"], None, &["count=+1"])
        .replica_set(quorum, &peers)
        .build()
}

/// The replica a quorum election would promote: reachable (not crashed,
/// not partitioned from the set) with the longest applied prefix,
/// first-wins on ties — the supervisor's rule.
fn elect<'a>(
    standbys: &'a BTreeMap<String, Standby>,
    down: &[String],
) -> Option<&'a Standby> {
    standbys
        .values()
        .filter(|s| !down.contains(&s.node().to_string()))
        .max_by(|a, b| {
            a.applied_lsn()
                .cmp(&b.applied_lsn())
                // BTreeMap iterates name-ascending; reverse the name
                // order so `max_by` keeps the *first* of equals.
                .then_with(|| b.node().cmp(a.node()))
        })
}

/// One seeded schedule over one replica set: returns the worst case the
/// run observed so the caller can assert across seeds.
fn run_schedule(seed: u64, n: usize, quorum: u64, rounds: u64) {
    let members: Vec<String> = (0..n).map(|i| format!("n{i}")).collect();
    let minority = (n - 1) / 2;
    let model = counter_model(&members, quorum);
    let mut broker = GenericBroker::from_model(&model, hub(seed)).expect("model valid");
    broker.enable_journal(8);
    let mut rep = QuorumReplicator::new(
        ReplicaSetConfig {
            quorum,
            peers: members[1..]
                .iter()
                .map(|m| ReplicaPeer {
                    node: m.clone(),
                    mode: ShipMode::AckWindowed,
                    window_records: 16,
                    ack_timeout: SimDuration::from_micros(ACK_TIMEOUT_US),
                })
                .collect(),
        },
        &members[0],
    );
    let mut standbys: BTreeMap<String, Standby> = members[1..]
        .iter()
        .map(|m| (m.clone(), Standby::new(m)))
        .collect();
    let net = Network::new(Link::default(), seed ^ 0x9a);
    let mut rng = SimRng::seed_from_u64(seed);
    // Replicas currently incapacitated (crashed or cut off). Their
    // Standby stays in the map — a crashed node keeps its durable
    // mirror — but shipping skips them.
    let mut down: Vec<String> = Vec::new();
    let mut elections = 0u64;

    for round in 0..rounds {
        let t = SimTime::from_micros(round * 20_000);

        // Mutate the failure schedule, never exceeding a strict
        // minority of the *whole* set (the primary stays up: this test
        // pins commit safety, not failover; the elected replica must
        // hold the prefix even while the primary still runs).
        if rng.chance(0.35) && down.len() < minority {
            let victim = members[1 + rng.range(0, (n - 1) as u64) as usize].clone();
            if !down.contains(&victim) {
                down.push(victim);
            }
        }
        if rng.chance(0.30) {
            if !down.is_empty() {
                let i = rng.range(0, down.len() as u64) as usize;
                down.remove(i);
            }
        }

        // A client call, then shipping ticks to the reachable replicas.
        let nn = round.to_string();
        broker.call("bump", &args(&[("n", &nn)])).expect("serves");
        for k in 0..3 {
            let now = SimTime::from_micros(t.as_micros() + k * ACK_TIMEOUT_US);
            let mut peers: Vec<&mut Standby> = standbys
                .iter_mut()
                .filter(|(m, _)| !down.contains(m))
                .map(|(_, s)| s)
                .collect();
            rep.tick(
                now,
                broker.epoch(),
                &net,
                broker.journal_bytes().expect("journaling on"),
                &mut peers,
            )
            .expect("shipping healthy");
            if rep.quorum_synced() {
                break;
            }
        }

        // THE PROPERTY. The committed prefix — the journal sliced at
        // the quorum commit LSN — must survive byte-identically on the
        // replica an election over the reachable set would pick.
        let commit = rep.commit_lsn();
        let committed = journal::prefix_through_lsn(
            broker.journal_bytes().expect("journaling on"),
            commit,
        )
        .expect("commit lsn is inside the primary's journal");
        let winner = elect(&standbys, &down).expect("a majority is reachable");
        elections += 1;
        assert!(
            winner.journal_bytes().starts_with(committed),
            "seed {seed} n {n} round {round}: commit lsn {commit} ({} bytes) \
             not a byte-prefix of elected replica {} ({} applied, {} bytes)",
            committed.len(),
            winner.node(),
            winner.applied_lsn(),
            winner.journal_bytes().len()
        );
        assert!(
            winner.applied_lsn() >= commit,
            "seed {seed} round {round}: elected replica {} applied {} < commit {commit}",
            winner.node(),
            winner.applied_lsn()
        );
    }
    assert!(elections > 0);
}

/// 3-node sets, quorum 2, across seeded minority-failure schedules.
#[test]
fn committed_prefix_survives_election_on_3_node_sets() {
    for seed in 0..12u64 {
        run_schedule(0x3_0000 + seed, 3, 2, 60);
    }
}

/// 5-node sets, quorum 3: two replicas may be down at once and the
/// committed prefix must still be electable.
#[test]
fn committed_prefix_survives_election_on_5_node_sets() {
    for seed in 0..12u64 {
        run_schedule(0x5_0000 + seed, 5, 3, 60);
    }
}

/// The pinned slice itself is stable: slicing the growing journal at a
/// fixed commit LSN always yields the same bytes (no in-place rewrite
/// of committed history).
#[test]
fn committed_slices_never_change_under_later_growth() {
    for seed in 0..6u64 {
        let members: Vec<String> = (0..3).map(|i| format!("n{i}")).collect();
        let model = counter_model(&members, 2);
        let mut broker =
            GenericBroker::from_model(&model, hub(seed)).expect("model valid");
        broker.enable_journal(8);
        let mut pinned: Vec<(u64, Vec<u8>)> = Vec::new();
        for round in 0..40u64 {
            let nn = round.to_string();
            broker.call("bump", &args(&[("n", &nn)])).expect("serves");
            let bytes = broker.journal_bytes().expect("journaling on");
            let head = broker.state().version();
            for (lsn, slice) in &pinned {
                assert_eq!(
                    journal::prefix_through_lsn(bytes, *lsn).expect("still inside"),
                    &slice[..],
                    "seed {seed}: committed slice at lsn {lsn} changed"
                );
            }
            if round % 7 == 0 {
                pinned.push((
                    head,
                    journal::prefix_through_lsn(bytes, head)
                        .expect("head is inside")
                        .to_vec(),
                ));
            }
        }
        assert!(pinned.len() >= 5);
    }
}
