//! Property-style tests for the Broker layer: any well-formed broker model
//! dispatches deterministically, honours guard fall-through, and keeps its
//! monitoring counters consistent with the invocation log.
//!
//! Cases are generated with the simulator's [`SimRng`] over fixed seeds,
//! keeping the suite deterministic without an external property-testing
//! dependency.

use mddsm_broker::journal::{self, Journal, JournalRecord};
use mddsm_broker::{BrokerModelBuilder, GenericBroker, StateManager};
use mddsm_sim::resource::{args, Args, Outcome};
use mddsm_sim::{ResourceHub, SimRng};

fn hub() -> ResourceHub {
    let mut hub = ResourceHub::new(5);
    hub.register_fn("svc", |op, _| {
        if op.starts_with("bad") {
            Outcome::Failed("bad op".into())
        } else {
            Outcome::ok()
        }
    });
    hub
}

/// A broker with `n` handlers, each with `k` actions whose guards are
/// mode-indexed: action `j` of handler `i` requires `mode = j`.
fn guarded_broker(n: usize, k: usize) -> GenericBroker {
    let mut b = BrokerModelBuilder::new("pb");
    for j in 0..k {
        b = b.policy(&format!("mode{j}"), &format!("self.mode = {j}"));
    }
    for i in 0..n {
        let hname = format!("h{i}");
        b = b.call_handler(&hname, &format!("op{i}"));
        for j in 0..k {
            b = b.action(
                &hname,
                &format!("a{i}_{j}"),
                "svc",
                &format!("do{i}_{j}"),
                &[],
                Some(&format!("mode{j}")),
                &[],
            );
        }
        // Unguarded fallback.
        b = b.action(
            &hname,
            &format!("a{i}_fallback"),
            "svc",
            &format!("do{i}_fb"),
            &[],
            None,
            &[],
        );
    }
    GenericBroker::from_model(&b.build(), hub()).expect("generated model is valid")
}

/// The selected action is exactly the one whose guard matches the current
/// mode, falling back when none does.
#[test]
fn guard_selection_matches_mode() {
    for case in 0..48u64 {
        let mut gen = SimRng::seed_from_u64(0xB1_0000 + case);
        let n = gen.range(1, 4) as usize;
        let k = gen.range(1, 4) as usize;
        let mode = gen.range(0, 6) as i64;
        let op_idx = gen.range(0, 4) as usize;

        let mut broker = guarded_broker(n, k);
        broker.state_mut().set_int("mode", mode);
        let op = format!("op{}", op_idx % n);
        let result = broker.call(&op, &Args::new()).expect("handler exists");
        let expected = if (mode as usize) < k && mode >= 0 {
            format!("a{}_{}", op_idx % n, mode)
        } else {
            format!("a{}_fallback", op_idx % n)
        };
        assert_eq!(result.action, expected);
    }
}

/// Stats and failure counters always agree with the hub log.
#[test]
fn counters_agree_with_log() {
    for case in 0..48u64 {
        let mut gen = SimRng::seed_from_u64(0xB2_0000 + case);
        let len = gen.range(0, 20) as usize;
        let ops: Vec<(usize, bool)> = (0..len)
            .map(|_| (gen.range(0, 3) as usize, gen.chance(0.5)))
            .collect();

        let mut b = BrokerModelBuilder::new("cb");
        for i in 0..3 {
            b = b
                .call_handler(&format!("h{i}"), &format!("op{i}"))
                .action(
                    &format!("h{i}"),
                    &format!("ok{i}"),
                    "svc",
                    &format!("go{i}"),
                    &[],
                    None,
                    &[],
                )
                .call_handler(&format!("hb{i}"), &format!("bad{i}"))
                .action(
                    &format!("hb{i}"),
                    &format!("bad{i}"),
                    "svc",
                    &format!("bad{i}"),
                    &[],
                    None,
                    &[],
                );
        }
        let mut broker = GenericBroker::from_model(&b.build(), hub()).unwrap();
        let mut expected_calls = 0u64;
        let mut expected_failures = 0i64;
        for (i, fail) in &ops {
            let op = if *fail {
                format!("bad{i}")
            } else {
                format!("op{i}")
            };
            let r = broker.call(&op, &args(&[("k", "v")])).unwrap();
            expected_calls += 1;
            if *fail {
                assert!(!r.outcome.is_ok());
                expected_failures += 1;
            } else {
                assert!(r.outcome.is_ok());
            }
        }
        let (calls, events) = broker.stats();
        assert_eq!(calls, expected_calls);
        assert_eq!(events, 0);
        assert_eq!(broker.hub().log().len() as u64, expected_calls);
        assert_eq!(
            broker.state().int("failures_svc").unwrap_or(0),
            expected_failures
        );
    }
}

/// Any random seeded mutation sequence, journaled as it happens (with
/// snapshots dropped in at arbitrary points), replays to the exact same
/// model and version counter. This is the crash-consistency contract the
/// Broker's recovery path relies on.
#[test]
fn snapshot_plus_replay_reproduces_any_mutation_sequence() {
    // Values exercise the journal's percent-escaping: spaces, %, newlines,
    // tabs, multi-byte UTF-8, and the empty string.
    const STRINGS: &[&str] = &[
        "plain",
        "a b",
        "100%",
        "line\nbreak",
        "tab\there",
        "αβ→γ",
        "",
    ];
    const KEYS: &[&str] = &["tier", "mode", "served", "failures_svc", "hb_x", "w"];

    for case in 0..64u64 {
        let mut gen = SimRng::seed_from_u64(0xB4_0000 + case);
        let mut state = StateManager::new();
        state.record_ops(true);
        // snapshot_every = 0 disables size-triggered snapshots; the test
        // drops snapshots in by chance instead, so some journals replay
        // from scratch and some from a mid-sequence snapshot.
        let mut journal = Journal::in_memory(0);

        let steps = gen.range(1, 40);
        for _ in 0..steps {
            let key = KEYS[gen.range(0, KEYS.len() as u64) as usize];
            match gen.range(0, 4) {
                0 => state.set_str(key, STRINGS[gen.range(0, STRINGS.len() as u64) as usize]),
                1 => state.set_int(key, gen.range(0, 2_000) as i64 - 1_000),
                2 => {
                    state.bump(key, gen.range(0, 10) as i64 - 5);
                }
                _ => state.unset(key),
            }
            for op in state.take_ops() {
                journal.record(&JournalRecord::Op(op));
            }
            if gen.chance(0.15) {
                journal.record(&JournalRecord::Snapshot {
                    state: state.snapshot(),
                    clock_us: 0,
                    calls: 0,
                    events: 0,
                });
            }
        }

        let recovered = journal::replay(journal.bytes()).expect("journal replays");
        assert_eq!(
            recovered.state.snapshot(),
            state.snapshot(),
            "case {case}: replayed model diverged"
        );
        assert_eq!(recovered.state.version(), state.version());
    }
}

/// Any seeded interleaving of admitted calls, shed calls, deferred calls,
/// clock advances, and brownout-controller ticks, journaled as it runs,
/// recovers to the exact same runtime model — same state snapshot, same
/// version, same brownout mode, same counters, same clock. This is the
/// overload-control extension of the crash-consistency contract: admission
/// buckets and degraded modes live in the journaled state, so a crashed
/// broker resumes shedding and serving in exactly the mode it died in.
#[test]
fn overload_interleavings_replay_to_exact_state_and_mode() {
    use mddsm_broker::CallMeta;
    use mddsm_sim::SimDuration;

    for case in 0..32u64 {
        let mut gen = SimRng::seed_from_u64(0xB8_0000 + case);
        let model = BrokerModelBuilder::new("ob")
            .call_handler("req", "serve")
            .policy("lite", "self.svc_mode = \"lite\"")
            .action("req", "serveLite", "svc", "lite", &[], Some("lite"), &[])
            .action("req", "serveFull", "svc", "full", &[], None, &[])
            .with_admission("req", 800, "interactive")
            .admission_class(
                "interactive",
                gen.range(50, 400),
                gen.range(500, 3_000),
                15_000,
                40_000,
            )
            .brownout_mode(
                "lite",
                1,
                8_000,
                1_000,
                gen.range(1, 4),
                0,
                &["set svc_mode lite"],
                &["set svc_mode full"],
            )
            .build();
        let mut broker = GenericBroker::from_model(&model, hub()).unwrap();
        broker.enable_journal(0);

        let steps = gen.range(5, 60);
        for _ in 0..steps {
            match gen.range(0, 5) {
                0 | 1 => {
                    // A call that queued for a random while; may admit,
                    // defer, or shed depending on bucket and bounds.
                    let now = broker.now().as_micros();
                    let back = gen.range(0, 30_000);
                    let meta = CallMeta::new("interactive", now.saturating_sub(back));
                    broker.call_admitted("serve", &Args::new(), &meta).unwrap();
                }
                2 => {
                    broker.advance_clock(SimDuration::from_micros(gen.range(100, 10_000)));
                }
                3 => {
                    broker.brownout_tick().unwrap();
                }
                _ => {
                    // A call whose deadline is already behind the clock:
                    // guaranteed shed once the clock has moved at all.
                    let now = broker.now().as_micros();
                    let meta = CallMeta::new("interactive", now).with_deadline(1);
                    broker.call_admitted("serve", &Args::new(), &meta).unwrap();
                }
            }
        }

        let bytes = broker.journal_bytes().expect("journaling on").to_vec();
        let snap = broker.state().snapshot();
        let mode = broker.brownout_mode();
        let stats = broker.stats();
        let clock = broker.now().as_micros();
        let (rec, _) =
            GenericBroker::recover(&model, broker.into_hub(), &bytes, &[]).expect("recovers");
        assert_eq!(rec.state().snapshot(), snap, "case {case}: state diverged");
        assert_eq!(rec.state().version(), snap.version, "case {case}");
        assert_eq!(rec.brownout_mode(), mode, "case {case}: mode diverged");
        assert_eq!(rec.stats(), stats, "case {case}");
        assert_eq!(rec.now().as_micros(), clock, "case {case}");
    }
}

/// Any seeded interleaving of crash, stall, heal, and partition events
/// against a supervised primary/standby group yields exactly one promoted
/// primary per epoch: epochs are unique and strictly increasing, every
/// promotion names exactly one component, and a failed-over component
/// produces no further decisions until it rejoins.
#[test]
fn failover_interleavings_yield_one_primary_per_epoch() {
    use mddsm_broker::supervisor::{RestartPolicy, Supervisor, SupervisorDecision};
    use mddsm_sim::fault::ComponentTarget;
    use mddsm_sim::{SimDuration, SimTime};
    use std::collections::BTreeSet;

    const NODES: &[&str] = &["a", "b", "c"];
    for case in 0..64u64 {
        let mut gen = SimRng::seed_from_u64(0xB9_0000 + case);
        let mut sup = Supervisor::new(
            NODES,
            RestartPolicy {
                max_restarts: 1_000, // keep escalation out of this property
                window: SimDuration::from_millis(60_000),
                stall_after: SimDuration::from_millis(300),
            },
        );
        let mut primary = "a".to_string();
        sup.designate_standby("a", "b");

        let mut t_us = 0u64;
        let mut seen_epochs = BTreeSet::new();
        let steps = gen.range(10, 60);
        for _ in 0..steps {
            t_us += gen.range(1_000, 400_000);
            let now = SimTime::from_micros(t_us);
            let node = NODES[gen.index(NODES.len())];
            match gen.range(0, 6) {
                0 => sup.crash_component(node),
                1 => sup.stall_component(node),
                2 => sup.note_partitioned(node, true),
                3 => sup.note_partitioned(node, false),
                _ => {
                    for n in NODES {
                        sup.heartbeat(n, now);
                    }
                }
            }
            // Sometimes a failed-over node finishes fencing + reconcile
            // and rejoins as the standby of the current primary.
            if gen.chance(0.3) {
                for n in NODES {
                    if sup.awaiting_rejoin(n) {
                        sup.rejoin(n, now);
                        sup.designate_standby(&primary, n);
                        break;
                    }
                }
            }

            for d in sup.tick(now).unwrap() {
                assert!(
                    !sup.awaiting_rejoin(d.component())
                        || matches!(d, SupervisorDecision::Failover { .. }),
                    "case {case}: decision about a node that already left supervision: {d:?}"
                );
                if let SupervisorDecision::Failover {
                    component,
                    standby,
                    epoch,
                    ..
                } = d
                {
                    assert!(
                        seen_epochs.insert(epoch),
                        "case {case}: two promotions share epoch {epoch}"
                    );
                    assert_eq!(epoch, sup.epoch(), "case {case}");
                    assert_ne!(component, standby, "case {case}");
                    primary = standby;
                }
            }
        }

        // The promotion log agrees: one promoted component per epoch,
        // epochs strictly increasing from 2.
        let epochs: Vec<u64> = sup.promotions().iter().map(|(e, _)| *e).collect();
        assert_eq!(epochs.len(), seen_epochs.len(), "case {case}");
        assert!(
            epochs.windows(2).all(|w| w[0] < w[1]),
            "case {case}: epochs not strictly increasing: {epochs:?}"
        );
        for (e, promoted) in sup.promotions() {
            assert!(*e >= 2, "case {case}");
            assert!(NODES.contains(&promoted.as_str()), "case {case}");
        }
    }
}

/// Any seeded interleaving of clean calls, corrupting writes (violating
/// and benign), quarantine rollbacks, and journal truncations yields
/// **identical monitor verdicts** between the live run and an independent
/// replay of its journal: same state (trip latches and counters are
/// journaled writes), and a recovered broker is latched exactly when the
/// live one was — refusing commands iff the live one would.
#[test]
fn monitor_verdicts_identical_between_live_run_and_replay() {
    use mddsm_broker::BrokerError;

    for case in 0..32u64 {
        let mut gen = SimRng::seed_from_u64(0xBA_0000 + case);
        let model = BrokerModelBuilder::new("mb")
            .call_handler("h", "open")
            .action("h", "doOpen", "svc", "open", &[], None, &["opens=+1"])
            .monitor("nonneg", "always self.opens = null or self.opens >= 0")
            .build();
        let mut broker = GenericBroker::from_model(&model, hub()).unwrap();
        broker.enable_journal(gen.range(0, 6));

        let steps = gen.range(5, 50);
        let mut live_trips = 0usize;
        for _ in 0..steps {
            match gen.range(0, 8) {
                0 => {
                    // A write that violates the invariant ~half the time.
                    let v = gen.range(0, 7) as i64 - 3;
                    live_trips += broker.corrupt_state("opens", &v.to_string()).len();
                }
                1 if broker.monitor_latched() => {
                    // The quarantine repair; may legitimately fail when a
                    // truncation discarded every verified snapshot.
                    let _ = broker.rollback_to_snapshot();
                }
                2 => {
                    broker.truncate_journal_to(broker.state().version());
                }
                _ => match broker.call("open", &Args::new()) {
                    Ok(_) | Err(BrokerError::MonitorTripped { .. }) => {}
                    Err(e) => panic!("case {case}: unexpected refusal: {e}"),
                },
            }
        }

        let bytes = broker.journal_bytes().unwrap().to_vec();
        let replayed = journal::replay(&bytes).expect("journal replays");
        assert_eq!(
            replayed.state.snapshot(),
            broker.state().snapshot(),
            "case {case}: replayed monitor state diverged"
        );
        let latched = broker.monitor_latched();
        if live_trips > 0 {
            assert!(
                broker.monitor_trips().len() >= live_trips,
                "case {case}: trips lost"
            );
        }
        let (mut rec, _) =
            GenericBroker::recover(&model, broker.into_hub(), &bytes, &[]).expect("recovers");
        assert_eq!(rec.monitor_latched(), latched, "case {case}");
        assert_eq!(
            rec.call("open", &Args::new()).is_err(),
            latched,
            "case {case}: recovered broker's refusal disagrees with the live latch"
        );
    }
}

/// A standby with armed monitors detects an invariant violation purely
/// from the shipped record stream — even when the primary itself is
/// unmonitored and keeps serving against the divergent model — without
/// ever diverging its byte-identical mirror.
#[test]
fn armed_standby_detects_divergence_an_unmonitored_primary_misses() {
    use mddsm_broker::monitor::MonitorSet;
    use mddsm_broker::Standby;

    let model = BrokerModelBuilder::new("ub")
        .call_handler("h", "open")
        .action("h", "doOpen", "svc", "open", &[], None, &["opens=+1"])
        .build();
    let mut primary = GenericBroker::from_model(&model, hub()).unwrap();
    primary.enable_journal(0);
    for _ in 0..3 {
        primary.call("open", &Args::new()).unwrap();
    }
    // Nothing armed on the primary: the violation lands silently and the
    // primary keeps executing commands against the corrupt model.
    assert!(primary.corrupt_state("opens", "-2").is_empty());
    assert!(!primary.monitor_latched());
    primary.call("open", &Args::new()).unwrap();

    let mut sb = Standby::new("b");
    sb.arm_monitors(
        MonitorSet::from_invariants(&["self.opens = null or self.opens >= 0"]).unwrap(),
    );
    let text = String::from_utf8(primary.journal_bytes().unwrap().to_vec()).unwrap();
    for (i, line) in text.lines().enumerate() {
        sb.receive(i as u64, line, primary.epoch()).unwrap();
    }
    // One trip (the latch holds through the follow-up write), and the
    // mirror still matches the primary byte for byte.
    assert_eq!(sb.monitor_trips().len(), 1);
    assert!(
        sb.monitor_trips()[0].detail.contains("does not hold"),
        "{}",
        sb.monitor_trips()[0].detail
    );
    assert_eq!(primary.state().first_divergence(sb.state()), None);
}

/// A tripped latch is ordinary journaled state: it survives journal
/// truncation (the retained suffix's snapshot carries it) and a crash —
/// the recovered broker resumes fail-stopped, mid-violation.
#[test]
fn monitor_latch_survives_truncation_and_crash_recovery() {
    let model = BrokerModelBuilder::new("tb")
        .call_handler("h", "open")
        .action("h", "doOpen", "svc", "open", &[], None, &["opens=+1"])
        .monitor("nonneg", "always self.opens = null or self.opens >= 0")
        .build();
    let mut b = GenericBroker::from_model(&model, hub()).unwrap();
    b.enable_journal(2);
    for _ in 0..5 {
        b.call("open", &Args::new()).unwrap();
    }
    assert_eq!(b.corrupt_state("opens", "-9").len(), 1);
    // Compact past the violating write: the snapshot heading the retained
    // suffix captured the latched state.
    let reclaimed = b.truncate_journal_to(b.state().version());
    assert!(reclaimed > 0, "truncation reclaimed nothing");
    let bytes = b.journal_bytes().unwrap().to_vec();
    let live_snap = b.state().snapshot();
    let (mut rec, _) = GenericBroker::recover(&model, b.into_hub(), &bytes, &[]).expect("recovers");
    assert_eq!(rec.state().snapshot(), live_snap);
    assert!(rec.monitor_latched(), "latch lost across truncate + crash");
    assert!(rec.call("open", &Args::new()).is_err());
}

/// Dispatch is deterministic: same model, same state, same call -> same
/// action and outcome.
#[test]
fn dispatch_is_deterministic() {
    for mode in 0i64..4 {
        let run = || {
            let mut broker = guarded_broker(2, 3);
            broker.state_mut().set_int("mode", mode);
            let r = broker.call("op1", &Args::new()).unwrap();
            (r.action, r.outcome.is_ok())
        };
        assert_eq!(run(), run());
    }
}
