//! Property-style tests for the Controller layer: intent-model generation
//! over random repositories always yields valid (acyclic,
//! dependency-complete, policy-consistent) models or fails cleanly.
//!
//! Repositories are generated with a small local SplitMix64 generator over
//! fixed seeds, so the suite is deterministic and dependency-free.

use mddsm_controller::procedure::{Instr, Procedure};
use mddsm_controller::{
    ControllerContext, DscId, DscRegistry, GenerationConfig, PolicyObjective, ProcedureRepository,
};

/// Minimal deterministic generator (SplitMix64) for test-case shapes.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform-ish value in `[lo, hi)` (modulo bias is irrelevant here).
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }
}

/// A random-but-wellformed repository over a fixed DSC universe: 6
/// operation DSCs, each procedure classified by one DSC and depending on
/// strictly-higher DSC indices (so an acyclic expansion always exists when
/// every DSC has at least one leaf).
fn arb_repo(seed: u64) -> (DscRegistry, ProcedureRepository) {
    let n_dscs = 6usize;
    let mut gen = Gen(seed);
    let n_procs = gen.range(1, 24) as usize;
    let specs: Vec<(usize, Vec<usize>, u32)> = (0..n_procs)
        .map(|_| {
            let classifier = gen.range(0, n_dscs as u64) as usize;
            let n_deps = gen.range(0, 3) as usize;
            let deps = (0..n_deps)
                .map(|_| gen.range(0, n_dscs as u64) as usize)
                .collect();
            let cost = gen.range(1, 10) as u32;
            (classifier, deps, cost)
        })
        .collect();

    let mut dscs = DscRegistry::new();
    for i in 0..n_dscs {
        dscs.operation(&format!("D{i}"), None, "generated").unwrap();
    }
    let mut repo = ProcedureRepository::new();
    // Guarantee a leaf for every DSC.
    for i in 0..n_dscs {
        repo.add(Procedure::simple(
            &format!("leaf{i}"),
            &format!("D{i}"),
            vec![Instr::Complete],
        ))
        .unwrap();
    }
    for (j, (classifier, deps, cost)) in specs.into_iter().enumerate() {
        let mut p = Procedure::simple(
            &format!("p{j}"),
            &format!("D{classifier}"),
            deps.iter()
                .enumerate()
                .map(|(k, _)| Instr::CallDep(k))
                .chain(std::iter::once(Instr::Complete))
                .collect(),
        )
        .with_cost(f64::from(cost));
        for d in &deps {
            // Only depend on strictly higher indices to keep the DSC
            // graph acyclic at the *optimum*; cycles through equal or
            // lower indices are still possible candidates the search
            // must avoid.
            let target = (d + classifier + 1) % 6;
            p = p.with_dependency(&format!("D{target}"));
        }
        repo.add(p).unwrap();
    }
    (dscs, repo)
}

#[test]
fn generated_ims_always_validate() {
    for case in 0..32u64 {
        let (dscs, repo) = arb_repo(0xC1_0000 + case);
        let root = DscId::new(format!("D{}", case % 6));
        let ctx = ControllerContext::new();
        // Random repositories can be densely cyclic; cap the search.
        let config = GenerationConfig {
            beam_width: 4,
            max_depth: 6,
            max_expansions: 20_000,
            ..Default::default()
        };
        if let Ok(im) = mddsm_controller::intent::generate(&root, &repo, &dscs, &ctx, &config) {
            mddsm_controller::intent::validate(&im, &repo, &dscs, &root)
                .expect("every generated IM validates");
            // No procedure repeats along any root-to-leaf path: implied by
            // validate(), but double-check the flat size is bounded.
            assert!(im.depth() <= config.max_depth);
        }
    }
}

#[test]
fn wider_beam_never_worse() {
    for case in 0..32u64 {
        let (dscs, repo) = arb_repo(0xC2_0000 + case);
        let root = DscId::new("D0");
        let ctx = ControllerContext::new();
        let base = GenerationConfig {
            max_depth: 6,
            max_expansions: 20_000,
            ..GenerationConfig::default()
        };
        let narrow = GenerationConfig {
            beam_width: 1,
            ..base.clone()
        };
        let wide = GenerationConfig {
            beam_width: 8,
            ..base
        };
        let score = |cfg: &GenerationConfig| {
            mddsm_controller::intent::generate(&root, &repo, &dscs, &ctx, cfg)
                .ok()
                .map(|im| cfg.policy.score(&im, &repo))
        };
        if let (Some(n), Some(w)) = (score(&narrow), score(&wide)) {
            assert!(w <= n + 1e-9, "beam 8 picked {w}, beam 1 picked {n}");
        }
    }
}

#[test]
fn failure_marks_strictly_shrink_candidates() {
    for case in 0..32u64 {
        let (dscs, repo) = arb_repo(0xC3_0000 + case);
        let root = DscId::new("D0");
        let config = GenerationConfig {
            beam_width: 4,
            max_depth: 6,
            max_expansions: 20_000,
            ..Default::default()
        };
        let base = mddsm_controller::intent::generate(
            &root,
            &repo,
            &dscs,
            &ControllerContext::new(),
            &config,
        );
        let Ok(im) = base else { continue };
        // Marking the selected root procedure failed forbids it.
        let mut ctx = ControllerContext::new();
        ctx.mark_failed(im.root.proc.as_str());
        if let Ok(im2) = mddsm_controller::intent::generate(&root, &repo, &dscs, &ctx, &config) {
            assert_ne!(&im2.root.proc, &im.root.proc);
        }
    }
}

#[test]
fn objective_scores_are_finite_and_ordered() {
    for case in 0..32u64 {
        let (dscs, repo) = arb_repo(0xC4_0000 + case);
        let root = DscId::new("D0");
        let ctx = ControllerContext::new();
        for policy in [
            PolicyObjective::MinimizeCost,
            PolicyObjective::MaximizeReliability,
            PolicyObjective::MinimizeMemory,
            PolicyObjective::Weighted {
                w_cost: 1.0,
                w_rel: 0.5,
                w_mem: 0.2,
            },
        ] {
            let config = GenerationConfig {
                policy: policy.clone(),
                beam_width: 4,
                max_depth: 6,
                max_expansions: 20_000,
            };
            if let Ok(im) = mddsm_controller::intent::generate(&root, &repo, &dscs, &ctx, &config) {
                let s = policy.score(&im, &repo);
                assert!(s.is_finite());
            }
        }
    }
}
