//! Property-based tests for the Controller layer: intent-model generation
//! over random repositories always yields valid (acyclic,
//! dependency-complete, policy-consistent) models or fails cleanly.

use mddsm_controller::procedure::{Instr, Procedure};
use mddsm_controller::{
    ControllerContext, DscId, DscRegistry, GenerationConfig, PolicyObjective,
    ProcedureRepository,
};
use proptest::prelude::*;

/// A random-but-wellformed repository over a fixed DSC universe: `n_dscs`
/// operation DSCs, each procedure classified by one DSC and depending on
/// strictly-higher DSC indices (so an acyclic expansion always exists when
/// every DSC has at least one leaf).
fn arb_repo() -> impl Strategy<Value = (DscRegistry, ProcedureRepository)> {
    let n_dscs = 6usize;
    // For each DSC: 1..4 procedures, each with deps drawn from higher DSCs.
    let procs = prop::collection::vec(
        (
            0..n_dscs,
            prop::collection::vec(0..n_dscs, 0..3),
            1u32..10,
        ),
        1..24,
    );
    procs.prop_map(move |specs| {
        let mut dscs = DscRegistry::new();
        for i in 0..n_dscs {
            dscs.operation(&format!("D{i}"), None, "generated").unwrap();
        }
        let mut repo = ProcedureRepository::new();
        // Guarantee a leaf for every DSC.
        for i in 0..n_dscs {
            repo.add(Procedure::simple(&format!("leaf{i}"), &format!("D{i}"), vec![Instr::Complete]))
                .unwrap();
        }
        for (j, (classifier, deps, cost)) in specs.into_iter().enumerate() {
            let mut p = Procedure::simple(
                &format!("p{j}"),
                &format!("D{classifier}"),
                deps.iter()
                    .enumerate()
                    .map(|(k, _)| Instr::CallDep(k))
                    .chain(std::iter::once(Instr::Complete))
                    .collect(),
            )
            .with_cost(f64::from(cost));
            for d in &deps {
                // Only depend on strictly higher indices to keep the DSC
                // graph acyclic at the *optimum*; cycles through equal or
                // lower indices are still possible candidates the search
                // must avoid.
                let target = (d + classifier + 1) % 6;
                p = p.with_dependency(&format!("D{target}"));
            }
            repo.add(p).unwrap();
        }
        (dscs, repo)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn generated_ims_always_validate((dscs, repo) in arb_repo(), root in 0usize..6) {
        let root = DscId::new(format!("D{root}"));
        let ctx = ControllerContext::new();
        // Random repositories can be densely cyclic; cap the search.
        let config = GenerationConfig {
            beam_width: 4, max_depth: 6, max_expansions: 20_000, ..Default::default()
        };
        if let Ok(im) = mddsm_controller::intent::generate(&root, &repo, &dscs, &ctx, &config) {
            mddsm_controller::intent::validate(&im, &repo, &dscs, &root)
                .expect("every generated IM validates");
            // No procedure repeats along any root-to-leaf path: implied by
            // validate(), but double-check the flat size is bounded.
            assert!(im.depth() <= config.max_depth);
        }
    }

    #[test]
    fn wider_beam_never_worse((dscs, repo) in arb_repo()) {
        let root = DscId::new("D0");
        let ctx = ControllerContext::new();
        let base = GenerationConfig {
            max_depth: 6, max_expansions: 20_000, ..GenerationConfig::default()
        };
        let narrow = GenerationConfig { beam_width: 1, ..base.clone() };
        let wide = GenerationConfig { beam_width: 8, ..base };
        let score = |cfg: &GenerationConfig| {
            mddsm_controller::intent::generate(&root, &repo, &dscs, &ctx, cfg)
                .ok()
                .map(|im| cfg.policy.score(&im, &repo))
        };
        if let (Some(n), Some(w)) = (score(&narrow), score(&wide)) {
            prop_assert!(w <= n + 1e-9, "beam 16 picked {w}, beam 1 picked {n}");
        }
    }

    #[test]
    fn failure_marks_strictly_shrink_candidates((dscs, repo) in arb_repo()) {
        let root = DscId::new("D0");
        let config = GenerationConfig {
            beam_width: 4, max_depth: 6, max_expansions: 20_000, ..Default::default()
        };
        let base = mddsm_controller::intent::generate(
            &root, &repo, &dscs, &ControllerContext::new(), &config);
        let Ok(im) = base else { return Ok(()); };
        // Marking the selected root procedure failed forbids it.
        let mut ctx = ControllerContext::new();
        ctx.mark_failed(im.root.proc.as_str());
        if let Ok(im2) =
            mddsm_controller::intent::generate(&root, &repo, &dscs, &ctx, &config)
        {
            prop_assert_ne!(&im2.root.proc, &im.root.proc);
        }
    }

    #[test]
    fn objective_scores_are_finite_and_ordered((dscs, repo) in arb_repo()) {
        let root = DscId::new("D0");
        let ctx = ControllerContext::new();
        for policy in [
            PolicyObjective::MinimizeCost,
            PolicyObjective::MaximizeReliability,
            PolicyObjective::MinimizeMemory,
            PolicyObjective::Weighted { w_cost: 1.0, w_rel: 0.5, w_mem: 0.2 },
        ] {
            let config = GenerationConfig {
                policy: policy.clone(),
                beam_width: 4,
                max_depth: 6,
                max_expansions: 20_000,
            };
            if let Ok(im) = mddsm_controller::intent::generate(&root, &repo, &dscs, &ctx, &config) {
                let s = policy.score(&im, &repo);
                prop_assert!(s.is_finite());
            }
        }
    }
}
