//! Static data-flow analysis of procedures and their execution units.
//!
//! The Controller-layer half of the load-time verifier: where the Broker
//! analyzer type-checks OCL-lite paths and computes action footprints, this
//! pass walks EU instruction sequences and reports defects that the stack
//! machine would otherwise only surface mid-execution — locals read before
//! any `SetVar` binds them, locals bound and never read, instructions
//! stranded after an unconditional `Complete`, `CallDep` indices outside
//! the procedure's dependency list, and `on_error` compensations that can
//! never fire because the procedure issues no fallible call.
//!
//! Diagnostics reuse the shared [`mddsm_meta::analysis`] vocabulary so a
//! whole-platform report can merge Broker and Controller findings, and
//! [`procedure_footprint`] projects the Broker layer's per-operation
//! read/write sets through a procedure's `BrokerCall`s — the cross-layer
//! footprint that conflict detection (and, later, sharding) consumes.

use crate::procedure::{Instr, Operand, Procedure};
use crate::repository::ProcedureRepository;
use mddsm_meta::analysis::{AnalysisReport, Footprint};
use std::collections::BTreeSet;

/// Locals the stack machine itself defines: `result.<key>` after a
/// broker/remote/dependency call, `error.<key>` inside an `on_error` EU.
fn machine_defined(name: &str, calls_seen: bool, in_on_error: bool) -> bool {
    (calls_seen && name.starts_with("result.")) || (in_on_error && name.starts_with("error."))
}

/// Mutable walk state threaded through one procedure's EUs.
struct Flow {
    /// Locals with a definitely-executed `SetVar` on every path here.
    defined: BTreeSet<String>,
    /// Locals read at least once somewhere in the procedure.
    used: BTreeSet<String>,
    /// Locals ever bound by a `SetVar` (for unused-local reporting).
    bound: BTreeSet<String>,
    /// Whether a fallible call (broker/remote/dep) has executed on this path.
    calls_seen: bool,
}

impl Flow {
    fn new() -> Self {
        Flow {
            defined: BTreeSet::new(),
            used: BTreeSet::new(),
            bound: BTreeSet::new(),
            calls_seen: false,
        }
    }

    fn read(&mut self, name: &str, in_on_error: bool, path: &str, report: &mut AnalysisReport) {
        self.used.insert(name.to_owned());
        if !self.defined.contains(name) && !machine_defined(name, self.calls_seen, in_on_error) {
            report.warning(
                "undefined-local",
                path,
                format!("local `{name}` is read before any SetVar binds it"),
            );
        }
    }

    fn read_operand(
        &mut self,
        op: &Operand,
        in_on_error: bool,
        path: &str,
        report: &mut AnalysisReport,
    ) {
        if let Operand::Var(v) = op {
            self.read(v, in_on_error, path, report);
        }
    }
}

/// Walks one instruction sequence. Returns `true` when the sequence
/// definitely executes [`Instr::Complete`] (so nothing after it runs).
fn walk(
    instrs: &[Instr],
    flow: &mut Flow,
    proc: &Procedure,
    in_on_error: bool,
    path: &str,
    report: &mut AnalysisReport,
) -> bool {
    let mut completed = false;
    for (i, instr) in instrs.iter().enumerate() {
        if completed {
            report.warning(
                "unreachable-instr",
                path,
                format!(
                    "instruction {i} is unreachable: every path before it already ran Complete"
                ),
            );
            // One diagnostic per stranded suffix is enough.
            return true;
        }
        match instr {
            Instr::SetVar { name, value } => {
                flow.read_operand(value, in_on_error, path, report);
                flow.defined.insert(name.clone());
                flow.bound.insert(name.clone());
            }
            Instr::Free(name) => {
                if !flow.defined.contains(name.as_str())
                    && !machine_defined(name, flow.calls_seen, in_on_error)
                {
                    report.warning(
                        "undefined-local",
                        path,
                        format!("Free of `{name}`, which no path has bound"),
                    );
                }
                flow.defined.remove(name.as_str());
            }
            Instr::BrokerCall { args, .. } | Instr::RemoteCall { args, .. } => {
                for (_, op) in args {
                    flow.read_operand(op, in_on_error, path, report);
                }
                flow.calls_seen = true;
            }
            Instr::EmitEvent { payload, .. } => {
                for (_, op) in payload {
                    flow.read_operand(op, in_on_error, path, report);
                }
            }
            Instr::SendMessage { payload, .. } => {
                for (_, op) in payload {
                    flow.read_operand(op, in_on_error, path, report);
                }
            }
            Instr::CallDep(idx) => {
                if *idx >= proc.dependencies.len() {
                    report.error(
                        "bad-dep-index",
                        path,
                        format!(
                            "CallDep({idx}) but the procedure declares {} dependency(ies)",
                            proc.dependencies.len()
                        ),
                    );
                }
                flow.calls_seen = true;
            }
            Instr::IfVar {
                var,
                then,
                otherwise,
                ..
            } => {
                flow.read(var, in_on_error, path, report);
                // Definite assignment: a local survives the branch only if
                // both arms bind (or keep) it.
                let before = flow.defined.clone();
                let t_done = walk(then, flow, proc, in_on_error, path, report);
                let after_then = std::mem::replace(&mut flow.defined, before);
                let o_done = walk(otherwise, flow, proc, in_on_error, path, report);
                flow.defined = flow.defined.intersection(&after_then).cloned().collect();
                completed = t_done && o_done;
            }
            Instr::Complete => completed = true,
        }
    }
    completed
}

/// Whether an instruction sequence contains any fallible call — the only
/// instructions whose failure can transfer control to `on_error`.
fn has_fallible(instrs: &[Instr]) -> bool {
    instrs.iter().any(|i| match i {
        Instr::BrokerCall { .. } | Instr::RemoteCall { .. } | Instr::CallDep(_) => true,
        Instr::IfVar {
            then, otherwise, ..
        } => has_fallible(then) || has_fallible(otherwise),
        _ => false,
    })
}

/// Analyzes one procedure's EUs for data-flow defects.
///
/// Error-level: `bad-dep-index`. Warning-level: `undefined-local`,
/// `unused-local`, `unreachable-instr`, `unreachable-eu`, `dead-on-error`.
pub fn analyze_procedure(p: &Procedure) -> AnalysisReport {
    let mut report = AnalysisReport::new();
    let mut flow = Flow::new();
    let mut completed = false;
    for eu in &p.eus {
        let path = format!("proc:{}/eu:{}", p.id, eu.name);
        if completed {
            report.warning(
                "unreachable-eu",
                &path,
                "EU is unreachable: an earlier EU always runs Complete",
            );
            continue;
        }
        completed = walk(&eu.instructions, &mut flow, p, false, &path, &mut report);
    }
    if let Some(handler) = &p.on_error {
        let path = format!("proc:{}/on_error:{}", p.id, handler.name);
        if !p.eus.iter().any(|eu| has_fallible(&eu.instructions)) {
            report.warning(
                "dead-on-error",
                &path,
                "on_error can never fire: the procedure issues no broker, remote, or dependency call",
            );
        }
        // Compensation runs in a fresh frame view: locals from the failed
        // path are not guaranteed, only the `error.*` context is.
        let mut err_flow = Flow::new();
        walk(
            &handler.instructions,
            &mut err_flow,
            p,
            true,
            &path,
            &mut report,
        );
        for name in err_flow.bound.difference(&err_flow.used) {
            report.warning(
                "unused-local",
                &path,
                format!("local `{name}` is bound but never read"),
            );
        }
    }
    let proc_path = format!("proc:{}", p.id);
    for name in flow.bound.difference(&flow.used) {
        report.warning(
            "unused-local",
            &proc_path,
            format!("local `{name}` is bound but never read"),
        );
    }
    report
}

/// Runs [`analyze_procedure`] over every procedure in a repository and
/// merges the reports.
pub fn analyze_repository(repo: &ProcedureRepository) -> AnalysisReport {
    let mut report = AnalysisReport::new();
    for id in repo.ids() {
        if let Some(p) = repo.get(id) {
            report.merge(analyze_procedure(p));
        }
    }
    report
}

/// Projects Broker-layer operation footprints through a procedure.
///
/// `lookup` maps a `(api, op)` pair from a [`Instr::BrokerCall`] to the
/// Broker analyzer's read/write set for that operation (e.g. via
/// `mddsm_broker::analysis::op_footprint`); unresolvable operations are
/// recorded as a read of the marker key `unresolved:<api>.<op>` so callers
/// can see the footprint is partial. The union over every reachable
/// `BrokerCall` is the procedure's cross-layer footprint.
pub fn procedure_footprint(
    p: &Procedure,
    lookup: &dyn Fn(&str, &str) -> Option<Footprint>,
) -> Footprint {
    let mut fp = Footprint::default();
    fn visit(
        instrs: &[Instr],
        fp: &mut Footprint,
        lookup: &dyn Fn(&str, &str) -> Option<Footprint>,
    ) {
        for instr in instrs {
            match instr {
                Instr::BrokerCall { api, op, .. } => match lookup(api, op) {
                    Some(call_fp) => fp.absorb(&call_fp),
                    None => {
                        fp.reads.insert(format!("unresolved:{api}.{op}"));
                    }
                },
                Instr::IfVar {
                    then, otherwise, ..
                } => {
                    visit(then, fp, lookup);
                    visit(otherwise, fp, lookup);
                }
                _ => {}
            }
        }
    }
    for eu in &p.eus {
        visit(&eu.instructions, &mut fp, lookup);
    }
    if let Some(handler) = &p.on_error {
        visit(&handler.instructions, &mut fp, lookup);
    }
    fp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::procedure::{ExecutionUnit, Instr, Operand, Procedure};

    fn codes(report: &AnalysisReport) -> Vec<&str> {
        report.diagnostics.iter().map(|d| d.code.as_str()).collect()
    }

    #[test]
    fn clean_procedure_is_clean() {
        let p = Procedure::simple(
            "store",
            "storage",
            vec![
                Instr::SetVar {
                    name: "key".into(),
                    value: Operand::arg("key"),
                },
                Instr::BrokerCall {
                    api: "state".into(),
                    op: "put".into(),
                    args: vec![("key".into(), Operand::var("key"))],
                },
                Instr::Complete,
            ],
        );
        assert!(analyze_procedure(&p).is_clean());
    }

    #[test]
    fn undefined_local_read_is_warned() {
        let p = Procedure::simple(
            "p",
            "c",
            vec![
                Instr::EmitEvent {
                    topic: "t".into(),
                    payload: vec![("v".into(), Operand::var("ghost"))],
                },
                Instr::Complete,
            ],
        );
        let r = analyze_procedure(&p);
        assert!(
            codes(&r).contains(&"undefined-local"),
            "{:?}",
            r.diagnostics
        );
        assert!(r.is_accepted(), "data-flow smells are warnings, not errors");
    }

    #[test]
    fn result_locals_are_defined_only_after_a_call() {
        let before = Procedure::simple(
            "p",
            "c",
            vec![
                Instr::SetVar {
                    name: "x".into(),
                    value: Operand::var("result.value"),
                },
                Instr::BrokerCall {
                    api: "state".into(),
                    op: "get".into(),
                    args: vec![],
                },
                Instr::EmitEvent {
                    topic: "t".into(),
                    payload: vec![("v".into(), Operand::var("x"))],
                },
                Instr::Complete,
            ],
        );
        assert!(codes(&analyze_procedure(&before)).contains(&"undefined-local"));

        let after = Procedure::simple(
            "p",
            "c",
            vec![
                Instr::BrokerCall {
                    api: "state".into(),
                    op: "get".into(),
                    args: vec![],
                },
                Instr::EmitEvent {
                    topic: "t".into(),
                    payload: vec![("v".into(), Operand::var("result.value"))],
                },
                Instr::Complete,
            ],
        );
        assert!(analyze_procedure(&after).is_clean());
    }

    #[test]
    fn unused_local_is_warned() {
        let p = Procedure::simple(
            "p",
            "c",
            vec![
                Instr::SetVar {
                    name: "scratch".into(),
                    value: Operand::lit("1"),
                },
                Instr::Complete,
            ],
        );
        assert!(codes(&analyze_procedure(&p)).contains(&"unused-local"));
    }

    #[test]
    fn instructions_after_complete_are_unreachable() {
        let p = Procedure::simple(
            "p",
            "c",
            vec![
                Instr::Complete,
                Instr::EmitEvent {
                    topic: "never".into(),
                    payload: vec![],
                },
            ],
        );
        assert!(codes(&analyze_procedure(&p)).contains(&"unreachable-instr"));
    }

    #[test]
    fn ifvar_completing_on_both_branches_strands_the_tail() {
        let p = Procedure::simple(
            "p",
            "c",
            vec![
                Instr::SetVar {
                    name: "mode".into(),
                    value: Operand::arg("mode"),
                },
                Instr::IfVar {
                    var: "mode".into(),
                    equals: "fast".into(),
                    then: vec![Instr::Complete],
                    otherwise: vec![Instr::Complete],
                },
                Instr::EmitEvent {
                    topic: "never".into(),
                    payload: vec![],
                },
            ],
        );
        assert!(codes(&analyze_procedure(&p)).contains(&"unreachable-instr"));
    }

    #[test]
    fn ifvar_completing_on_one_branch_keeps_the_tail_live() {
        let p = Procedure::simple(
            "p",
            "c",
            vec![
                Instr::SetVar {
                    name: "mode".into(),
                    value: Operand::arg("mode"),
                },
                Instr::IfVar {
                    var: "mode".into(),
                    equals: "fast".into(),
                    then: vec![Instr::Complete],
                    otherwise: vec![],
                },
                Instr::Complete,
            ],
        );
        let r = analyze_procedure(&p);
        assert!(
            !codes(&r).contains(&"unreachable-instr"),
            "{:?}",
            r.diagnostics
        );
    }

    #[test]
    fn branch_local_binding_does_not_count_as_definite() {
        let p = Procedure::simple(
            "p",
            "c",
            vec![
                Instr::SetVar {
                    name: "mode".into(),
                    value: Operand::arg("mode"),
                },
                Instr::IfVar {
                    var: "mode".into(),
                    equals: "fast".into(),
                    then: vec![Instr::SetVar {
                        name: "x".into(),
                        value: Operand::lit("1"),
                    }],
                    otherwise: vec![],
                },
                Instr::EmitEvent {
                    topic: "t".into(),
                    payload: vec![("v".into(), Operand::var("x"))],
                },
                Instr::Complete,
            ],
        );
        assert!(codes(&analyze_procedure(&p)).contains(&"undefined-local"));
    }

    #[test]
    fn bad_dep_index_is_an_error() {
        let p = Procedure::simple("p", "c", vec![Instr::CallDep(0), Instr::Complete]);
        let r = analyze_procedure(&p);
        assert!(!r.is_accepted());
        assert!(codes(&r).contains(&"bad-dep-index"));
    }

    #[test]
    fn dead_on_error_is_warned_and_error_locals_are_defined_there() {
        let mut p = Procedure::simple(
            "p",
            "c",
            vec![
                Instr::EmitEvent {
                    topic: "t".into(),
                    payload: vec![],
                },
                Instr::Complete,
            ],
        );
        p.on_error = Some(ExecutionUnit::new(
            "compensate",
            vec![
                Instr::EmitEvent {
                    topic: "failed".into(),
                    payload: vec![("why".into(), Operand::var("error.reason"))],
                },
                Instr::Complete,
            ],
        ));
        let r = analyze_procedure(&p);
        assert!(codes(&r).contains(&"dead-on-error"), "{:?}", r.diagnostics);
        assert!(
            !codes(&r).contains(&"undefined-local"),
            "error.* locals are machine-defined in on_error: {:?}",
            r.diagnostics
        );
    }

    #[test]
    fn live_on_error_is_not_dead() {
        let mut p = Procedure::simple(
            "p",
            "c",
            vec![
                Instr::BrokerCall {
                    api: "state".into(),
                    op: "put".into(),
                    args: vec![],
                },
                Instr::Complete,
            ],
        );
        p.on_error = Some(ExecutionUnit::new("compensate", vec![Instr::Complete]));
        assert!(analyze_procedure(&p).is_clean());
    }

    #[test]
    fn repository_report_merges_per_procedure_reports() {
        let mut repo = ProcedureRepository::new();
        repo.add(Procedure::simple("ok", "c", vec![Instr::Complete]))
            .unwrap();
        repo.add(Procedure::simple(
            "broken",
            "c",
            vec![Instr::CallDep(3), Instr::Complete],
        ))
        .unwrap();
        let r = analyze_repository(&repo);
        assert!(!r.is_accepted());
        assert_eq!(r.errors().count(), 1);
    }

    #[test]
    fn procedure_footprint_unions_broker_call_footprints() {
        let p = Procedure::simple(
            "p",
            "c",
            vec![
                Instr::BrokerCall {
                    api: "state".into(),
                    op: "put".into(),
                    args: vec![],
                },
                Instr::IfVar {
                    var: "result.ok".into(),
                    equals: "true".into(),
                    then: vec![Instr::BrokerCall {
                        api: "state".into(),
                        op: "get".into(),
                        args: vec![],
                    }],
                    otherwise: vec![Instr::BrokerCall {
                        api: "ghost".into(),
                        op: "noop".into(),
                        args: vec![],
                    }],
                },
                Instr::Complete,
            ],
        );
        let fp = procedure_footprint(&p, &|api, op| match (api, op) {
            ("state", "put") => {
                let mut f = Footprint::default();
                f.writes.insert("stored".into());
                Some(f)
            }
            ("state", "get") => {
                let mut f = Footprint::default();
                f.reads.insert("stored".into());
                Some(f)
            }
            _ => None,
        });
        assert!(fp.writes.contains("stored"));
        assert!(fp.reads.contains("stored"));
        assert!(fp.reads.contains("unresolved:ghost.noop"));
    }
}
