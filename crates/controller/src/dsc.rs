//! Domain-Specific Classifiers (DSCs).
//!
//! "DSCs categorize operations and data based on the business rules of a
//! domain. […] Once generated, the DSCs serve as a mechanism to describe
//! interfaces with implicit domain-specific constraints" (§V-B). A DSC
//! taxonomy supports subsumption: a procedure classified by a child DSC is
//! a candidate wherever the parent DSC is requested.

use crate::{ControllerError, Result};
use std::collections::BTreeMap;

/// Identifier of a DSC (its unique name within the registry).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DscId(pub String);

impl DscId {
    /// Creates an id from a name.
    pub fn new(name: impl Into<String>) -> Self {
        DscId(name.into())
    }

    /// The name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for DscId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for DscId {
    fn from(s: &str) -> Self {
        DscId(s.to_owned())
    }
}

/// What a DSC classifies: operations ("their goal") or data ("to be able
/// to refer to these data").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Category {
    /// Classifies domain operations.
    Operation,
    /// Classifies domain data.
    Data,
}

/// One Domain-Specific Classifier.
#[derive(Debug, Clone, PartialEq)]
pub struct Dsc {
    /// Unique id/name.
    pub id: DscId,
    /// Operation or data classifier.
    pub category: Category,
    /// Optional parent in the taxonomy (subsumption).
    pub parent: Option<DscId>,
    /// Human-readable description of the goal it demarcates.
    pub description: String,
}

/// The DSC taxonomy of a domain.
#[derive(Debug, Clone, Default)]
pub struct DscRegistry {
    dscs: BTreeMap<DscId, Dsc>,
}

impl DscRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a DSC; the parent (when given) must already exist.
    pub fn register(&mut self, dsc: Dsc) -> Result<()> {
        if self.dscs.contains_key(&dsc.id) {
            return Err(ControllerError::IllFormed(format!(
                "duplicate DSC `{}`",
                dsc.id
            )));
        }
        if let Some(p) = &dsc.parent {
            let parent = self.dscs.get(p).ok_or_else(|| {
                ControllerError::IllFormed(format!("DSC `{}` has unknown parent `{p}`", dsc.id))
            })?;
            if parent.category != dsc.category {
                return Err(ControllerError::IllFormed(format!(
                    "DSC `{}` and parent `{p}` have different categories",
                    dsc.id
                )));
            }
        }
        self.dscs.insert(dsc.id.clone(), dsc);
        Ok(())
    }

    /// Shorthand: registers an operation DSC.
    pub fn operation(&mut self, id: &str, parent: Option<&str>, description: &str) -> Result<()> {
        self.register(Dsc {
            id: DscId::new(id),
            category: Category::Operation,
            parent: parent.map(DscId::new),
            description: description.to_owned(),
        })
    }

    /// Shorthand: registers a data DSC.
    pub fn data(&mut self, id: &str, parent: Option<&str>, description: &str) -> Result<()> {
        self.register(Dsc {
            id: DscId::new(id),
            category: Category::Data,
            parent: parent.map(DscId::new),
            description: description.to_owned(),
        })
    }

    /// Looks up a DSC.
    pub fn get(&self, id: &DscId) -> Option<&Dsc> {
        self.dscs.get(id)
    }

    /// Looks up a DSC, erroring when absent.
    pub fn get_or_err(&self, id: &DscId) -> Result<&Dsc> {
        self.get(id)
            .ok_or_else(|| ControllerError::UnknownDsc(id.to_string()))
    }

    /// Returns `true` if `sub` equals `sup` or transitively specializes it.
    pub fn subsumes(&self, sup: &DscId, sub: &DscId) -> bool {
        if sup == sub {
            return true;
        }
        let mut cur = self.dscs.get(sub).and_then(|d| d.parent.clone());
        while let Some(p) = cur {
            if &p == sup {
                return true;
            }
            cur = self.dscs.get(&p).and_then(|d| d.parent.clone());
        }
        false
    }

    /// All DSC ids, sorted.
    pub fn ids(&self) -> Vec<&DscId> {
        self.dscs.keys().collect()
    }

    /// Number of registered DSCs.
    pub fn len(&self) -> usize {
        self.dscs.len()
    }

    /// Returns `true` when no DSCs are registered.
    pub fn is_empty(&self) -> bool {
        self.dscs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> DscRegistry {
        let mut r = DscRegistry::new();
        r.operation("Connect", None, "establish connectivity")
            .unwrap();
        r.operation("ConnectVideo", Some("Connect"), "establish video")
            .unwrap();
        r.operation("ConnectVideoHD", Some("ConnectVideo"), "establish HD video")
            .unwrap();
        r.data("MediaStream", None, "a media stream").unwrap();
        r
    }

    #[test]
    fn subsumption_follows_parent_chain() {
        let r = registry();
        let connect = DscId::new("Connect");
        let video = DscId::new("ConnectVideo");
        let hd = DscId::new("ConnectVideoHD");
        assert!(r.subsumes(&connect, &connect));
        assert!(r.subsumes(&connect, &video));
        assert!(r.subsumes(&connect, &hd));
        assert!(r.subsumes(&video, &hd));
        assert!(!r.subsumes(&hd, &connect));
        assert!(!r.subsumes(&video, &connect));
        assert!(!r.subsumes(&DscId::new("MediaStream"), &connect));
    }

    #[test]
    fn duplicate_rejected() {
        let mut r = registry();
        assert!(r.operation("Connect", None, "again").is_err());
    }

    #[test]
    fn unknown_parent_rejected() {
        let mut r = DscRegistry::new();
        assert!(r.operation("X", Some("Nope"), "").is_err());
    }

    #[test]
    fn category_mismatch_with_parent_rejected() {
        let mut r = DscRegistry::new();
        r.operation("Op", None, "").unwrap();
        assert!(r.data("D", Some("Op"), "").is_err());
    }

    #[test]
    fn lookup_and_counts() {
        let r = registry();
        assert_eq!(r.len(), 4);
        assert!(!r.is_empty());
        assert!(r.get(&DscId::new("Connect")).is_some());
        assert!(r.get_or_err(&DscId::new("Zzz")).is_err());
        assert_eq!(
            r.get(&DscId::new("ConnectVideo")).unwrap().category,
            Category::Operation
        );
        assert_eq!(r.ids().len(), 4);
    }
}
