//! The controller context: the environmental variables consulted during
//! candidate filtering, policy evaluation, and command classification.

use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};

/// A string-typed environment, e.g. `network=wifi`, `power=battery`,
/// `failed:procX=1`. Cheap to snapshot and to fingerprint (IM-cache key).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ControllerContext {
    vars: BTreeMap<String, String>,
}

impl ControllerContext {
    /// Creates an empty context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets a variable.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<String>) -> &mut Self {
        self.vars.insert(key.into(), value.into());
        self
    }

    /// Builder-style [`ControllerContext::set`].
    pub fn with(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.set(key, value);
        self
    }

    /// Removes a variable; returns its previous value.
    pub fn unset(&mut self, key: &str) -> Option<String> {
        self.vars.remove(key)
    }

    /// Looks up a variable.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.vars.get(key).map(String::as_str)
    }

    /// Marks a procedure as failed (excluded from IM generation until
    /// cleared) — the adaptation hook used after broker failures.
    pub fn mark_failed(&mut self, proc: &str) {
        self.vars.insert(format!("failed:{proc}"), "1".into());
    }

    /// Returns `true` if the procedure is currently marked failed.
    pub fn is_failed(&self, proc: &str) -> bool {
        self.vars.get(&format!("failed:{proc}")).map(String::as_str) == Some("1")
    }

    /// Clears all failure marks (e.g. after recovery).
    pub fn clear_failures(&mut self) {
        self.vars.retain(|k, _| !k.starts_with("failed:"));
    }

    /// The raw map, for procedure compatibility checks.
    pub fn vars(&self) -> &BTreeMap<String, String> {
        &self.vars
    }

    /// A stable fingerprint of the context, used in IM-cache keys.
    pub fn fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        for (k, v) in &self.vars {
            k.hash(&mut h);
            v.hash(&mut h);
        }
        h.finish()
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// Returns `true` when the context is empty.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_unset() {
        let mut c = ControllerContext::new();
        assert!(c.is_empty());
        c.set("network", "wifi");
        assert_eq!(c.get("network"), Some("wifi"));
        assert_eq!(c.unset("network"), Some("wifi".into()));
        assert_eq!(c.get("network"), None);
    }

    #[test]
    fn failure_marks() {
        let mut c = ControllerContext::new().with("network", "wifi");
        c.mark_failed("procA");
        c.mark_failed("procB");
        assert!(c.is_failed("procA"));
        assert!(!c.is_failed("procC"));
        c.clear_failures();
        assert!(!c.is_failed("procA"));
        assert_eq!(c.get("network"), Some("wifi"));
    }

    #[test]
    fn fingerprint_tracks_content() {
        let a = ControllerContext::new().with("x", "1");
        let b = ControllerContext::new().with("x", "1");
        let c = ControllerContext::new().with("x", "2");
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_ne!(a.fingerprint(), ControllerContext::new().fingerprint());
    }
}
