//! Predefined actions — Case 1 of the Fig. 8 Controller configuration.
//!
//! "These DSCs are used either by Action Handlers to select an appropriate
//! action to execute each command, or by an Intent Model Handler to
//! instrument IM generation" (§VI). An action is a canned implementation of
//! a classified operation: faster than dynamic IM generation but fixed at
//! middleware-model load time.

use crate::dsc::DscId;
use crate::machine::{BrokerPort, PortResponse};
use crate::{ControllerError, Result};
use mddsm_synthesis::Command;
use std::collections::BTreeMap;
use std::sync::Arc;

/// The function body of a predefined action.
pub type ActionFn =
    Arc<dyn Fn(&Command, &mut dyn BrokerPort) -> Result<ActionOutcome> + Send + Sync>;

/// Result of running an action.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ActionOutcome {
    /// Broker calls issued.
    pub broker_calls: u64,
    /// Accumulated virtual cost (µs).
    pub virtual_cost_us: u64,
    /// Events raised for the Controller's event handler.
    pub events: Vec<String>,
}

impl ActionOutcome {
    /// Merges a port response into the outcome, failing on error.
    pub fn absorb(
        &mut self,
        resp: PortResponse,
        proc: &str,
        api: &str,
        op: &str,
    ) -> Result<BTreeMap<String, String>> {
        self.broker_calls += 1;
        self.virtual_cost_us += resp.cost_us;
        if resp.ok {
            Ok(resp.values)
        } else {
            Err(ControllerError::BrokerFailure {
                proc: proc.to_owned(),
                api: api.to_owned(),
                op: op.to_owned(),
                reason: resp.reason.unwrap_or_else(|| "unspecified".into()),
            })
        }
    }
}

/// A predefined action, classified (like a procedure) by a single DSC.
#[derive(Clone)]
pub struct Action {
    /// Unique action name.
    pub name: String,
    /// Classifying DSC.
    pub classifier: DscId,
    /// Implementation.
    pub run: ActionFn,
}

impl std::fmt::Debug for Action {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Action")
            .field("name", &self.name)
            .field("classifier", &self.classifier)
            .finish()
    }
}

/// Registry of predefined actions, indexed by classifying DSC.
#[derive(Debug, Clone, Default)]
pub struct ActionRegistry {
    by_dsc: BTreeMap<DscId, Vec<Action>>,
}

impl ActionRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an action.
    pub fn register(
        &mut self,
        name: &str,
        classifier: &str,
        run: impl Fn(&Command, &mut dyn BrokerPort) -> Result<ActionOutcome> + Send + Sync + 'static,
    ) {
        self.by_dsc
            .entry(DscId::new(classifier))
            .or_default()
            .push(Action {
                name: name.to_owned(),
                classifier: DscId::new(classifier),
                run: Arc::new(run),
            });
    }

    /// Selects the first registered action for the DSC (registration order
    /// encodes preference).
    pub fn select(&self, dsc: &DscId) -> Option<&Action> {
        self.by_dsc.get(dsc).and_then(|v| v.first())
    }

    /// Returns `true` when some action can handle the DSC.
    pub fn has(&self, dsc: &DscId) -> bool {
        self.by_dsc.get(dsc).is_some_and(|v| !v.is_empty())
    }

    /// Total number of registered actions.
    pub fn len(&self) -> usize {
        self.by_dsc.values().map(Vec::len).sum()
    }

    /// Returns `true` when no actions are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cmd(name: &str) -> Command {
        Command::new(name, "t")
    }

    #[test]
    fn register_select_and_run() {
        let mut reg = ActionRegistry::new();
        assert!(reg.is_empty());
        reg.register("openFast", "Connect", |cmd, port| {
            let mut out = ActionOutcome::default();
            let resp = port.invoke("svc", "open", &[("cmd".into(), cmd.name.clone())]);
            out.absorb(resp, "openFast", "svc", "open")?;
            out.events.push("opened".into());
            Ok(out)
        });
        reg.register("openSlow", "Connect", |_, _| Ok(ActionOutcome::default()));
        assert_eq!(reg.len(), 2);
        assert!(reg.has(&DscId::new("Connect")));
        assert!(!reg.has(&DscId::new("Other")));

        let action = reg.select(&DscId::new("Connect")).unwrap();
        assert_eq!(action.name, "openFast");
        let mut port = |_: &str, _: &str, _: &[(String, String)]| {
            let mut r = PortResponse::ok();
            r.cost_us = 7;
            r
        };
        let out = (action.run)(&cmd("open"), &mut port).unwrap();
        assert_eq!(out.broker_calls, 1);
        assert_eq!(out.virtual_cost_us, 7);
        assert_eq!(out.events, vec!["opened".to_string()]);
    }

    #[test]
    fn absorb_propagates_failures() {
        let mut out = ActionOutcome::default();
        let e = out
            .absorb(PortResponse::failed("nope", 3), "p", "a", "o")
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(e, ControllerError::BrokerFailure { .. }));
        assert_eq!(out.virtual_cost_us, 3);
        assert_eq!(out.broker_calls, 1);
    }
}
