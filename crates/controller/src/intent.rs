//! Intent Models: generation, validation, selection, and caching.
//!
//! "The generation of an execution model operates on procedure metadata to
//! determine the optimal configuration of a set of procedures to carry out
//! a requested operation based on active policies. It determines valid
//! configurations by examining the DSC-described dependencies of a
//! procedure X, and matches them with other procedures that are classified
//! by the DSCs on which X depends. This step is repeated recursively while
//! ensuring that unwanted configurations such as cycles are avoided, until
//! a procedure dependency tree is generated. This tree is referred to as an
//! Intent Model" (§V-B).
//!
//! The §VII-B measurement ("average cycle time quickly approaching 1 ms as
//! we approached 100 000 cycles") implies memoization of generated IMs;
//! [`ImCache`] provides it, keyed on (DSC, context fingerprint, repository
//! revision, policy fingerprint).

use crate::context::ControllerContext;
use crate::dsc::{DscId, DscRegistry};
use crate::policy::PolicyObjective;
use crate::procedure::ProcId;
use crate::repository::ProcedureRepository;
use crate::{ControllerError, Result};
use std::collections::HashMap;

/// One node of an intent model: a concrete procedure with one child per
/// declared dependency (in declaration order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImNode {
    /// The matched procedure.
    pub proc: ProcId,
    /// Children, aligned with the procedure's `dependencies`.
    pub children: Vec<ImNode>,
}

/// A procedure dependency tree able to perform one classified operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntentModel {
    /// The root procedure (whose classifier is the requested DSC).
    pub root: ImNode,
}

impl IntentModel {
    /// Visits every node, pre-order.
    pub fn visit(&self, mut f: impl FnMut(&ImNode)) {
        fn walk(n: &ImNode, f: &mut impl FnMut(&ImNode)) {
            f(n);
            for c in &n.children {
                walk(c, f);
            }
        }
        walk(&self.root, &mut f);
    }

    /// Number of nodes.
    pub fn size(&self) -> usize {
        let mut n = 0;
        self.visit(|_| n += 1);
        n
    }

    /// Depth of the tree (root = 1).
    pub fn depth(&self) -> usize {
        fn d(n: &ImNode) -> usize {
            1 + n.children.iter().map(d).max().unwrap_or(0)
        }
        d(&self.root)
    }

    /// All distinct procedures used, sorted.
    pub fn procedures(&self) -> Vec<ProcId> {
        let mut out = Vec::new();
        self.visit(|n| out.push(n.proc.clone()));
        out.sort();
        out.dedup();
        out
    }

    /// Canonical rendering, e.g. `a(b, c(d))`.
    pub fn render(&self) -> String {
        fn r(n: &ImNode, out: &mut String) {
            out.push_str(n.proc.as_str());
            if !n.children.is_empty() {
                out.push('(');
                for (i, c) in n.children.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    r(c, out);
                }
                out.push(')');
            }
        }
        let mut s = String::new();
        r(&self.root, &mut s);
        s
    }
}

/// Limits and knobs of the generation search.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerationConfig {
    /// Active selection policy.
    pub policy: PolicyObjective,
    /// Beam width: alternative configurations kept per DSC during the
    /// recursive search (bounds the combinatorial product).
    pub beam_width: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Total candidate expansions allowed per generation — a hard budget
    /// against pathological repositories (densely cyclic dependency
    /// graphs) whose search space explodes despite the beam and depth
    /// limits. Exceeding it fails the generation cleanly.
    pub max_expansions: u64,
}

impl Default for GenerationConfig {
    fn default() -> Self {
        GenerationConfig {
            policy: PolicyObjective::default(),
            beam_width: 8,
            max_depth: 16,
            max_expansions: 200_000,
        }
    }
}

/// Generates the optimal intent model for a DSC in the given context.
///
/// The full cycle — generation, validation, selection — mirrors §VII-B's
/// "full generation cycle (IM generation, validation, and selection)".
pub fn generate(
    dsc: &DscId,
    repo: &ProcedureRepository,
    registry: &DscRegistry,
    ctx: &ControllerContext,
    config: &GenerationConfig,
) -> Result<IntentModel> {
    registry.get_or_err(dsc)?;
    let mut path = Vec::new();
    let mut budget = config.max_expansions;
    let configs = resolve(dsc, repo, registry, ctx, config, &mut path, 0, &mut budget)?;
    let (best, _score) =
        configs
            .into_iter()
            .next()
            .ok_or_else(|| ControllerError::NoValidConfiguration {
                dsc: dsc.to_string(),
                reason: "no context-compatible, acyclic candidate".into(),
            })?;
    let im = IntentModel { root: best };
    validate(&im, repo, registry, dsc)?;
    Ok(im)
}

/// Returns valid configurations rooted at candidates of `dsc`, best first,
/// truncated to the beam width.
#[allow(clippy::too_many_arguments)]
fn resolve(
    dsc: &DscId,
    repo: &ProcedureRepository,
    registry: &DscRegistry,
    ctx: &ControllerContext,
    config: &GenerationConfig,
    path: &mut Vec<ProcId>,
    depth: usize,
    budget: &mut u64,
) -> Result<Vec<(ImNode, f64)>> {
    if depth >= config.max_depth {
        return Err(ControllerError::NoValidConfiguration {
            dsc: dsc.to_string(),
            reason: format!("dependency depth exceeds {}", config.max_depth),
        });
    }
    let mut configs: Vec<(ImNode, f64)> = Vec::new();
    for cand in repo.candidates(dsc, registry) {
        if *budget == 0 {
            return Err(ControllerError::NoValidConfiguration {
                dsc: dsc.to_string(),
                reason: format!(
                    "generation search exceeded {} expansions",
                    config.max_expansions
                ),
            });
        }
        *budget -= 1;
        if path.contains(&cand.id) || ctx.is_failed(cand.id.as_str()) {
            continue; // cycle avoidance / failure exclusion
        }
        if !cand.context_compatible(ctx.vars()) {
            continue;
        }
        path.push(cand.id.clone());
        // One configuration set per dependency; combine greedily by rank
        // (children sets are already sorted best-first).
        let mut child_sets: Vec<Vec<(ImNode, f64)>> = Vec::with_capacity(cand.dependencies.len());
        let mut feasible = true;
        for dep in &cand.dependencies {
            match resolve(dep, repo, registry, ctx, config, path, depth + 1, budget) {
                Ok(set) if !set.is_empty() => child_sets.push(set),
                Err(ControllerError::NoValidConfiguration { reason, .. })
                    if reason.contains("expansions") =>
                {
                    // Budget exhaustion aborts the whole search.
                    path.pop();
                    return Err(ControllerError::NoValidConfiguration {
                        dsc: dsc.to_string(),
                        reason,
                    });
                }
                _ => {
                    feasible = false;
                    break;
                }
            }
        }
        if feasible {
            // Enumerate combinations rank-by-rank up to the beam width: the
            // k-th configuration uses the k-th best choice where available.
            let max_rank = child_sets
                .iter()
                .map(Vec::len)
                .max()
                .unwrap_or(1)
                .min(config.beam_width);
            for rank in 0..max_rank {
                let children: Vec<ImNode> = child_sets
                    .iter()
                    .map(|set| set[rank.min(set.len() - 1)].0.clone())
                    .collect();
                let node = ImNode {
                    proc: cand.id.clone(),
                    children,
                };
                let score = config
                    .policy
                    .score(&IntentModel { root: node.clone() }, repo);
                configs.push((node, score));
            }
        }
        path.pop();
    }
    configs.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    configs.dedup_by(|a, b| a.0 == b.0);
    configs.truncate(config.beam_width);
    Ok(configs)
}

/// Validates an intent model: the root's classifier matches the requested
/// DSC (or a specialization), every node's children align with its
/// procedure's dependencies, and no procedure repeats along any path.
pub fn validate(
    im: &IntentModel,
    repo: &ProcedureRepository,
    registry: &DscRegistry,
    requested: &DscId,
) -> Result<()> {
    let root_proc = repo.get_or_err(&im.root.proc)?;
    if !registry.subsumes(requested, &root_proc.classifier) {
        return Err(ControllerError::InvalidIntentModel(format!(
            "root `{}` classified `{}`, requested `{requested}`",
            im.root.proc, root_proc.classifier
        )));
    }
    fn walk(
        node: &ImNode,
        repo: &ProcedureRepository,
        registry: &DscRegistry,
        path: &mut Vec<ProcId>,
    ) -> Result<()> {
        if path.contains(&node.proc) {
            return Err(ControllerError::InvalidIntentModel(format!(
                "cycle: `{}` repeats along a path",
                node.proc
            )));
        }
        let p = repo.get_or_err(&node.proc)?;
        if node.children.len() != p.dependencies.len() {
            return Err(ControllerError::InvalidIntentModel(format!(
                "`{}` has {} children but {} dependencies",
                node.proc,
                node.children.len(),
                p.dependencies.len()
            )));
        }
        path.push(node.proc.clone());
        for (child, dep) in node.children.iter().zip(&p.dependencies) {
            let cp = repo.get_or_err(&child.proc)?;
            if !registry.subsumes(dep, &cp.classifier) {
                return Err(ControllerError::InvalidIntentModel(format!(
                    "child `{}` (classified `{}`) does not satisfy dependency `{dep}` of `{}`",
                    child.proc, cp.classifier, node.proc
                )));
            }
            walk(child, repo, registry, path)?;
        }
        path.pop();
        Ok(())
    }
    walk(&im.root, repo, registry, &mut Vec::new())
}

/// Memoization of generated IMs, keyed by (DSC, context fingerprint,
/// repository revision, policy fingerprint).
#[derive(Debug, Default)]
pub struct ImCache {
    map: HashMap<(DscId, u64, u64, u64), IntentModel>,
    hits: u64,
    misses: u64,
}

impl ImCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the cached IM for the key, or generates+validates+caches it.
    pub fn get_or_generate(
        &mut self,
        dsc: &DscId,
        repo: &ProcedureRepository,
        registry: &DscRegistry,
        ctx: &ControllerContext,
        config: &GenerationConfig,
    ) -> Result<IntentModel> {
        let key = (
            dsc.clone(),
            ctx.fingerprint(),
            repo.revision(),
            config.policy.fingerprint(),
        );
        if let Some(im) = self.map.get(&key) {
            self.hits += 1;
            return Ok(im.clone());
        }
        self.misses += 1;
        let im = generate(dsc, repo, registry, ctx, config)?;
        self.map.insert(key, im.clone());
        Ok(im)
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drops all entries (e.g. on repository or policy change; entries also
    /// self-invalidate via the revision in the key).
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::procedure::{Instr, Procedure};

    fn registry() -> DscRegistry {
        let mut r = DscRegistry::new();
        for (id, parent) in [
            ("Connect", None),
            ("ConnectVideo", Some("Connect")),
            ("Auth", None),
            ("Media", None),
            ("MediaHD", Some("Media")),
        ] {
            r.operation(id, parent, "").unwrap();
        }
        r
    }

    fn repo() -> ProcedureRepository {
        let mut repo = ProcedureRepository::new();
        repo.add(
            Procedure::simple(
                "openAV",
                "ConnectVideo",
                vec![Instr::CallDep(0), Instr::CallDep(1), Instr::Complete],
            )
            .with_dependency("Auth")
            .with_dependency("Media")
            .with_cost(3.0),
        )
        .unwrap();
        repo.add(Procedure::simple("authBasic", "Auth", vec![Instr::Complete]).with_cost(1.0))
            .unwrap();
        repo.add(Procedure::simple("authStrong", "Auth", vec![Instr::Complete]).with_cost(5.0))
            .unwrap();
        repo.add(Procedure::simple("mediaSD", "Media", vec![Instr::Complete]).with_cost(1.0))
            .unwrap();
        repo.add(
            Procedure::simple("mediaHD", "MediaHD", vec![Instr::Complete])
                .with_cost(2.0)
                .requires("network", "wifi"),
        )
        .unwrap();
        repo
    }

    #[test]
    fn generates_optimal_tree() {
        let im = generate(
            &DscId::new("Connect"),
            &repo(),
            &registry(),
            &ControllerContext::new(),
            &GenerationConfig::default(),
        )
        .unwrap();
        assert_eq!(im.render(), "openAV(authBasic, mediaSD)");
        assert_eq!(im.size(), 3);
        assert_eq!(im.depth(), 2);
        assert_eq!(im.procedures().len(), 3);
    }

    #[test]
    fn context_changes_selection() {
        // On wifi, HD media becomes available but costs more; MinimizeCost
        // still picks SD. A reliability-weighted policy flips when we make
        // HD more reliable.
        let mut repo = repo();
        repo.remove(&ProcId::new("mediaSD")).unwrap();
        let ctx = ControllerContext::new().with("network", "wifi");
        let im = generate(
            &DscId::new("Connect"),
            &repo,
            &registry(),
            &ctx,
            &GenerationConfig::default(),
        )
        .unwrap();
        assert_eq!(im.render(), "openAV(authBasic, mediaHD)");
        // Without wifi there is no Media candidate at all -> no config.
        let e = generate(
            &DscId::new("Connect"),
            &repo,
            &registry(),
            &ControllerContext::new(),
            &GenerationConfig::default(),
        )
        .map(|im| im.render())
        .unwrap_err();
        assert!(matches!(e, ControllerError::NoValidConfiguration { .. }));
    }

    #[test]
    fn failed_procedures_are_excluded() {
        let mut ctx = ControllerContext::new();
        ctx.mark_failed("authBasic");
        let im = generate(
            &DscId::new("Connect"),
            &repo(),
            &registry(),
            &ctx,
            &GenerationConfig::default(),
        )
        .unwrap();
        assert_eq!(im.render(), "openAV(authStrong, mediaSD)");
    }

    #[test]
    fn cycles_are_avoided() {
        let mut reg = DscRegistry::new();
        reg.operation("A", None, "").unwrap();
        reg.operation("B", None, "").unwrap();
        let mut repo = ProcedureRepository::new();
        // a requires B, b requires A: direct mutual recursion has no
        // acyclic expansion, so generation must fail rather than loop.
        repo.add(Procedure::simple("a", "A", vec![Instr::CallDep(0)]).with_dependency("B"))
            .unwrap();
        repo.add(Procedure::simple("b", "B", vec![Instr::CallDep(0)]).with_dependency("A"))
            .unwrap();
        let e = generate(
            &DscId::new("A"),
            &repo,
            &reg,
            &ControllerContext::new(),
            &GenerationConfig::default(),
        )
        .map(|im| im.render());
        assert!(e.is_err());
        // Adding a leaf procedure for B breaks the cycle.
        repo.add(Procedure::simple("bleaf", "B", vec![Instr::Complete]))
            .unwrap();
        let im = generate(
            &DscId::new("A"),
            &repo,
            &reg,
            &ControllerContext::new(),
            &GenerationConfig::default(),
        )
        .unwrap();
        assert_eq!(im.render(), "a(bleaf)");
    }

    #[test]
    fn unknown_dsc_rejected() {
        let e = generate(
            &DscId::new("Nope"),
            &repo(),
            &registry(),
            &ControllerContext::new(),
            &GenerationConfig::default(),
        )
        .map(|im| im.render());
        assert!(matches!(e, Err(ControllerError::UnknownDsc(_))));
    }

    #[test]
    fn validation_rejects_malformed_trees() {
        let repo = repo();
        let reg = registry();
        let dsc = DscId::new("Connect");
        // Wrong child count.
        let im = IntentModel {
            root: ImNode {
                proc: "openAV".into(),
                children: vec![],
            },
        };
        assert!(validate(&im, &repo, &reg, &dsc).is_err());
        // Child violating dependency DSC.
        let im = IntentModel {
            root: ImNode {
                proc: "openAV".into(),
                children: vec![
                    ImNode {
                        proc: "mediaSD".into(),
                        children: vec![],
                    }, // should be Auth
                    ImNode {
                        proc: "mediaSD".into(),
                        children: vec![],
                    },
                ],
            },
        };
        assert!(validate(&im, &repo, &reg, &dsc).is_err());
        // Root classifier mismatch.
        let im = IntentModel {
            root: ImNode {
                proc: "authBasic".into(),
                children: vec![],
            },
        };
        assert!(validate(&im, &repo, &reg, &dsc).is_err());
        // Unknown procedure.
        let im = IntentModel {
            root: ImNode {
                proc: "zzz".into(),
                children: vec![],
            },
        };
        assert!(validate(&im, &repo, &reg, &dsc).is_err());
    }

    #[test]
    fn cache_hits_and_invalidation() {
        let mut cache = ImCache::new();
        let mut repo = repo();
        let reg = registry();
        let ctx = ControllerContext::new();
        let cfg = GenerationConfig::default();
        let dsc = DscId::new("Connect");
        let a = cache
            .get_or_generate(&dsc, &repo, &reg, &ctx, &cfg)
            .unwrap();
        let b = cache
            .get_or_generate(&dsc, &repo, &reg, &ctx, &cfg)
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        // Context change -> miss.
        let ctx2 = ControllerContext::new().with("network", "wifi");
        cache
            .get_or_generate(&dsc, &repo, &reg, &ctx2, &cfg)
            .unwrap();
        assert_eq!(cache.misses(), 2);
        // Repository change -> revision bump -> miss.
        repo.add(Procedure::simple("extra", "Auth", vec![Instr::Complete]))
            .unwrap();
        cache
            .get_or_generate(&dsc, &repo, &reg, &ctx, &cfg)
            .unwrap();
        assert_eq!(cache.misses(), 3);
        assert_eq!(cache.len(), 3);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn beam_width_bounds_alternatives_but_keeps_best() {
        // Many Auth procedures; beam 2 must still select the cheapest.
        let mut repo = repo();
        for i in 0..20 {
            repo.add(
                Procedure::simple(&format!("auth{i}"), "Auth", vec![Instr::Complete])
                    .with_cost(10.0 + f64::from(i)),
            )
            .unwrap();
        }
        let cfg = GenerationConfig {
            beam_width: 2,
            ..GenerationConfig::default()
        };
        let im = generate(
            &DscId::new("Connect"),
            &repo,
            &registry(),
            &ControllerContext::new(),
            &cfg,
        )
        .unwrap();
        assert_eq!(im.render(), "openAV(authBasic, mediaSD)");
    }
}
