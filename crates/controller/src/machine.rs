//! The stack machine: the Controller's execution engine.
//!
//! "The execution engine of the Controller is a stack machine that operates
//! by executing the EUs of the procedure currently on top of the stack. In
//! addition to executing its own code, a procedure X, through its EUs, can
//! call procedures that were matched to its declared dependencies, which
//! results in the called procedure being pushed onto the stack, or it can
//! signal that it has completed its operation, resulting in the procedure
//! being popped from the stack" (§V-B).

use crate::intent::{ImNode, IntentModel};
use crate::procedure::{Instr, Operand};
use crate::repository::ProcedureRepository;
use crate::{ControllerError, Result};
use std::collections::BTreeMap;

/// Response of a broker-port invocation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PortResponse {
    /// Whether the call succeeded.
    pub ok: bool,
    /// Named result values.
    pub values: BTreeMap<String, String>,
    /// Failure reason when `!ok`.
    pub reason: Option<String>,
    /// Virtual-time cost of the call, in microseconds (virtual-time
    /// experiments accumulate it; wall-clock experiments ignore it).
    pub cost_us: u64,
}

impl PortResponse {
    /// A zero-cost success with no values.
    pub fn ok() -> Self {
        PortResponse {
            ok: true,
            ..Default::default()
        }
    }

    /// A failure with a reason.
    pub fn failed(reason: impl Into<String>, cost_us: u64) -> Self {
        PortResponse {
            ok: false,
            reason: Some(reason.into()),
            cost_us,
            ..Default::default()
        }
    }
}

/// The Controller's window onto the Broker layer: "the execution of an EU
/// involves making calls to the underlying Broker layer through a set of
/// exposed APIs" (§V-B).
pub trait BrokerPort {
    /// Invokes `op` on broker API `api`.
    fn invoke(&mut self, api: &str, op: &str, args: &[(String, String)]) -> PortResponse;
}

impl<F> BrokerPort for F
where
    F: FnMut(&str, &str, &[(String, String)]) -> PortResponse,
{
    fn invoke(&mut self, api: &str, op: &str, args: &[(String, String)]) -> PortResponse {
        self(api, op, args)
    }
}

/// An event raised by an EU during execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaisedEvent {
    /// Event topic.
    pub topic: String,
    /// Resolved payload.
    pub payload: Vec<(String, String)>,
}

/// A message sent by an EU during execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SentMessage {
    /// Destination component.
    pub to: String,
    /// Topic.
    pub topic: String,
    /// Resolved payload.
    pub payload: Vec<(String, String)>,
}

/// Statistics and side-effects of one execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecOutcome {
    /// Instructions executed.
    pub steps: u64,
    /// Broker calls issued (including remote calls).
    pub broker_calls: u64,
    /// Events raised via `EmitEvent`.
    pub events: Vec<RaisedEvent>,
    /// Messages sent via `SendMessage`.
    pub messages: Vec<SentMessage>,
    /// Accumulated virtual-time cost (µs) of broker calls.
    pub virtual_cost_us: u64,
    /// Broker failures absorbed by a procedure `on_error` handler instead
    /// of aborting the execution.
    pub recovered_failures: u64,
}

/// Execution limits.
#[derive(Debug, Clone, Copy)]
pub struct MachineLimits {
    /// Maximum instructions per execution.
    pub max_steps: u64,
    /// Maximum stack depth.
    pub max_depth: usize,
    /// Relative virtual-time deadline (µs of accumulated broker-call
    /// cost); 0 = none. Once `virtual_cost_us` reaches it the machine
    /// stops *before* the next instruction and returns
    /// [`Execution::DeadlineExpired`] — a typed result, not an error:
    /// under overload, abandoning work whose deadline passed is expected
    /// behavior, and the checkpoint lets a caller still inspect (or
    /// compensate) what ran.
    pub deadline_us: u64,
}

impl Default for MachineLimits {
    fn default() -> Self {
        MachineLimits {
            max_steps: 100_000,
            max_depth: 64,
            deadline_us: 0,
        }
    }
}

/// A checkpointed stack frame: everything needed to rebuild the frame
/// against the same intent model and repository. The procedure is
/// identified by its *path* (child indexes from the IM root), so resume
/// re-resolves nodes and `on_error` handlers instead of trusting pointers.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameCheckpoint {
    /// Child indexes from the intent-model root to this frame's node.
    pub path: Vec<usize>,
    /// The frame's (possibly branch-spliced) program.
    pub program: Vec<Instr>,
    /// Next instruction.
    pub pc: usize,
    /// Local variables.
    pub locals: BTreeMap<String, String>,
    /// Whether the frame is running its `on_error` program.
    pub in_error: bool,
}

/// A paused execution: the full frame stack plus the outcome accumulated
/// so far. Feed it back to [`StackMachine::resume`] to continue exactly
/// where the execution stopped.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineCheckpoint {
    /// The frame stack, bottom first.
    pub frames: Vec<FrameCheckpoint>,
    /// Side effects and statistics accumulated before the pause.
    pub outcome: ExecOutcome,
}

/// Result of a budgeted execution: done, or paused at a checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub enum Execution {
    /// The stack emptied; the operation completed.
    Complete(ExecOutcome),
    /// The step budget ran out mid-procedure.
    Paused(Box<MachineCheckpoint>),
    /// The [`MachineLimits::deadline_us`] virtual-time deadline passed
    /// mid-procedure: the work was abandoned (shed) at the captured
    /// checkpoint. Distinct from [`Execution::Paused`] because resuming
    /// is pointless — the result is already too late.
    DeadlineExpired(Box<MachineCheckpoint>),
}

/// The stack machine; stateless between executions apart from limits.
#[derive(Debug, Clone, Default)]
pub struct StackMachine {
    limits: MachineLimits,
}

struct Frame<'a> {
    node: &'a ImNode,
    /// Child indexes from the IM root to `node` (checkpoint identity).
    path: Vec<usize>,
    /// Flattened program of the procedure's EUs, owned so `IfVar` splicing
    /// and checkpointing need no lifetime games.
    program: Vec<Instr>,
    pc: usize,
    locals: BTreeMap<String, String>,
    /// The procedure's compensation EU, if any.
    on_error: Option<&'a crate::procedure::ExecutionUnit>,
    /// Set once the frame has switched to its `on_error` program — a
    /// failure inside the handler unwinds further instead of re-entering.
    in_error: bool,
}

impl StackMachine {
    /// Creates a machine with default limits.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a machine with custom limits.
    pub fn with_limits(limits: MachineLimits) -> Self {
        StackMachine { limits }
    }

    /// Executes an intent model: pushes the root procedure and runs until
    /// the stack empties. `cmd_args` are the arguments of the command that
    /// requested the operation (readable through [`Operand::Arg`]).
    pub fn execute(
        &self,
        im: &IntentModel,
        repo: &ProcedureRepository,
        cmd_args: &[(String, String)],
        port: &mut dyn BrokerPort,
    ) -> Result<ExecOutcome> {
        let stack = vec![self.frame(&im.root, Vec::new(), repo)?];
        match self.run(
            im,
            repo,
            cmd_args,
            port,
            stack,
            ExecOutcome::default(),
            None,
        )? {
            Execution::Complete(outcome) => Ok(outcome),
            // Paused is unreachable with no budget; an expired deadline
            // surfaces the partial outcome (callers needing the typed
            // distinction use `execute_budgeted`).
            Execution::Paused(cp) | Execution::DeadlineExpired(cp) => Ok(cp.outcome),
        }
    }

    /// Like [`StackMachine::execute`], but pauses after at most `budget`
    /// instructions, returning a [`MachineCheckpoint`] that captures the
    /// in-flight procedure stack. This is what crash-consistent execution
    /// builds on: checkpoint between budget slices, and after a crash,
    /// [`StackMachine::resume`] from the last checkpoint.
    pub fn execute_budgeted(
        &self,
        im: &IntentModel,
        repo: &ProcedureRepository,
        cmd_args: &[(String, String)],
        port: &mut dyn BrokerPort,
        budget: u64,
    ) -> Result<Execution> {
        let stack = vec![self.frame(&im.root, Vec::new(), repo)?];
        self.run(
            im,
            repo,
            cmd_args,
            port,
            stack,
            ExecOutcome::default(),
            Some(budget),
        )
    }

    /// Continues a paused execution from its checkpoint, running at most
    /// `budget` further instructions (`None` = to completion). Frames are
    /// revalidated against the intent model and repository: a checkpoint
    /// that no longer matches them is refused, not misexecuted.
    pub fn resume(
        &self,
        im: &IntentModel,
        repo: &ProcedureRepository,
        cmd_args: &[(String, String)],
        port: &mut dyn BrokerPort,
        checkpoint: MachineCheckpoint,
        budget: Option<u64>,
    ) -> Result<Execution> {
        let mut stack = Vec::with_capacity(checkpoint.frames.len());
        for fc in checkpoint.frames {
            let node = Self::node_at(im, &fc.path)?;
            let proc = repo.get_or_err(&node.proc)?;
            if fc.pc > fc.program.len() {
                return Err(ControllerError::InvalidIntentModel(format!(
                    "checkpoint pc {} is outside `{}`'s program",
                    fc.pc, node.proc
                )));
            }
            stack.push(Frame {
                node,
                path: fc.path,
                program: fc.program,
                pc: fc.pc,
                locals: fc.locals,
                on_error: proc.on_error.as_ref(),
                in_error: fc.in_error,
            });
        }
        self.run(im, repo, cmd_args, port, stack, checkpoint.outcome, budget)
    }

    /// Resolves an intent-model node by its child-index path.
    fn node_at<'a>(im: &'a IntentModel, path: &[usize]) -> Result<&'a ImNode> {
        let mut node = &im.root;
        for idx in path {
            node = node.children.get(*idx).ok_or_else(|| {
                ControllerError::InvalidIntentModel(format!(
                    "checkpoint path {path:?} does not resolve in the intent model"
                ))
            })?;
        }
        Ok(node)
    }

    #[allow(clippy::too_many_arguments)]
    fn run<'a>(
        &self,
        _im: &'a IntentModel,
        repo: &'a ProcedureRepository,
        cmd_args: &[(String, String)],
        port: &mut dyn BrokerPort,
        mut stack: Vec<Frame<'a>>,
        mut outcome: ExecOutcome,
        budget: Option<u64>,
    ) -> Result<Execution> {
        let checkpoint = |stack: &[Frame<'_>], outcome: ExecOutcome| {
            Box::new(MachineCheckpoint {
                frames: stack
                    .iter()
                    .map(|f| FrameCheckpoint {
                        path: f.path.clone(),
                        program: f.program.clone(),
                        pc: f.pc,
                        locals: f.locals.clone(),
                        in_error: f.in_error,
                    })
                    .collect(),
                outcome,
            })
        };
        let mut executed_this_run = 0u64;
        while let Some(top) = stack.last_mut() {
            if outcome.steps >= self.limits.max_steps {
                return Err(ControllerError::ExecutionLimit(format!(
                    "{} steps",
                    self.limits.max_steps
                )));
            }
            // Deadline propagation: once the accumulated virtual cost has
            // passed the declared deadline, any further work is worthless
            // — abandon *before* the next instruction runs.
            if self.limits.deadline_us > 0 && outcome.virtual_cost_us >= self.limits.deadline_us {
                let cp = checkpoint(&stack, outcome);
                return Ok(Execution::DeadlineExpired(cp));
            }
            if let Some(b) = budget {
                if executed_this_run >= b {
                    let cp = checkpoint(&stack, outcome);
                    return Ok(Execution::Paused(cp));
                }
            }
            let Some(instr) = top.program.get(top.pc).cloned() else {
                // Falling off the end of the program implies completion.
                stack.pop();
                continue;
            };
            top.pc += 1;
            outcome.steps += 1;
            executed_this_run += 1;
            let instr = &instr;

            // Resolve an operand against the frame and command args.
            let resolve = |o: &Operand, locals: &BTreeMap<String, String>| -> String {
                match o {
                    Operand::Lit(s) => s.clone(),
                    Operand::Var(v) => locals.get(v).cloned().unwrap_or_default(),
                    Operand::Arg(a) => cmd_args
                        .iter()
                        .find(|(k, _)| k == a)
                        .map(|(_, v)| v.clone())
                        .unwrap_or_default(),
                }
            };

            match instr {
                Instr::SetVar { name, value } => {
                    let v = resolve(value, &top.locals);
                    top.locals.insert(name.clone(), v);
                }
                Instr::Free(name) => {
                    top.locals.remove(name);
                }
                Instr::BrokerCall { api, op, args }
                | Instr::RemoteCall {
                    node: api,
                    op,
                    args,
                } => {
                    let is_remote = matches!(instr, Instr::RemoteCall { .. });
                    let resolved: Vec<(String, String)> = args
                        .iter()
                        .map(|(k, v)| (k.clone(), resolve(v, &top.locals)))
                        .collect();
                    let (api_name, op_name) = if is_remote {
                        ("remote".to_string(), format!("{api}:{op}"))
                    } else {
                        (api.clone(), op.clone())
                    };
                    let resp = port.invoke(&api_name, &op_name, &resolved);
                    outcome.broker_calls += 1;
                    outcome.virtual_cost_us += resp.cost_us;
                    if resp.ok {
                        for (k, v) in resp.values {
                            top.locals.insert(format!("result.{k}"), v);
                        }
                    } else {
                        let failed_proc = top.node.proc.to_string();
                        let reason = resp.reason.unwrap_or_else(|| "unspecified".into());
                        // Graceful degradation: unwind to the nearest frame
                        // (from the top) whose procedure declares an
                        // `on_error` handler that is not itself already
                        // handling a failure; abort only when none exists.
                        let Some(h) = stack
                            .iter()
                            .rposition(|f| f.on_error.is_some() && !f.in_error)
                        else {
                            return Err(ControllerError::BrokerFailure {
                                proc: failed_proc,
                                api: api_name,
                                op: op_name,
                                reason,
                            });
                        };
                        stack.truncate(h + 1);
                        outcome.recovered_failures += 1;
                        let handler = &mut stack[h];
                        if let Some(eu) = handler.on_error {
                            handler.program = eu.instructions.clone();
                        }
                        handler.pc = 0;
                        handler.in_error = true;
                        handler.locals.insert("error.proc".into(), failed_proc);
                        handler.locals.insert("error.api".into(), api_name);
                        handler.locals.insert("error.op".into(), op_name);
                        handler.locals.insert("error.reason".into(), reason);
                    }
                }
                Instr::EmitEvent { topic, payload } => {
                    outcome.events.push(RaisedEvent {
                        topic: topic.clone(),
                        payload: payload
                            .iter()
                            .map(|(k, v)| (k.clone(), resolve(v, &top.locals)))
                            .collect(),
                    });
                }
                Instr::SendMessage { to, topic, payload } => {
                    outcome.messages.push(SentMessage {
                        to: to.clone(),
                        topic: topic.clone(),
                        payload: payload
                            .iter()
                            .map(|(k, v)| (k.clone(), resolve(v, &top.locals)))
                            .collect(),
                    });
                }
                Instr::CallDep(idx) => {
                    let child = top.node.children.get(*idx).ok_or_else(|| {
                        ControllerError::InvalidIntentModel(format!(
                            "`{}` has no matched dependency at index {idx}",
                            top.node.proc
                        ))
                    })?;
                    let mut path = top.path.clone();
                    path.push(*idx);
                    if stack.len() >= self.limits.max_depth {
                        return Err(ControllerError::ExecutionLimit(format!(
                            "stack depth {}",
                            self.limits.max_depth
                        )));
                    }
                    let frame = self.frame(child, path, repo)?;
                    stack.push(frame);
                }
                Instr::IfVar {
                    var,
                    equals,
                    then,
                    otherwise,
                } => {
                    let taken = top.locals.get(var).map(String::as_str) == Some(equals.as_str());
                    let branch = if taken { then } else { otherwise };
                    // Splice the branch in just after the current pc.
                    let pc = top.pc;
                    for (i, ins) in branch.iter().enumerate() {
                        top.program.insert(pc + i, ins.clone());
                    }
                }
                Instr::Complete => {
                    stack.pop();
                }
            }
        }
        Ok(Execution::Complete(outcome))
    }

    fn frame<'a>(
        &self,
        node: &'a ImNode,
        path: Vec<usize>,
        repo: &'a ProcedureRepository,
    ) -> Result<Frame<'a>> {
        let proc = repo.get_or_err(&node.proc)?;
        let program: Vec<Instr> = proc
            .eus
            .iter()
            .flat_map(|eu| eu.instructions.iter().cloned())
            .collect();
        Ok(Frame {
            node,
            path,
            program,
            pc: 0,
            locals: BTreeMap::new(),
            on_error: proc.on_error.as_ref(),
            in_error: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::procedure::Procedure;

    fn ok_port() -> impl BrokerPort {
        |_: &str, _: &str, _: &[(String, String)]| PortResponse::ok()
    }

    fn leaf(id: &str, instrs: Vec<Instr>) -> (ImNode, Procedure) {
        (
            ImNode {
                proc: id.into(),
                children: vec![],
            },
            Procedure::simple(id, "C", instrs),
        )
    }

    fn repo_of(procs: Vec<Procedure>) -> ProcedureRepository {
        let mut r = ProcedureRepository::new();
        for p in procs {
            r.add(p).unwrap();
        }
        r
    }

    #[test]
    fn locals_args_and_broker_calls() {
        let (node, proc) = leaf(
            "p",
            vec![
                Instr::SetVar {
                    name: "x".into(),
                    value: Operand::arg("who"),
                },
                Instr::BrokerCall {
                    api: "media".into(),
                    op: "open".into(),
                    args: vec![
                        ("peer".into(), Operand::var("x")),
                        ("q".into(), Operand::lit("hd")),
                    ],
                },
                Instr::SetVar {
                    name: "sid".into(),
                    value: Operand::var("result.session"),
                },
                Instr::Complete,
            ],
        );
        let repo = repo_of(vec![proc]);
        let calls = std::cell::RefCell::new(Vec::new());
        let mut port = |api: &str, op: &str, args: &[(String, String)]| {
            calls.borrow_mut().push(format!("{api}.{op}({:?})", args));
            let mut r = PortResponse::ok();
            r.values.insert("session".into(), "s42".into());
            r.cost_us = 10;
            r
        };
        let im = IntentModel { root: node };
        let out = StackMachine::new()
            .execute(&im, &repo, &[("who".into(), "bob".into())], &mut port)
            .unwrap();
        assert_eq!(out.broker_calls, 1);
        assert_eq!(out.virtual_cost_us, 10);
        assert_eq!(out.steps, 4);
        let c = calls.borrow();
        assert!(c[0].contains("peer"), "{c:?}");
        assert!(c[0].contains("bob"), "{c:?}");
    }

    #[test]
    fn dsc_based_call_pushes_child() {
        let parent = Procedure::simple(
            "parent",
            "C",
            vec![
                Instr::CallDep(0),
                Instr::EmitEvent {
                    topic: "done".into(),
                    payload: vec![],
                },
                Instr::Complete,
            ],
        )
        .with_dependency("D");
        let child = Procedure::simple(
            "child",
            "D",
            vec![
                Instr::BrokerCall {
                    api: "svc".into(),
                    op: "x".into(),
                    args: vec![],
                },
                Instr::Complete,
            ],
        );
        let repo = repo_of(vec![parent, child]);
        let im = IntentModel {
            root: ImNode {
                proc: "parent".into(),
                children: vec![ImNode {
                    proc: "child".into(),
                    children: vec![],
                }],
            },
        };
        let mut port = ok_port();
        let out = StackMachine::new()
            .execute(&im, &repo, &[], &mut port)
            .unwrap();
        assert_eq!(out.broker_calls, 1);
        assert_eq!(out.events.len(), 1);
        assert_eq!(out.events[0].topic, "done");
    }

    #[test]
    fn broker_failure_names_the_procedure() {
        let (node, proc) = leaf(
            "fragile",
            vec![Instr::BrokerCall {
                api: "svc".into(),
                op: "x".into(),
                args: vec![],
            }],
        );
        let repo = repo_of(vec![proc]);
        let mut port = |_: &str, _: &str, _: &[(String, String)]| PortResponse::failed("down", 500);
        let e = StackMachine::new()
            .execute(&IntentModel { root: node }, &repo, &[], &mut port)
            .unwrap_err();
        match e {
            ControllerError::BrokerFailure { proc, reason, .. } => {
                assert_eq!(proc, "fragile");
                assert_eq!(reason, "down");
            }
            other => panic!("unexpected: {other}"),
        }
    }

    #[test]
    fn on_error_handler_absorbs_broker_failures() {
        let (node, proc) = leaf(
            "resilient",
            vec![
                Instr::BrokerCall {
                    api: "svc".into(),
                    op: "x".into(),
                    args: vec![],
                },
                Instr::Complete,
            ],
        );
        let proc = proc.with_on_error(vec![
            Instr::EmitEvent {
                topic: "degraded".into(),
                payload: vec![
                    ("why".into(), Operand::var("error.reason")),
                    ("api".into(), Operand::var("error.api")),
                ],
            },
            Instr::Complete,
        ]);
        let repo = repo_of(vec![proc]);
        let mut port = |_: &str, _: &str, _: &[(String, String)]| PortResponse::failed("down", 500);
        let out = StackMachine::new()
            .execute(&IntentModel { root: node }, &repo, &[], &mut port)
            .unwrap();
        assert_eq!(out.recovered_failures, 1);
        assert_eq!(out.virtual_cost_us, 500);
        assert_eq!(out.events.len(), 1);
        assert_eq!(out.events[0].topic, "degraded");
        assert_eq!(
            out.events[0].payload,
            vec![("why".into(), "down".into()), ("api".into(), "svc".into())]
        );
    }

    #[test]
    fn failures_unwind_to_the_nearest_ancestor_handler() {
        // parent (has on_error) -> child (no handler, fails).
        let parent = Procedure::simple(
            "parent",
            "C",
            vec![
                Instr::CallDep(0),
                Instr::EmitEvent {
                    topic: "never".into(),
                    payload: vec![],
                },
            ],
        )
        .with_dependency("D")
        .with_on_error(vec![
            Instr::EmitEvent {
                topic: "compensated".into(),
                payload: vec![("proc".into(), Operand::var("error.proc"))],
            },
            Instr::Complete,
        ]);
        let child = Procedure::simple(
            "child",
            "D",
            vec![Instr::BrokerCall {
                api: "svc".into(),
                op: "x".into(),
                args: vec![],
            }],
        );
        let repo = repo_of(vec![parent, child]);
        let im = IntentModel {
            root: ImNode {
                proc: "parent".into(),
                children: vec![ImNode {
                    proc: "child".into(),
                    children: vec![],
                }],
            },
        };
        let mut port = |_: &str, _: &str, _: &[(String, String)]| PortResponse::failed("boom", 0);
        let out = StackMachine::new()
            .execute(&im, &repo, &[], &mut port)
            .unwrap();
        assert_eq!(out.recovered_failures, 1);
        // The child frame was discarded: the parent's normal continuation
        // ("never") is replaced by its compensation path.
        assert_eq!(out.events.len(), 1);
        assert_eq!(out.events[0].topic, "compensated");
        assert_eq!(out.events[0].payload, vec![("proc".into(), "child".into())]);
    }

    #[test]
    fn failure_inside_a_handler_propagates() {
        let (node, proc) = leaf(
            "p",
            vec![Instr::BrokerCall {
                api: "svc".into(),
                op: "x".into(),
                args: vec![],
            }],
        );
        let proc = proc.with_on_error(vec![Instr::BrokerCall {
            api: "alt".into(),
            op: "y".into(),
            args: vec![],
        }]);
        let repo = repo_of(vec![proc]);
        let mut port = |_: &str, _: &str, _: &[(String, String)]| PortResponse::failed("down", 0);
        let e = StackMachine::new()
            .execute(&IntentModel { root: node }, &repo, &[], &mut port)
            .unwrap_err();
        match e {
            ControllerError::BrokerFailure { api, .. } => assert_eq!(api, "alt"),
            other => panic!("unexpected: {other}"),
        }
    }

    #[test]
    fn conditionals_branch_on_locals() {
        let (node, proc) = leaf(
            "p",
            vec![
                Instr::SetVar {
                    name: "mode".into(),
                    value: Operand::arg("mode"),
                },
                Instr::IfVar {
                    var: "mode".into(),
                    equals: "hd".into(),
                    then: vec![Instr::EmitEvent {
                        topic: "hd".into(),
                        payload: vec![],
                    }],
                    otherwise: vec![Instr::EmitEvent {
                        topic: "sd".into(),
                        payload: vec![],
                    }],
                },
                Instr::Complete,
            ],
        );
        let repo = repo_of(vec![proc]);
        let im = IntentModel { root: node };
        let mut port = ok_port();
        let out = StackMachine::new()
            .execute(&im, &repo, &[("mode".into(), "hd".into())], &mut port)
            .unwrap();
        assert_eq!(out.events[0].topic, "hd");
        let mut port = ok_port();
        let out = StackMachine::new()
            .execute(&im, &repo, &[], &mut port)
            .unwrap();
        assert_eq!(out.events[0].topic, "sd");
    }

    #[test]
    fn implicit_completion_and_free() {
        // No explicit Complete: falling off the program pops the frame.
        let (node, proc) = leaf(
            "p",
            vec![
                Instr::SetVar {
                    name: "x".into(),
                    value: Operand::lit("1"),
                },
                Instr::Free("x".into()),
            ],
        );
        let repo = repo_of(vec![proc]);
        let mut port = ok_port();
        let out = StackMachine::new()
            .execute(&IntentModel { root: node }, &repo, &[], &mut port)
            .unwrap();
        assert_eq!(out.steps, 2);
    }

    #[test]
    fn step_limit_enforced() {
        // Self-splicing conditional loop: IfVar keeps reinserting itself.
        let looping = Instr::IfVar {
            var: "x".into(),
            equals: "".into(),
            then: vec![],
            otherwise: vec![],
        };
        // Construct a program that always branches into `then` containing
        // the same conditional again (bounded by instruction cloning depth
        // is impossible; instead use messages to spin).
        let mut instrs = Vec::new();
        for _ in 0..10 {
            instrs.push(looping.clone());
        }
        let (node, proc) = leaf("p", instrs);
        let repo = repo_of(vec![proc]);
        let machine = StackMachine::with_limits(MachineLimits {
            max_steps: 5,
            max_depth: 4,
            ..MachineLimits::default()
        });
        let mut port = ok_port();
        let e = machine
            .execute(&IntentModel { root: node }, &repo, &[], &mut port)
            .unwrap_err();
        assert!(matches!(e, ControllerError::ExecutionLimit(_)));
    }

    #[test]
    fn deadline_expiry_is_a_typed_result_not_an_error() {
        let (node, proc) = leaf(
            "p",
            vec![
                Instr::BrokerCall {
                    api: "svc".into(),
                    op: "a".into(),
                    args: vec![],
                },
                Instr::BrokerCall {
                    api: "svc".into(),
                    op: "b".into(),
                    args: vec![],
                },
                Instr::BrokerCall {
                    api: "svc".into(),
                    op: "c".into(),
                    args: vec![],
                },
                Instr::Complete,
            ],
        );
        let repo = repo_of(vec![proc]);
        let im = IntentModel { root: node };
        let machine = StackMachine::with_limits(MachineLimits {
            deadline_us: 1_000,
            ..MachineLimits::default()
        });
        let mut port = |_: &str, _: &str, _: &[(String, String)]| {
            let mut r = PortResponse::ok();
            r.cost_us = 500;
            r
        };
        let exec = machine
            .execute_budgeted(&im, &repo, &[], &mut port, 1_000)
            .unwrap();
        let Execution::DeadlineExpired(cp) = exec else {
            panic!("expected deadline expiry, got {exec:?}");
        };
        // Two calls fit under the 1000µs deadline; the third was
        // abandoned before touching the broker.
        assert_eq!(cp.outcome.broker_calls, 2);
        assert_eq!(cp.outcome.virtual_cost_us, 1_000);
        // The same program completes with no deadline declared.
        let mut port = |_: &str, _: &str, _: &[(String, String)]| {
            let mut r = PortResponse::ok();
            r.cost_us = 500;
            r
        };
        let out = StackMachine::new()
            .execute(&im, &repo, &[], &mut port)
            .unwrap();
        assert_eq!(out.broker_calls, 3);
        assert_eq!(out.virtual_cost_us, 1_500);
    }

    #[test]
    fn budgeted_execution_pauses_and_resumes_identically() {
        // parent calls child mid-way, so pausing at various budgets lands
        // inside nested frames.
        let parent = Procedure::simple(
            "parent",
            "C",
            vec![
                Instr::SetVar {
                    name: "x".into(),
                    value: Operand::lit("1"),
                },
                Instr::CallDep(0),
                Instr::EmitEvent {
                    topic: "done".into(),
                    payload: vec![("x".into(), Operand::var("x"))],
                },
                Instr::Complete,
            ],
        )
        .with_dependency("D");
        let child = Procedure::simple(
            "child",
            "D",
            vec![
                Instr::BrokerCall {
                    api: "svc".into(),
                    op: "a".into(),
                    args: vec![],
                },
                Instr::BrokerCall {
                    api: "svc".into(),
                    op: "b".into(),
                    args: vec![],
                },
                Instr::Complete,
            ],
        );
        let repo = repo_of(vec![parent, child]);
        let im = IntentModel {
            root: ImNode {
                proc: "parent".into(),
                children: vec![ImNode {
                    proc: "child".into(),
                    children: vec![],
                }],
            },
        };
        let machine = StackMachine::new();
        let mut port = ok_port();
        let uninterrupted = machine.execute(&im, &repo, &[], &mut port).unwrap();

        // Every possible pause point yields the same final outcome.
        for budget in 1..8 {
            let mut port = ok_port();
            let mut exec = machine
                .execute_budgeted(&im, &repo, &[], &mut port, budget)
                .unwrap();
            let mut pauses = 0;
            let outcome = loop {
                match exec {
                    Execution::Complete(o) => break o,
                    Execution::DeadlineExpired(cp) => panic!("no deadline set: {cp:?}"),
                    Execution::Paused(cp) => {
                        pauses += 1;
                        assert!(!cp.frames.is_empty());
                        // The checkpoint is plain data: a clone restores
                        // the same execution (crash/restore simulation).
                        let restored = cp.clone();
                        let mut port = ok_port();
                        exec = machine
                            .resume(&im, &repo, &[], &mut port, *restored, Some(budget))
                            .unwrap();
                    }
                }
            };
            assert_eq!(outcome, uninterrupted, "budget {budget}");
            assert!(pauses > 0 || budget >= uninterrupted.steps);
        }
    }

    #[test]
    fn checkpoint_captures_nested_frames_and_locals() {
        let parent = Procedure::simple(
            "parent",
            "C",
            vec![
                Instr::SetVar {
                    name: "pv".into(),
                    value: Operand::lit("keep"),
                },
                Instr::CallDep(0),
                Instr::Complete,
            ],
        )
        .with_dependency("D");
        let child = Procedure::simple(
            "child",
            "D",
            vec![
                Instr::SetVar {
                    name: "cv".into(),
                    value: Operand::lit("inner"),
                },
                Instr::BrokerCall {
                    api: "svc".into(),
                    op: "x".into(),
                    args: vec![],
                },
                Instr::Complete,
            ],
        );
        let repo = repo_of(vec![parent, child]);
        let im = IntentModel {
            root: ImNode {
                proc: "parent".into(),
                children: vec![ImNode {
                    proc: "child".into(),
                    children: vec![],
                }],
            },
        };
        let mut port = ok_port();
        // 3 steps: SetVar pv, CallDep, SetVar cv -> paused inside child.
        let Execution::Paused(cp) = StackMachine::new()
            .execute_budgeted(&im, &repo, &[], &mut port, 3)
            .unwrap()
        else {
            panic!("expected a pause");
        };
        assert_eq!(cp.frames.len(), 2);
        assert_eq!(cp.frames[0].path, Vec::<usize>::new());
        assert_eq!(cp.frames[1].path, vec![0]);
        assert_eq!(
            cp.frames[0].locals.get("pv").map(String::as_str),
            Some("keep")
        );
        assert_eq!(
            cp.frames[1].locals.get("cv").map(String::as_str),
            Some("inner")
        );
        assert_eq!(cp.outcome.steps, 3);
    }

    #[test]
    fn stale_checkpoints_are_refused() {
        let (node, proc) = leaf(
            "p",
            vec![
                Instr::SetVar {
                    name: "x".into(),
                    value: Operand::lit("1"),
                },
                Instr::Complete,
            ],
        );
        let repo = repo_of(vec![proc]);
        let im = IntentModel { root: node };
        let machine = StackMachine::new();
        let mut port = ok_port();
        let Execution::Paused(cp) = machine
            .execute_budgeted(&im, &repo, &[], &mut port, 1)
            .unwrap()
        else {
            panic!("expected a pause");
        };

        // Path that no longer resolves in the intent model.
        let mut bad = (*cp).clone();
        bad.frames[0].path = vec![3];
        let mut port = ok_port();
        let e = machine
            .resume(&im, &repo, &[], &mut port, bad, None)
            .unwrap_err();
        assert!(matches!(e, ControllerError::InvalidIntentModel(_)));

        // pc outside the program.
        let mut bad = (*cp).clone();
        bad.frames[0].pc = 99;
        let mut port = ok_port();
        let e = machine
            .resume(&im, &repo, &[], &mut port, bad, None)
            .unwrap_err();
        assert!(matches!(e, ControllerError::InvalidIntentModel(_)));
    }

    #[test]
    fn nested_handlers_failing_handler_unwinds_to_ancestor_handler() {
        // parent (has on_error) -> child (has on_error whose own program
        // fails): the child handler's failure must unwind to the parent's
        // handler, not re-enter the child's.
        let parent = Procedure::simple(
            "parent",
            "C",
            vec![
                Instr::CallDep(0),
                Instr::EmitEvent {
                    topic: "never".into(),
                    payload: vec![],
                },
            ],
        )
        .with_dependency("D")
        .with_on_error(vec![
            Instr::EmitEvent {
                topic: "outer-compensated".into(),
                payload: vec![("proc".into(), Operand::var("error.proc"))],
            },
            Instr::Complete,
        ]);
        let child = Procedure::simple(
            "child",
            "D",
            vec![Instr::BrokerCall {
                api: "svc".into(),
                op: "first".into(),
                args: vec![],
            }],
        )
        .with_on_error(vec![
            Instr::EmitEvent {
                topic: "inner-compensating".into(),
                payload: vec![],
            },
            Instr::BrokerCall {
                api: "svc".into(),
                op: "undo".into(),
                args: vec![],
            },
            Instr::Complete,
        ]);
        let repo = repo_of(vec![parent, child]);
        let im = IntentModel {
            root: ImNode {
                proc: "parent".into(),
                children: vec![ImNode {
                    proc: "child".into(),
                    children: vec![],
                }],
            },
        };
        // Everything fails: the child call, then the child handler's undo.
        let mut port = |_: &str, op: &str, _: &[(String, String)]| {
            PortResponse::failed(format!("{op} down"), 10)
        };
        let out = StackMachine::new()
            .execute(&im, &repo, &[], &mut port)
            .unwrap();
        // Both failures were absorbed: first by the child's handler, then
        // by the parent's.
        assert_eq!(out.recovered_failures, 2);
        let topics: Vec<&str> = out.events.iter().map(|e| e.topic.as_str()).collect();
        assert_eq!(topics, vec!["inner-compensating", "outer-compensated"]);
        // The parent handler saw the *child* as the failing procedure.
        assert_eq!(out.events[1].payload, vec![("proc".into(), "child".into())]);
        assert_eq!(out.virtual_cost_us, 20);
    }

    #[test]
    fn messages_and_remote_calls() {
        let (node, proc) = leaf(
            "p",
            vec![
                Instr::SendMessage {
                    to: "ui".into(),
                    topic: "progress".into(),
                    payload: vec![("pct".into(), Operand::lit("50"))],
                },
                Instr::RemoteCall {
                    node: "provider".into(),
                    op: "collect".into(),
                    args: vec![],
                },
                Instr::Complete,
            ],
        );
        let repo = repo_of(vec![proc]);
        let seen = std::cell::RefCell::new(Vec::new());
        let mut port = |api: &str, op: &str, _args: &[(String, String)]| {
            seen.borrow_mut().push(format!("{api}.{op}"));
            PortResponse::ok()
        };
        let im = IntentModel { root: node };
        let out = StackMachine::new()
            .execute(&im, &repo, &[], &mut port)
            .unwrap();
        assert_eq!(out.messages.len(), 1);
        assert_eq!(out.messages[0].to, "ui");
        assert_eq!(
            seen.borrow().as_slice(),
            &["remote.provider:collect".to_string()]
        );
    }

    #[test]
    fn missing_child_is_invalid_im() {
        let parent = Procedure::simple("parent", "C", vec![Instr::CallDep(0)]).with_dependency("D");
        let repo = repo_of(vec![parent]);
        let im = IntentModel {
            root: ImNode {
                proc: "parent".into(),
                children: vec![],
            },
        };
        let mut port = ok_port();
        let e = StackMachine::new()
            .execute(&im, &repo, &[], &mut port)
            .unwrap_err();
        assert!(matches!(e, ControllerError::InvalidIntentModel(_)));
    }
}
